#!/usr/bin/env python
"""The fixed-accuracy problem: adaptive subspace growth (Section 10).

Instead of a target rank, give the algorithm a tolerance: the
adaptive-l scheme (Figure 3) grows the sampled subspace by ``l_inc``
vectors per step until the probabilistic estimate ``eps_tilde`` of
``||A - A B^T B||`` meets it.  This script reproduces the Section 10
trade-off on the ``exponent`` matrix:

- small ``l_inc`` tracks the needed subspace tightly but runs many
  inefficient small GEMMs (see Figure 18's rates);
- large ``l_inc`` runs fast kernels but overshoots the subspace;
- the interpolated step rule gets the best of both.

Timing comes from the simulated K40c, so the numbers are the modeled
GPU seconds of Figure 17.

Run:  python examples/fixed_accuracy.py
"""

from repro import AdaptiveConfig, GPUExecutor, adaptive_sampling
from repro.matrices import exponent_matrix

M, N, TOL = 5_000, 500, 1e-12


def run(a, l_inc: int, rule: str) -> None:
    ex = GPUExecutor(seed=1)
    cfg = AdaptiveConfig(tolerance=TOL, l_init=l_inc, l_inc=l_inc,
                         step_rule=rule, power_iterations=0, seed=1)
    res = adaptive_sampling(a, cfg, executor=ex)
    steps = ", ".join(f"l={s.subspace_size}:{s.error_estimate:.1e}"
                      for s in res.steps)
    print(f"l_inc={l_inc:>3} {rule:>12}: final l = {res.subspace_size:>4}, "
          f"modeled time = {res.seconds * 1e3:7.2f} ms, "
          f"actual error = {res.actual_error(a):.2e}")
    print(f"    convergence: {steps}")


def main() -> None:
    print(f"exponent matrix {M} x {N}, tolerance {TOL:.0e} "
          f"(modeled K40c clock)\n")
    a = exponent_matrix(M, N, seed=0)
    for l_inc in (8, 16, 32, 64):
        run(a, l_inc, "static")
    print()
    for l_inc in (8, 16, 32, 64):
        run(a, l_inc, "interpolate")
    print("\nNote the Figure 16/17 signatures: the estimate sits one to "
          "two orders above the actual error (it is a probabilistic "
          "upper bound), small l_inc needs many steps, and the "
          "interpolated rule converges in the fewest modeled seconds "
          "from any starting increment.")


if __name__ == "__main__":
    main()

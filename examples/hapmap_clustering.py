#!/usr/bin/env python
"""Population clustering on a HapMap-like genotype matrix.

The paper's real-world workload: rows are SNPs, columns are individuals
from four populations (CEU, GIH, JPT, YRI), and a low-rank
approximation of the genotype matrix is used for population clustering
(Section 6, refs [6, 14]).  The HapMap data itself is not
redistributable, so we use the Balding-Nichols generator from
``repro.matrices`` (see DESIGN.md for why it preserves the spectral
structure: a few structure-carrying singular values over a slowly
decaying noise bulk).

The script:

1. generates the panel and reports its Table 1 statistics;
2. extracts rank-k factors with random sampling (q = 0 and q = 2);
3. embeds the individuals with the right factor and k-means-clusters
   them;
4. scores cluster/population agreement — the "clustering error"
   quality measure the paper's conclusion proposes.

Run:  python examples/hapmap_clustering.py
"""

import numpy as np

from repro import SamplingConfig
from repro.core.clustering import population_recovery_score
from repro.matrices import hapmap_like_matrix, table1_row

N_SNPS, N_IND, K = 20_000, 400, 8


def main() -> None:
    print(f"Generating HapMap-like panel ({N_SNPS} SNPs x {N_IND} "
          f"individuals, 4 populations) ...")
    panel = hapmap_like_matrix(N_SNPS, N_IND, seed=0, return_panel=True)
    a = panel.genotypes
    centered = a - a.mean(axis=1, keepdims=True)

    stats = table1_row(centered, k=50)
    print(f"  sigma_0 = {stats['sigma_0']:.3g}, sigma_51 = "
          f"{stats['sigma_k1']:.3g}, kappa = {stats['kappa']:.3g}")
    print("  (slow spectral decay, as for the paper's hapmap matrix)\n")

    for q in (0, 2):
        cfg = SamplingConfig(rank=K, oversampling=10,
                             power_iterations=q, seed=3)
        acc = population_recovery_score(a, panel.labels, rank=K,
                                        config=cfg, seed=7)
        print(f"random sampling q={q}: rank-{K} embedding -> k-means "
              f"clustering accuracy {acc:.1%}")
    print("\nPopulation structure is recovered from the low-rank "
          "factors despite the large Figure 6-style residual: the "
          "approximation error lives in the genotype noise, not in the "
          "structure.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Hierarchical solver built on the randomized kernel (paper §11).

The paper's conclusion plans to integrate its randomized GPU kernel
into an HSS solver (its reference [22]).  This example does exactly
that with the package's HODLR implementation: a dense kernel matrix
(discretized integral operator) is compressed by recursively applying
the randomized SVD to its off-diagonal blocks, then a linear system is
solved directly through the hierarchical factorization.

What to look for:

- compression ratio grows with the problem size (the off-diagonal
  blocks are numerically low-rank at every level);
- the hierarchical solve matches the dense solve to ~1e-8 while doing
  asymptotically less work;
- the simulated-GPU clock attributes the compression cost to the same
  sampling/GEMM phases as the flat algorithm.

Run:  python examples/hss_solver.py
"""

import time

import numpy as np

from repro import GPUExecutor, build_hodlr


def kernel_matrix(n: int) -> np.ndarray:
    """1D smooth-kernel operator plus identity (well conditioned)."""
    x = np.linspace(0.0, 1.0, n)
    return 1.0 / (1.0 + 9.0 * np.abs(x[:, None] - x[None, :])) \
        + 2.0 * np.eye(n)


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"{'n':>6} {'ratio':>7} {'maxrank':>8} {'build(s)':>9} "
          f"{'solve(s)':>9} {'dense(s)':>9} {'resid':>10} {'gpu(ms)':>8}")
    for n in (256, 512, 1024, 2048):
        a = kernel_matrix(n)
        b = rng.standard_normal(n)

        ex = GPUExecutor(seed=1)
        t0 = time.perf_counter()
        h = build_hodlr(a, leaf_size=64, rank=14, executor=ex)
        t_build = time.perf_counter() - t0

        t0 = time.perf_counter()
        x = h.solve(b)
        t_solve = time.perf_counter() - t0

        t0 = time.perf_counter()
        np.linalg.solve(a, b)
        t_dense = time.perf_counter() - t0

        resid = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        st = h.stats()
        print(f"{n:>6} {st.compression_ratio:>7.2f} {st.max_rank:>8} "
              f"{t_build:>9.3f} {t_solve:>9.4f} {t_dense:>9.4f} "
              f"{resid:>10.2e} {ex.seconds * 1e3:>8.2f}")
    print("\nThe hierarchical solve stays at ~1e-8 residual while the "
          "compressed representation shrinks relative to the dense "
          "matrix as n grows — the regime the paper's HSS follow-up "
          "targets.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Strong scaling over multiple simulated GPUs (Section 4, Figure 15).

Reproduces the paper's multi-GPU experiment at (m; n) = (150 000;
2 500), (l; p; q) = (64; 10; 1): the matrix is 1D block-row
distributed, partial sampled blocks are accumulated on the CPU, the
small QR factors travel over PCIe, and CholQR of the distributed block
follows Figure 4 (local Gram products, CPU Cholesky, broadcast,
local triangular solves).

Two signatures to watch for, both from the paper:

- the *superlinear* GEMM speedup — each device's panel gets shorter, so
  its GEMM rate rises (440 -> 630 -> 760 Gflop/s in the paper);
- the communication fraction stays small (1.6 % at 2 GPUs, 4.3 % at 3)
  because CholQR only ships l x l Gram blocks.

Run:  python examples/multigpu_scaling.py
"""

from repro.bench import fig15_multigpu_scaling, format_breakdown_table
from repro.gpu.kernels import KernelModel

M, N, L = 150_000, 2_500, 64


def main() -> None:
    km = KernelModel()
    print("Per-device GEMM rate as the local panel shrinks "
          "(superlinear-scaling mechanism):")
    for ng in (1, 2, 3):
        local = -(-M // ng)
        rate = 2.0 * L * local * N / (km.gemm_seconds(L, N, local) * 1e9)
        print(f"  ng = {ng}: local panel {local:>7} rows -> "
              f"{rate:6.0f} Gflop/s")
    print()

    points = fig15_multigpu_scaling()
    phases = ("prng", "sampling", "gemm_iter", "orth_iter", "qrcp", "qr",
              "comms")
    print(format_breakdown_table(
        points, "ng", phases, extra=("speedup", "comms_fraction"),
        title=f"Figure 15: strong scaling, (m; n) = ({M}; {N})"))
    for pt in points[1:]:
        print(f"-> {pt['ng']} GPUs: {pt['speedup']:.1f}x speedup, "
              f"{pt['comms_fraction']:.1%} of time in communication "
              f"(paper: 2.4x/3.8x and 1.6 %/4.3 %)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: rank-k approximation by random sampling vs QRCP.

Builds the paper's ``exponent`` test matrix (sigma_i = 10^(-i/10)) at
laptop scale, computes a rank-50 approximation with the deterministic
QP3 baseline and with random sampling at q = 0, 1, 2 power iterations,
and reports the Figure 6 error norm ``||AP - QR|| / ||A||`` next to the
Eckart-Young optimum sigma_{k+1}.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SamplingConfig, best_rank_k_error, random_sampling
from repro.matrices import exponent_matrix
from repro.qr import qrcp

M, N, K, P = 8_000, 500, 50, 10


def main() -> None:
    print(f"Building the 'exponent' matrix ({M} x {N}) ...")
    a = exponent_matrix(M, N, seed=0)

    optimum = best_rank_k_error(a, K)
    print(f"best possible rank-{K} error (sigma_k+1/sigma_0): "
          f"{optimum:.3e}\n")

    det = qrcp(a, k=K)
    print(f"QP3 (deterministic, truncated at k={K}):")
    print(f"  error = {det.residual(a):.3e}")
    print(f"  column-norm recomputations: {det.norm_recomputations}\n")

    for q in (0, 1, 2):
        cfg = SamplingConfig(rank=K, oversampling=P, power_iterations=q,
                             seed=1)
        factors = random_sampling(a, cfg)
        print(f"random sampling (l = k + p = {cfg.sample_size}, q = {q}):")
        print(f"  error = {factors.residual(a):.3e}   "
              f"({factors.suboptimality(a):.2f}x the optimum)")
        print(f"  Q: {factors.q.shape}, R: {factors.r.shape}, "
              f"perm: {factors.perm.shape}")
    print("\nAs in the paper's Figure 6: q = 0 already matches QP3's "
          "error order; one power iteration closes the gap.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The Section 11 projection: a distributed-memory cluster.

The paper ends: "Due to its communication efficiency, we expect the
performance benefits of random sampling to increase on a computer with
higher communication cost, like a distributed-memory computer."  This
example runs that projection on the simulated two-tier runtime
(PCIe within a node, an alpha-beta interconnect between nodes):

1. strong scaling of random sampling over 1-16 three-GPU nodes;
2. the sampling-vs-QP3 speedup as the interconnect latency climbs from
   InfiniBand-class (3 us) to WAN-class (3 ms), at two ranks — QP3
   pays one global argmax allreduce per factored column, so its
   latency exposure scales with k while sampling's stays O(1).

Run:  python examples/cluster_projection.py
"""

from repro import SamplingConfig, SymArray, random_sampling
from repro.gpu.cluster import (ClusterExecutor, NetworkSpec,
                               cluster_qp3_seconds)

M, N = 600_000, 2_500


def sampling_seconds(nodes: int, k: int, network: NetworkSpec) -> float:
    ex = ClusterExecutor(nodes=nodes, gpus_per_node=3, network=network,
                         seed=0)
    cfg = SamplingConfig(rank=k, oversampling=10, power_iterations=1,
                         seed=0)
    return random_sampling(SymArray((M, N)), cfg, executor=ex).seconds


def main() -> None:
    ib = NetworkSpec()  # InfiniBand-class defaults
    print(f"Strong scaling (m = {M}, n = {N}, k = 54, q = 1, "
          f"3 GPUs/node, IB-class network):")
    t1 = sampling_seconds(1, 54, ib)
    for nodes in (1, 2, 4, 8, 16):
        t = sampling_seconds(nodes, 54, ib)
        print(f"  {nodes:>2} node(s): {t * 1e3:8.2f} ms   "
              f"speedup {t1 / t:5.2f}x")
    print()

    print("Speedup over distributed QP3 vs interconnect latency "
          "(8 nodes):")
    print(f"  {'latency':>10} {'k=54':>8} {'k=502':>8}")
    for lat in (3e-6, 3e-5, 3e-4, 3e-3):
        net = NetworkSpec(bandwidth_gbs=5.0, latency_s=lat)
        row = []
        for k in (54, 502):
            rs = sampling_seconds(8, k, net)
            qp3 = cluster_qp3_seconds(M, N, k, nodes=8, gpus_per_node=3,
                                      network=net)
            row.append(qp3 / rs)
        print(f"  {lat:>10.0e} {row[0]:>7.1f}x {row[1]:>7.1f}x")
    print("\nAs the paper predicts, the randomized algorithm's margin "
          "widens as communication gets more expensive — and the wider "
          "the factorization (k), the more QP3's per-pivot global "
          "synchronizations cost it.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Tour of the simulated-GPU performance study (Sections 8-9).

Walks the paper's performance narrative on the simulated K40c:

1. kernel rates — why CholQR crushes HHQR/CGS/MGS and why QP3 is
   communication-bound (Figures 7-9);
2. the estimated end-to-end Gflop/s of both algorithms (Figure 10);
3. the measured-equivalent sweep over the row count with the phase
   breakdown and the headline speedups (Figure 11, Section 9).

Everything is modeled time: the runs use shape-only symbolic arrays, so
this completes in well under a second while exercising the exact
algorithm control flow.

Run:  python examples/gpu_performance_tour.py
"""

from repro.bench import (fig07_tallskinny_qr, fig10_estimated_gflops,
                         fig11_time_vs_rows, format_series,
                         format_breakdown_table)
from repro.gpu.trace import PHASES


def main() -> None:
    print("== Kernel rates on tall-skinny m x 64 panels (Figure 7) ==")
    data = fig07_tallskinny_qr()
    ms = data.pop("m")
    print(format_series(ms, data, x_name="m"))
    ratio = data["cholqr"][-1] / data["hhqr"][-1]
    print(f"-> CholQR is {ratio:.0f}x HHQR at m = 50 000 (paper: up to "
          f"33.2x): BLAS-3 vs BLAS-1/2.\n")

    print("== Estimated end-to-end Gflop/s (Figure 10) ==")
    est = fig10_estimated_gflops()
    ms = est.pop("m")
    print(format_series(ms, est, x_name="m"))
    print("-> QP3 saturates below ~30 Gflop/s; sampling reaches "
          "hundreds.\n")

    print("== Modeled run time vs rows (Figure 11) ==")
    points = fig11_time_vs_rows()
    phases = [p for p in PHASES if p != "other"]
    print(format_breakdown_table(points, "m", phases,
                                 extra=("qp3", "speedup")))
    last = points[-1]
    print(f"-> at m = 50 000: step 1 holds "
          f"{last['step1_fraction']:.0%} of the time (paper: 78 %), "
          f"speedup over QP3 = {last['speedup']:.1f}x with q = 1.")
    q0 = fig11_time_vs_rows(q=0)
    best = max(pt["speedup"] for pt in q0)
    print(f"-> with q = 0 the best speedup grows to {best:.1f}x "
          f"(paper: up to 12.8x).")


if __name__ == "__main__":
    main()

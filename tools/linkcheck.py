#!/usr/bin/env python3
"""Markdown intra-repo link checker (stdlib only, no dependencies).

Walks the given markdown files/directories (default: every ``*.md`` at
the repo root plus ``docs/``), extracts inline links and images, and
fails when a *repo-internal* target does not exist:

- relative paths are resolved against the file containing the link and
  must exist on disk (``docs/backends.md#selection`` checks only the
  file part — anchors are not validated against heading slugs);
- absolute ``/...`` paths resolve against the repo root;
- ``http(s)://``, ``mailto:`` and pure-anchor (``#...``) targets are
  skipped — CI must not depend on external availability.

Exit code 0 when every internal link resolves, 1 otherwise (one line
per dead link, ``file:line: target``).

Usage::

    python tools/linkcheck.py            # default scan set
    python tools/linkcheck.py docs README.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links/images: [text](target) / ![alt](target); reference
#: definitions: [label]: target.  Code spans and fenced blocks are
#: stripped first so `cfg.get("path/like")` never false-positives.
_INLINE_RE = re.compile(r"!?\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
_CODESPAN_RE = re.compile(r"`[^`\n]*`")

_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(paths: List[str]) -> Iterable[Path]:
    if not paths:
        roots = [p for p in REPO_ROOT.glob("*.md")]
        docs = REPO_ROOT / "docs"
        if docs.is_dir():
            roots.extend(sorted(docs.rglob("*.md")))
        yield from roots
        return
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = REPO_ROOT / p
        if p.is_dir():
            yield from sorted(p.rglob("*.md"))
        else:
            yield p


def extract_targets(text: str) -> List[Tuple[int, str]]:
    """(line, target) pairs for every link in ``text``."""
    # Blank out code regions, preserving newlines for line numbers.
    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    cleaned = _FENCE_RE.sub(blank, text)
    cleaned = _CODESPAN_RE.sub(blank, cleaned)
    out: List[Tuple[int, str]] = []
    for regex in (_INLINE_RE, _REFDEF_RE):
        for m in regex.finditer(cleaned):
            line = cleaned.count("\n", 0, m.start()) + 1
            out.append((line, m.group(1)))
    return sorted(out)


def check_file(md: Path) -> List[str]:
    errors: List[str] = []
    rel = md.relative_to(REPO_ROOT) if md.is_relative_to(REPO_ROOT) else md
    for line, target in extract_targets(md.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0].split("?", 1)[0]
        if not path_part:
            continue
        if path_part.startswith("/"):
            resolved = REPO_ROOT / path_part.lstrip("/")
        else:
            resolved = md.parent / path_part
        if not resolved.exists():
            errors.append(f"{rel}:{line}: dead link -> {target}")
    return errors


def main(argv: List[str]) -> int:
    files = list(iter_markdown(argv))
    if not files:
        print("linkcheck: no markdown files found", file=sys.stderr)
        return 1
    errors: List[str] = []
    for md in files:
        if not md.exists():
            errors.append(f"{md}: no such file")
            continue
        errors.extend(check_file(md))
    for err in errors:
        print(err)
    print(f"[linkcheck: {len(files)} file(s), {len(errors)} dead link(s)]")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Tests for the simulated device and executors (repro.gpu.device)."""

import numpy as np
import pytest

from repro.errors import (ConfigurationError, ShapeError,
                          SymbolicExecutionError)
from repro.gpu.device import (GPUExecutor, NumpyExecutor, SimulatedGPU,
                              SymArray, is_symbolic, shape_of)
from repro.gpu.specs import KEPLER_K40C

from tests.helpers import assert_orthonormal_columns, assert_orthonormal_rows


class TestSymArray:
    def test_shape_and_dtype(self):
        s = SymArray((3, 4))
        assert s.shape == (3, 4)
        assert s.dtype == np.float64
        assert s.ndim == 2
        assert s.size == 12
        assert s.nbytes == 96

    def test_transpose(self):
        assert SymArray((3, 4)).T.shape == (4, 3)

    def test_negative_dim_raises(self):
        with pytest.raises(ShapeError):
            SymArray((-1, 2))

    def test_slicing(self):
        s = SymArray((10, 20))
        assert s[:, :5].shape == (10, 5)
        assert s[2:7, :].shape == (5, 20)
        assert s[:, [1, 3, 5]].shape == (10, 3)

    def test_step_slicing_unsupported(self):
        with pytest.raises(SymbolicExecutionError):
            SymArray((10, 10))[::2, :]

    def test_helpers(self):
        s = SymArray((2, 3))
        a = np.zeros((2, 3))
        assert is_symbolic(s)
        assert is_symbolic(a, s)
        assert not is_symbolic(a)
        assert shape_of(s) == (2, 3)
        assert shape_of(a) == (2, 3)


class TestNumpyExecutorMath:
    """The executor ops must agree with direct NumPy computation."""

    def setup_method(self):
        self.ex = NumpyExecutor(seed=0)
        self.rng = np.random.default_rng(1)
        self.a = self.rng.standard_normal((120, 40))

    def test_prng_shape_and_determinism(self):
        w1 = NumpyExecutor(seed=5).prng_gaussian(8, 30)
        w2 = NumpyExecutor(seed=5).prng_gaussian(8, 30)
        np.testing.assert_array_equal(w1, w2)
        assert w1.shape == (8, 30)

    def test_sample_gemm(self):
        omega = self.ex.prng_gaussian(10, 120)
        b = self.ex.sample_gemm(omega, self.a)
        np.testing.assert_allclose(b, omega @ self.a)

    def test_sample_gemm_shape_mismatch(self):
        with pytest.raises(ShapeError):
            self.ex.sample_gemm(np.zeros((3, 7)), self.a)

    def test_iter_gemms(self):
        b = self.rng.standard_normal((10, 40))
        c = self.ex.iter_gemm_at(b, self.a)
        np.testing.assert_allclose(c, b @ self.a.T)
        b2 = self.ex.iter_gemm_a(c, self.a)
        np.testing.assert_allclose(b2, c @ self.a)

    @pytest.mark.parametrize("scheme", ["cholqr", "cholqr2", "householder",
                                        "cgs", "mgs", "tsqr",
                                        "mixed_cholqr"])
    def test_orth_rows_all_schemes(self, scheme):
        b = self.rng.standard_normal((12, 200))
        q = self.ex.orth_rows(b, scheme=scheme)
        assert q.shape == b.shape
        assert_orthonormal_rows(q, tol=1e-8)
        # Row span must be preserved: projecting b on q recovers b.
        np.testing.assert_allclose((b @ q.T) @ q, b, atol=1e-8)

    def test_orth_rows_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            self.ex.orth_rows(np.zeros((2, 10)), scheme="qr_deluxe")

    def test_orth_rows_tall_raises(self):
        with pytest.raises(ShapeError):
            self.ex.orth_rows(np.zeros((10, 2)))

    def test_block_orth_rows(self):
        q = np.linalg.qr(self.rng.standard_normal((200, 8)))[0].T
        v = self.rng.standard_normal((4, 200))
        w = self.ex.block_orth_rows(q, v)
        np.testing.assert_allclose(w @ q.T, 0.0, atol=1e-12)

    def test_block_orth_none_passthrough(self):
        v = self.rng.standard_normal((4, 50))
        w = self.ex.block_orth_rows(None, v)
        np.testing.assert_array_equal(w, v)
        assert w is not v

    def test_qrcp_sampled(self):
        b = self.rng.standard_normal((12, 60))
        q, r, perm = self.ex.qrcp_sampled(b, k=8)
        # The 8 factored pivot columns are reproduced exactly; the rest
        # only approximately (rank-8 truncation of a rank-12 matrix).
        np.testing.assert_allclose(q @ r[:, :8], b[:, perm[:8]],
                                   atol=1e-10)
        assert q.shape == (12, 8)
        assert r.shape == (8, 60)
        assert sorted(perm.tolist()) == list(range(60))

    def test_take_columns(self):
        out = self.ex.take_columns(self.a, [3, 1, 2])
        np.testing.assert_array_equal(out, self.a[:, [3, 1, 2]])

    def test_qr_selected(self):
        ap = self.a[:, :10]
        q, r = self.ex.qr_selected(ap)
        assert_orthonormal_columns(q)
        np.testing.assert_allclose(q @ r, ap, atol=1e-10)

    def test_qr_selected_wide_raises(self):
        with pytest.raises(ShapeError):
            self.ex.qr_selected(np.zeros((5, 10)))

    def test_solve_upper(self):
        r11 = np.triu(self.rng.standard_normal((6, 6))) + 6 * np.eye(6)
        r12 = self.rng.standard_normal((6, 9))
        t = self.ex.solve_upper(r11, r12)
        np.testing.assert_allclose(r11 @ t, r12, atol=1e-10)

    def test_assemble_r(self):
        rbar = np.triu(self.rng.standard_normal((5, 5)))
        t = self.rng.standard_normal((5, 7))
        r = self.ex.assemble_r(rbar, t)
        np.testing.assert_allclose(r[:, :5], rbar)
        np.testing.assert_allclose(r[:, 5:], rbar @ t)

    def test_estimate_error_matches_direct(self):
        q = np.linalg.qr(self.rng.standard_normal((200, 10)))[0].T
        bnew = self.rng.standard_normal((5, 200))
        est = self.ex.estimate_error(bnew, q)
        direct = np.linalg.norm(bnew - (bnew @ q.T) @ q, ord=2)
        assert est == pytest.approx(direct)

    def test_vstack(self):
        a = np.ones((2, 4))
        b = np.zeros((3, 4))
        out = self.ex.vstack([a, b])
        assert out.shape == (5, 4)

    def test_vstack_mismatch_raises(self):
        with pytest.raises(ShapeError):
            self.ex.vstack([np.ones((2, 4)), np.ones((2, 5))])

    def test_seconds_zero(self):
        self.ex.sample_gemm(np.ones((2, 3)), np.ones((3, 4)))
        assert self.ex.seconds == 0.0

    def test_symbolic_rejected(self):
        with pytest.raises(SymbolicExecutionError):
            self.ex.prng_gaussian(2, 3, symbolic=True)


class TestGPUExecutorTiming:
    def setup_method(self):
        self.ex = GPUExecutor(seed=0)

    def test_phases_charged(self):
        a = SymArray((50_000, 2_500))
        omega = self.ex.prng_gaussian(64, 50_000, symbolic=True)
        b = self.ex.sample_gemm(omega, a)
        assert self.ex.timeline.seconds("prng") > 0
        assert self.ex.timeline.seconds("sampling") > 0
        assert isinstance(b, SymArray)
        assert b.shape == (64, 2_500)

    def test_symbolic_qrcp_placeholder_perm(self):
        b = SymArray((64, 2_500))
        q, r, perm = self.ex.qrcp_sampled(b, 54)
        assert isinstance(q, SymArray) and q.shape == (64, 54)
        assert r.shape == (54, 2_500)
        np.testing.assert_array_equal(perm, np.arange(2_500))
        assert self.ex.timeline.seconds("qrcp") > 0

    def test_real_math_matches_numpy_executor(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((100, 30))
        b = rng.standard_normal((8, 30))
        gpu = GPUExecutor(seed=0)
        ref = NumpyExecutor(seed=0)
        np.testing.assert_allclose(gpu.iter_gemm_at(b, a),
                                   ref.iter_gemm_at(b, a))
        assert gpu.seconds > 0

    def test_reset_clock(self):
        self.ex.prng_gaussian(8, 100, symbolic=True)
        assert self.ex.seconds > 0
        self.ex.reset_clock()
        assert self.ex.seconds == 0.0

    def test_orth_scheme_timing_differs(self):
        b = SymArray((64, 10_000))
        e1 = GPUExecutor(seed=0)
        e1.orth_rows(b, scheme="cholqr")
        e2 = GPUExecutor(seed=0)
        e2.orth_rows(b, scheme="householder")
        assert e2.seconds > 5 * e1.seconds

    def test_estimate_error_symbolic_raises(self):
        with pytest.raises(SymbolicExecutionError):
            self.ex.estimate_error(SymArray((4, 100)), SymArray((8, 100)))

    def test_fft_sample_symbolic(self):
        b = self.ex.fft_sample(SymArray((1000, 50)), 16)
        assert isinstance(b, SymArray) and b.shape == (16, 50)
        assert self.ex.timeline.seconds("sampling") > 0

    def test_fft_sample_too_many_rows(self):
        with pytest.raises(ShapeError):
            self.ex.fft_sample(SymArray((10, 5)), 20)


class TestSimulatedGPU:
    def test_elapsed_tracks_charges(self):
        dev = SimulatedGPU()
        dev.charge("qr", 0.5)
        assert dev.elapsed == pytest.approx(0.5)

    def test_reset(self):
        dev = SimulatedGPU()
        dev.charge("qr", 0.5)
        dev.memory.allocate(100)
        dev.reset()
        assert dev.elapsed == 0.0
        assert dev.memory.used == 0

    def test_spec_attached(self):
        assert SimulatedGPU().spec is KEPLER_K40C

"""End-to-end integration scenarios across modules.

Each test exercises a realistic pipeline the README advertises, wiring
several subsystems together (matrices -> sampling -> factorization ->
analysis, or symbolic device -> phase accounting -> report).
"""

import numpy as np
import pytest

from repro import (AdaptiveConfig, GPUExecutor, MultiGPUExecutor,
                   SamplingConfig, SymArray, adaptive_sampling,
                   build_hodlr, cur_decomposition, qrcp, random_sampling,
                   randomized_svd)
from repro.bench.reporting import format_breakdown_table
from repro.matrices import exponent_matrix, hapmap_like_matrix
from repro.qr import tsqr


class TestAccuracyPipeline:
    """Figure 6 end-to-end on a fresh matrix instance."""

    def test_qp3_vs_sampling_parity(self):
        a = exponent_matrix(3_000, 400, seed=21)
        det = qrcp(a, k=50)
        rnd = random_sampling(a, SamplingConfig(rank=50,
                                                power_iterations=1,
                                                seed=22))
        assert rnd.residual(a) < 2 * det.residual(a)
        # Both approximations reconstruct A to their common error level.
        assert np.linalg.norm(rnd.approximation() - a, 2) < 1e-3

    def test_three_factorizations_agree_on_quality(self):
        a = exponent_matrix(2_000, 300, seed=23)
        cfg = SamplingConfig(rank=40, power_iterations=1, seed=24)
        e_qr = random_sampling(a, cfg).residual(a)
        e_svd = randomized_svd(a, cfg).residual(a)
        e_cur = cur_decomposition(a, cfg).residual(a)
        assert e_svd < 3 * e_qr
        assert e_cur < 30 * e_qr


class TestAdaptiveToFactorization:
    def test_adaptive_basis_feeds_fixed_rank(self):
        """Fixed-accuracy pipeline: find l adaptively, then extract the
        factors at the discovered rank."""
        a = exponent_matrix(2_000, 300, seed=25)
        res = adaptive_sampling(a, AdaptiveConfig(tolerance=1e-6,
                                                  seed=26))
        l = res.subspace_size
        f = random_sampling(a, SamplingConfig(rank=max(1, l - 10),
                                              oversampling=10, seed=26))
        # The adaptive tolerance transfers to the extracted factors
        # (both relative to ||A|| = 1 for this matrix).
        assert f.residual(a) < 1e-4


class TestDevicePipelines:
    def test_same_seed_same_math_all_executors(self):
        a = exponent_matrix(800, 150, seed=27)
        cfg = SamplingConfig(rank=20, power_iterations=1, seed=28)
        outs = [random_sampling(a, cfg, executor=ex)
                for ex in (None, GPUExecutor(seed=28),
                           MultiGPUExecutor(ng=2, seed=28))]
        for other in outs[1:]:
            np.testing.assert_allclose(np.asarray(other.q),
                                       np.asarray(outs[0].q), atol=1e-9)

    def test_symbolic_sweep_report_renders(self):
        points = []
        for m in (10_000, 20_000):
            ex = GPUExecutor(seed=0)
            f = random_sampling(SymArray((m, 2_500)),
                                SamplingConfig(rank=54, oversampling=10,
                                               power_iterations=1,
                                               seed=0), executor=ex)
            points.append({"m": m, "total": f.seconds,
                           "breakdown": f.breakdown})
        table = format_breakdown_table(points, "m",
                                       ["sampling", "gemm_iter", "qrcp"])
        assert "sampling" in table and str(10_000) in table

    def test_executor_reuse_accumulates(self):
        ex = GPUExecutor(seed=0)
        cfg = SamplingConfig(rank=20, oversampling=4, seed=0)
        random_sampling(SymArray((5_000, 500)), cfg, executor=ex)
        t1 = ex.seconds
        random_sampling(SymArray((5_000, 500)), cfg, executor=ex)
        assert ex.seconds == pytest.approx(2 * t1, rel=0.01)
        ex.reset_clock()
        assert ex.seconds == 0.0


class TestHapmapPipeline:
    def test_population_recovery_via_low_rank(self):
        panel = hapmap_like_matrix(4_000, 120, seed=29, return_panel=True)
        a = panel.genotypes - panel.genotypes.mean(axis=1, keepdims=True)
        f = randomized_svd(a, SamplingConfig(rank=6, power_iterations=2,
                                             seed=30))
        coords = (f.vt.T * f.s)  # individuals embedded
        # Nearest-centroid classification against the true populations
        # must beat chance by a wide margin.
        centers = np.stack([coords[panel.labels == j].mean(axis=0)
                            for j in range(4)])
        d = ((coords[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        pred = d.argmin(axis=1)
        assert np.mean(pred == panel.labels) > 0.9

    def test_cur_on_genotypes_selects_informative_columns(self):
        a = hapmap_like_matrix(2_000, 80, seed=31)
        d = cur_decomposition(a, SamplingConfig(rank=10, seed=32))
        assert d.residual(a) < 1.0
        assert len(np.unique(d.cols)) == 10


class TestHODLRPipeline:
    def test_kernel_system_solved_faster_than_dense_error(self, rng):
        n = 300
        x = np.linspace(0, 1, n)
        a = np.exp(-np.abs(x[:, None] - x[None, :]) * 3) + 2 * np.eye(n)
        h = build_hodlr(a, leaf_size=32, rank=10)
        b = rng.standard_normal(n)
        xh = h.solve(b)
        assert np.linalg.norm(a @ xh - b) / np.linalg.norm(b) < 1e-6
        assert h.stats().compression_ratio > 1.5

    def test_tsqr_inside_sampling_pipeline(self):
        a = exponent_matrix(1_000, 150, seed=33)
        cfg = SamplingConfig(rank=20, power_iterations=1, orth="tsqr",
                             seed=34)
        f = random_sampling(a, cfg)
        # sigma_21/sigma_0 = 10^-2.1 for this spectrum.
        assert f.residual(a) < 5e-2
        q, r = tsqr(np.asarray(f.q), leaf_count=4)
        # Q is already orthonormal: TSQR returns R ~ identity.
        np.testing.assert_allclose(np.abs(np.diag(r)), 1.0, atol=1e-10)

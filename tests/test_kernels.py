"""Tests for the kernel timing models (repro.gpu.kernels).

Besides basic sanity (positive, monotone in work), these tests pin the
model to the paper's own measurements — if a calibration change drifts
away from the published anchors, they fail.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.kernels import KernelModel, gemm_flops, qp3_flops, qr_flops


@pytest.fixture(scope="module")
def km() -> KernelModel:
    return KernelModel()


class TestFlopCounts:
    def test_gemm(self):
        assert gemm_flops(10, 20, 30) == 2 * 10 * 20 * 30

    def test_qr(self):
        assert qr_flops(100, 10) == 2 * 100 * 100

    def test_qp3_full(self):
        assert qp3_flops(100, 50, 0) == 0.0
        assert qp3_flops(100, 50, 10) == pytest.approx(
            4 * 100 * 50 * 10 - 2 * 150 * 100 + 4 / 3 * 1000)


class TestGemmModel:
    def test_positive(self, km):
        assert km.gemm_seconds(64, 2500, 50_000) > 0

    def test_monotone_in_inner_dim(self, km):
        times = [km.gemm_seconds(64, 2500, m)
                 for m in (10_000, 20_000, 40_000, 80_000)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_rate_saturates_with_panel_width(self, km):
        rates = [km.gemm_gflops(l, 2500, 50_000)
                 for l in (8, 16, 32, 64, 128, 256, 512)]
        assert all(a < b for a, b in zip(rates, rates[1:]))
        assert rates[-1] < km.spec.dgemm_peak_gflops

    def test_figure18_anchors(self, km):
        """Fig 18: GEMM Gflop/s at m=50k, n=2.5k for the adaptive panel
        widths {8: 123.3, 16: 247.0, 32: 489.5, 48: 597.8, 64: 778.5}.
        The fitted roofline must stay within ~15 % of each anchor."""
        paper = {8: 123.3, 16: 247.0, 32: 489.5, 48: 597.8, 64: 778.5}
        for l, ref in paper.items():
            flops = 2.0 * l * 50_000 * 2_500
            rate = flops / (km.gemm_seconds(l, 2_500, 50_000) * 1e9)
            assert rate == pytest.approx(ref, rel=0.15), f"l={l}"

    def test_figure15_height_anchors(self, km):
        """Fig 15 discussion: the l=64 GEMM runs at ~440/630/760
        Gflop/s for panel heights 150k/75k/50k."""
        paper = {150_000: 440.0, 75_000: 630.0, 50_000: 760.0}
        for m, ref in paper.items():
            flops = 2.0 * 64 * m * 2_500
            rate = flops / (km.gemm_seconds(64, 2_500, m) * 1e9)
            assert rate == pytest.approx(ref, rel=0.15), f"m={m}"

    def test_large_square_gemm_near_peak(self, km):
        rate = km.gemm_gflops(5000, 5000, 5000)
        assert rate > 0.85 * km.spec.dgemm_peak_gflops


class TestOrthKernels:
    def test_cholqr_vs_hhqr_tall_skinny_ratio(self, km):
        """Fig 7: CholQR ~30.5x HHQR on tall-skinny n=64 panels
        (up to 33.2x)."""
        ratios = [km.hhqr_seconds(m, 64) / km.cholqr_seconds(m, 64)
                  for m in (2_500, 10_000, 25_000, 50_000)]
        assert 20 < np.mean(ratios) < 40
        assert max(ratios) < 45

    def test_cholqr_vs_hhqr_short_wide_ratio(self, km):
        """Fig 9: CholQR ~72.9x HHQR short-wide (up to 106.4x)."""
        ratios = [km.hhqr_seconds(64, n) / km.cholqr_seconds(64, n)
                  for n in (2_500, 10_000, 25_000, 50_000)]
        assert 50 < np.mean(ratios) < 95
        assert max(ratios) < 130

    def test_hhqr_vs_qp3_ratio(self, km):
        """Fig 7: HHQR ~5x faster than QP3 at the same shape."""
        m = 50_000
        ratio = km.qp3_seconds(m, 64, 64) / km.hhqr_seconds(m, 64)
        assert 3 < ratio < 8

    def test_kernel_ordering_tall_skinny(self, km):
        """Fig 7 ordering at n=64: CholQR > CGS > HHQR > MGS > QP3."""
        m = 25_000
        t_cholqr = km.cholqr_seconds(m, 64)
        t_cgs = km.cgs_seconds(m, 64)
        t_hhqr = km.hhqr_seconds(m, 64)
        t_mgs = km.mgs_seconds(m, 64)
        t_qp3 = km.qp3_seconds(m, 64, 64)
        assert t_cholqr < t_cgs < t_hhqr < t_mgs < t_qp3

    def test_reorth_doubles_cholqr(self, km):
        t1 = km.cholqr_seconds(10_000, 64, reorth=False)
        t2 = km.cholqr_seconds(10_000, 64, reorth=True)
        assert t2 == pytest.approx(2 * t1)

    def test_block_orth_free_with_no_basis(self, km):
        assert km.block_orth_seconds(0, 8, 1000) == 0.0

    def test_block_orth_reorth_doubles(self, km):
        t1 = km.block_orth_seconds(64, 8, 2500, reorth=False)
        t2 = km.block_orth_seconds(64, 8, 2500, reorth=True)
        assert t2 == pytest.approx(2 * t1)


class TestQP3Model:
    def test_figure11_slope_and_intercept(self, km):
        """Fig 11 fit: QP3 time ~ 9.34e-6 * m + 0.0098 s at n=2.5k,
        k=54.  Check the model stays within 20 % at both ends."""
        for m in (10_000, 50_000):
            ref = 9.34e-6 * m + 0.0098
            assert km.qp3_seconds(m, 2_500, 54) == pytest.approx(ref,
                                                                 rel=0.2)

    def test_sub_29_gflops(self, km):
        """Fig 10 discussion: QP3 performance limited under 29 Gflop/s
        (on its 2 m n k useful flops)."""
        for m in (10_000, 30_000, 50_000):
            rate = 2.0 * m * 2_500 * 54 / (km.qp3_seconds(m, 2_500, 54)
                                           * 1e9)
            assert rate < 29.5

    def test_zero_rank_free(self, km):
        assert km.qp3_seconds(100, 100, 0) == 0.0

    def test_pivot_sync_term(self, km):
        # The intercept is k * pivot_sync_s: doubling k at tiny m
        # roughly doubles the latency part.
        t1 = km.qp3_seconds(200, 100, 20)
        t2 = km.qp3_seconds(200, 100, 40)
        assert t2 > t1


class TestSamplingKernels:
    def test_curand_rate(self, km):
        # 3.2e6 samples (l=64, m=50k) should take well under a
        # millisecond — the 0.9 % share of the Fig 11 breakdown.
        assert km.curand_seconds(64 * 50_000) < 1.5e-3

    def test_fft_row_crossover_near_192(self, km):
        """Fig 8(a): full-FFT row sampling beats the pruned Gaussian
        GEMM for l > ~192 (at m=50k, n=2.5k)."""
        f = km.fft_sampling_seconds(50_000, 2_500, axis="row")
        def gemm(l):
            return km.gemm_seconds(l, 2_500, 50_000)
        assert gemm(128) < f          # Gaussian wins well below
        assert gemm(320) > f          # FFT wins well above
        # Crossover inside the plotted range:
        crossings = [l for l in range(32, 513, 16) if gemm(l) > f]
        assert crossings and 128 <= min(crossings) <= 320

    def test_fft_col_crossover_near_128(self, km):
        """Fig 8(b): the column-sampling crossover is earlier (~128)."""
        f = km.fft_sampling_seconds(50_000, 2_500, axis="col")
        def gemm(l):
            return km.gemm_seconds(l, 50_000, 2_500)
        crossings = [l for l in range(32, 513, 16) if gemm(l) > f]
        assert crossings and 64 <= min(crossings) <= 224

    def test_fft_bad_axis_raises(self, km):
        with pytest.raises(ConfigurationError):
            km.fft_sampling_seconds(100, 100, axis="diag")

    def test_gemv_much_slower_than_gemm(self, km):
        """Fig 8: GEMV obtains much lower performance than GEMM."""
        assert km.gemv_gflops(50_000, 2_500) < 80
        assert km.gemm_gflops(256, 2_500, 50_000) > 5 * km.gemv_gflops(
            50_000, 2_500)


class TestTransfers:
    def test_transfer_latency_floor(self, km):
        assert km.transfer_seconds(0) == pytest.approx(
            km.spec.pcie_latency_s)

    def test_transfer_bandwidth(self, km):
        t = km.transfer_seconds(6_000_000_000)
        assert t == pytest.approx(1.0, rel=0.01)

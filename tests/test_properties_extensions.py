"""Property-based tests for the extension modules.

Hypothesis contracts for CAQP3, the randomized SVD, CUR, HODLR, the
probabilistic estimator, subspace diagnostics, and the cluster network
model — over randomized shapes, ranks and seeds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SamplingConfig
from repro.core.cur import cur_decomposition
from repro.core.estimator import bound_constant, failure_probability
from repro.core.subspace import principal_angles, subspace_alignment
from repro.core.svd import randomized_svd
from repro.gpu.cluster import NetworkSpec
from repro.hss import build_hodlr
from repro.qr.caqp3 import caqp3, tournament_pivots

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=20, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(20, 60), st.integers(2, 12))
def test_tournament_pivots_distinct_and_in_range(seed, n, b):
    a = np.random.default_rng(seed).standard_normal((50, n))
    w = tournament_pivots(a, b)
    assert len(set(w.tolist())) == min(b, n)
    assert 0 <= w.min() and w.max() < n


@settings(max_examples=15, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(2, 20))
def test_caqp3_contract(seed, k):
    a = np.random.default_rng(seed).standard_normal((60, 40))
    k = min(k, 40)
    res = caqp3(a, k=k)
    assert sorted(res.perm.tolist()) == list(range(40))
    assert np.allclose(res.q.T @ res.q, np.eye(k), atol=1e-9)
    assert np.allclose(res.q @ res.r[:, :k], a[:, res.perm[:k]],
                       atol=1e-8)


@settings(max_examples=15, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(2, 12), st.integers(0, 2))
def test_randomized_svd_contract(seed, rank, q):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((90, rank)) @ rng.standard_normal((rank, 50))
    f = randomized_svd(a, SamplingConfig(rank=rank, oversampling=6,
                                         power_iterations=q, seed=seed))
    assert np.all(np.diff(f.s) <= 1e-12)           # descending
    assert np.all(f.s >= -1e-12)                   # non-negative
    assert f.residual(a) < 1e-7                    # exact rank recovered
    assert np.allclose(f.u.T @ f.u, np.eye(rank), atol=1e-8)


@settings(max_examples=10, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(2, 10))
def test_cur_factors_are_slices(seed, rank):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((70, rank)) @ rng.standard_normal((rank, 40))
    d = cur_decomposition(a, SamplingConfig(rank=rank, oversampling=5,
                                            seed=seed))
    assert np.array_equal(d.c, a[:, d.cols])
    assert np.array_equal(d.r, a[d.rows, :])
    assert d.residual(a) < 1e-7


@settings(max_examples=8, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(60, 200))
def test_hodlr_solve_contract(seed, n):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, n)
    a = 1.0 / (1.0 + 5 * np.abs(x[:, None] - x[None, :])) \
        + 2.0 * np.eye(n)
    h = build_hodlr(a, leaf_size=32, rank=10)
    b = rng.standard_normal(n)
    xs = h.solve(b)
    assert np.linalg.norm(a @ xs - b) / np.linalg.norm(b) < 1e-7
    assert np.allclose(h.matvec(xs), a @ xs, atol=1e-7)


@settings(max_examples=40, **COMMON)
@given(st.floats(1e-12, 0.99), st.integers(1, 256),
       st.integers(2, 10 ** 6), st.integers(2, 10 ** 6))
def test_estimator_roundtrip(gamma, l_inc, m, n):
    c = bound_constant(gamma, l_inc, m, n)
    assert c > 1.0
    p = failure_probability(c, l_inc, m, n)
    assert p == pytest.approx(min(1.0, gamma), rel=1e-6)


@settings(max_examples=25, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(1, 8), st.integers(1, 8))
def test_principal_angles_bounds_and_symmetry(seed, ku, kv):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((30, ku))
    v = rng.standard_normal((30, kv))
    a_uv = principal_angles(u, v)
    a_vu = principal_angles(v, u)
    assert np.all(a_uv >= -1e-12) and np.all(a_uv <= np.pi / 2 + 1e-12)
    np.testing.assert_allclose(a_uv, a_vu, atol=1e-8)
    assert 0.0 <= subspace_alignment(u, v) <= 1.0


@settings(max_examples=8, **COMMON)
@given(st.integers(0, 2 ** 31), st.floats(3.0, 15.0),
       st.sampled_from([1e-4, 1e-6, 1e-8]))
def test_adaptive_meets_tolerance_on_random_spectra(seed, decade, tol):
    """The adaptive scheme's contract across random exponential
    spectra: it converges, the basis is orthonormal, and the actual
    error respects the certified bound."""
    from repro.config import AdaptiveConfig
    from repro.core.adaptive import adaptive_sampling
    from repro.matrices.synthetic import exponent_matrix

    a = exponent_matrix(400, 150, seed=seed, decade=decade)
    res = adaptive_sampling(a, AdaptiveConfig(tolerance=tol, l_inc=16,
                                              seed=seed))
    assert res.converged
    basis = np.asarray(res.basis)
    assert np.allclose(basis @ basis.T, np.eye(basis.shape[0]),
                       atol=1e-8)
    assert res.actual_error(a) <= res.certified_bound(gamma=1e-6)


@settings(max_examples=40, **COMMON)
@given(st.integers(0, 10 ** 9), st.integers(1, 1024),
       st.floats(1e-7, 1e-2), st.floats(0.5, 50.0))
def test_network_allreduce_monotone(nbytes, nodes, latency, bw):
    net = NetworkSpec(bandwidth_gbs=bw, latency_s=latency)
    t = net.allreduce_seconds(nbytes, nodes)
    assert t >= 0.0
    if nodes > 1:
        assert t >= net.allreduce_seconds(nbytes, max(1, nodes // 2))
        assert t >= 2 * latency  # at least one round trip

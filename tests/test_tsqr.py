"""Tests for the communication-avoiding TSQR (repro.qr.tsqr)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices.synthetic import spectrum_matrix
from repro.qr.tsqr import tsqr

from tests.helpers import assert_orthonormal_columns


class TestTSQR:
    @pytest.mark.parametrize("leaves", [1, 2, 4, 8, 16])
    def test_reconstruction(self, rng, leaves):
        a = rng.standard_normal((640, 20))
        q, r = tsqr(a, leaf_count=leaves)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    @pytest.mark.parametrize("leaves", [2, 4, 8])
    def test_orthonormal(self, rng, leaves):
        a = rng.standard_normal((640, 20))
        q, _ = tsqr(a, leaf_count=leaves)
        assert_orthonormal_columns(q)

    def test_r_upper_triangular(self, rng):
        a = rng.standard_normal((300, 15))
        _, r = tsqr(a, leaf_count=4)
        np.testing.assert_allclose(r, np.triu(r))
        assert r.shape == (15, 15)

    def test_odd_leaf_count(self, rng):
        a = rng.standard_normal((500, 16))
        q, r = tsqr(a, leaf_count=5)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)
        assert_orthonormal_columns(q)

    def test_default_leaf_count(self, rng):
        a = rng.standard_normal((1000, 10))
        q, r = tsqr(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)
        assert_orthonormal_columns(q)

    def test_minimum_height(self, rng):
        a = rng.standard_normal((21, 20))
        q, r = tsqr(a, leaf_count=8)  # clamps to what fits
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    def test_wide_raises(self, rng):
        with pytest.raises(ShapeError):
            tsqr(rng.standard_normal((10, 20)))

    def test_matches_householder_abs_r(self, rng):
        a = rng.standard_normal((400, 12))
        _, r = tsqr(a, leaf_count=4)
        _, r_np = np.linalg.qr(a)
        np.testing.assert_allclose(np.abs(np.diag(r)),
                                   np.abs(np.diag(r_np)), atol=1e-10)

    def test_stable_on_illconditioned(self):
        # The case CholQR fails on (kappa ~ 1e12) — TSQR is a
        # reorganized Householder QR and must stay orthonormal.
        a = spectrum_matrix(800, 30, 10.0 ** (-np.linspace(0, 12, 30)),
                            seed=4)
        q, r = tsqr(a, leaf_count=8)
        assert_orthonormal_columns(q, tol=1e-12)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    def test_single_column(self, rng):
        a = rng.standard_normal((128, 1))
        q, r = tsqr(a, leaf_count=4)
        np.testing.assert_allclose(q * r[0, 0], a, atol=1e-12)

"""Tests for the power iteration (repro.core.power)."""

import numpy as np
import pytest

from repro.core.power import power_iterate
from repro.core.sampling import sample
from repro.errors import ShapeError
from repro.gpu.device import GPUExecutor, NumpyExecutor, SymArray
from repro.matrices.synthetic import exponent_matrix

from tests.helpers import assert_orthonormal_rows


def _alignment(b: np.ndarray, a: np.ndarray, k: int) -> float:
    """Fraction of the top-k right-singular subspace of A captured by
    the row space of B (1.0 = perfect)."""
    _, _, vt = np.linalg.svd(a, full_matrices=False)
    vk = vt[:k, :]
    qb = np.linalg.qr(b.T)[0]  # orthonormal basis of B's row space
    s = np.linalg.svd(vk @ qb, compute_uv=False)
    return float(np.sum(s ** 2) / k)


class TestPowerIterate:
    def test_q0_passthrough(self, rng):
        a = rng.standard_normal((100, 40))
        b = rng.standard_normal((8, 40))
        out, c = power_iterate(NumpyExecutor(seed=0), a, b, q=0)
        np.testing.assert_array_equal(out, b)
        assert c is None

    def test_output_shapes(self, decaying_matrix):
        ex = NumpyExecutor(seed=0)
        b = sample(ex, decaying_matrix, 12)
        out, c = power_iterate(ex, decaying_matrix, b, q=2)
        assert out.shape == (12, 120)
        assert c.shape == (12, 400)

    def test_c_rows_orthonormal(self, decaying_matrix):
        ex = NumpyExecutor(seed=0)
        b = sample(ex, decaying_matrix, 12)
        _, c = power_iterate(ex, decaying_matrix, b, q=1)
        assert_orthonormal_rows(c, tol=1e-8)

    def test_improves_subspace_alignment(self):
        a = exponent_matrix(300, 100, seed=1)
        ex = NumpyExecutor(seed=2)
        b0 = sample(ex, a, 12)
        scores = [_alignment(b0, a, 10)]
        for q in (1, 3):
            ex_q = NumpyExecutor(seed=2)
            bq = sample(ex_q, a, 12)
            bq, _ = power_iterate(ex_q, a, bq, q=q)
            scores.append(_alignment(bq, a, 10))
        assert scores[0] < scores[1] <= scores[2] + 1e-9
        assert scores[2] > 0.999

    def test_prev_basis_orthogonality_maintained(self, decaying_matrix):
        ex = NumpyExecutor(seed=3)
        b_prev = ex.orth_rows(sample(ex, decaying_matrix, 10))
        c_prev = ex.orth_rows(ex.iter_gemm_at(b_prev, decaying_matrix))
        b_new = sample(ex, decaying_matrix, 6)
        out, c = power_iterate(ex, decaying_matrix, b_new, q=1,
                               b_prev=b_prev, c_prev=c_prev)
        # The new C block was BOrth'ed against c_prev inside the loop.
        np.testing.assert_allclose(c @ c_prev.T, 0.0, atol=1e-8)

    def test_negative_q_raises(self, rng):
        a = rng.standard_normal((50, 20))
        with pytest.raises(ShapeError):
            power_iterate(NumpyExecutor(), a, a[:5, :], q=-1)

    def test_column_mismatch_raises(self, rng):
        a = rng.standard_normal((50, 20))
        with pytest.raises(ShapeError):
            power_iterate(NumpyExecutor(), a, rng.standard_normal((5, 19)),
                          q=1)

    def test_prev_shape_mismatch_raises(self, rng):
        a = rng.standard_normal((50, 20))
        b = rng.standard_normal((5, 20))
        with pytest.raises(ShapeError):
            power_iterate(NumpyExecutor(), a, b, q=1,
                          b_prev=rng.standard_normal((3, 19)))
        with pytest.raises(ShapeError):
            power_iterate(NumpyExecutor(), a, b, q=1,
                          c_prev=rng.standard_normal((3, 49)))

    def test_symbolic_run_charges_phases(self):
        ex = GPUExecutor(seed=0)
        a = SymArray((50_000, 2_500))
        b = SymArray((64, 2_500))
        out, c = power_iterate(ex, a, b, q=2)
        assert isinstance(out, SymArray) and out.shape == (64, 2_500)
        assert isinstance(c, SymArray) and c.shape == (64, 50_000)
        tl = ex.timeline
        assert tl.seconds("gemm_iter") > 0
        assert tl.seconds("orth_iter") > 0
        # 2 GEMMs per iteration, 2 iterations.
        assert tl.calls("gemm_iter") == 4

    def test_time_linear_in_q(self):
        def run(q):
            ex = GPUExecutor(seed=0)
            power_iterate(ex, SymArray((50_000, 2_500)),
                          SymArray((64, 2_500)), q=q)
            return ex.seconds
        t1, t2, t4 = run(1), run(2), run(4)
        assert t2 == pytest.approx(2 * t1, rel=0.01)
        assert t4 == pytest.approx(4 * t1, rel=0.01)

"""Tests for configuration dataclasses (repro.config)."""

import pytest

from repro.config import (ORTH_SCHEMES, SAMPLER_KINDS, AdaptiveConfig,
                          QRCPConfig, SamplingConfig)
from repro.errors import ConfigurationError


class TestSamplingConfig:
    def test_defaults(self):
        cfg = SamplingConfig(rank=50)
        assert cfg.oversampling == 10
        assert cfg.power_iterations == 0
        assert cfg.sampler == "gaussian"
        assert cfg.orth == "cholqr2"
        assert cfg.sample_size == 60

    def test_sample_size(self):
        assert SamplingConfig(rank=54, oversampling=10).sample_size == 64

    def test_with_rank(self):
        cfg = SamplingConfig(rank=10, oversampling=4, seed=3)
        cfg2 = cfg.with_rank(20)
        assert cfg2.rank == 20
        assert cfg2.oversampling == 4
        assert cfg2.seed == 3
        assert cfg.rank == 10  # frozen original untouched

    @pytest.mark.parametrize("kwargs", [
        {"rank": 0}, {"rank": -3},
        {"rank": 5, "oversampling": -1},
        {"rank": 5, "power_iterations": -1},
        {"rank": 5, "sampler": "bogus"},
        {"rank": 5, "orth": "bogus"},
    ])
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplingConfig(**kwargs)

    def test_validate_for_shapes(self):
        cfg = SamplingConfig(rank=50, oversampling=10)
        cfg.validate_for(1000, 100)
        with pytest.raises(ConfigurationError):
            cfg.validate_for(1000, 40)   # rank > n
        with pytest.raises(ConfigurationError):
            cfg.validate_for(55, 100)    # l > m

    def test_all_orth_schemes_accepted(self):
        for scheme in ORTH_SCHEMES:
            SamplingConfig(rank=5, orth=scheme)

    def test_all_samplers_accepted(self):
        for kind in SAMPLER_KINDS:
            SamplingConfig(rank=5, sampler=kind)

    def test_frozen(self):
        cfg = SamplingConfig(rank=5)
        with pytest.raises(Exception):
            cfg.rank = 6


class TestAdaptiveConfig:
    def test_defaults(self):
        cfg = AdaptiveConfig(tolerance=1e-10)
        assert cfg.l_init == 8
        assert cfg.l_inc == 8
        assert cfg.step_rule == "static"

    @pytest.mark.parametrize("kwargs", [
        {"tolerance": 0.0},
        {"tolerance": -1e-3},
        {"tolerance": 1e-8, "l_init": 0},
        {"tolerance": 1e-8, "l_inc": 0},
        {"tolerance": 1e-8, "step_rule": "magic"},
        {"tolerance": 1e-8, "power_iterations": -1},
        {"tolerance": 1e-8, "orth": "bogus"},
        {"tolerance": 1e-8, "l_init": 16, "max_subspace": 8},
    ])
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(**kwargs)


class TestQRCPConfig:
    def test_defaults(self):
        cfg = QRCPConfig()
        assert cfg.block_size == 32
        assert cfg.truncate is None

    @pytest.mark.parametrize("kwargs", [
        {"block_size": 0},
        {"truncate": 0},
        {"norm_recompute_tol": 0.0},
        {"norm_recompute_tol": 1.5},
    ])
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ConfigurationError):
            QRCPConfig(**kwargs)

"""Tests for the CUR decomposition (repro.core.cur)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.cur import cur_decomposition
from repro.errors import SymbolicExecutionError
from repro.gpu.device import GPUExecutor, SymArray
from repro.matrices.hapmap_like import hapmap_like_matrix


class TestCUR:
    def test_exact_on_lowrank(self, lowrank_matrix):
        d = cur_decomposition(lowrank_matrix,
                              SamplingConfig(rank=12, seed=0))
        assert d.residual(lowrank_matrix) < 1e-9

    def test_factors_are_actual_slices(self, lowrank_matrix):
        d = cur_decomposition(lowrank_matrix,
                              SamplingConfig(rank=12, seed=1))
        np.testing.assert_array_equal(d.c, lowrank_matrix[:, d.cols])
        np.testing.assert_array_equal(d.r, lowrank_matrix[d.rows, :])

    def test_index_sets_distinct_and_valid(self, lowrank_matrix):
        m, n = lowrank_matrix.shape
        d = cur_decomposition(lowrank_matrix,
                              SamplingConfig(rank=10, seed=2))
        assert len(set(d.cols.tolist())) == 10
        assert len(set(d.rows.tolist())) == 10
        assert d.cols.max() < n and d.rows.max() < m

    def test_shapes(self, lowrank_matrix):
        d = cur_decomposition(lowrank_matrix,
                              SamplingConfig(rank=8, seed=3))
        m, n = lowrank_matrix.shape
        assert d.c.shape == (m, 8)
        assert d.u.shape == (8, 8)
        assert d.r.shape == (8, n)
        assert d.k == 8

    def test_near_optimal_on_decaying(self, decaying_matrix):
        d = cur_decomposition(decaying_matrix,
                              SamplingConfig(rank=30, power_iterations=1,
                                             seed=4))
        s = np.linalg.svd(decaying_matrix, compute_uv=False)
        # CUR carries an extra conditioning factor; stay within 100x of
        # the optimum on this benign spectrum.
        assert d.residual(decaying_matrix, relative=False) < 100 * s[30]

    def test_genotype_interpretability(self):
        """The HapMap use case: selected columns are actual
        individuals, selected rows actual SNPs."""
        a = hapmap_like_matrix(800, 60, seed=5)
        d = cur_decomposition(a, SamplingConfig(rank=8, seed=6))
        # Columns of C are genotype columns: integer allele counts.
        assert set(np.unique(d.c)).issubset({0.0, 1.0, 2.0})
        assert d.residual(a) < 1.0

    def test_symbolic_rejected(self):
        with pytest.raises(SymbolicExecutionError):
            cur_decomposition(SymArray((50, 40)),
                              SamplingConfig(rank=5, seed=0),
                              executor=GPUExecutor(seed=0))

    def test_deterministic(self, lowrank_matrix):
        cfg = SamplingConfig(rank=6, seed=9)
        d1 = cur_decomposition(lowrank_matrix, cfg)
        d2 = cur_decomposition(lowrank_matrix, cfg)
        np.testing.assert_array_equal(d1.cols, d2.cols)
        np.testing.assert_array_equal(d1.rows, d2.rows)

"""Tests for the Step 1 sampling operators (repro.core.sampling)."""

import numpy as np
import pytest

from repro.core.sampling import full_gaussian_sample, sample
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.device import GPUExecutor, NumpyExecutor, SymArray


class TestGaussianSampling:
    def test_shape(self, rng):
        a = rng.standard_normal((200, 50))
        b = sample(NumpyExecutor(seed=0), a, 16)
        assert b.shape == (16, 50)

    def test_preserves_range_of_lowrank(self, lowrank_matrix):
        # B = Omega A has the same row space as A (w.h.p. for l >= rank).
        b = sample(NumpyExecutor(seed=1), lowrank_matrix, 16)
        # Every row of B must lie in the row space of A.
        _, _, vt = np.linalg.svd(lowrank_matrix, full_matrices=False)
        vr = vt[:12, :]  # row-space basis
        proj = b @ vr.T @ vr
        np.testing.assert_allclose(proj, b, atol=1e-8)

    def test_deterministic_given_seed(self, rng):
        a = rng.standard_normal((100, 30))
        b1 = sample(NumpyExecutor(seed=7), a, 8)
        b2 = sample(NumpyExecutor(seed=7), a, 8)
        np.testing.assert_array_equal(b1, b2)

    def test_symbolic(self):
        ex = GPUExecutor(seed=0)
        b = sample(ex, SymArray((10_000, 500)), 32)
        assert isinstance(b, SymArray)
        assert b.shape == (32, 500)
        assert ex.seconds > 0

    def test_l_too_large_raises(self, rng):
        with pytest.raises(ShapeError):
            sample(NumpyExecutor(), rng.standard_normal((10, 5)), 11)

    def test_l_zero_raises(self, rng):
        with pytest.raises(ConfigurationError):
            sample(NumpyExecutor(), rng.standard_normal((10, 5)), 0)

    def test_unknown_kind_raises(self, rng):
        with pytest.raises(ConfigurationError):
            sample(NumpyExecutor(), rng.standard_normal((10, 5)), 2,
                   kind="sparse")


class TestFFTSampling:
    def test_shape(self, rng):
        a = rng.standard_normal((300, 40))
        b = sample(NumpyExecutor(seed=0), a, 24, kind="fft")
        assert b.shape == (24, 40)

    def test_preserves_range_of_lowrank(self, lowrank_matrix):
        b = sample(NumpyExecutor(seed=3), lowrank_matrix, 24, kind="fft")
        _, _, vt = np.linalg.svd(lowrank_matrix, full_matrices=False)
        vr = vt[:12, :]
        np.testing.assert_allclose(b @ vr.T @ vr, b, atol=1e-8)

    def test_energy_preserved_on_average(self, rng):
        # The SRFT is an approximate isometry on the row space:
        # E ||Omega A||_F^2 = l/m * ||F D A||^2-scale.  Check the Frobenius
        # mass is within a loose factor.
        a = rng.standard_normal((256, 30))
        b = sample(NumpyExecutor(seed=5), a, 64, kind="fft")
        ratio = np.linalg.norm(b, "fro") ** 2 / np.linalg.norm(a, "fro") ** 2
        assert 0.1 < ratio < 10.0


class TestFullGaussianReference:
    def test_shape(self, rng):
        a = rng.standard_normal((60, 20))
        b = full_gaussian_sample(a, 8, rng=np.random.default_rng(0))
        assert b.shape == (8, 20)

    def test_rows_are_gaussian_mixtures_of_a(self, lowrank_matrix):
        b = full_gaussian_sample(lowrank_matrix, 10,
                                 rng=np.random.default_rng(1))
        _, _, vt = np.linalg.svd(lowrank_matrix, full_matrices=False)
        vr = vt[:12, :]
        np.testing.assert_allclose(b @ vr.T @ vr, b, atol=1e-8)

    def test_l_too_large_raises(self, rng):
        with pytest.raises(ShapeError):
            full_gaussian_sample(rng.standard_normal((5, 3)), 6)

    def test_statistically_like_pruned(self, rng):
        """Full and pruned Gaussian sampling draw from the same
        distribution: compare the singular-value profile of B over
        repetitions (coarse check)."""
        a = rng.standard_normal((80, 20))
        s_full = []
        s_pruned = []
        for seed in range(10):
            g = np.random.default_rng(seed)
            s_full.append(np.linalg.svd(full_gaussian_sample(a, 6, rng=g),
                                        compute_uv=False)[0])
            ex = NumpyExecutor(seed=seed)
            s_pruned.append(np.linalg.svd(sample(ex, a, 6),
                                          compute_uv=False)[0])
        assert np.mean(s_full) == pytest.approx(np.mean(s_pruned), rel=0.5)

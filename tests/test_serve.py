"""Tests of the serving layer: requests, admission, batching, service.

The load-bearing assertion is *bit parity*: results served from a
coalesced batch must equal (``np.array_equal``, not allclose) the
factors a solo run of the same request produces.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core.random_sampling import random_sampling
from repro.errors import (ConfigurationError, DeadlineExceededError,
                          InvalidRequestError, QueueFullError,
                          REJECTION_REASONS, ServiceClosedError)
from repro.obs.chrome import spans_to_chrome, validate_chrome_trace
from repro.serve import (AdmissionController, BatchPlan, DecompRequest,
                         LowRankService, MatrixRef, ResultArtifact,
                         ServeConfig, ServiceCounters, percentile,
                         plan_batches, run_jobs)
from repro.obs.spans import SpanRecorder

REF = MatrixRef(name="power", m=400, n=96, seed=3)


def req(rank=12, **kw):
    kw.setdefault("oversampling", 6)
    return DecompRequest(matrix=REF, rank=rank, **kw)


# ----------------------------------------------------------------------
# requests and validation
# ----------------------------------------------------------------------
class TestRequestValidation:
    def test_unknown_matrix_rejected(self):
        with pytest.raises(InvalidRequestError):
            MatrixRef(name="nope", m=10, n=10)

    def test_fixed_rank_needs_rank(self):
        with pytest.raises(InvalidRequestError):
            DecompRequest(matrix=REF)

    def test_adaptive_needs_tolerance(self):
        with pytest.raises(InvalidRequestError):
            DecompRequest(matrix=REF, algorithm="adaptive")

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidRequestError):
            DecompRequest(matrix=REF, algorithm="qp3", rank=5)

    def test_oversized_sample_rejected(self):
        with pytest.raises(InvalidRequestError):
            DecompRequest(matrix=REF, rank=398, oversampling=10)

    def test_invalid_is_also_valueerror(self):
        # The taxonomy plays nicely with generic ValueError handlers.
        with pytest.raises(ValueError):
            DecompRequest(matrix=REF, rank=0)

    def test_batch_key_compatibility(self):
        a, b = req(rank=8, seed=1), req(rank=14, seed=2)
        assert a.batch_key == b.batch_key  # ranks/seeds may differ
        assert req(sampler="fft").batch_key is None
        other = DecompRequest(matrix=MatrixRef(name="power", m=401, n=96),
                              rank=8)
        assert other.batch_key != a.batch_key
        adaptive = DecompRequest(matrix=REF, algorithm="adaptive",
                                 tolerance=1e-3)
        assert adaptive.batch_key is None

    def test_request_ids_unique(self):
        ids = {req().request_id for _ in range(50)}
        assert len(ids) == 50

    def test_artifact_to_dict_excludes_payload(self):
        art = ResultArtifact(request_id="r", algorithm="fixed_rank",
                             payload=object())
        doc = art.to_dict()
        assert "payload" not in doc
        assert doc["version"] == 1
        assert doc["timings"]["modeled_seconds"] == 0.0


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentile_nearest_rank(self):
        xs = [float(i) for i in range(1, 101)]
        assert percentile(xs, 50.0) == 50.0
        assert percentile(xs, 99.0) == 99.0
        assert percentile(xs, 100.0) == 100.0
        assert percentile(xs, 0.0) == 1.0
        assert percentile([], 99.0) == 0.0
        with pytest.raises(ConfigurationError):
            percentile(xs, 101.0)

    def test_counters_taxonomy_complete(self):
        c = ServiceCounters()
        for reason in REJECTION_REASONS:
            c.note_rejected(reason)
        assert sum(c.rejections.values()) == len(REJECTION_REASONS)
        with pytest.raises(ConfigurationError):
            c.note_rejected("martian")

    def test_counters_reset(self):
        c = ServiceCounters()
        c.note_submitted()
        c.note_batch(4)
        c.note_completed(0.5, 0.1)
        c.reset()
        assert c.submitted == 0 and c.batches == 0
        assert c.summary()["latency_p99_s"] == 0.0

    def test_occupancy(self):
        c = ServiceCounters()
        c.note_batch(1)
        c.note_batch(7)
        assert c.mean_occupancy == 4.0
        assert c.max_occupancy == 7
        assert c.coalesced_requests == 7


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_sheds(self):
        ctl = AdmissionController(capacity=2)
        ctl.admit(req(), depth=1)
        with pytest.raises(QueueFullError) as ei:
            ctl.admit(req(), depth=2)
        assert ei.value.depth == 2 and ei.value.capacity == 2
        assert ei.value.reason == "queue_full"
        assert ctl.counters.rejections["queue_full"] == 1

    def test_closed_rejects(self):
        ctl = AdmissionController(capacity=2)
        ctl.close()
        with pytest.raises(ServiceClosedError):
            ctl.admit(req(), depth=0)
        assert ctl.counters.rejections["closed"] == 1

    def test_effective_deadline_falls_back(self):
        ctl = AdmissionController(capacity=1, default_deadline_s=2.0)
        assert ctl.effective_deadline_s(req()) == 2.0
        assert ctl.effective_deadline_s(req(deadline_s=0.5)) == 0.5


# ----------------------------------------------------------------------
# batch planning
# ----------------------------------------------------------------------
class TestPlanBatches:
    def test_groups_by_compatibility(self):
        other_ref = MatrixRef(name="power", m=500, n=96, seed=3)
        r1, r2 = req(seed=1), req(seed=2)
        r3 = DecompRequest(matrix=other_ref, rank=10)
        r4 = DecompRequest(matrix=REF, algorithm="adaptive",
                           tolerance=1e-3)
        r5 = req(seed=5)
        plans = plan_batches([r1, r2, r3, r4, r5])
        sizes = [(p.size, p.coalesced) for p in plans]
        assert sizes == [(3, True), (1, False), (1, False)]
        assert [r.request_id for r in plans[0].requests] == \
            [r1.request_id, r2.request_id, r5.request_id]

    def test_max_batch_chunks(self):
        reqs = [req(seed=i) for i in range(7)]
        plans = plan_batches(reqs, max_batch=3)
        assert [p.size for p in plans] == [3, 3, 1]
        assert plans[0].coalesced and not plans[2].coalesced

    def test_mismatched_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchPlan([req()], key=None)


# ----------------------------------------------------------------------
# bit parity: coalesced == solo
# ----------------------------------------------------------------------
class TestBitParity:
    def test_run_jobs_coalesced_matches_solo(self):
        reqs = [req(rank=8 + i, seed=10 + i) for i in range(5)]
        plan = plan_batches(reqs)[0]
        assert plan.coalesced
        results = run_jobs(plan)
        a = REF.materialize()
        for r in reqs:
            art = results[r.request_id]
            assert isinstance(art, ResultArtifact)
            solo = random_sampling(a, r.sampling_config())
            assert np.array_equal(art.payload.q, solo.q)
            assert np.array_equal(art.payload.r, solo.r)
            assert np.array_equal(art.payload.perm, solo.perm)
            assert art.batch == {"batch_id": plan.batch_id, "size": 5,
                                 "coalesced": True}

    def test_service_batched_matches_solo(self):
        async def drive():
            cfg = ServeConfig(batch_window_s=0.05, max_batch=8)
            async with LowRankService(cfg) as svc:
                reqs = [req(rank=9 + i, seed=20 + i) for i in range(4)]
                return reqs, await asyncio.gather(
                    *(svc.submit(r) for r in reqs))
        reqs, arts = asyncio.run(drive())
        assert any(a.batch["coalesced"] for a in arts)
        a = REF.materialize()
        for r, art in zip(reqs, arts):
            solo = random_sampling(a, r.sampling_config())
            assert np.array_equal(art.payload.q, solo.q)
            assert np.array_equal(art.payload.r, solo.r)

    def test_modeled_share_sums_to_batch(self):
        reqs = [req(rank=8, seed=1), req(rank=16, seed=2)]
        plan = plan_batches(reqs)[0]
        results = run_jobs(plan)
        arts = [results[r.request_id] for r in reqs]
        # Sampling shares are proportional to each rider's l.
        s0 = arts[0].breakdown["sampling"]
        s1 = arts[1].breakdown["sampling"]
        l0, l1 = reqs[0].sample_size, reqs[1].sample_size
        assert s0 > 0 and s1 > 0
        assert s0 / s1 == pytest.approx(l0 / l1)


# ----------------------------------------------------------------------
# service behavior: deadlines, cancellation, shedding
# ----------------------------------------------------------------------
class TestServiceContracts:
    def test_deadline_expires_inside_batch_window(self):
        async def drive():
            # Window far longer than the deadline: the request dies
            # waiting for batch-mates that never come.
            cfg = ServeConfig(batch_window_s=2.0)
            async with LowRankService(cfg) as svc:
                with pytest.raises(DeadlineExceededError) as ei:
                    await svc.submit(req(deadline_s=0.05))
                assert ei.value.reason == "deadline"
                assert svc.counters.rejections["deadline"] == 1
        asyncio.run(drive())

    def test_cancellation_mid_batch(self):
        async def drive():
            cfg = ServeConfig(batch_window_s=0.2, max_batch=4)
            async with LowRankService(cfg) as svc:
                keep = [req(rank=10, seed=31), req(rank=11, seed=32)]
                victim = req(rank=12, seed=33)
                tasks = [asyncio.ensure_future(svc.submit(r))
                         for r in keep]
                victim_task = asyncio.ensure_future(svc.submit(victim))
                await asyncio.sleep(0.05)  # all three are in the window
                victim_task.cancel()
                arts = await asyncio.gather(*tasks)
                with pytest.raises(asyncio.CancelledError):
                    await victim_task
                assert svc.counters.rejections["cancelled"] == 1
                # Survivors still complete, still bit-identical.
                a = REF.materialize()
                for r, art in zip(keep, arts):
                    solo = random_sampling(a, r.sampling_config())
                    assert np.array_equal(art.payload.q, solo.q)
        asyncio.run(drive())

    def test_queue_full_at_service_level(self, monkeypatch):
        import repro.serve.service as service_mod
        real = service_mod.run_jobs

        def slow_run_jobs(*args, **kwargs):
            time.sleep(0.25)  # keep the worker busy while we submit
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "run_jobs", slow_run_jobs)

        async def drive():
            cfg = ServeConfig(max_queue_depth=1, batch_window_s=0.0)
            async with LowRankService(cfg) as svc:
                t1 = asyncio.ensure_future(svc.submit(req(seed=41)))
                await asyncio.sleep(0.1)  # dispatched; worker sleeping
                t2 = asyncio.ensure_future(svc.submit(req(seed=42)))
                await asyncio.sleep(0.05)  # sits queued at depth 1
                with pytest.raises(QueueFullError):
                    await svc.submit(req(seed=43))
                assert svc.counters.rejections["queue_full"] == 1
                await asyncio.gather(t1, t2)
        asyncio.run(drive())

    def test_submit_after_close_rejected(self):
        async def drive():
            svc = LowRankService(ServeConfig())
            await svc.start()
            await svc.close()
            with pytest.raises(ServiceClosedError):
                await svc.submit(req())
        asyncio.run(drive())

    def test_adaptive_and_cholqr_serve_solo(self):
        async def drive():
            async with LowRankService(ServeConfig(
                    batch_window_s=0.01)) as svc:
                adaptive = DecompRequest(matrix=REF, algorithm="adaptive",
                                         tolerance=1e-2, seed=5)
                chol = DecompRequest(matrix=REF, algorithm="cholqr")
                a1, a2 = await asyncio.gather(svc.submit(adaptive),
                                              svc.submit(chol))
                assert a1.algorithm == "adaptive"
                assert not a1.batch["coalesced"]
                assert a1.factors["subspace_size"] > 0
                assert a2.factors["q_shape"] == [400, 96]
        asyncio.run(drive())


# ----------------------------------------------------------------------
# span labels under concurrency (satellite 4)
# ----------------------------------------------------------------------
class TestSpanLabels:
    def test_labelled_context_merges_and_restores(self):
        rec = SpanRecorder()
        with rec.labelled("a"):
            with rec.labelled("b", "a"):
                rec.record_kernel("prng", "k", 0.1, labels=["c"])
            rec.record_kernel("prng", "k2", 0.1)
        rec.record_kernel("prng", "k3", 0.1)
        kernels = list(rec.kernel_spans())
        assert kernels[0].labels == ("a", "b", "c")
        assert kernels[1].labels == ("a",)
        assert kernels[2].labels == ()

    def test_no_span_interleaving_under_concurrent_submits(self):
        async def drive():
            cfg = ServeConfig(batch_window_s=0.05, max_batch=8)
            async with LowRankService(cfg) as svc:
                reqs = [req(rank=8 + i, seed=50 + i) for i in range(5)]
                await asyncio.gather(*(svc.submit(r) for r in reqs))
                return svc, reqs
        svc, reqs = asyncio.run(drive())
        ids = {r.request_id for r in reqs}
        runs = svc.recorder.spans()
        by_name = {r.name: r for r in runs}
        assert ids <= set(by_name)
        for rid in ids:
            run = by_name[rid]
            for span in run.walk():
                if span.kind == "kernel":
                    # Every kernel inside a request's run span belongs
                    # to that request alone — no cross-talk.
                    assert span.labels == (rid,), (rid, span.name)
        # The batch run holds the shared GEMM, labelled with every
        # rider, plus each rider's own prng draw.
        batch_runs = [r for r in runs if r.name not in ids]
        assert len(batch_runs) == 1
        gemms = [s for s in batch_runs[0].walk()
                 if s.kind == "kernel" and s.phase == "sampling"]
        assert len(gemms) == 1
        assert set(gemms[0].labels) == ids
        prngs = [s for s in batch_runs[0].walk()
                 if s.kind == "kernel" and s.phase == "prng"]
        assert sorted(s.labels[0] for s in prngs) == sorted(ids)

    def test_chrome_export_carries_labels(self):
        rec = SpanRecorder()
        with rec.labelled("req-x"), rec.run_span("req-x"):
            rec.record_kernel("sampling", "gemm", 0.2)
        events = spans_to_chrome(rec)
        validate_chrome_trace(events)
        tagged = [e for e in events
                  if e.get("args", {}).get("labels") == ["req-x"]]
        # run span, step span, and the kernel all carry the label
        assert len(tagged) == 3

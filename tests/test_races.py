"""Tests for :mod:`repro.analysis.races` — the happens-before race
sanitizer over the stream scheduler.

Covers the vector-clock checker on hand-built schedules (each ordering
construct: lane FIFO, ``deps=``, ``after_all``, ``barrier()``,
``overlap=off``), the annotated :class:`MultiGPUExecutor` end to end
(clean at every ng, racy once an edge is deleted), the report/artifact
plumbing, and a property test that adding edges never creates races.
"""

import json

import pytest

from repro.analysis.races import (RaceChecker, lane_name, render_report,
                                  write_report)
from repro.config import SamplingConfig
from repro.core.random_sampling import random_sampling
from repro.errors import RaceError
from repro.gpu.device import SymArray
from repro.gpu.multigpu import MultiGPUExecutor
from repro.gpu.streams import HOST, StreamScheduler
from repro.obs.spans import SpanRecorder

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def checked_scheduler(ng=2, overlap=True, **kw):
    sched = StreamScheduler(ng=ng, overlap=overlap)
    checker = RaceChecker(**kw)
    sched.attach_race_checker(checker)
    return sched, checker


def pairs(checker):
    """Order-insensitive fingerprints of the recorded races."""
    return {(r.buffer, r.kind, r.first.label, r.second.label)
            for r in checker.races}


# ---------------------------------------------------------------------------
# The checker on synthetic schedules
# ---------------------------------------------------------------------------

class TestSyntheticSchedules:
    def test_two_unordered_writers_race_exactly_once(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"], label="w0")
        sched.submit("gemm_iter", 1.0, device=1, writes=["X"], label="w1")
        assert pairs(checker) == {("X", "W/W", "w0", "w1")}
        (race,) = checker.races
        assert "w0" in race.missing_edge and "deps=" in race.missing_edge

    def test_deps_edge_orders_the_pair(self):
        sched, checker = checked_scheduler()
        ev = sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        sched.submit("gemm_iter", 1.0, device=1, deps=[ev], writes=["X"])
        assert checker.races == []

    def test_after_all_orders_the_pair(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        sched.submit("gemm_iter", 1.0, device=1, after_all=True,
                     writes=["X"])
        assert checker.races == []

    def test_barrier_event_orders_the_pair(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        join = sched.barrier()
        sched.submit("gemm_iter", 1.0, device=1, deps=[join], writes=["X"])
        assert checker.races == []

    def test_serialized_schedule_never_races(self):
        sched, checker = checked_scheduler(overlap=False)
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        sched.submit("gemm_iter", 1.0, device=1, writes=["X"])
        sched.submit("comms", 0.1, device=1, stream="d2h", reads=["X"])
        assert checker.races == []

    def test_lane_fifo_counts_as_ordering(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        assert checker.races == []

    def test_shared_resource_lane_orders_transfers(self):
        # Two copies from different devices both hold the host pcie
        # lane; the scheduler serializes them there, so no race.
        sched, checker = checked_scheduler()
        for d in (0, 1):
            sched.submit("comms", 0.5, device=d, stream="d2h",
                         resources=[(HOST, "pcie")], writes=["B_host"])
        assert checker.races == []

    def test_write_read_race_kind(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"], label="w")
        sched.submit("comms", 0.1, device=1, stream="d2h", reads=["X"],
                     label="r")
        assert pairs(checker) == {("X", "W/R", "w", "r")}

    def test_read_write_race_kind(self):
        sched, checker = checked_scheduler()
        sched.submit("comms", 0.1, device=1, stream="d2h", reads=["X"],
                     label="r")
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"], label="w")
        assert pairs(checker) == {("X", "R/W", "r", "w")}

    def test_concurrent_reads_do_not_race(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, reads=["X"])
        sched.submit("gemm_iter", 1.0, device=1, reads=["X"])
        assert checker.races == []

    def test_distinct_buffers_do_not_race(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        sched.submit("gemm_iter", 1.0, device=1, writes=["Y"])
        assert checker.races == []

    def test_happens_before_is_transitive(self):
        sched, checker = checked_scheduler(ng=3)
        a = sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        b = sched.submit("comms", 0.1, device=1, stream="d2h", deps=[a])
        sched.submit("gemm_iter", 1.0, device=2, deps=[b], writes=["X"])
        assert checker.races == []

    def test_read_write_same_submission_is_atomic(self):
        sched, checker = checked_scheduler()
        ev = sched.submit("orth_iter", 1.0, device=0, reads=["B"],
                          writes=["B"])
        sched.submit("orth_iter", 1.0, device=0, deps=[ev], reads=["B"],
                     writes=["B"])
        assert checker.races == []

    def test_each_unordered_pair_reported(self):
        sched, checker = checked_scheduler(ng=3)
        for d in range(3):
            sched.submit("gemm_iter", 1.0, device=d, writes=["X"],
                         label=f"w{d}")
        assert len(checker.races) == 3  # all C(3,2) pairs

    def test_raise_on_race_raises_at_detection(self):
        sched, _ = checked_scheduler(raise_on_race=True)
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        with pytest.raises(RaceError) as exc:
            sched.submit("gemm_iter", 1.0, device=1, writes=["X"])
        assert len(exc.value.races) == 1
        assert exc.value.races[0].buffer == "X"

    def test_check_raises_with_every_race(self):
        sched, checker = checked_scheduler(ng=3)
        for d in range(3):
            sched.submit("gemm_iter", 1.0, device=d, writes=["X"])
        with pytest.raises(RaceError, match="3 unordered") as exc:
            checker.check()
        assert len(exc.value.races) == 3

    def test_clean_check_passes(self):
        sched, checker = checked_scheduler(overlap=False)
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
        checker.check()

    def test_observation_only(self):
        """Attaching the checker changes no modeled time."""
        def script(sched):
            c = sched.submit("gemm_iter", 1.0, device=0, writes=["X"])
            sched.submit("comms", 0.5, device=0, stream="d2h",
                         resources=[(HOST, "pcie")], deps=[c],
                         reads=["X"], writes=["Y"])
            sched.submit("gemm_iter", 1.0, device=1, writes=["Z"])
            return sched

        plain = script(StreamScheduler(ng=2, overlap=True))
        checked = script(checked_scheduler()[0])
        assert checked.elapsed == plain.elapsed
        assert checked.timeline.total == plain.timeline.total
        assert checked.state() == plain.state()


# ---------------------------------------------------------------------------
# Property: ordering edges only ever remove races
# ---------------------------------------------------------------------------

@st.composite
def schedules(draw):
    """A schedule as (lane, buffer, is_write, deps, more_deps) tuples,
    where ``more_deps`` is a superset of ``deps``."""
    n = draw(st.integers(min_value=1, max_value=10))
    subs = []
    for i in range(n):
        lane = draw(st.integers(min_value=0, max_value=2))
        buffer = draw(st.sampled_from(["X", "Y"]))
        write = draw(st.booleans())
        if i:
            earlier = st.sets(st.integers(min_value=0, max_value=i - 1))
            deps, extra = draw(earlier), draw(earlier)
        else:
            deps, extra = set(), set()
        subs.append((lane, buffer, write, deps, deps | extra))
    return subs


def _run_schedule(subs, dep_index):
    checker = RaceChecker()
    clocks = []
    for lane, buffer, write, *dep_sets in subs:
        deps = dep_sets[dep_index]
        clocks.append(checker.on_submit(
            label=f"s{len(clocks)}", phase="gemm_iter",
            lanes=[(lane, "compute")],
            dep_clocks=[clocks[i] for i in sorted(deps)],
            writes=[buffer] if write else (),
            reads=() if write else [buffer]))
    return {(r.first.sub, r.second.sub, r.buffer, r.kind)
            for r in checker.races}


class TestMonotonicity:
    @settings(max_examples=200, deadline=None)
    @given(schedules())
    def test_adding_edges_never_creates_races(self, subs):
        base = _run_schedule(subs, dep_index=0)
        augmented = _run_schedule(subs, dep_index=1)
        assert augmented <= base


# ---------------------------------------------------------------------------
# The annotated multi-GPU executor
# ---------------------------------------------------------------------------

def _checked_run(ng, overlap=True, executor_cls=MultiGPUExecutor,
                 raise_on_race=False):
    ex = executor_cls(ng=ng, seed=0, overlap=overlap)
    checker = RaceChecker(raise_on_race=raise_on_race)
    ex.streams.attach_race_checker(checker)
    cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=1,
                         seed=0)
    res = random_sampling(SymArray((150_000, 2_500)), cfg, executor=ex)
    return ex, res, checker


class NoEdgeExecutor(MultiGPUExecutor):
    """Deletes the chunk-GEMM -> gather ``deps=`` edges: the seeded
    race the sanitizer must catch."""

    def _reduce_b(self, l, n):
        chunk_events = self._chunk_events or [self.streams.barrier()]
        self._chunk_events = None
        chunks = len(chunk_events)
        total = self.device.transfers.reduce_seconds(8 * l * n, self.ng)
        per_leg = total / (self.ng * chunks)
        for j, _ev in enumerate(chunk_events):
            for d in range(self.ng):
                self.streams.submit(
                    "comms", per_leg, device=d, stream="d2h",
                    resources=[(HOST, "pcie")],  # deps edge deleted
                    label=f"reduce B {l}x{n} x{self.ng}",
                    reads=[f"B_chunk[{j}]"],
                    writes=[f"B_host[{j},g{d}]"])
        if self.ng > 1:
            self.streams.submit(
                "comms", self.cpu.gemm_seconds((self.ng - 1) * l * n),
                device=HOST, stream="cpu", after_all=True,
                label="cpu accumulate",
                reads=[f"B_host[{j},g{d}]"
                       for j in range(chunks) for d in range(self.ng)],
                writes=["B"])


class TestAnnotatedExecutor:
    @pytest.mark.parametrize("ng", [1, 2, 3])
    def test_full_run_is_race_free(self, ng):
        _, _, checker = _checked_run(ng=ng, overlap=True)
        assert checker.races == []
        assert checker.submissions > 0
        checker.check()

    def test_serialized_run_is_race_free(self):
        _, _, checker = _checked_run(ng=3, overlap=False)
        assert checker.races == []

    def test_deleted_edge_is_caught(self):
        _, _, checker = _checked_run(ng=2, executor_cls=NoEdgeExecutor)
        assert checker.races
        assert {r.kind for r in checker.races} == {"W/R"}
        assert all(r.buffer.startswith("B_chunk[")
                   for r in checker.races)
        assert all("deps=" in r.missing_edge for r in checker.races)

    def test_deleted_edge_raises_under_strict_mode(self):
        with pytest.raises(RaceError, match="B_chunk"):
            _checked_run(ng=2, executor_cls=NoEdgeExecutor,
                         raise_on_race=True)

    def test_sanitizer_does_not_change_modeled_time(self):
        ex_plain = MultiGPUExecutor(ng=3, seed=0, overlap=True)
        cfg = SamplingConfig(rank=54, oversampling=10,
                             power_iterations=1, seed=0)
        res_plain = random_sampling(SymArray((150_000, 2_500)), cfg,
                                    executor=ex_plain)
        _, res_checked, _ = _checked_run(ng=3, overlap=True)
        assert res_checked.seconds == res_plain.seconds
        assert res_checked.breakdown == res_plain.breakdown

    def test_env_var_attaches_strict_checker(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_CHECK", "1")
        ex = MultiGPUExecutor(ng=2, seed=0, overlap=True)
        assert isinstance(ex.streams.race_checker, RaceChecker)
        assert ex.streams.race_checker.raise_on_race
        # A clean annotated run completes under the strict checker.
        cfg = SamplingConfig(rank=54, oversampling=10,
                             power_iterations=1, seed=0)
        random_sampling(SymArray((150_000, 2_500)), cfg, executor=ex)
        assert ex.streams.race_checker.races == []

    @pytest.mark.parametrize("value", [None, "", "0", "false"])
    def test_env_var_off_values(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv("REPRO_RACE_CHECK", raising=False)
        else:
            monkeypatch.setenv("REPRO_RACE_CHECK", value)
        ex = MultiGPUExecutor(ng=2, seed=0, overlap=True)
        assert ex.streams.race_checker is None


# ---------------------------------------------------------------------------
# Reports and artifacts
# ---------------------------------------------------------------------------

class TestReports:
    def test_report_schema_and_roundtrip(self, tmp_path):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"], label="w0")
        sched.submit("gemm_iter", 1.0, device=1, writes=["X"], label="w1")
        report = checker.report()
        assert report["version"] == 1
        assert report["race_count"] == 1
        assert report["buffers"] == ["X"]
        assert "gpu0:compute" in report["lanes"]
        (race,) = report["races"]
        assert race["first"]["label"] == "w0"
        assert race["second"]["lanes"] == ["gpu1:compute"]
        path = tmp_path / "race-report.json"
        write_report(str(path), report)
        assert json.loads(path.read_text(encoding="utf-8")) == report

    def test_render_report_clean_and_racy(self):
        sched, checker = checked_scheduler()
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"], label="w0")
        clean = render_report(checker.report())
        assert "0 races" in clean and "1 submission(s)" in clean
        sched.submit("gemm_iter", 1.0, device=1, writes=["X"], label="w1")
        racy = render_report(checker.report())
        assert "1 race(s)" in racy and "W/W" in racy
        assert "w0" in racy and "gpu1:compute" in racy

    def test_render_report_note(self):
        out = render_report({"version": 1, "race_count": 0, "races": [],
                             "submissions": 0, "buffers": [], "lanes": [],
                             "note": "single-device run"})
        assert "[single-device run]" in out

    def test_lane_name_forms(self):
        assert lane_name((0, "compute")) == "gpu0:compute"
        assert lane_name((HOST, "pcie")) == "host:pcie"

    def test_recorder_mirrors_races(self):
        sched, checker = checked_scheduler()
        rec = SpanRecorder()
        sched.attach_recorder(rec)
        sched.submit("gemm_iter", 1.0, device=0, writes=["X"], label="w0")
        sched.submit("gemm_iter", 1.0, device=1, writes=["X"], label="w1")
        (mirrored,) = rec.races
        assert mirrored == checker.races[0].to_dict()

    def test_harness_race_report_attached(self):
        from repro.bench.harness import observed_fixed_rank
        _, rec = observed_fixed_rank("fig15", race_check=True)
        report = rec.race_report
        assert report is not None
        assert report["race_count"] == 0
        assert report["submissions"] > 0

    def test_harness_single_device_note(self):
        from repro.bench.harness import observed_fixed_rank
        _, rec = observed_fixed_rank("fig11", race_check=True)
        report = rec.race_report
        assert report is not None
        assert report["race_count"] == 0
        assert "note" in report

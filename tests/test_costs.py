"""Tests for the Figure 5 cost models (repro.perfmodel.costs)."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.costs import (CostModel, caqp3_cost, fft_sampling_cost,
                                   gaussian_sampling_cost,
                                   multi_gpu_scaling,
                                   power_iteration_mult_cost,
                                   power_iteration_orth_cost, qp3_cost,
                                   qr_selected_cost, qrcp_sampled_cost,
                                   random_sampling_total_cost)


class TestCostModelAlgebra:
    def test_add(self):
        c = CostModel(1.0, 2.0) + CostModel(3.0, 4.0)
        assert c.flops == 4.0 and c.words == 6.0

    def test_scale(self):
        c = 2 * CostModel(1.0, 2.0)
        assert c.flops == 2.0 and c.words == 4.0

    def test_intensity(self):
        assert CostModel(10.0, 2.0).intensity() == 5.0
        assert CostModel(10.0, 0.0).intensity() == float("inf")


class TestLeadingOrders:
    M, N, L, K, Q = 50_000, 2_500, 64, 54, 2

    def test_gaussian_sampling_2lmn(self):
        c = gaussian_sampling_cost(self.M, self.N, self.L)
        assert c.flops == pytest.approx(2 * self.L * self.M * self.N,
                                        rel=1e-12)

    def test_mult_cost_4lmnq(self):
        c = power_iteration_mult_cost(self.M, self.N, self.L, self.Q)
        assert c.flops == pytest.approx(4 * self.L * self.M * self.N
                                        * self.Q)

    def test_orth_cost_quadratic_in_l(self):
        c1 = power_iteration_orth_cost(self.M, self.N, 32, 1)
        c2 = power_iteration_orth_cost(self.M, self.N, 64, 1)
        assert c2.flops == pytest.approx(4 * c1.flops, rel=0.05)

    def test_orth_reorth_doubles(self):
        c1 = power_iteration_orth_cost(self.M, self.N, self.L, 1,
                                       reorth=False)
        c2 = power_iteration_orth_cost(self.M, self.N, self.L, 1,
                                       reorth=True)
        assert c2.flops == pytest.approx(2 * c1.flops)

    def test_total_matches_figure5_leading_term(self):
        """Fig 5 Total row: O(l m n (1 + 2q)) flops."""
        c = random_sampling_total_cost(self.M, self.N, self.L, self.K,
                                       self.Q)
        lead = 2.0 * self.L * self.M * self.N * (1 + 2 * self.Q)
        assert c.flops == pytest.approx(lead, rel=0.1)

    def test_total_words_communication_optimal(self):
        """Fig 5: words ~ flops / sqrt(M_fast)."""
        c = random_sampling_total_cost(self.M, self.N, self.L, self.K,
                                       self.Q)
        assert c.intensity() > 50  # far above the BLAS-2 intensity ~1

    def test_qp3_flops_4mnk(self):
        c = qp3_cost(self.M, self.N, self.K)
        assert c.flops == pytest.approx(4 * self.M * self.N * self.K,
                                        rel=0.05)

    def test_qp3_words_not_reduced_by_blocking(self):
        """QP3's intensity stays O(k_panel) — far below the sampling
        algorithm's O(sqrt(M_fast))."""
        c = qp3_cost(self.M, self.N, self.K)
        total = random_sampling_total_cost(self.M, self.N, self.L,
                                           self.K, 1)
        assert c.intensity() < total.intensity() / 3

    def test_fft_full_vs_pruned(self):
        full = fft_sampling_cost(self.M, self.N, self.L, pruned=False)
        pruned = fft_sampling_cost(self.M, self.N, self.L, pruned=True)
        # Fig 5 / Sec 4: pruned saves only O(log(m)/log(l)).
        assert pruned.flops < full.flops
        assert pruned.flops > full.flops / 5

    def test_caqp3_flops(self):
        c = caqp3_cost(1000, 500)
        assert c.flops == pytest.approx(1000 * 500 * 1500)

    def test_qrcp_sampled_marginal(self):
        """Sec 3: the QRCP of B is marginal next to the sampling."""
        sampled = qrcp_sampled_cost(self.N, self.L, self.K)
        total = random_sampling_total_cost(self.M, self.N, self.L, self.K,
                                           0)
        assert sampled.flops < 0.01 * total.flops

    def test_qr_selected_cost(self):
        c = qr_selected_cost(self.M, self.K)
        assert c.flops == pytest.approx(2 * self.M * self.K ** 2, rel=0.1)


class TestMultiGPU:
    def test_scaling_divides(self):
        c = gaussian_sampling_cost(10_000, 100, 8)
        c3 = multi_gpu_scaling(c, 3)
        assert c3.flops == pytest.approx(c.flops / 3)
        assert c3.words == pytest.approx(c.words / 3)

    def test_bad_ng_raises(self):
        with pytest.raises(ConfigurationError):
            multi_gpu_scaling(CostModel(1, 1), 0)


class TestValidation:
    def test_bad_dims_raise(self):
        with pytest.raises(ConfigurationError):
            gaussian_sampling_cost(0, 10, 2)
        with pytest.raises(ConfigurationError):
            qp3_cost(10, 10, -1)
        with pytest.raises(ConfigurationError):
            random_sampling_total_cost(10, 10, 2, 2, 0, sampler="bogus")

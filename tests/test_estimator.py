"""Tests for the eq. (4) probabilistic bounds (repro.core.estimator)."""

import numpy as np
import pytest

from repro.config import AdaptiveConfig
from repro.core.adaptive import adaptive_sampling
from repro.core.estimator import (bound_constant, certified_bound,
                                  estimate_quality_factor,
                                  failure_probability)
from repro.errors import ConfigurationError
from repro.matrices.synthetic import exponent_matrix


class TestFailureProbability:
    def test_formula(self):
        # min(m,n) * c^{-l}
        assert failure_probability(2.0, 10, 1000, 500) == pytest.approx(
            500 * 2.0 ** -10)

    def test_clamped_to_one(self):
        assert failure_probability(1.001, 1, 10 ** 6, 10 ** 6) == 1.0

    def test_decreases_with_l_inc(self):
        # c_ad = 4 keeps the l_inc = 8 point below the clamp.
        ps = [failure_probability(4.0, l, 50_000, 2_500)
              for l in (8, 16, 32, 64)]
        assert all(a > b for a, b in zip(ps, ps[1:]))
        assert ps[0] < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            failure_probability(1.0, 8, 10, 10)
        with pytest.raises(ConfigurationError):
            failure_probability(2.0, 0, 10, 10)


class TestBoundConstant:
    def test_inverse_of_failure_probability(self):
        c = bound_constant(1e-6, 16, 50_000, 2_500)
        assert failure_probability(c, 16, 50_000, 2_500) == pytest.approx(
            1e-6, rel=1e-9)

    def test_larger_l_inc_less_pessimistic(self):
        """Section 10: 'a larger value of the parameter l_inc decreases
        the constant c_ad'."""
        cs = [bound_constant(1e-6, l, 50_000, 2_500)
              for l in (8, 16, 32, 64)]
        assert all(a > b for a, b in zip(cs, cs[1:]))
        assert cs[0] > 10      # very pessimistic at l_inc = 8
        assert cs[-1] < 2      # near-tight at l_inc = 64

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bound_constant(0.0, 8, 10, 10)
        with pytest.raises(ConfigurationError):
            bound_constant(1.5, 8, 10, 10)


class TestCertifiedBound:
    def test_scales_estimate(self):
        bound, c = certified_bound(1e-8, 32, 50_000, 2_500)
        assert bound == pytest.approx(c * np.sqrt(2 / np.pi) * 1e-8)
        assert c > 1

    def test_zero_estimate(self):
        bound, _ = certified_bound(0.0, 8, 100, 100)
        assert bound == 0.0

    def test_negative_raises(self):
        with pytest.raises(ConfigurationError):
            certified_bound(-1.0, 8, 10, 10)

    def test_holds_empirically(self):
        """The certified bound must dominate the actual error on real
        adaptive runs (it is a high-probability upper bound)."""
        a = exponent_matrix(1_000, 300, seed=0)
        for inc in (8, 32):
            res = adaptive_sampling(
                a, AdaptiveConfig(tolerance=1e-8, l_init=inc, l_inc=inc,
                                  seed=1))
            eps = res.steps[-1].error_estimate
            bound, _ = certified_bound(eps, inc, 1_000, 300,
                                       gamma=1e-6)
            assert res.actual_error(a) <= bound


class TestQualityFactor:
    def test_section10_scale(self):
        f8 = estimate_quality_factor(8, 50_000, 2_500)
        f64 = estimate_quality_factor(64, 50_000, 2_500)
        assert f8 > 10 * f64
        assert f64 < 2

"""Tests for the subspace diagnostics (repro.core.subspace)."""

import numpy as np
import pytest

from repro.core.power import power_iterate
from repro.core.sampling import sample
from repro.core.subspace import (captured_energy, principal_angles,
                                 subspace_alignment)
from repro.errors import ShapeError
from repro.gpu.device import NumpyExecutor
from repro.matrices.synthetic import exponent_matrix, random_orthonormal


class TestPrincipalAngles:
    def test_identical_subspaces(self):
        q = random_orthonormal(50, 5, seed=0)
        angles = principal_angles(q, q)
        np.testing.assert_allclose(angles, 0.0, atol=1e-7)

    def test_orthogonal_subspaces(self):
        q = random_orthonormal(50, 10, seed=1)
        angles = principal_angles(q[:, :5], q[:, 5:])
        np.testing.assert_allclose(angles, np.pi / 2, atol=1e-7)

    def test_known_angle(self):
        theta = 0.3
        u = np.array([[1.0], [0.0]])
        v = np.array([[np.cos(theta)], [np.sin(theta)]])
        assert principal_angles(u, v)[0] == pytest.approx(theta)

    def test_rows_convention(self):
        q = random_orthonormal(60, 4, seed=2)
        np.testing.assert_allclose(principal_angles(q.T, q.T, rows=True),
                                   0.0, atol=1e-7)

    def test_ascending_order(self, rng):
        u = rng.standard_normal((40, 6))
        v = rng.standard_normal((40, 6))
        angles = principal_angles(u, v)
        assert all(a <= b + 1e-12 for a, b in zip(angles, angles[1:]))

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            principal_angles(rng.standard_normal((10, 2)),
                             rng.standard_normal((12, 2)))


class TestAlignment:
    def test_bounds(self, rng):
        u = rng.standard_normal((30, 4))
        v = rng.standard_normal((30, 4))
        assert 0.0 <= subspace_alignment(u, v) <= 1.0

    def test_perfect(self):
        q = random_orthonormal(30, 4, seed=3)
        assert subspace_alignment(q, q @ np.diag([2.0, 3, 4, 5])) \
            == pytest.approx(1.0)

    def test_rises_with_power_iterations(self):
        a = exponent_matrix(300, 100, seed=4)
        _, _, vt = np.linalg.svd(a, full_matrices=False)
        vk = vt[:10, :]
        scores = []
        for q in (0, 2):
            ex = NumpyExecutor(seed=5)
            b = sample(ex, a, 12)
            b, _ = power_iterate(ex, a, b, q=q)
            scores.append(subspace_alignment(vk.T, np.asarray(b).T))
        assert scores[1] > scores[0]


class TestCapturedEnergy:
    def test_full_basis_captures_all(self):
        a = exponent_matrix(100, 40, seed=6)
        _, _, vt = np.linalg.svd(a, full_matrices=False)
        assert captured_energy(a, vt) == pytest.approx(1.0)

    def test_partial_matches_sigma_sum(self):
        a = exponent_matrix(100, 40, seed=7)
        s = np.linalg.svd(a, compute_uv=False)
        _, _, vt = np.linalg.svd(a, full_matrices=False)
        expect = float(np.sum(s[:10] ** 2) / np.sum(s ** 2))
        assert captured_energy(a, vt[:10, :]) == pytest.approx(expect,
                                                               rel=1e-10)

    def test_columns_convention(self):
        a = exponent_matrix(100, 40, seed=8)
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        e = captured_energy(a, u[:, :10], rows=False)
        assert 0.9 < e <= 1.0

    def test_zero_matrix(self):
        assert captured_energy(np.zeros((5, 5)), np.eye(5)) == 1.0

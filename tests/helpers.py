"""Shared assertion helpers for the test suite."""

from __future__ import annotations

import numpy as np


def assert_orthonormal_columns(q: np.ndarray, tol: float = 1e-10) -> None:
    """Assert that Q^T Q = I to tolerance."""
    g = q.T @ q
    np.testing.assert_allclose(g, np.eye(q.shape[1]), atol=tol)


def assert_orthonormal_rows(q: np.ndarray, tol: float = 1e-10) -> None:
    """Assert that Q Q^T = I to tolerance."""
    g = q @ q.T
    np.testing.assert_allclose(g, np.eye(q.shape[0]), atol=tol)


def assert_valid_permutation(perm: np.ndarray, n: int) -> None:
    """Assert that ``perm`` is a permutation of range(n)."""
    assert sorted(perm.tolist()) == list(range(n))

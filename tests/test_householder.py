"""Tests for the blocked Householder QR (repro.qr.householder)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.qr.householder import (HouseholderFactors, apply_q,
                                  householder_qr, householder_vector)
from repro.qr.utils import orthogonality_defect

from tests.helpers import assert_orthonormal_columns


class TestHouseholderVector:
    def test_annihilates_below_first(self, rng):
        x = rng.standard_normal(10)
        v, tau, beta = householder_vector(x)
        h = np.eye(10) - tau * np.outer(v, v)
        y = h @ x
        assert abs(y[0] - beta) < 1e-12
        np.testing.assert_allclose(y[1:], 0.0, atol=1e-12)

    def test_beta_is_norm(self, rng):
        x = rng.standard_normal(7)
        _, _, beta = householder_vector(x)
        assert abs(abs(beta) - np.linalg.norm(x)) < 1e-12

    def test_sign_opposes_leading_entry(self):
        _, _, beta = householder_vector(np.array([3.0, 4.0]))
        assert beta == -5.0
        _, _, beta = householder_vector(np.array([-3.0, 4.0]))
        assert beta == 5.0

    def test_reflector_is_orthogonal(self, rng):
        x = rng.standard_normal(6)
        v, tau, _ = householder_vector(x)
        h = np.eye(6) - tau * np.outer(v, v)
        np.testing.assert_allclose(h @ h.T, np.eye(6), atol=1e-12)

    def test_zero_tail_gives_identity(self):
        v, tau, beta = householder_vector(np.array([2.5, 0.0, 0.0]))
        assert tau == 0.0
        assert beta == 2.5

    def test_all_zero_input(self):
        v, tau, beta = householder_vector(np.zeros(4))
        assert tau == 0.0 and beta == 0.0

    def test_length_one(self):
        v, tau, beta = householder_vector(np.array([-1.5]))
        assert tau == 0.0 and beta == -1.5

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            householder_vector(np.array([]))

    def test_2d_raises(self):
        with pytest.raises(ShapeError):
            householder_vector(np.zeros((2, 2)))


class TestHouseholderQR:
    @pytest.mark.parametrize("shape", [(50, 10), (64, 64), (10, 50),
                                       (128, 37), (7, 3), (1, 1)])
    def test_reconstruction(self, rng, shape):
        a = rng.standard_normal(shape)
        f = householder_qr(a)
        q, r = f.q(), f.r()
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    @pytest.mark.parametrize("shape", [(50, 10), (64, 64), (128, 37)])
    def test_q_orthonormal(self, rng, shape):
        a = rng.standard_normal(shape)
        q = householder_qr(a).q()
        assert_orthonormal_columns(q)

    def test_r_upper_triangular(self, tall_matrix):
        r = householder_qr(tall_matrix).r()
        np.testing.assert_allclose(r, np.triu(r))

    def test_matches_numpy_up_to_sign(self, tall_matrix):
        f = householder_qr(tall_matrix)
        q_np, r_np = np.linalg.qr(tall_matrix)
        s = np.sign(np.diag(f.r())) * np.sign(np.diag(r_np))
        np.testing.assert_allclose(f.q() * s, q_np, atol=1e-10)

    @pytest.mark.parametrize("block_size", [1, 3, 8, 64, 1000])
    def test_blocked_agrees_with_unblocked(self, rng, block_size):
        a = rng.standard_normal((90, 40))
        ref = householder_qr(a, block_size=1)
        f = householder_qr(a, block_size=block_size)
        np.testing.assert_allclose(f.r(), ref.r(), atol=1e-10)
        np.testing.assert_allclose(f.q(), ref.q(), atol=1e-10)

    def test_overwrite_reuses_buffer(self, rng):
        a = rng.standard_normal((30, 10))
        f = householder_qr(a, overwrite=True)
        assert f.vt_store is a

    def test_no_overwrite_by_default(self, rng):
        a = rng.standard_normal((30, 10))
        a0 = a.copy()
        householder_qr(a)
        np.testing.assert_array_equal(a, a0)

    def test_integer_input_upcast(self):
        a = np.arange(12).reshape(4, 3)
        f = householder_qr(a)
        np.testing.assert_allclose(f.q() @ f.r(), a, atol=1e-10)

    def test_rank_deficient_still_orthonormal(self, rng):
        a = rng.standard_normal((60, 5)) @ rng.standard_normal((5, 20))
        q = householder_qr(a).q()
        assert_orthonormal_columns(q)

    def test_full_q_columns(self, rng):
        a = rng.standard_normal((20, 5))
        q = householder_qr(a).q(columns=20)
        assert q.shape == (20, 20)
        np.testing.assert_allclose(q @ q.T, np.eye(20), atol=1e-10)

    def test_too_many_q_columns_raises(self, rng):
        f = householder_qr(rng.standard_normal((10, 4)))
        with pytest.raises(ShapeError):
            f.q(columns=11)

    def test_1d_input_raises(self):
        with pytest.raises(ShapeError):
            householder_qr(np.zeros(5))


class TestApplyQ:
    def test_qt_q_is_identity_action(self, rng, tall_matrix):
        f = householder_qr(tall_matrix)
        c = rng.standard_normal((200, 6))
        back = apply_q(f, apply_q(f, c, transpose=True))
        np.testing.assert_allclose(back, c, atol=1e-10)

    def test_matches_explicit_q(self, rng, tall_matrix):
        f = householder_qr(tall_matrix)
        c = rng.standard_normal((200, 4))
        explicit = f.q(columns=200)
        np.testing.assert_allclose(apply_q(f, c), explicit @ c, atol=1e-9)

    def test_transpose_matches_explicit(self, rng, tall_matrix):
        f = householder_qr(tall_matrix)
        c = rng.standard_normal((200, 4))
        explicit = f.q(columns=200)
        np.testing.assert_allclose(apply_q(f, c, transpose=True),
                                   explicit.T @ c, atol=1e-9)

    def test_row_mismatch_raises(self, tall_matrix, rng):
        f = householder_qr(tall_matrix)
        with pytest.raises(ShapeError):
            apply_q(f, rng.standard_normal((10, 3)))


class TestFactorsDataclass:
    def test_shape_property(self, tall_matrix):
        f = householder_qr(tall_matrix)
        assert f.shape == tall_matrix.shape

    def test_defect_small(self, tall_matrix):
        f = householder_qr(tall_matrix)
        assert orthogonality_defect(f.q()) < 1e-12

"""Tests for the distributed-memory cluster runtime
(repro.gpu.cluster)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.random_sampling import random_sampling
from repro.errors import ConfigurationError
from repro.gpu.cluster import (ClusterExecutor, NetworkSpec,
                               cluster_qp3_seconds)
from repro.gpu.device import NumpyExecutor, SymArray


class TestNetworkSpec:
    def test_ptp_latency_floor(self):
        net = NetworkSpec(bandwidth_gbs=5.0, latency_s=3e-6)
        assert net.ptp_seconds(0) == pytest.approx(3e-6)

    def test_ptp_bandwidth(self):
        net = NetworkSpec(bandwidth_gbs=5.0, latency_s=0.0)
        assert net.ptp_seconds(5_000_000_000) == pytest.approx(1.0)

    def test_allreduce_single_node_free(self):
        assert NetworkSpec().allreduce_seconds(1000, 1) == 0.0

    def test_allreduce_log_stages(self):
        net = NetworkSpec(bandwidth_gbs=5.0, latency_s=1e-6)
        t2 = net.allreduce_seconds(8_000, 2)
        t8 = net.allreduce_seconds(8_000, 8)
        assert t8 == pytest.approx(3 * t2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec().ptp_seconds(-1)
        with pytest.raises(ConfigurationError):
            NetworkSpec().allreduce_seconds(10, 0)


class TestClusterExecutor:
    def test_construction(self):
        ex = ClusterExecutor(nodes=4, gpus_per_node=3)
        assert ex.ng == 12
        assert ex.nodes == 4

    def test_bad_nodes_raises(self):
        with pytest.raises(ConfigurationError):
            ClusterExecutor(nodes=0)

    def test_math_identical_to_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((400, 20)) @ rng.standard_normal((20, 60))
        cfg = SamplingConfig(rank=20, oversampling=5, power_iterations=1,
                             seed=3)
        ref = random_sampling(a, cfg, executor=NumpyExecutor(seed=3))
        out = random_sampling(a, cfg,
                              executor=ClusterExecutor(nodes=3,
                                                       gpus_per_node=2,
                                                       seed=3))
        np.testing.assert_allclose(np.asarray(out.q), np.asarray(ref.q),
                                   atol=1e-9)

    def test_strong_scaling(self):
        cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=1,
                             seed=0)
        times = []
        for nodes in (1, 2, 4, 8):
            ex = ClusterExecutor(nodes=nodes, gpus_per_node=3, seed=0)
            f = random_sampling(SymArray((600_000, 2_500)), cfg,
                                executor=ex)
            times.append(f.seconds)
        assert all(a > b for a, b in zip(times, times[1:]))
        assert times[0] / times[-1] > 5  # decent efficiency at 8 nodes

    def test_comms_grow_with_nodes(self):
        cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=1,
                             seed=0)
        fracs = []
        for nodes in (2, 8):
            ex = ClusterExecutor(nodes=nodes, gpus_per_node=3, seed=0)
            f = random_sampling(SymArray((600_000, 2_500)), cfg,
                                executor=ex)
            fracs.append(f.breakdown["comms"] / f.seconds)
        assert 0 < fracs[0] < fracs[1] < 0.5

    def test_slow_network_costs_more(self):
        cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=1,
                             seed=0)
        fast = ClusterExecutor(nodes=8, gpus_per_node=3, seed=0)
        slow = ClusterExecutor(nodes=8, gpus_per_node=3, seed=0,
                               network=NetworkSpec(bandwidth_gbs=1.0,
                                                   latency_s=50e-6))
        a = SymArray((600_000, 2_500))
        t_fast = random_sampling(a, cfg, executor=fast).seconds
        t_slow = random_sampling(a, cfg, executor=slow).seconds
        assert t_slow > t_fast


class TestClusterQP3:
    def test_strong_scaling_with_latency_floor(self):
        m, n, k = 600_000, 2_500, 54
        t1 = cluster_qp3_seconds(m, n, k, nodes=1, gpus_per_node=3)
        t8 = cluster_qp3_seconds(m, n, k, nodes=8, gpus_per_node=3)
        assert t8 < t1
        # Near-ideal scaling is allowed (the shrinking local panel
        # raises the per-device GEMM rate), but the k global syncs set
        # a floor that caps it.
        assert t8 > t1 / 9.5
        floor = 54 * NetworkSpec().allreduce_seconds(8 * n, 8)
        assert t8 > floor

    def test_latency_sensitivity_scales_with_k(self):
        """QP3's latency exposure is one allreduce per factored
        column: 10x the rank means ~10x the added latency cost."""
        slow = NetworkSpec(bandwidth_gbs=5.0, latency_s=1e-3)
        fast = NetworkSpec(bandwidth_gbs=5.0, latency_s=3e-6)
        m, n = 600_000, 2_500
        added_small = (cluster_qp3_seconds(m, n, 54, 8, network=slow)
                       - cluster_qp3_seconds(m, n, 54, 8, network=fast))
        added_big = (cluster_qp3_seconds(m, n, 540, 8, network=slow)
                     - cluster_qp3_seconds(m, n, 540, 8, network=fast))
        assert added_big == pytest.approx(10 * added_small, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cluster_qp3_seconds(100, 100, 10, nodes=0)

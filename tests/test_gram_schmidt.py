"""Tests for CGS/MGS and the block orthogonalization
(repro.qr.gram_schmidt)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices.synthetic import spectrum_matrix
from repro.qr.gram_schmidt import (block_orth_columns, block_orth_rows,
                                   block_orth_rows_mixed, cgs, mgs)

from tests.helpers import assert_orthonormal_columns


@pytest.mark.parametrize("factorize", [cgs, mgs], ids=["cgs", "mgs"])
class TestGramSchmidtCommon:
    def test_reconstruction(self, factorize, tall_matrix):
        q, r = factorize(tall_matrix)
        np.testing.assert_allclose(q @ r, tall_matrix, atol=1e-10)

    def test_orthonormal(self, factorize, tall_matrix):
        q, _ = factorize(tall_matrix)
        assert_orthonormal_columns(q)

    def test_r_upper_triangular(self, factorize, tall_matrix):
        _, r = factorize(tall_matrix)
        np.testing.assert_allclose(r, np.triu(r))

    def test_r_diag_positive(self, factorize, tall_matrix):
        _, r = factorize(tall_matrix)
        assert np.all(np.diag(r) > 0)

    def test_wide_raises(self, factorize, wide_matrix):
        with pytest.raises(ShapeError):
            factorize(wide_matrix)

    def test_dependent_column_raises(self, factorize, rng):
        a = rng.standard_normal((40, 3))
        a = np.hstack([a, a[:, :1]])
        with pytest.raises(ShapeError):
            factorize(a)

    def test_reorthogonalized_reconstruction(self, factorize, tall_matrix):
        q, r = factorize(tall_matrix, reorthogonalize=True)
        np.testing.assert_allclose(q @ r, tall_matrix, atol=1e-9)
        assert_orthonormal_columns(q, tol=1e-13)


class TestNumericalContrast:
    def test_mgs_beats_cgs_on_illconditioned(self):
        # The classic result: CGS loses orthogonality like O(eps k^2),
        # MGS like O(eps k).
        a = spectrum_matrix(200, 30, 10.0 ** (-np.linspace(0, 7, 30)),
                            seed=1)
        qc, _ = cgs(a)
        qm, _ = mgs(a)
        dc = np.linalg.norm(qc.T @ qc - np.eye(30))
        dm = np.linalg.norm(qm.T @ qm - np.eye(30))
        assert dm < dc

    def test_cgs2_restores_orthogonality(self):
        a = spectrum_matrix(200, 30, 10.0 ** (-np.linspace(0, 7, 30)),
                            seed=1)
        q, _ = cgs(a, reorthogonalize=True)
        assert_orthonormal_columns(q, tol=1e-13)


class TestBlockOrthColumns:
    def test_orthogonal_to_basis(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0]
        v = rng.standard_normal((100, 5))
        w, c = block_orth_columns(q, v)
        np.testing.assert_allclose(q.T @ w, 0.0, atol=1e-12)

    def test_decomposition_identity(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0]
        v = rng.standard_normal((100, 5))
        w, c = block_orth_columns(q, v)
        np.testing.assert_allclose(q @ c + w, v, atol=1e-12)

    def test_none_basis_passthrough(self, rng):
        v = rng.standard_normal((50, 4))
        w, c = block_orth_columns(None, v)
        np.testing.assert_array_equal(w, v)
        assert c.shape == (0, 4)

    def test_returned_copy_not_view(self, rng):
        v = rng.standard_normal((50, 4))
        w, _ = block_orth_columns(None, v)
        assert w is not v

    def test_single_pass_vs_double(self, rng):
        q = np.linalg.qr(rng.standard_normal((80, 20)))[0]
        v = rng.standard_normal((80, 6)) * 1e-8 + q @ rng.standard_normal(
            (20, 6))
        w1, _ = block_orth_columns(q, v, reorthogonalize=False)
        w2, _ = block_orth_columns(q, v, reorthogonalize=True)
        r1 = np.linalg.norm(q.T @ w1) / max(np.linalg.norm(w1), 1e-300)
        r2 = np.linalg.norm(q.T @ w2) / max(np.linalg.norm(w2), 1e-300)
        assert r2 <= r1

    def test_row_mismatch_raises(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0]
        with pytest.raises(ShapeError):
            block_orth_columns(q, rng.standard_normal((50, 3)))


class TestBlockOrthRows:
    def test_orthogonal_to_basis(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0].T  # 10 x 100
        v = rng.standard_normal((5, 100))
        w, c = block_orth_rows(q, v)
        np.testing.assert_allclose(w @ q.T, 0.0, atol=1e-12)

    def test_decomposition_identity(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0].T
        v = rng.standard_normal((5, 100))
        w, c = block_orth_rows(q, v)
        np.testing.assert_allclose(c @ q + w, v, atol=1e-12)

    def test_none_basis_passthrough(self, rng):
        v = rng.standard_normal((4, 60))
        w, c = block_orth_rows(None, v)
        np.testing.assert_array_equal(w, v)
        assert c.shape == (4, 0)

    def test_column_mismatch_raises(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0].T
        with pytest.raises(ShapeError):
            block_orth_rows(q, rng.standard_normal((3, 50)))

    def test_matches_column_variant_transposed(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0]
        v = rng.standard_normal((100, 5))
        wc, cc = block_orth_columns(q, v)
        wr, cr = block_orth_rows(q.T, v.T)
        np.testing.assert_allclose(wr, wc.T, atol=1e-12)
        np.testing.assert_allclose(cr, cc.T, atol=1e-12)


class TestBlockOrthRowsMixed:
    """Mixed-precision BOrth (paper ref [21], Section 11)."""

    def test_final_orthogonality_is_double(self, rng):
        q = np.linalg.qr(rng.standard_normal((200, 12)))[0].T
        v = rng.standard_normal((5, 200))
        w, _ = block_orth_rows_mixed(q, v)
        np.testing.assert_allclose(w @ q.T, 0.0, atol=1e-12)

    def test_decomposition_identity_double(self, rng):
        q = np.linalg.qr(rng.standard_normal((200, 12)))[0].T
        v = rng.standard_normal((5, 200))
        w, c = block_orth_rows_mixed(q, v)
        np.testing.assert_allclose(c @ q + w, v, atol=1e-12)

    def test_matches_full_precision_result(self, rng):
        q = np.linalg.qr(rng.standard_normal((150, 8)))[0].T
        v = rng.standard_normal((3, 150))
        w_mixed, _ = block_orth_rows_mixed(q, v)
        w_full, _ = block_orth_rows(q, v)
        np.testing.assert_allclose(w_mixed, w_full, atol=1e-9)

    def test_none_basis_passthrough(self, rng):
        v = rng.standard_normal((3, 40))
        w, c = block_orth_rows_mixed(None, v)
        np.testing.assert_array_equal(w, v)
        assert c.shape == (3, 0)

    def test_mismatch_raises(self, rng):
        q = np.linalg.qr(rng.standard_normal((100, 10)))[0].T
        with pytest.raises(ShapeError):
            block_orth_rows_mixed(q, rng.standard_normal((3, 50)))

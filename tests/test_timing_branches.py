"""Focused tests of the timing-model branches in the multi-GPU and
cluster executors (phases charged, distribution-aware shapes, comm
events) and remaining kernel-model edges."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.random_sampling import random_sampling
from repro.gpu.cluster import ClusterExecutor, NetworkSpec
from repro.gpu.device import GPUExecutor, SymArray
from repro.gpu.kernels import KernelModel
from repro.gpu.multigpu import MultiGPUExecutor

M, N, K = 120_000, 2_000, 30


def _run(ex, q=1, m=M, n=N, k=K):
    cfg = SamplingConfig(rank=k, oversampling=10, power_iterations=q,
                         seed=0)
    return random_sampling(SymArray((m, n)), cfg, executor=ex)


class TestMultiGPUBranches:
    def test_local_gemm_shapes_in_labels(self):
        ex = MultiGPUExecutor(ng=3, seed=0)
        _run(ex)
        local = -(-M // 3)
        labels = [e[1] for e in ex.timeline.events]
        assert any(f"x{local}" in lab and "local" in lab
                   for lab in labels)

    def test_b_reduce_and_qr_comms_events(self):
        ex = MultiGPUExecutor(ng=2, seed=0)
        _run(ex)
        comm_labels = [e[1] for e in ex.timeline.events
                       if e[0] == "comms"]
        assert any("reduce B" in lab for lab in comm_labels)
        assert any("h2d B" in lab for lab in comm_labels)
        assert any("cholqr" in lab for lab in comm_labels)

    def test_replicated_b_orth_on_cpu(self):
        ex = MultiGPUExecutor(ng=2, seed=0)
        _run(ex, q=1)
        orth_labels = [e[1] for e in ex.timeline.events
                       if e[0] == "orth_iter"]
        # B (width n) factored on the CPU; C (width m) via multi-GPU
        # CholQR.
        assert any("cpu-" in lab for lab in orth_labels)
        assert any("mgpu-cholqr" in lab for lab in orth_labels)

    def test_q0_has_no_iteration_phases(self):
        ex = MultiGPUExecutor(ng=2, seed=0)
        res = _run(ex, q=0)
        assert res.breakdown.get("gemm_iter", 0.0) == 0.0
        assert res.breakdown.get("orth_iter", 0.0) == 0.0

    def test_more_gpus_less_local_time(self):
        totals = {}
        for ng in (1, 2, 4):
            ex = MultiGPUExecutor(ng=ng, seed=0)
            totals[ng] = _run(ex).seconds
        assert totals[1] > totals[2] > totals[4]

    def test_block_orth_distributed_vs_replicated(self):
        # Adaptive-style block orth against distributed C charges local
        # shapes plus coefficient traffic.
        ex = MultiGPUExecutor(ng=3, seed=0)
        ex.bind(SymArray((M, N)))
        c_prev = SymArray((20, M))
        c_new = SymArray((8, M))
        ex.block_orth_rows(c_prev, c_new)
        assert ex.timeline.seconds("comms") > 0
        assert ex.timeline.seconds("orth_iter") > 0


class TestClusterBranches:
    def test_network_events_only_multinode(self):
        single = ClusterExecutor(nodes=1, gpus_per_node=3, seed=0)
        _run(single)
        labels = [e[1] for e in single.timeline.events
                  if e[0] == "comms"]
        assert not any("allreduce" in lab for lab in labels)

        multi = ClusterExecutor(nodes=4, gpus_per_node=3, seed=0)
        _run(multi)
        labels = [e[1] for e in multi.timeline.events
                  if e[0] == "comms"]
        assert any("allreduce" in lab for lab in labels)

    def test_network_spec_drives_comm_time(self):
        fast = ClusterExecutor(nodes=4, gpus_per_node=1, seed=0)
        slow = ClusterExecutor(nodes=4, gpus_per_node=1, seed=0,
                               network=NetworkSpec(bandwidth_gbs=0.5,
                                                   latency_s=1e-3))
        rf = _run(fast)
        rs = _run(slow)
        assert rs.breakdown["comms"] > 3 * rf.breakdown["comms"]

    def test_gpus_per_node_tracked(self):
        ex = ClusterExecutor(nodes=2, gpus_per_node=4, seed=0)
        assert ex.ng == 8
        assert ex.local_rows(M) == -(-M // 8)


class TestKernelModelEdges:
    def test_caqp3_monotone_in_k(self):
        km = KernelModel()
        ts = [km.caqp3_seconds(50_000, 2_500, k) for k in (16, 64, 256)]
        assert ts[0] < ts[1] < ts[2]

    def test_caqp3_block_size_tradeoff(self):
        km = KernelModel()
        # Tiny panels multiply the per-panel latency.
        t_small = km.caqp3_seconds(50_000, 2_500, 256, block_size=4)
        t_big = km.caqp3_seconds(50_000, 2_500, 256, block_size=64)
        assert t_small != t_big

    def test_gemm_efficiency_capped_at_peak(self):
        km = KernelModel()
        t = km.gemm_seconds(512, 2_500, 50_000, efficiency=100.0)
        rate = 2.0 * 512 * 2_500 * 50_000 / (t * 1e9)
        assert rate <= km.spec.dgemm_peak_gflops * 1.001

    def test_potrf_latency_floor(self):
        km = KernelModel()
        assert km.potrf_seconds(2) > 0
        assert km.potrf_seconds(256) > km.potrf_seconds(16)

    def test_axpy_positive(self):
        assert KernelModel().axpy_seconds(10_000) > 0

    def test_trmm_equals_trsm_model(self):
        km = KernelModel()
        assert km.trmm_seconds(64, 500) == km.trsm_seconds(64, 500)


class TestHarnessVariants:
    def test_fig12_vs_fig13_consistency(self):
        """The (m=50k, n=2.5k, l=64) point appears in both sweeps and
        must agree."""
        from repro.bench.figures import fig12_time_vs_cols, \
            fig13_time_vs_rank
        p12 = [p for p in fig12_time_vs_cols(ns=(2_500,))][0]
        p13 = [p for p in fig13_time_vs_rank(ls=(64,))][0]
        assert p12["total"] == pytest.approx(p13["total"], rel=1e-9)
        assert p12["qp3"] == pytest.approx(p13["qp3"], rel=1e-9)

    def test_fig11_matches_fig14_q_slice(self):
        from repro.bench.figures import (fig11_time_vs_rows,
                                         fig14_time_vs_iterations)
        p11 = fig11_time_vs_rows(ms=(50_000,), q=2)[0]
        d14 = fig14_time_vs_iterations(ms=(50_000,), qs=(2,))
        assert p11["total"] == pytest.approx(d14["q2"][0], rel=1e-9)

"""Tests for device memory accounting and transfers (repro.gpu.memory)."""

import pytest

from repro.errors import ConfigurationError, OutOfDeviceMemoryError
from repro.gpu.memory import DeviceMemory, TransferModel


class TestDeviceMemory:
    def test_allocate_and_free(self):
        mem = DeviceMemory(1000)
        h = mem.allocate(400)
        assert mem.used == 400
        assert mem.available == 600
        mem.free(h)
        assert mem.used == 0

    def test_oom_raises_with_details(self):
        mem = DeviceMemory(100)
        mem.allocate(80)
        with pytest.raises(OutOfDeviceMemoryError) as exc:
            mem.allocate(50)
        assert exc.value.requested == 50
        assert exc.value.available == 20
        assert exc.value.capacity == 100

    def test_high_water_mark(self):
        mem = DeviceMemory(1000)
        h = mem.allocate(700)
        mem.free(h)
        mem.allocate(100)
        assert mem.high_water == 700

    def test_double_free_raises(self):
        mem = DeviceMemory(100)
        h = mem.allocate(10)
        mem.free(h)
        with pytest.raises(ConfigurationError):
            mem.free(h)

    def test_negative_allocation_raises(self):
        with pytest.raises(ConfigurationError):
            DeviceMemory(100).allocate(-1)

    def test_zero_capacity_raises(self):
        with pytest.raises(ConfigurationError):
            DeviceMemory(0)

    def test_reset_clears(self):
        mem = DeviceMemory(100)
        mem.allocate(60)
        mem.reset()
        assert mem.used == 0
        mem.allocate(100)  # full capacity available again

    def test_paper_matrix_fits_k40c(self):
        """The 500k x 500 numerics matrix (2 GB) fits the 12 GB K40c;
        a hypothetical 2M x 1000 (16 GB) does not."""
        mem = DeviceMemory(12 * 1024 ** 3)
        mem.allocate(500_000 * 500 * 8)
        with pytest.raises(OutOfDeviceMemoryError):
            mem.allocate(2_000_000 * 1000 * 8)


class TestTransferModel:
    def test_latency_floor(self):
        t = TransferModel(bandwidth_gbs=6.0, latency_s=1e-5)
        assert t.seconds(0) == pytest.approx(1e-5)

    def test_bandwidth_term(self):
        t = TransferModel(bandwidth_gbs=6.0, latency_s=0.0)
        assert t.seconds(6_000_000_000) == pytest.approx(1.0)

    def test_negative_raises(self):
        with pytest.raises(ConfigurationError):
            TransferModel().seconds(-1)

    def test_reduce_scales_with_devices(self):
        t = TransferModel(bandwidth_gbs=6.0, latency_s=0.0)
        assert t.reduce_seconds(6_000_000, 3) == pytest.approx(
            3 * t.seconds(6_000_000))

    def test_broadcast_scales_with_devices(self):
        t = TransferModel(bandwidth_gbs=6.0, latency_s=1e-5)
        assert t.broadcast_seconds(1000, 4) == pytest.approx(
            4 * t.seconds(1000))

"""Tests for the stream/event scheduler (repro.gpu.streams) and its
integration with the multi-GPU executor and the span/trace exports."""

import pytest

from repro.config import SamplingConfig
from repro.core.random_sampling import random_sampling
from repro.errors import ConfigurationError
from repro.gpu.device import SymArray
from repro.gpu.multigpu import MultiGPUExecutor
from repro.gpu.streams import (DEVICE_STREAMS, HOST, HOST_STREAMS,
                               StreamEvent, StreamScheduler)
from repro.obs.chrome import spans_to_chrome
from repro.obs.spans import SpanRecorder


def _mgpu_run(ng=3, overlap=True, m=150_000, n=2_500):
    ex = MultiGPUExecutor(ng=ng, seed=0, overlap=overlap)
    cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=1,
                         seed=0)
    res = random_sampling(SymArray((m, n)), cfg, executor=ex)
    return ex, res


class TestValidation:
    def test_ng_validation(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=0)

    def test_unknown_phase(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=1).submit("warp", 1.0)

    def test_negative_seconds(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=1).submit("gemm_iter", -1.0)

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=2).submit("gemm_iter", 1.0, device=2)

    def test_unknown_stream(self):
        sched = StreamScheduler(ng=1)
        with pytest.raises(ConfigurationError):
            sched.submit("gemm_iter", 1.0, stream="pcie")  # host-only
        with pytest.raises(ConfigurationError):
            sched.submit("comms", 1.0, device=HOST, stream="compute")

    def test_deps_must_be_events(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=1).submit("gemm_iter", 1.0, deps=[1.5])

    def test_group_needs_placements(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=1).submit_group("gemm_iter", 1.0,
                                               placements=[])

    def test_malformed_restore(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=1).restore({"ready": {}})

    def test_malformed_state_key(self):
        with pytest.raises(ConfigurationError):
            StreamScheduler(ng=1).restore(
                {"ready": {"compute": 1.0}, "busy": {},
                 "frontier": 1.0, "submissions": 1})

    def test_group_validates_every_placement_when_serial(self):
        """``overlap=False`` truncates the mirrors but only *after*
        validation: a typo in any placement must fail identically in
        serialized and overlapped mode."""
        for overlap in (False, True):
            sched = StreamScheduler(ng=2, overlap=overlap)
            with pytest.raises(ConfigurationError):
                sched.submit_group("gemm_iter", 1.0, placements=[
                    (0, "compute"), (1, "compte")])
            with pytest.raises(ConfigurationError):
                sched.submit_group("gemm_iter", 1.0, placements=[
                    (0, "compute"), (5, "compute")])
            assert sched.submissions == 0


class TestSerialEquivalence:
    """overlap=off must be the old serial model, bit for bit."""

    def test_off_elapsed_is_sum(self):
        sched = StreamScheduler(ng=2, overlap=False)
        c1 = sched.submit("gemm_iter", 1.0)
        sched.submit("comms", 0.5, device=0, stream="d2h",
                     resources=[(HOST, "pcie")], deps=[c1])
        sched.submit_group("sampling", 0.25,
                           placements=[(0, "compute"), (1, "compute")])
        assert sched.elapsed == pytest.approx(1.75)
        assert sched.elapsed == pytest.approx(sched.timeline.total)

    def test_multigpu_off_matches_timeline_sum(self):
        for ng in (2, 3):
            ex, res = _mgpu_run(ng=ng, overlap=False)
            assert res.seconds == pytest.approx(sum(res.breakdown.values()))

    def test_breakdowns_identical_on_off(self):
        _, on = _mgpu_run(ng=3, overlap=True)
        _, off = _mgpu_run(ng=3, overlap=False)
        assert set(on.breakdown) == set(off.breakdown)
        for phase, secs in on.breakdown.items():
            assert secs == pytest.approx(off.breakdown[phase], rel=1e-9)


class TestOverlapBounds:
    def test_critical_path_simple_pipeline(self):
        """A gather that depends only on the previous chunk hides
        behind the next chunk's compute."""
        sched = StreamScheduler(ng=1, overlap=True)
        c1 = sched.submit("gemm_iter", 1.0)
        sched.submit("comms", 0.5, device=0, stream="d2h",
                     resources=[(HOST, "pcie")], deps=[c1])
        sched.submit("gemm_iter", 1.0)  # FIFO on the compute stream
        assert sched.elapsed == pytest.approx(2.0)       # not 2.5
        assert sched.timeline.total == pytest.approx(2.5)  # charges keep

    def test_on_never_worse_than_off(self):
        for ng in (1, 2, 3):
            _, on = _mgpu_run(ng=ng, overlap=True)
            _, off = _mgpu_run(ng=ng, overlap=False)
            assert on.seconds <= off.seconds + 1e-12

    def test_elapsed_bounded_below_by_busiest_stream(self):
        ex, res = _mgpu_run(ng=3, overlap=True)
        busiest = max(
            ex.streams.busy_seconds(d, s)
            for d in list(range(3)) + [HOST]
            for s in (HOST_STREAMS if d == HOST else DEVICE_STREAMS))
        assert busiest > 0
        assert res.seconds >= busiest - 1e-12

    def test_elapsed_at_least_max_compute_comms(self):
        """Per the satellite spec: with overlap on, elapsed can never
        beat max(total compute, total comms) on any one device."""
        ex, res = _mgpu_run(ng=2, overlap=True)
        compute = ex.streams.busy_seconds(0, "compute")
        comms = ex.streams.busy_seconds(HOST, "pcie")
        assert res.seconds >= max(compute, comms) - 1e-12


class TestReplayResume:
    def _script(self, sched, events=()):
        evs = list(events)
        c1 = sched.submit("gemm_iter", 0.7)
        evs.append(c1)
        sched.submit("comms", 0.2, device=0, stream="d2h",
                     resources=[(HOST, "pcie")], deps=[c1])
        sched.submit_group("sampling", 0.4,
                           placements=[(0, "compute"), (1, "compute")])
        sched.submit("orth_iter", 0.3, device=HOST, stream="cpu",
                     after_all=True)
        return sched

    def test_replay_deterministic(self):
        a = self._script(StreamScheduler(ng=2, overlap=True))
        b = self._script(StreamScheduler(ng=2, overlap=True))
        assert a.elapsed == b.elapsed
        assert a.state() == b.state()

    def test_resume_from_snapshot(self):
        full = self._script(self._script(StreamScheduler(ng=2)))
        half = self._script(StreamScheduler(ng=2))
        snap = half.state()
        resumed = StreamScheduler(ng=2)
        resumed.restore(snap)
        self._script(resumed)
        assert resumed.elapsed == pytest.approx(full.elapsed)
        assert resumed.state()["busy"] == pytest.approx(
            full.state()["busy"])

    def test_state_survives_json_roundtrip(self):
        import json
        half = self._script(StreamScheduler(ng=2))
        snap = json.loads(json.dumps(half.state()))
        assert snap == half.state()   # string keys: lossless round-trip
        resumed = StreamScheduler(ng=2)
        resumed.restore(snap)
        full = self._script(self._script(StreamScheduler(ng=2)))
        self._script(resumed)
        assert resumed.elapsed == pytest.approx(full.elapsed)
        assert resumed.state() == full.state()

    def test_restore_accepts_legacy_tuple_keys(self):
        half = self._script(StreamScheduler(ng=2))
        snap = half.state()
        legacy = dict(snap)
        legacy["ready"] = {(int(k.split(":")[0]), k.split(":")[1]): v
                           for k, v in snap["ready"].items()}
        legacy["busy"] = {(int(k.split(":")[0]), k.split(":")[1]): v
                          for k, v in snap["busy"].items()}
        resumed = StreamScheduler(ng=2)
        resumed.restore(legacy)
        assert resumed.state() == snap

    def test_reset_clears_clock(self):
        sched = self._script(StreamScheduler(ng=2))
        sched.reset()
        assert sched.elapsed == 0.0
        assert sched.submissions == 0


class TestGroupMirrors:
    def test_mirrors_recorded_once_accounted(self):
        rec = SpanRecorder()
        sched = StreamScheduler(ng=3, overlap=True)
        sched.attach_recorder(rec)
        sched.submit_group("gemm_iter", 1.0, placements=[
            (0, "compute"), (1, "compute"), (2, "compute")])
        spans = list(rec.kernel_spans())
        assert len(spans) == 3
        assert sum(s.accounted for s in spans) == 1
        assert rec.counters["gemm_iter"].seconds == pytest.approx(1.0)
        assert rec.counters["gemm_iter"].calls == 1
        assert sched.timeline.total == pytest.approx(1.0)

    def test_no_mirrors_when_serial(self):
        rec = SpanRecorder()
        sched = StreamScheduler(ng=3, overlap=False)
        sched.attach_recorder(rec)
        sched.submit_group("gemm_iter", 1.0, placements=[
            (0, "compute"), (1, "compute"), (2, "compute")])
        assert len(list(rec.kernel_spans())) == 1
        assert sched.elapsed == pytest.approx(1.0)


class TestChromeStreamTracks:
    def test_per_device_per_stream_tracks(self):
        ex = MultiGPUExecutor(ng=3, seed=0, overlap=True)
        rec = SpanRecorder()
        ex.attach_recorder(rec)
        cfg = SamplingConfig(rank=54, oversampling=10,
                             power_iterations=1, seed=0)
        with rec.run_span("fig15 ng=3"):
            random_sampling(SymArray((150_000, 2_500)), cfg, executor=ex)
        events = spans_to_chrome(rec)
        process_names = {e["pid"]: e["args"]["name"] for e in events
                         if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"gpu0", "gpu1", "gpu2", "host"} <= set(
            process_names.values())
        thread_names = {(e["pid"], e["tid"]): e["args"]["name"]
                        for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        by_pid = {}
        for (pid, _tid), name in thread_names.items():
            by_pid.setdefault(process_names.get(pid), set()).add(name)
        assert "compute" in by_pid["gpu0"] and "d2h" in by_pid["gpu0"]
        # The host cpu stream records spans (accumulate/potrf); the
        # pcie lane is a serialization resource, not a recording track.
        assert "cpu" in by_pid["host"]
        streams = {e["args"].get("stream") for e in events
                   if e["ph"] == "X" and "args" in e
                   and e["args"].get("stream")}
        assert "compute" in streams and "d2h" in streams
        # Mirror spans are in the trace but flagged unaccounted.
        accounted = [e["args"]["accounted"] for e in events
                     if e["ph"] == "X" and "args" in e
                     and "accounted" in e["args"]]
        assert any(accounted) and not all(accounted)

    def test_overlap_visible_in_trace(self):
        """With overlap on, some comms span must start before the last
        compute span of its step ends — actual overlap in the trace."""
        ex = MultiGPUExecutor(ng=3, seed=0, overlap=True)
        rec = SpanRecorder()
        ex.attach_recorder(rec)
        cfg = SamplingConfig(rank=54, oversampling=10,
                             power_iterations=1, seed=0)
        with rec.run_span("overlap"):
            random_sampling(SymArray((150_000, 2_500)), cfg, executor=ex)
        kernels = [s for s in rec.kernel_spans() if s.stream is not None]
        comms = [s for s in kernels if s.phase == "comms"]
        compute = [s for s in kernels if s.stream == "compute"]
        assert any(
            c.start < k.end and c.end > k.start
            for c in comms for k in compute)

"""Tests for the HapMap-like genotype generator
(repro.matrices.hapmap_like)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices.hapmap_like import (DEFAULT_POPULATIONS, HapmapPanel,
                                        hapmap_like_matrix)


@pytest.fixture(scope="module")
def panel() -> HapmapPanel:
    return hapmap_like_matrix(3000, 120, seed=0, return_panel=True)


class TestGenerator:
    def test_shape(self, panel):
        assert panel.genotypes.shape == (3000, 120)
        assert panel.shape == (3000, 120)

    def test_values_are_allele_counts(self, panel):
        assert set(np.unique(panel.genotypes)).issubset({0.0, 1.0, 2.0})

    def test_labels_cover_all_populations(self, panel):
        assert set(panel.labels.tolist()) == {0, 1, 2, 3}

    def test_population_sizes_balanced(self, panel):
        counts = np.bincount(panel.labels)
        assert counts.max() - counts.min() <= 1

    def test_population_names(self, panel):
        assert panel.population_names == ("CEU", "GIH", "JPT", "YRI")

    def test_frequencies_in_open_interval(self, panel):
        assert np.all(panel.allele_frequencies > 0)
        assert np.all(panel.allele_frequencies < 1)

    def test_matrix_only_return(self):
        a = hapmap_like_matrix(100, 20, seed=1)
        assert isinstance(a, np.ndarray)
        assert a.shape == (100, 20)

    def test_seeded_reproducible(self):
        a = hapmap_like_matrix(200, 30, seed=5)
        b = hapmap_like_matrix(200, 30, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_custom_populations(self):
        pops = (("A", 0.05), ("B", 0.3))
        p = hapmap_like_matrix(500, 40, populations=pops, seed=2,
                               return_panel=True)
        assert p.population_names == ("A", "B")
        assert set(p.labels.tolist()) == {0, 1}

    def test_bad_fst_raises(self):
        with pytest.raises(ShapeError):
            hapmap_like_matrix(100, 20, populations=(("X", 1.5),))

    def test_too_few_individuals_raises(self):
        with pytest.raises(ShapeError):
            hapmap_like_matrix(100, 2)

    def test_bad_maf_range_raises(self):
        with pytest.raises(ShapeError):
            hapmap_like_matrix(100, 20, min_maf=0.4, max_maf=0.3)


class TestSpectralStructure:
    def test_slow_decay_like_paper(self, panel):
        """Table 1's hapmap signature: tiny effective condition number
        at the k = 50 truncation (kappa ~ 2e1 vs ~1e5 for the synthetic
        matrices) because the genotype noise floor is high."""
        a = panel.genotypes - panel.genotypes.mean(axis=1, keepdims=True)
        s = np.linalg.svd(a, compute_uv=False)
        kappa = s[0] / s[51]
        assert kappa < 100.0

    def test_population_structure_in_top_components(self, panel):
        """The top right-singular vectors separate the populations:
        between-population scatter should dominate within-population
        scatter in the leading coordinates."""
        a = panel.genotypes - panel.genotypes.mean(axis=1, keepdims=True)
        _, _, vt = np.linalg.svd(a, full_matrices=False)
        coords = vt[:3, :].T  # individuals x 3
        centers = np.stack([coords[panel.labels == j].mean(axis=0)
                            for j in range(4)])
        within = np.mean([np.var(coords[panel.labels == j], axis=0).sum()
                          for j in range(4)])
        between = np.var(centers, axis=0).sum()
        assert between > within

"""Tests for repro.tune: search invariants, plan artifacts, the plan
cache, and the plan/auto_tune plumbing into configs and executors."""

import json
import os

import numpy as np
import pytest

from repro.config import AdaptiveConfig, SamplingConfig
from repro.core.random_sampling import random_sampling
from repro.errors import ConfigurationError
from repro.gpu.device import GPUExecutor, SymArray
from repro.gpu.multigpu import CPUSpec, MultiGPUExecutor
from repro.gpu.specs import KEPLER_K40C, scaled_spec
from repro.tune import (MULTIGPU_SPACE, PLAN_SCHEMA, Param, ParamSpace,
                        PlanKey, TunePlan, clear_plan_cache,
                        evaluate_candidate, get_plan, load_plan_file,
                        lookup_plan, model_fingerprint, plan_cache_info,
                        store_plan, tune)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import (HealthCheck, given, settings,  # noqa: E402
                        strategies as st)


KEY = PlanKey(m=150_000, n=2_500, k=54, ng=3)
FP = model_fingerprint(KEPLER_K40C, CPUSpec(), "simulated")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def make_plan(key=KEY, knobs=None, fingerprint=FP, **kw):
    return TunePlan(key=key, knobs=knobs or {"pipeline_chunks": 8},
                    seed=0, baseline_elapsed=1.0, tuned_elapsed=0.9,
                    model_fingerprint=fingerprint, **kw)


# ----------------------------------------------------------------------
# search space
# ----------------------------------------------------------------------
class TestParamSpace:
    def test_defaults_are_members(self):
        MULTIGPU_SPACE.validate(MULTIGPU_SPACE.defaults())

    def test_rejects_unsorted_choices(self):
        with pytest.raises(ConfigurationError):
            Param("x", (4, 2, 1), 2)

    def test_rejects_default_outside_choices(self):
        with pytest.raises(ConfigurationError):
            Param("x", (1, 2, 4), 3)

    def test_neighbors_clamp_at_ends(self):
        p = MULTIGPU_SPACE["pipeline_chunks"]
        assert p.neighbors(1) == (2,)
        assert p.neighbors(32) == (16,)
        assert p.neighbors(4) == (2, 8)

    def test_validate_flags_extra_and_missing(self):
        with pytest.raises(ConfigurationError, match="extra"):
            MULTIGPU_SPACE.validate({"pipeline_chunks": 4,
                                     "cholqr_buffers": 2, "bogus": 1})
        with pytest.raises(ConfigurationError, match="missing"):
            MULTIGPU_SPACE.validate({"pipeline_chunks": 4})

    def test_neighborhood_excludes_center(self):
        space = ParamSpace((Param("a", (1, 2, 4), 2),
                            Param("b", (1, 2), 1)))
        hood = list(space.neighborhood({"a": 2, "b": 1}))
        assert {"a": 2, "b": 1} not in hood
        # 3 a-options x 2 b-options - the center itself.
        assert len(hood) == 5


# ----------------------------------------------------------------------
# the core invariant: tuned never loses to default on the modeled clock
# ----------------------------------------------------------------------
class TestSearchInvariants:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(m=st.sampled_from([60_000, 100_000, 150_000]),
           n=st.sampled_from([1_500, 2_500]),
           k=st.sampled_from([30, 54, 90]),
           ng=st.integers(min_value=2, max_value=4),
           seed=st.integers(min_value=0, max_value=3))
    def test_accepted_plan_never_slower_than_default(self, m, n, k, ng,
                                                     seed):
        key = PlanKey(m=m, n=n, k=k, ng=ng)
        plan = tune(key, seed=seed, use_cache=False)
        default_elapsed, _ = evaluate_candidate(
            key, MULTIGPU_SPACE.defaults())
        assert plan.tuned_elapsed <= default_elapsed
        assert plan.baseline_elapsed == default_elapsed
        assert plan.race_checked

    def test_search_is_deterministic(self):
        a = tune(KEY, seed=0, use_cache=False)
        b = tune(KEY, seed=0, use_cache=False)
        assert a.to_json() == b.to_json()

    def test_fig15_tuned_beats_default(self):
        plan = tune(KEY, use_cache=False)
        assert plan.tuned_elapsed < plan.baseline_elapsed
        assert plan.improvement > 0

    def test_phase_sums_invariant_across_knobs(self):
        _, default_bd = evaluate_candidate(KEY, MULTIGPU_SPACE.defaults())
        _, tuned_bd = evaluate_candidate(
            KEY, {"pipeline_chunks": 32, "cholqr_buffers": 8})
        assert set(default_bd) == set(tuned_bd)
        for phase in default_bd:
            assert default_bd[phase] == pytest.approx(
                tuned_bd[phase], rel=1e-12)

    def test_trace_records_every_evaluation(self):
        plan = tune(KEY, use_cache=False)
        assert plan.evaluations == len(plan.trace)
        assert plan.trace[0]["stage"] == "baseline"
        assert plan.trace[0]["knobs"] == MULTIGPU_SPACE.defaults()
        accepted = [t for t in plan.trace if t["accepted"]]
        assert accepted[-1]["knobs"] == plan.knobs

    def test_single_gpu_key_rejected(self):
        with pytest.raises(ConfigurationError, match="ng >= 2"):
            evaluate_candidate(PlanKey(m=1000, n=100, k=10, ng=1), {})


# ----------------------------------------------------------------------
# plan artifact
# ----------------------------------------------------------------------
class TestPlanArtifact:
    def test_json_round_trip(self, tmp_path):
        plan = tune(KEY, use_cache=False)
        path = tmp_path / "plan.json"
        plan.write(str(path))
        loaded = load_plan_file(str(path))
        assert loaded.to_json() == plan.to_json()
        assert loaded.key == plan.key
        assert loaded.knobs == plan.knobs
        assert loaded.trace == plan.trace

    def test_schema_id_enforced(self, tmp_path):
        plan = make_plan()
        doc = plan.to_dict()
        doc["schema"] = "repro-tune-plan/99"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ConfigurationError, match="schema"):
            load_plan_file(str(path))

    def test_regressing_plan_unconstructible(self):
        with pytest.raises(ConfigurationError, match="regresses"):
            TunePlan(key=KEY, knobs={"pipeline_chunks": 8}, seed=0,
                     baseline_elapsed=1.0, tuned_elapsed=1.1,
                     model_fingerprint=FP)

    def test_artifact_carries_schema_and_improvement(self):
        doc = make_plan().to_dict()
        assert doc["schema"] == PLAN_SCHEMA
        assert doc["improvement"] == pytest.approx(0.1)

    def test_malformed_file_is_configuration_error(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_plan_file(str(path))
        with pytest.raises(ConfigurationError):
            load_plan_file(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_store_then_lookup(self, tmp_path):
        plan = make_plan()
        assert store_plan(plan, directory=str(tmp_path))
        hit = lookup_plan(KEY, FP, directory=str(tmp_path))
        assert hit is plan
        assert plan_cache_info()["hits"] == 1

    def test_disk_survives_memory_clear(self, tmp_path):
        plan = make_plan()
        store_plan(plan, directory=str(tmp_path))
        clear_plan_cache()
        hit = lookup_plan(KEY, FP, directory=str(tmp_path))
        assert hit is not None
        assert hit.to_json() == plan.to_json()

    def test_kernel_model_change_invalidates(self, tmp_path):
        store_plan(make_plan(), directory=str(tmp_path))
        other_spec = scaled_spec("faster", compute_scale=2.0)
        stale_fp = model_fingerprint(other_spec, CPUSpec(), "simulated")
        assert stale_fp != FP
        assert lookup_plan(KEY, stale_fp, directory=str(tmp_path)) is None
        # The stale entry was evicted from memory and disk.
        clear_plan_cache()
        assert lookup_plan(KEY, FP, directory=str(tmp_path)) is None

    def test_backend_change_invalidates(self, tmp_path):
        store_plan(make_plan(), directory=str(tmp_path))
        numpy_fp = model_fingerprint(KEPLER_K40C, CPUSpec(), "numpy")
        assert lookup_plan(KEY, numpy_fp, directory=str(tmp_path)) is None

    def test_lru_eviction(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", "2")
        keys = [PlanKey(m=10_000 * (i + 1), n=500, k=10, ng=2)
                for i in range(3)]
        for k in keys:
            store_plan(make_plan(key=k), directory=str(tmp_path))
        assert plan_cache_info()["entries"] == 2
        # Oldest evicted from memory; disk still has it.
        info_before = plan_cache_info()
        assert lookup_plan(keys[0], FP, directory=str(tmp_path)) is not None
        assert plan_cache_info()["hits"] == info_before["hits"] + 1

    def test_cache_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", "0")
        assert not store_plan(make_plan(), directory=str(tmp_path))
        assert lookup_plan(KEY, FP, directory=str(tmp_path)) is None
        assert not list(tmp_path.glob("*.plan.json"))

    def test_bad_env_is_configuration_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", "lots")
        with pytest.raises(ConfigurationError, match="integer"):
            store_plan(make_plan())
        monkeypatch.setenv("REPRO_TUNE_CACHE", "-1")
        with pytest.raises(ConfigurationError, match=">= 0"):
            lookup_plan(KEY, FP)

    def test_get_plan_serves_cache_then_searches(self, tmp_path):
        first = get_plan(KEY, cache_dir=str(tmp_path))
        misses = plan_cache_info()["misses"]
        second = get_plan(KEY, cache_dir=str(tmp_path))
        assert second is first or second.to_json() == first.to_json()
        assert plan_cache_info()["misses"] == misses  # no new search


# ----------------------------------------------------------------------
# plan application: executors, configs, host math
# ----------------------------------------------------------------------
class TestPlanApplication:
    def test_executor_apply_plan(self):
        ex = MultiGPUExecutor(ng=2)
        ex.apply_plan({"pipeline_chunks": 16, "cholqr_buffers": 4})
        assert ex.pipeline_chunks == 16
        assert ex.cholqr_buffers == 4

    def test_executor_rejects_foreign_only_plan(self):
        ex = MultiGPUExecutor(ng=2)
        with pytest.raises(ConfigurationError, match="none of the"):
            ex.apply_plan({"l_inc": 16})

    def test_constructor_plan_overrides_kwargs(self):
        ex = MultiGPUExecutor(ng=2, pipeline_chunks=2,
                              plan={"pipeline_chunks": 16})
        assert ex.pipeline_chunks == 16

    def test_bit_identical_host_math_tuned_vs_default(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((400, 120))
        cfg = SamplingConfig(rank=20, power_iterations=1, seed=1)
        f_def = random_sampling(a, cfg,
                                executor=MultiGPUExecutor(ng=2, seed=1))
        tuned_ex = MultiGPUExecutor(
            ng=2, seed=1, plan={"pipeline_chunks": 32,
                                "cholqr_buffers": 8})
        f_tuned = random_sampling(a, cfg, executor=tuned_ex)
        assert np.array_equal(np.asarray(f_def.q), np.asarray(f_tuned.q))
        assert np.array_equal(np.asarray(f_def.r), np.asarray(f_tuned.r))
        assert np.array_equal(np.asarray(f_def.perm),
                              np.asarray(f_tuned.perm))

    def test_sampling_config_plan_path(self, tmp_path):
        plan = tune(KEY, use_cache=False)
        path = tmp_path / "p.json"
        plan.write(str(path))
        ex = MultiGPUExecutor(ng=3)
        cfg = SamplingConfig(rank=54, power_iterations=1, seed=0,
                             plan=str(path))
        res = random_sampling(SymArray((KEY.m, KEY.n)), cfg, executor=ex)
        assert res.seconds == pytest.approx(plan.tuned_elapsed, rel=1e-12)

    def test_sampling_config_plan_on_single_gpu_errors(self, tmp_path):
        path = tmp_path / "p.json"
        make_plan().write(str(path))
        cfg = SamplingConfig(rank=10, plan=str(path))
        with pytest.raises(ConfigurationError, match="multi-GPU"):
            random_sampling(SymArray((1000, 100)), cfg,
                            executor=GPUExecutor())

    def test_config_rejects_plan_plus_auto_tune(self):
        with pytest.raises(ConfigurationError, match="not both"):
            SamplingConfig(rank=10, plan="x.json", auto_tune=True)
        with pytest.raises(ConfigurationError, match="not both"):
            AdaptiveConfig(tolerance=1e-6, plan="x.json", auto_tune=True)

    def test_adaptive_config_l_inc_from_plan(self, tmp_path):
        from repro.tune import apply_plan_to_config
        path = tmp_path / "p.json"
        make_plan(knobs={"l_inc": 16}).write(str(path))
        cfg = apply_plan_to_config(
            AdaptiveConfig(tolerance=1e-6, plan=str(path)))
        assert cfg.l_inc == 16

    def test_serve_config_plan(self, tmp_path):
        from repro.serve.service import LowRankService, ServeConfig
        path = tmp_path / "p.json"
        make_plan(knobs={"max_batch": 16}).write(str(path))
        svc = LowRankService(ServeConfig(plan=str(path)))
        assert svc.config.max_batch == 16


# ----------------------------------------------------------------------
# harness / CLI exposure of pipeline_chunks
# ----------------------------------------------------------------------
class TestKnobExposure:
    def test_timed_fixed_rank_pipeline_chunks(self):
        from repro.bench.harness import timed_fixed_rank
        base = timed_fixed_rank(m=150_000, n=2_500, ng=3)
        deep = timed_fixed_rank(m=150_000, n=2_500, ng=3,
                                pipeline_chunks=32)
        assert deep.total < base.total
        assert sum(base.breakdown.values()) == pytest.approx(
            sum(deep.breakdown.values()), rel=1e-12)

    def test_timed_fixed_rank_rejects_knobs_at_ng1(self):
        from repro.bench.harness import timed_fixed_rank
        with pytest.raises(ConfigurationError, match="ng >= 2"):
            timed_fixed_rank(m=10_000, n=500, ng=1, pipeline_chunks=8)

    def test_env_pipeline_chunks(self, monkeypatch):
        from repro.bench.harness import timed_fixed_rank
        monkeypatch.setenv("REPRO_PIPELINE_CHUNKS", "32")
        deep = timed_fixed_rank(m=150_000, n=2_500, ng=3)
        explicit = timed_fixed_rank(m=150_000, n=2_500, ng=3,
                                    pipeline_chunks=32)
        assert deep.total == explicit.total
        # Single-GPU points ignore the env so mixed-ng sweeps work.
        timed_fixed_rank(m=10_000, n=500, ng=1)

    def test_env_pipeline_chunks_validation(self, monkeypatch):
        from repro.bench.harness import timed_fixed_rank
        monkeypatch.setenv("REPRO_PIPELINE_CHUNKS", "zero")
        with pytest.raises(ConfigurationError, match="integer"):
            timed_fixed_rank(m=150_000, n=2_500, ng=3)
        monkeypatch.setenv("REPRO_PIPELINE_CHUNKS", "0")
        with pytest.raises(ConfigurationError, match=">= 1"):
            timed_fixed_rank(m=150_000, n=2_500, ng=3)

    def test_recorder_cache_counters(self):
        from repro.bench.harness import observed_fixed_rank
        _, rec = observed_fixed_rank("fig15")
        assert set(rec.cache_counters) >= {"matrix_gallery", "plan"}
        for info in rec.cache_counters.values():
            assert {"hits", "misses", "entries"} <= set(info)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTuneCli:
    def test_search_bench_and_gate(self, tmp_path, monkeypatch, capsys):
        from repro.tune.cli import main
        monkeypatch.chdir(tmp_path)
        bench = tmp_path / "BENCH_tune.json"
        summary = tmp_path / "summary.md"
        rc = main(["search", "--figure", "fig15", "--ng", "2", "--ng", "3",
                   "--bench", str(bench), "--summary", str(summary),
                   "--gate", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        from repro.obs.artifact import load_artifact
        doc = load_artifact(str(bench))
        points = doc["figures"]["tune"]["points"]
        assert len(points) == 4  # 2 ng x (default, tuned)
        by = {(p["params"]["ng"], p["params"]["variant"]): p
              for p in points}
        for ng in (2, 3):
            assert by[(ng, "tuned")]["total_seconds"] < \
                by[(ng, "default")]["total_seconds"]
        assert "| ng |" in summary.read_text()

    def test_show_and_apply(self, tmp_path, capsys):
        from repro.tune.cli import main
        plan_path = tmp_path / "plan.json"
        tune(KEY, use_cache=False).write(str(plan_path))
        assert main(["show", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "race gate:   passed" in out
        assert main(["apply", str(plan_path), "--figure", "fig15",
                     "--ng", "3"]) == 0

    def test_clear_cache(self, tmp_path):
        from repro.tune.cli import main
        store_plan(make_plan(), directory=str(tmp_path))
        rc = main(["clear-cache", "--disk", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert not list(tmp_path.glob("*.plan.json"))

    def test_usage_errors_exit_2(self, tmp_path):
        from repro.tune.cli import main
        assert main(["show", str(tmp_path / "missing.json")]) == 2
        assert main(["search", "--figure", "nope"]) == 2


# ----------------------------------------------------------------------
# analyzer rule RS120
# ----------------------------------------------------------------------
class TestRS120:
    def _run(self, tmp_path, source):
        from repro.analysis.engine import analyze_paths
        path = tmp_path / "mod.py"
        path.write_text(source)
        findings = analyze_paths([path], select=["RS120"], root=tmp_path)
        return [f for f in findings if f.rule == "RS120"]

    def test_flags_literal_knob_kwarg(self, tmp_path):
        found = self._run(tmp_path, (
            '"""d"""\n__all__ = []\n'
            'def f(ex):\n    return ex.run(pipeline_chunks=8)\n'))
        assert len(found) == 1
        assert "pipeline_chunks" in found[0].message

    def test_allows_config_constructors(self, tmp_path):
        assert not self._run(tmp_path, (
            '"""d"""\nfrom repro.config import AdaptiveConfig\n'
            '__all__ = []\n'
            'def f():\n'
            '    return AdaptiveConfig(tolerance=1e-6, l_inc=16)\n'))

    def test_allows_variables(self, tmp_path):
        assert not self._run(tmp_path, (
            '"""d"""\n__all__ = []\n'
            'def f(ex, chunks):\n'
            '    return ex.run(pipeline_chunks=chunks)\n'))

    def test_shipped_tree_is_clean(self):
        from pathlib import Path
        from repro.analysis.engine import analyze_paths
        root = Path(__file__).resolve().parents[1]
        findings = analyze_paths(
            [root / "src" / "repro", root / "benchmarks"],
            select=["RS120"], root=root)
        assert [f for f in findings if f.rule == "RS120"] == []

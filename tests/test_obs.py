"""Tests for :mod:`repro.obs` — spans, Chrome-trace export, the
``BENCH_*.json`` artifact, and the ``obs`` CLI diff gate.

The modeled device is deterministic, so the round-trip contracts are
exact: a recorder's total equals the executor clock, an artifact
written and re-read diffs to zero, and phase sums match point totals
to machine precision.
"""

import json

import pytest

from repro.bench.export import OBS_FIGURES, write_figure_artifact
from repro.bench.harness import OBS_RUN_CONFIGS, observed_fixed_rank
from repro.errors import ConfigurationError
from repro.gpu.device import GPUExecutor, SimulatedGPU
from repro.gpu.memory import DeviceMemory
from repro.gpu.trace import PHASES, TimeLine
from repro.obs import (
    SCHEMA_VERSION, SpanRecorder, attach_series, attached_records,
    build_artifact, diff_artifacts, figure_record, load_artifact, point,
    reset_attached, spans_to_chrome, validate_artifact,
    validate_chrome_trace, write_artifact, write_attached,
    write_chrome_trace,
)
from repro.obs.cli import EXIT_ERROR, EXIT_OK, EXIT_REGRESSION
from repro.obs.cli import main as obs_main


# ---------------------------------------------------------------------------
# SpanRecorder: the run -> step -> kernel tree
# ---------------------------------------------------------------------------

class TestSpanRecorder:
    def test_step_breaks_on_phase_change(self):
        rec = SpanRecorder()
        with rec.run_span("r"):
            rec.record_kernel("prng", "curand", 1.0)
            rec.record_kernel("sampling", "gemm", 2.0)
            rec.record_kernel("sampling", "gemm", 3.0)
            rec.record_kernel("qr", "geqrf", 4.0)
        (run,) = rec.spans()
        assert [s.phase for s in run.children] == ["prng", "sampling", "qr"]
        assert [s.duration for s in run.children] == [1.0, 5.0, 4.0]
        assert run.duration == 10.0
        assert rec.clock == 10.0
        assert rec.total == 10.0

    def test_kernels_carry_counters_and_watermark(self):
        rec = SpanRecorder()
        rec.record_kernel("sampling", "gemm", 2.0, flops=4e9,
                          bytes_moved=1e6, memory_high_water=500)
        rec.record_kernel("sampling", "gemm", 2.0, flops=4e9,
                          bytes_moved=1e6, memory_high_water=300)
        c = rec.counters_dict()["sampling"]
        assert c == {"seconds": 4.0, "calls": 2, "flops": 8e9,
                     "bytes_moved": 2e6}
        assert rec.peak_memory_bytes == 500
        assert rec.achieved_gflops() == pytest.approx(2.0)
        assert rec.total_flops == 8e9
        assert rec.total_bytes_moved == 2e6

    def test_walk_and_to_dict_cover_all_levels(self):
        rec = SpanRecorder()
        with rec.run_span("r"):
            rec.record_kernel("qr", "geqrf", 1.0)
        (run,) = rec.spans()
        kinds = [s.kind for s in run.walk()]
        assert kinds == ["run", "step", "kernel"]
        d = run.to_dict()
        assert d["kind"] == "run"
        assert d["children"][0]["children"][0]["name"] == "geqrf"

    def test_unknown_phase_and_negative_seconds_raise(self):
        rec = SpanRecorder()
        with pytest.raises(ConfigurationError, match="unknown phase"):
            rec.record_kernel("warmup", "x", 1.0)
        with pytest.raises(ConfigurationError, match="negative"):
            rec.record_kernel("qr", "x", -1.0)

    def test_nested_or_dangling_run_management_raises(self):
        rec = SpanRecorder()
        rec.begin_run("a")
        with pytest.raises(ConfigurationError, match="still open"):
            rec.begin_run("b")
        rec.end_run()
        with pytest.raises(ConfigurationError, match="no open run"):
            rec.end_run()

    def test_bare_kernel_opens_an_implicit_run(self):
        rec = SpanRecorder()
        rec.record_kernel("qr", "geqrf", 1.0)
        (run,) = rec.spans()
        assert run.kind == "run" and run.duration == 1.0

    def test_multiple_runs_share_one_clock(self):
        rec = SpanRecorder()
        with rec.run_span("a"):
            rec.record_kernel("qr", "x", 1.0)
        with rec.run_span("b"):
            rec.record_kernel("qr", "x", 2.0)
        first, second = rec.spans()
        assert first.end == second.start == 1.0
        assert rec.total == 3.0


# ---------------------------------------------------------------------------
# Device layer: SimulatedGPU.charge feeds the recorder (and validates)
# ---------------------------------------------------------------------------

class TestDeviceIntegration:
    def test_charge_unknown_phase_raises_eagerly(self):
        gpu = SimulatedGPU()
        with pytest.raises(ConfigurationError, match="unknown phase"):
            gpu.charge("warmup", 1.0)
        # Nothing must have landed on the timeline either.
        assert gpu.timeline.total == 0.0

    def test_charge_forwards_to_attached_recorder(self):
        gpu = SimulatedGPU()
        rec = SpanRecorder()
        gpu.attach_recorder(rec)
        gpu.charge("qr", 0.5, "geqrf", flops=1e9, bytes_moved=1e6)
        (kernel,) = rec.kernel_spans()
        assert kernel.name == "geqrf"
        assert kernel.flops == 1e9
        assert gpu.timeline.total == rec.total == 0.5

    def test_executor_run_matches_timeline_exactly(self):
        # The acceptance invariant: recorder total == executor clock,
        # and phase sums match the timeline per phase.
        timing, rec = observed_fixed_rank("fig11", m=2000, n=500, k=24)
        assert rec.total == pytest.approx(timing.total, abs=1e-12)
        assert sum(timing.breakdown.values()) == pytest.approx(
            timing.total, abs=1e-9)
        for phase, counter in rec.counters_dict().items():
            assert counter["seconds"] == pytest.approx(
                timing.breakdown[phase], abs=1e-12)
        assert timing.flops > 0
        assert timing.gflops > 0
        assert timing.peak_memory_bytes > 0

    def test_observed_fixed_rank_rejects_unknown_figure(self):
        with pytest.raises(ConfigurationError, match="no observability"):
            observed_fixed_rank("fig99")

    def test_run_configs_cover_breakdown_figures(self):
        assert set(OBS_RUN_CONFIGS) == set(OBS_FIGURES)

    def test_plain_run_without_recorder_still_works(self):
        ex = GPUExecutor(seed=0)
        ex.attach_recorder(None)
        assert ex.device.recorder is None


# ---------------------------------------------------------------------------
# TimeLine.stats() and DeviceMemory.reset()
# ---------------------------------------------------------------------------

class TestTraceAndMemory:
    def test_timeline_stats_counts_calls(self):
        tl = TimeLine()
        tl.charge("qr", 1.0)
        tl.charge("qr", 2.0)
        tl.charge("prng", 0.5)
        stats = tl.stats()
        assert stats["qr"] == {"seconds": 3.0, "calls": 2}
        assert stats["prng"]["calls"] == 1
        assert "sampling" not in stats
        assert list(stats) == [p for p in PHASES if p in stats]

    def test_device_memory_reset_clears_high_water(self):
        mem = DeviceMemory(capacity_bytes=1000)
        h = mem.allocate(800)
        mem.free(h)
        assert mem.high_water == 800
        mem.reset()
        assert mem.high_water == 0
        assert mem.used == 0


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------

class TestChromeTrace:
    def _recorder(self):
        rec = SpanRecorder()
        with rec.run_span("fig"):
            rec.record_kernel("prng", "curand", 0.1, flops=1e6)
            rec.record_kernel("sampling", "gemm", 0.2, flops=2e9,
                              bytes_moved=3e6, memory_high_water=42)
        return rec

    def test_events_validate_and_serialize(self, tmp_path):
        rec = self._recorder()
        events = spans_to_chrome(rec, process_name="test-gpu")
        validate_chrome_trace(events)
        json.dumps(events)  # must be JSON-safe as-is
        xs = [e for e in events if e["ph"] == "X"]
        # 1 run + 2 steps + 2 kernels
        assert len(xs) == 5
        metas = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {m["name"] for m in metas}

    def test_kernels_land_on_their_phase_thread(self):
        events = spans_to_chrome(self._recorder())
        kernel = next(e for e in events
                      if e["ph"] == "X" and e["name"] == "gemm")
        step = next(e for e in events
                    if e["ph"] == "X" and e["name"] == "sampling")
        assert kernel["tid"] != step["tid"] == 0
        assert kernel["args"]["memory_high_water"] == 42
        assert kernel["ts"] == pytest.approx(0.1 * 1e6)
        assert kernel["dur"] == pytest.approx(0.2 * 1e6)

    def test_write_and_validate_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), self._recorder())
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == doc
        assert on_disk["displayTimeUnit"] == "ms"
        validate_chrome_trace(on_disk["traceEvents"])

    @pytest.mark.parametrize("events, match", [
        ([], "non-empty"),
        ([{"ph": "B", "name": "x", "pid": 0, "tid": 0}], "phase type"),
        ([{"ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 1}], "name"),
        ([{"ph": "X", "name": "x", "pid": 0, "tid": 0,
           "ts": -1, "dur": 1}], "invalid ts"),
        ([{"ph": "M", "name": "x", "pid": 0, "tid": 0}], "args"),
    ])
    def test_validate_rejects_malformed_events(self, events, match):
        with pytest.raises(ConfigurationError, match=match):
            validate_chrome_trace(events)


# ---------------------------------------------------------------------------
# BENCH artifact: write -> load -> diff == zero
# ---------------------------------------------------------------------------

def _small_artifact(label="test", sampling=1.0):
    pt = point({"m": 100, "n": 10}, phases={"sampling": sampling,
                                            "qr": 0.5},
               metrics={"speedup": 3.0})
    return build_artifact([figure_record("figX", points=[pt])], label=label)


class TestArtifact:
    def test_point_validates_phase_tags(self):
        with pytest.raises(ConfigurationError, match="unknown phase"):
            point({"m": 1}, phases={"warmup": 1.0})

    def test_point_total_defaults_to_phase_sum(self):
        pt = point({"m": 1}, phases={"sampling": 1.0, "qr": 0.25})
        assert pt["total_seconds"] == 1.25

    def test_roundtrip_diffs_to_exactly_zero(self, tmp_path):
        doc = _small_artifact()
        path = tmp_path / "BENCH_test.json"
        write_artifact(str(path), doc)
        loaded = load_artifact(str(path))
        assert loaded == doc
        result = diff_artifacts(doc, loaded)
        assert result.ok
        assert all(e.delta == 0.0 for e in result.entries)
        # total + 2 phases + 1 metric
        assert len(result.entries) == 4

    def test_build_artifact_merges_same_figure_later_wins(self):
        a = figure_record("figX", points=[point({"m": 1},
                                                phases={"qr": 1.0})])
        b = figure_record("figX", points=[point({"m": 1},
                                                phases={"qr": 2.0}),
                                          point({"m": 2},
                                                phases={"qr": 3.0})])
        doc = build_artifact([a, b])
        pts = doc["figures"]["figX"]["points"]
        assert len(pts) == 2
        by_m = {p["params"]["m"]: p["phases"]["qr"] for p in pts}
        assert by_m == {1: 2.0, 2: 3.0}

    def test_validate_rejects_wrong_schema_version(self):
        doc = _small_artifact()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="schema_version"):
            validate_artifact(doc)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="malformed"):
            load_artifact(str(path))

    def test_write_figure_artifact_phases_sum_to_total(self, tmp_path):
        path = tmp_path / "BENCH_fig11.json"
        doc = write_figure_artifact(str(path), "fig11")
        assert load_artifact(str(path)) == doc
        points = doc["figures"]["fig11"]["points"]
        assert points
        for pt in points:
            assert sum(pt["phases"].values()) == pytest.approx(
                pt["total_seconds"], abs=1e-9)


class TestAttachSeries:
    class FakeBenchmark:
        def __init__(self):
            self.extra_info = {}

    def setup_method(self):
        reset_attached()

    def teardown_method(self):
        reset_attached()

    def test_attach_records_extra_info_and_session(self):
        bench = self.FakeBenchmark()
        attach_series(bench, "figX",
                      points=[point({"m": 1}, phases={"qr": 1.0})],
                      metrics={"speedup": 2.0})
        assert bench.extra_info["repro_obs"]["figure"] == "figX"
        assert bench.extra_info["speedup"] == 2.0
        assert len(attached_records()) == 1

    def test_second_attach_merges_on_the_same_benchmark(self):
        bench = self.FakeBenchmark()
        attach_series(bench, "figX",
                      points=[point({"m": 1}, phases={"qr": 1.0})])
        attach_series(bench, "figX",
                      points=[point({"m": 2}, phases={"qr": 2.0})],
                      metrics={"speedup": 2.0})
        record = bench.extra_info["repro_obs"]
        assert len(record["points"]) == 2
        assert record["metrics"]["speedup"] == 2.0

    def test_attach_needs_an_extra_info_mapping(self):
        with pytest.raises(ConfigurationError, match="extra_info"):
            attach_series(object(), "figX", points=[])

    def test_write_attached_builds_session_artifact(self, tmp_path):
        bench = self.FakeBenchmark()
        attach_series(bench, "figX",
                      points=[point({"m": 1}, phases={"qr": 1.0})])
        path = tmp_path / "BENCH_session.json"
        doc = write_attached(str(path), label="smoke")
        assert doc["label"] == "smoke"
        assert load_artifact(str(path)) == doc
        reset_attached()
        assert write_attached(str(path)) is None


# ---------------------------------------------------------------------------
# The diff gate and its CLI exit codes
# ---------------------------------------------------------------------------

class TestDiffGate:
    def test_regression_beyond_tolerance_fails(self):
        base = _small_artifact()
        slow = _small_artifact(sampling=1.2)
        result = diff_artifacts(base, slow, tol=0.05)
        assert not result.ok
        fields = {e.field for e in result.regressions}
        assert "sampling" in fields and "total" in fields

    def test_improvement_and_metric_drift_pass(self):
        base = _small_artifact()
        fast = _small_artifact(sampling=0.5)
        fast["figures"]["figX"]["points"][0]["metrics"]["speedup"] = 9.0
        result = diff_artifacts(base, fast, tol=0.05)
        assert result.ok
        statuses = {e.field: e.status for e in result.entries}
        assert statuses["sampling"] == "improvement"
        assert statuses["metric:speedup"] == "drift"

    def test_missing_figure_and_point_are_regressions(self):
        base = _small_artifact()
        base["figures"]["figY"] = {"points": [point({"m": 7},
                                                    phases={"qr": 1.0})]}
        new = _small_artifact()
        result = diff_artifacts(base, new)
        assert [e.figure for e in result.regressions] == ["figY"]

    def test_within_tolerance_passes(self):
        base = _small_artifact()
        near = _small_artifact(sampling=1.04)
        assert diff_artifacts(base, near, tol=0.05).ok

    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_cli_exit_zero_on_match(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _small_artifact())
        b = self._write(tmp_path, "b.json", _small_artifact())
        assert obs_main(["diff", a, b]) == EXIT_OK
        assert "0 regression(s)" in capsys.readouterr().out

    def test_cli_exit_one_on_regression(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _small_artifact())
        b = self._write(tmp_path, "b.json", _small_artifact(sampling=1.5))
        assert obs_main(["diff", a, b, "--tol", "0.05"]) == EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_exit_two_on_usage_errors(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _small_artifact())
        # Missing file, malformed artifact, bad subcommand: all exit 2.
        assert obs_main(["diff", a, str(tmp_path / "nope.json")]) \
            == EXIT_ERROR
        bad = self._write(tmp_path, "bad.json", {"schema_version": 99})
        assert obs_main(["diff", a, bad]) == EXIT_ERROR
        assert obs_main(["frobnicate"]) == EXIT_ERROR
        capsys.readouterr()

    def test_cli_run_rejects_unknown_figure(self, capsys):
        assert obs_main(["run", "fig99", "--bench", "x.json"]) == EXIT_ERROR
        assert "unsupported figure" in capsys.readouterr().err

    def test_cli_run_requires_an_output(self, capsys):
        assert obs_main(["run", "fig11"]) == EXIT_ERROR
        assert "nothing to do" in capsys.readouterr().err

    def test_cli_render_prints_tables(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _small_artifact())
        assert obs_main(["render", a]) == EXIT_OK
        out = capsys.readouterr().out
        assert "figX" in out and "speedup" in out

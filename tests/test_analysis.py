"""Tests for :mod:`repro.analysis` — the static invariant checker.

Every rule gets a true-positive fixture, a clean (negative) fixture, a
suppressed variant, and the engine/baseline/CLI layers are exercised
end to end, including the self-check that the shipped ``src/repro``
tree is clean against the committed baseline.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import allow_untimed_math
from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     write_baseline)
from repro.analysis.cli import main as analyze_main
from repro.analysis.engine import analyze_paths, parse_noqa
from repro.analysis.findings import (EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
                                     AnalysisFinding)
from repro.errors import ConfigurationError, ReproError, StaticAnalysisError

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_rule(tmp_path, source, rel="repro/core/mod.py", **kw):
    """Write ``source`` at ``rel`` under ``tmp_path`` and analyze it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return analyze_paths([path], root=tmp_path, **kw)


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# RS101: untimed math in repro.core
# ---------------------------------------------------------------------------

class TestRS101:
    def test_flags_matmul_operator(self, tmp_path):
        out = run_rule(tmp_path, "def f(a, b):\n    return a @ b\n",
                       select=["RS101"])
        assert rules_of(out) == ["RS101"]
        assert "untimed matrix product" in out[0].message
        assert out[0].context == "f"

    def test_flags_linalg_and_dot_calls(self, tmp_path):
        src = ("import numpy as np\n"
               "def f(a):\n"
               "    u = np.linalg.svd(a)\n"
               "    return np.dot(a, a.T)\n")
        out = run_rule(tmp_path, src, select=["RS101"])
        assert rules_of(out) == ["RS101", "RS101"]
        assert "np.linalg.svd" in out[0].message
        assert "np.dot" in out[1].message

    def test_allow_untimed_math_decorator_exempts(self, tmp_path):
        src = ("from repro.analysis import allow_untimed_math\n"
               "@allow_untimed_math('host-side diagnostic')\n"
               "def f(a, b):\n"
               "    return a @ b\n")
        assert run_rule(tmp_path, src, select=["RS101"]) == []

    def test_not_enforced_outside_core(self, tmp_path):
        src = "def f(a, b):\n    return a @ b\n"
        out = run_rule(tmp_path, src, rel="repro/gpu/backend.py",
                       select=["RS101"])
        assert out == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = "def f(a, b):\n    return a @ b  # repro: noqa RS101\n"
        assert run_rule(tmp_path, src, select=["RS101"]) == []


# ---------------------------------------------------------------------------
# RS102: unknown phase tags
# ---------------------------------------------------------------------------

class TestRS102:
    def test_flags_unknown_phase_keyword(self, tmp_path):
        src = "def f(ex, x):\n    return ex.gemm(x, x, phase='warmup')\n"
        out = run_rule(tmp_path, src, select=["RS102"])
        assert rules_of(out) == ["RS102"]
        assert "'warmup'" in out[0].message

    def test_flags_charge_first_argument(self, tmp_path):
        src = "def f(tl):\n    tl.charge('bogus', 1.0)\n"
        out = run_rule(tmp_path, src, select=["RS102"])
        assert rules_of(out) == ["RS102"]

    def test_flags_bad_phase_default(self, tmp_path):
        src = "def f(x, phase='qrcpp'):\n    return x\n"
        out = run_rule(tmp_path, src, select=["RS102"])
        assert rules_of(out) == ["RS102"]

    def test_legend_members_pass(self, tmp_path):
        from repro.gpu.trace import PHASES
        body = "\n".join(
            f"    ex.op(phase={p!r})" for p in PHASES)
        src = f"def f(ex):\n{body}\n"
        assert run_rule(tmp_path, src, select=["RS102"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = ("def f(tl):\n"
               "    tl.charge('bogus', 1.0)  # repro: noqa RS102\n")
        assert run_rule(tmp_path, src, select=["RS102"]) == []


# ---------------------------------------------------------------------------
# RS103: symbolic-unsafe value reads
# ---------------------------------------------------------------------------

class TestRS103:
    def test_flags_float_of_arraylike_param(self, tmp_path):
        src = ("from repro.gpu.device import ArrayLike\n"
               "def f(x: ArrayLike):\n"
               "    return float(x)\n")
        out = run_rule(tmp_path, src, select=["RS103"])
        assert rules_of(out) == ["RS103"]
        assert "float(x)" in out[0].message

    def test_flags_truthiness_and_comparison(self, tmp_path):
        src = ("from repro.gpu.device import ArrayLike\n"
               "def f(x: ArrayLike):\n"
               "    if x:\n"
               "        pass\n"
               "    return x > 0\n")
        out = run_rule(tmp_path, src, select=["RS103"])
        assert rules_of(out) == ["RS103", "RS103"]

    def test_is_symbolic_guard_exempts(self, tmp_path):
        src = ("from repro.gpu.device import ArrayLike, is_symbolic\n"
               "def f(x: ArrayLike):\n"
               "    if is_symbolic(x):\n"
               "        return 0.0\n"
               "    return float(x)\n")
        assert run_rule(tmp_path, src, select=["RS103"]) == []

    def test_identity_test_is_not_a_value_read(self, tmp_path):
        src = ("from repro.gpu.device import ArrayLike\n"
               "from typing import Optional\n"
               "def f(x: Optional[ArrayLike]):\n"
               "    return x is not None\n")
        assert run_rule(tmp_path, src, select=["RS103"]) == []

    def test_unannotated_params_untracked(self, tmp_path):
        src = "def f(x):\n    return float(x)\n"
        assert run_rule(tmp_path, src, select=["RS103"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = ("from repro.gpu.device import ArrayLike\n"
               "def f(x: ArrayLike):\n"
               "    return float(x)  # repro: noqa RS103\n")
        assert run_rule(tmp_path, src, select=["RS103"]) == []


# ---------------------------------------------------------------------------
# RS104: error taxonomy
# ---------------------------------------------------------------------------

class TestRS104:
    def test_flags_builtin_raise(self, tmp_path):
        src = "def f():\n    raise ValueError('bad shape')\n"
        out = run_rule(tmp_path, src, select=["RS104"])
        assert rules_of(out) == ["RS104"]
        assert "ShapeError" in out[0].message  # suggests a replacement

    def test_hierarchy_classes_pass(self, tmp_path):
        src = ("from repro.errors import ShapeError\n"
               "def f():\n"
               "    raise ShapeError('bad shape')\n")
        assert run_rule(tmp_path, src, select=["RS104"]) == []

    def test_bare_reraise_passes(self, tmp_path):
        src = ("def f():\n"
               "    try:\n"
               "        pass\n"
               "    except Exception:\n"
               "        raise\n")
        assert run_rule(tmp_path, src, select=["RS104"]) == []

    def test_errors_module_is_exempt(self, tmp_path):
        src = "def f():\n    raise ValueError('x')\n"
        out = run_rule(tmp_path, src, rel="repro/errors.py",
                       select=["RS104"])
        assert out == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = "def f():\n    raise ValueError('x')  # repro: noqa RS104\n"
        assert run_rule(tmp_path, src, select=["RS104"]) == []


# ---------------------------------------------------------------------------
# RS105: legacy global RNG
# ---------------------------------------------------------------------------

class TestRS105:
    def test_flags_legacy_calls(self, tmp_path):
        src = ("import numpy as np\n"
               "def f():\n"
               "    np.random.seed(0)\n"
               "    return np.random.rand(3)\n")
        out = run_rule(tmp_path, src, select=["RS105"])
        assert rules_of(out) == ["RS105", "RS105"]

    def test_generator_plumbing_passes(self, tmp_path):
        src = ("import numpy as np\n"
               "def f(seed):\n"
               "    rng = np.random.default_rng(seed)\n"
               "    return rng.standard_normal(3)\n")
        assert run_rule(tmp_path, src, select=["RS105"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = ("import numpy as np\n"
               "def f():\n"
               "    return np.random.rand(3)  # repro: noqa RS105\n")
        assert run_rule(tmp_path, src, select=["RS105"]) == []


# ---------------------------------------------------------------------------
# RS106: __all__ / export drift
# ---------------------------------------------------------------------------

class TestRS106:
    def test_flags_missing_all_with_public_defs(self, tmp_path):
        src = "def api():\n    pass\n"
        out = run_rule(tmp_path, src, select=["RS106"])
        assert rules_of(out) == ["RS106"]
        assert "no __all__" in out[0].message

    def test_private_only_module_needs_no_all(self, tmp_path):
        src = "def _helper():\n    pass\n"
        assert run_rule(tmp_path, src, select=["RS106"]) == []

    def test_flags_phantom_export(self, tmp_path):
        src = "__all__ = ['gone']\ndef api():\n    pass\n"
        out = run_rule(tmp_path, src, select=["RS106"])
        assert rules_of(out) == ["RS106"]
        assert "'gone'" in out[0].message

    def test_flags_duplicate_export(self, tmp_path):
        src = "__all__ = ['api', 'api']\ndef api():\n    pass\n"
        out = run_rule(tmp_path, src, select=["RS106"])
        assert any("twice" in f.message for f in out)

    def test_flags_dynamic_all(self, tmp_path):
        src = "__all__ = sorted(globals())\ndef api():\n    pass\n"
        out = run_rule(tmp_path, src, select=["RS106"])
        assert any("not a static list" in f.message for f in out)

    def test_clean_module_passes(self, tmp_path):
        src = ("__all__ = ['api', 'CONST']\n"
               "CONST = 1\n"
               "def api():\n"
               "    pass\n")
        assert run_rule(tmp_path, src, select=["RS106"]) == []

    def test_star_import_disables_drift_check(self, tmp_path):
        src = ("from os.path import *\n"
               "__all__ = ['join']\n")
        assert run_rule(tmp_path, src, select=["RS106"]) == []

    def test_pytest_modules_are_exempt(self, tmp_path):
        src = "def test_api():\n    pass\n"
        for rel in ("benchmarks/test_fig.py", "benchmarks/conftest.py",
                    "tests/test_mod.py"):
            assert run_rule(tmp_path, src, rel=rel,
                            select=["RS106"]) == []


# ---------------------------------------------------------------------------
# RS107: bench publication via attach_series
# ---------------------------------------------------------------------------

class TestRS107:
    BENCH = "benchmarks/test_fig.py"

    def test_flags_bench_without_attach_series(self, tmp_path):
        src = ("def test_fig(benchmark):\n"
               "    benchmark(lambda: 1)\n")
        out = run_rule(tmp_path, src, rel=self.BENCH, select=["RS107"])
        assert rules_of(out) == ["RS107"]
        assert "never calls attach_series" in out[0].message

    def test_flags_direct_extra_info_write(self, tmp_path):
        src = ("from repro.obs import attach_series\n"
               "def test_fig(benchmark):\n"
               "    attach_series(benchmark, 'figX', points=[])\n"
               "    benchmark.extra_info['speedup'] = 2.0\n")
        out = run_rule(tmp_path, src, rel=self.BENCH, select=["RS107"])
        assert rules_of(out) == ["RS107"]
        assert "direct write" in out[0].message

    def test_flags_extra_info_update_and_setdefault(self, tmp_path):
        src = ("def helper(benchmark):\n"
               "    benchmark.extra_info.update(a=1)\n"
               "    benchmark.extra_info.setdefault('b', 2)\n")
        out = run_rule(tmp_path, src, rel=self.BENCH, select=["RS107"])
        assert rules_of(out) == ["RS107", "RS107"]

    def test_attach_series_bench_passes(self, tmp_path):
        src = ("from repro.obs import attach_series\n"
               "def test_fig(benchmark):\n"
               "    data = benchmark(lambda: 1)\n"
               "    attach_series(benchmark, 'figX', points=[])\n")
        assert run_rule(tmp_path, src, rel=self.BENCH,
                        select=["RS107"]) == []

    def test_non_bench_function_untouched(self, tmp_path):
        # No benchmark fixture, or not a test: nothing to publish.
        src = ("def test_shape(problem):\n"
               "    assert problem\n"
               "def make_cases(benchmark):\n"
               "    return []\n")
        assert run_rule(tmp_path, src, rel=self.BENCH,
                        select=["RS107"]) == []

    def test_not_enforced_outside_benchmarks(self, tmp_path):
        src = ("def test_fig(benchmark):\n"
               "    benchmark.extra_info['x'] = 1\n")
        assert run_rule(tmp_path, src, rel="repro/core/mod.py",
                        select=["RS107"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = ("def test_fig(benchmark):  # repro: noqa RS107\n"
               "    benchmark(lambda: 1)\n")
        assert run_rule(tmp_path, src, rel=self.BENCH,
                        select=["RS107"]) == []


# ---------------------------------------------------------------------------
# RS108: multi-GPU charges via the stream scheduler
# ---------------------------------------------------------------------------

class TestRS108:
    MGPU = "repro/gpu/multigpu.py"

    def test_flags_direct_device_charge(self, tmp_path):
        src = ("class Ex:\n"
               "    def op(self, secs):\n"
               "        self.device.charge('gemm_iter', secs, 'x')\n")
        out = run_rule(tmp_path, src, rel=self.MGPU, select=["RS108"])
        assert rules_of(out) == ["RS108"]
        assert "stream scheduler" in out[0].message

    def test_flags_any_charge_attribute(self, tmp_path):
        src = ("def f(dev, tl):\n"
               "    dev.charge('comms', 1.0, 'a')\n"
               "    tl.timeline.charge('comms', 1.0, 'b')\n")
        out = run_rule(tmp_path, src, rel=self.MGPU, select=["RS108"])
        assert rules_of(out) == ["RS108", "RS108"]

    def test_stream_submit_passes(self, tmp_path):
        src = ("class Ex:\n"
               "    def op(self, secs):\n"
               "        self.streams.submit('gemm_iter', secs)\n"
               "        self.streams.submit_group('comms', secs,\n"
               "                                  placements=[(0, 'd2h')])\n")
        assert run_rule(tmp_path, src, rel=self.MGPU,
                        select=["RS108"]) == []

    def test_not_enforced_elsewhere(self, tmp_path):
        src = ("def f(dev):\n"
               "    dev.charge('comms', 1.0, 'a')\n")
        assert run_rule(tmp_path, src, rel="repro/gpu/device.py",
                        select=["RS108"]) == []
        assert run_rule(tmp_path, src, rel="repro/gpu/cluster.py",
                        select=["RS108"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = ("def f(dev):\n"
               "    dev.charge('comms', 1.0, 'a')  # repro: noqa RS108\n")
        assert run_rule(tmp_path, src, rel=self.MGPU,
                        select=["RS108"]) == []

    def test_shipped_multigpu_is_clean(self):
        out = analyze_paths(
            [REPO_ROOT / "src" / "repro" / "gpu" / "multigpu.py"],
            root=REPO_ROOT / "src", select=["RS108"])
        assert out == []


# ---------------------------------------------------------------------------
# RS109-RS112: stream-scheduler concurrency lints
# ---------------------------------------------------------------------------

_STREAMS_IMPORT = "from repro.gpu.streams import StreamScheduler\n"
MOD = "repro/gpu/mod.py"
MGPU = "repro/gpu/multigpu.py"


class TestRS109:
    def test_flags_bare_submit_without_ordering(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    s.submit('comms', 1.0, stream='compute')\n"
               "    s.submit_group('comms', 1.0, placements=[(0, 'd2h')])\n")
        out = run_rule(tmp_path, src, rel=MOD, select=["RS109"])
        assert rules_of(out) == ["RS109", "RS109"]
        assert "discarded" in out[0].message

    def test_flags_bare_barrier(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    s.barrier()\n")
        out = run_rule(tmp_path, src, rel=MOD, select=["RS109"])
        assert rules_of(out) == ["RS109"]
        assert "barrier" in out[0].message

    def test_kept_event_and_ordered_submits_pass(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    ev = s.submit('comms', 1.0)\n"
               "    s.submit('comms', 1.0, deps=[ev])\n"
               "    s.submit('comms', 1.0, after_all=True)\n"
               "    b = s.barrier()\n"
               "    return b\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS109"]) == []

    def test_not_applied_without_streams_import(self, tmp_path):
        # concurrent.futures-style .submit() is out of scope.
        src = ("def f(pool, job):\n"
               "    pool.submit(job, 1.0)\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS109"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    s.submit('comms', 1.0)  # repro: noqa RS109\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS109"]) == []


class TestRS110:
    @pytest.mark.parametrize("stream", ["comms", "h2d", "d2h"])
    def test_flags_unordered_transfer(self, tmp_path, stream):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               f"    ev = s.submit('comms', 1.0, stream='{stream}')\n"
               "    return ev\n")
        out = run_rule(tmp_path, src, rel=MOD, select=["RS110"])
        assert rules_of(out) == ["RS110"]
        assert "ordered by nothing" in out[0].message \
            or "racing its producer" in out[0].message

    def test_flags_empty_deps_literal(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    ev = s.submit('comms', 1.0, stream='d2h', deps=[],\n"
               "                  after_all=False)\n"
               "    return ev\n")
        assert rules_of(run_rule(tmp_path, src, rel=MOD,
                                 select=["RS110"])) == ["RS110"]

    def test_ordered_transfers_pass(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s, ev, d):\n"
               "    s.submit('comms', 1.0, stream='d2h', deps=[ev],\n"
               "             reads=['B'])\n"
               "    s.submit('comms', 1.0, stream='h2d',\n"
               "             after_all=(d == 0))\n"
               "    s.submit('comms', 1.0, stream='d2h', after_all=True)\n"
               "    s.submit('gemm_iter', 1.0, stream='compute')\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS110"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    ev = s.submit('comms', 1.0, stream='d2h')"
               "  # repro: noqa RS110\n"
               "    return ev\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS110"]) == []


class TestRS111:
    def test_flags_unannotated_submit_in_multigpu(self, tmp_path):
        src = ("from .streams import StreamScheduler\n"
               "def f(s):\n"
               "    s.submit('comms', 1.0, after_all=True)\n"
               "    s.submit_group('comms', 1.0,\n"
               "                   placements=[(0, 'compute')],\n"
               "                   after_all=True)\n")
        out = run_rule(tmp_path, src, rel=MGPU, select=["RS111"])
        assert rules_of(out) == ["RS111", "RS111"]
        assert "race sanitizer" in out[0].message

    def test_annotated_and_forwarding_submits_pass(self, tmp_path):
        src = ("from .streams import StreamScheduler\n"
               "def f(s, reads, writes):\n"
               "    s.submit('comms', 1.0, after_all=True, writes=['B'])\n"
               "    s.submit('comms', 1.0, after_all=True, reads=['B'])\n"
               "    s.submit_group('comms', 1.0,\n"
               "                   placements=[(0, 'compute')],\n"
               "                   after_all=True,\n"
               "                   reads=reads, writes=writes)\n")
        assert run_rule(tmp_path, src, rel=MGPU, select=["RS111"]) == []

    def test_not_enforced_outside_multigpu(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    s.submit('comms', 1.0, after_all=True)\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS111"]) == []

    def test_shipped_multigpu_fully_annotated(self):
        out = analyze_paths(
            [REPO_ROOT / "src" / "repro" / "gpu" / "multigpu.py"],
            root=REPO_ROOT / "src", select=["RS111"])
        assert out == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = ("from .streams import StreamScheduler\n"
               "def f(s):\n"
               "    s.submit('comms', 1.0, after_all=True)"
               "  # repro: noqa RS111\n")
        assert run_rule(tmp_path, src, rel=MGPU, select=["RS111"]) == []


class TestRS112:
    def test_flags_dict_literal_missing_keys(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    s.restore({'ready': {}, 'busy': {}})\n")
        out = run_rule(tmp_path, src, rel=MOD, select=["RS112"])
        assert rules_of(out) == ["RS112"]
        assert "frontier" in out[0].message

    def test_flags_non_dict_literal_and_bad_arity(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    s.restore(None)\n"
               "    s.restore('snapshot.json')\n"
               "    s.restore()\n")
        out = run_rule(tmp_path, src, rel=MOD, select=["RS112"])
        assert rules_of(out) == ["RS112", "RS112", "RS112"]

    def test_state_roundtrip_and_dynamic_args_pass(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "import json\n"
               "def f(s, snap):\n"
               "    s.restore(s.state())\n"
               "    s.restore(snap)\n"
               "    s.restore(json.loads('{}'))\n"
               "    s.restore({'ready': {}, 'busy': {}, 'frontier': 0.0,\n"
               "               'submissions': 0})\n"
               "    s.restore({**snap})\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS112"]) == []

    def test_suppressed_by_noqa(self, tmp_path):
        src = (_STREAMS_IMPORT +
               "def f(s):\n"
               "    s.restore(None)  # repro: noqa RS112\n")
        assert run_rule(tmp_path, src, rel=MOD, select=["RS112"]) == []


# ---------------------------------------------------------------------------
# RS113: stale suppressions
# ---------------------------------------------------------------------------

class TestRS113:
    def test_flags_stale_named_noqa(self, tmp_path):
        src = ("__all__ = []\n"
               "x = 1  # repro: noqa RS105\n")
        out = run_rule(tmp_path, src, rel=MOD)
        assert rules_of(out) == ["RS113"]
        assert "stale suppression" in out[0].message

    def test_used_noqa_not_flagged(self, tmp_path):
        src = ("__all__ = []\n"
               "import numpy as np\n"
               "x = np.random.rand(3)  # repro: noqa RS105\n")
        assert run_rule(tmp_path, src, rel=MOD) == []

    def test_stale_bare_noqa_flagged_on_full_run(self, tmp_path):
        src = ("__all__ = []\n"
               "x = 1  # repro: noqa\n")
        out = run_rule(tmp_path, src, rel=MOD)
        assert rules_of(out) == ["RS113"]
        assert "bare noqa" in out[0].message

    def test_partial_select_cannot_judge(self, tmp_path):
        # RS105 never ran, so its suppression may well be load-bearing.
        src = ("__all__ = []\n"
               "x = 1  # repro: noqa RS105\n")
        assert run_rule(tmp_path, src, rel=MOD,
                        select=["RS106", "RS113"]) == []
        # ... but selecting the named rule alongside RS113 does judge.
        assert rules_of(run_rule(tmp_path, src, rel=MOD,
                                 select=["RS105", "RS113"])) == ["RS113"]

    def test_explicit_rs113_opts_out(self, tmp_path):
        src = ("__all__ = []\n"
               "x = 1  # repro: noqa RS105, RS113\n")
        assert run_rule(tmp_path, src, rel=MOD) == []

    def test_docstring_noqa_example_is_not_a_directive(self, tmp_path):
        src = ('"""Suppress with ``# repro: noqa RS105`` on the line."""\n'
               "__all__ = []\n")
        assert run_rule(tmp_path, src, rel=MOD) == []


# ---------------------------------------------------------------------------
# Engine: suppressions, selection, errors
# ---------------------------------------------------------------------------

class TestEngine:
    def test_parse_noqa_variants(self):
        table = parse_noqa("a = 1  # repro: noqa\n"
                           "b = 2  # repro: noqa RS101\n"
                           "c = 3  # repro: noqa RS101, RS103\n"
                           "d = 4\n")
        assert table[1] is None
        assert table[2] == {"RS101"}
        assert table[3] == {"RS101", "RS103"}
        assert 4 not in table

    def test_bare_noqa_suppresses_every_rule(self, tmp_path):
        src = ("import numpy as np\n"
               "def _f(a, b):\n"
               "    return np.random.rand(3) @ np.linalg.qr(a @ b)[0]"
               "  # repro: noqa\n")
        assert run_rule(tmp_path, src) == []

    def test_select_and_ignore(self, tmp_path):
        src = ("import numpy as np\n"
               "def f(a, b):\n"
               "    np.random.seed(0)\n"
               "    return a @ b\n")
        both = run_rule(tmp_path, src, select=["RS101", "RS105"])
        assert sorted(rules_of(both)) == ["RS101", "RS105"]
        only = run_rule(tmp_path, src, select=["RS101", "RS105"],
                        ignore=["RS105"])
        assert rules_of(only) == ["RS101"]

    def test_unknown_rule_raises(self, tmp_path):
        with pytest.raises(StaticAnalysisError, match="unknown rule"):
            run_rule(tmp_path, "x = 1\n", select=["RS999"])

    def test_syntax_error_raises(self, tmp_path):
        with pytest.raises(StaticAnalysisError, match="cannot parse"):
            run_rule(tmp_path, "def f(:\n")

    def test_missing_path_raises(self):
        with pytest.raises(StaticAnalysisError, match="no such file"):
            analyze_paths([Path("/nonexistent/nowhere.py")])

    def test_findings_sorted_by_location(self, tmp_path):
        src = ("import numpy as np\n"
               "def f(a, b):\n"
               "    u = np.linalg.qr(a)\n"
               "    return a @ b\n")
        out = run_rule(tmp_path, src, select=["RS101"])
        assert [f.line for f in out] == sorted(f.line for f in out)


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def _finding(line=10, message="untimed matrix product", context="f"):
    return AnalysisFinding(rule="RS101", path="repro/core/x.py",
                           line=line, col=4, message=message,
                           context=context)


class TestBaseline:
    def test_fingerprint_ignores_line_numbers(self):
        assert _finding(line=10).fingerprint() == \
            _finding(line=99).fingerprint()

    def test_fingerprint_keys_on_context_and_message(self):
        assert _finding(context="f").fingerprint() != \
            _finding(context="g").fingerprint()
        assert _finding(message="a").fingerprint() != \
            _finding(message="b").fingerprint()

    def test_roundtrip_suppresses_baselined(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [_finding()])
        new, n_base, stale = apply_baseline([_finding(line=42)],
                                            load_baseline(path))
        assert (new, n_base, stale) == ([], 1, [])

    def test_counts_catch_extra_occurrences(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [_finding()])
        new, n_base, _ = apply_baseline(
            [_finding(line=10), _finding(line=20)], load_baseline(path))
        assert n_base == 1 and len(new) == 1

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [_finding()])
        new, n_base, stale = apply_baseline([], load_baseline(path))
        assert new == [] and n_base == 0
        assert stale == [_finding().fingerprint()]

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"version": 99}')
        with pytest.raises(StaticAnalysisError, match="unsupported"):
            load_baseline(path)
        path.write_text("not json")
        with pytest.raises(StaticAnalysisError, match="cannot read"):
            load_baseline(path)


# ---------------------------------------------------------------------------
# CLI: exit-code contract
# ---------------------------------------------------------------------------

_VIOLATIONS = {
    "RS101": "def f(a, b):\n    return a @ b\n",
    "RS102": "def f(ex, x):\n    return ex.gemm(x, x, phase='warmup')\n",
    "RS103": ("from repro.gpu.device import ArrayLike\n"
              "def f(x: ArrayLike):\n"
              "    return float(x)\n"),
    "RS104": "def f():\n    raise ValueError('x')\n",
    "RS105": "import numpy as np\ndef f():\n    return np.random.rand(3)\n",
    "RS106": "def api():\n    pass\n",
    "RS107": ("def test_fig(benchmark):\n"
              "    benchmark.extra_info['speedup'] = 2.0\n"),
    "RS108": ("def f(dev):\n"
              "    dev.charge('comms', 1.0, 'x')\n"),
    "RS109": ("from repro.gpu.streams import StreamScheduler\n"
              "def f(s):\n"
              "    s.submit('comms', 1.0, stream='compute')\n"),
    "RS110": ("from repro.gpu.streams import StreamScheduler\n"
              "def f(s):\n"
              "    ev = s.submit('comms', 1.0, stream='d2h')\n"
              "    return ev\n"),
    "RS111": ("from .streams import StreamScheduler\n"
              "def f(s):\n"
              "    s.submit('comms', 1.0, after_all=True)\n"),
    "RS112": ("from repro.gpu.streams import StreamScheduler\n"
              "def f(s):\n"
              "    s.restore({'ready': {}, 'busy': {}})\n"),
}

#: Rules scoped by path need their fixture at a matching location.
_VIOLATION_PATHS = {"RS107": ("benchmarks", "bad.py"),
                    "RS108": ("repro", "gpu", "multigpu.py"),
                    "RS111": ("repro", "gpu", "multigpu.py")}


class TestCLI:
    @pytest.mark.parametrize("rule", sorted(_VIOLATIONS))
    def test_each_rule_fails_its_fixture(self, tmp_path, rule, capsys):
        parts = _VIOLATION_PATHS.get(rule, ("repro", "core", "bad.py"))
        path = tmp_path.joinpath(*parts)
        path.parent.mkdir(parents=True)
        path.write_text(_VIOLATIONS[rule], encoding="utf-8")
        code = analyze_main([str(path), "--select", rule, "--no-baseline"])
        assert code == EXIT_FINDINGS
        assert rule in capsys.readouterr().out

    def test_rs113_fails_stale_suppression(self, tmp_path, capsys):
        # RS113 needs the named rule to have run, so it cannot live in
        # the single-rule ``--select`` parametrization above.
        path = tmp_path / "repro" / "core" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("__all__ = []\nx = 1  # repro: noqa RS105\n",
                        encoding="utf-8")
        code = analyze_main([str(path), "--no-baseline"])
        assert code == EXIT_FINDINGS
        assert "RS113" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("__all__ = ['X']\nX = 1\n", encoding="utf-8")
        assert analyze_main([str(path), "--no-baseline"]) == EXIT_CLEAN

    def test_bad_path_exits_two(self, capsys):
        assert analyze_main(["/nonexistent/nowhere.py"]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "x.py"
        path.write_text("X = 1\n")
        assert analyze_main([str(path), "--select", "RS999",
                             "--no-baseline"]) == EXIT_ERROR

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        path = tmp_path / "repro" / "core" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text(_VIOLATIONS["RS101"], encoding="utf-8")
        base = tmp_path / "base.json"
        assert analyze_main([str(path), "--select", "RS101", "--baseline",
                             str(base), "--write-baseline"]) == EXIT_CLEAN
        assert analyze_main([str(path), "--select", "RS101", "--baseline",
                             str(base)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # A *new* violation in the same file still fails.
        path.write_text(_VIOLATIONS["RS101"] +
                        "def g(a, b):\n    return a @ b\n",
                        encoding="utf-8")
        assert analyze_main([str(path), "--select", "RS101", "--baseline",
                             str(base)]) == EXIT_FINDINGS

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "repro" / "core" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text(_VIOLATIONS["RS101"], encoding="utf-8")
        code = analyze_main([str(path), "--select", "RS101",
                             "--format", "json", "--no-baseline"])
        assert code == EXIT_FINDINGS
        data = json.loads(capsys.readouterr().out)
        assert data["baselined"] == 0
        (finding,) = data["findings"]
        assert finding["rule"] == "RS101"
        assert finding["fingerprint"]

    def test_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in sorted(_VIOLATIONS) + ["RS113"]:
            assert rule in out

    def test_repro_bench_analyze_delegates(self, tmp_path, capsys):
        from repro.cli import main as bench_main
        path = tmp_path / "repro" / "core" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text(_VIOLATIONS["RS104"], encoding="utf-8")
        code = bench_main(["analyze", str(path), "--no-baseline"])
        assert code == EXIT_FINDINGS
        assert "RS104" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The decorator itself
# ---------------------------------------------------------------------------

class TestAllowUntimedMath:
    def test_identity_and_reason_attribute(self):
        @allow_untimed_math("testing")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f.__untimed_math_reason__ == "testing"

    def test_empty_reason_rejected(self):
        with pytest.raises(ConfigurationError):
            allow_untimed_math("")


# ---------------------------------------------------------------------------
# Self-check: the shipped tree is clean against the committed baseline
# ---------------------------------------------------------------------------

class TestSelfCheck:
    def test_src_repro_clean_against_committed_baseline(self, capsys):
        # Same scope as the CI job: the library tree and the benches.
        code = analyze_main([str(REPO_ROOT / "src" / "repro"),
                             str(REPO_ROOT / "benchmarks"),
                             "--baseline",
                             str(REPO_ROOT / "analysis-baseline.json")])
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN, f"analyzer findings:\n{out}"

    def test_module_entrypoint_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 0
        assert "RS101" in proc.stdout

    def test_static_analysis_error_in_hierarchy(self):
        assert issubclass(StaticAnalysisError, ReproError)
        assert issubclass(StaticAnalysisError, RuntimeError)

"""Tests for the figure drivers (repro.bench.figures) at small scale."""

import numpy as np
import pytest

from repro.bench import figures
from repro.bench.harness import (FixedRankTiming, qp3_baseline_seconds,
                                 scale_rows, timed_fixed_rank)


class TestHarness:
    def test_timed_fixed_rank_fields(self):
        t = timed_fixed_rank(10_000, 1_000, k=20, p=4, q=1)
        assert isinstance(t, FixedRankTiming)
        assert t.total > 0
        assert t.sample_size == 24
        assert 0 < t.step1_fraction < 1

    def test_multi_gpu_option(self):
        t = timed_fixed_rank(60_000, 1_000, ng=3)
        assert t.ng == 3
        assert "comms" in t.breakdown

    def test_qp3_baseline_positive(self):
        assert qp3_baseline_seconds(10_000, 1_000) > 0

    def test_scale_rows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert scale_rows(500_000, 5_000) == 5_000
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert scale_rows(500_000, 5_000) == 500_000


class TestNumericsFigures:
    def test_table1_rows(self):
        rows = figures.table1_matrices(m=400, n=120, k=50)
        assert {r["name"] for r in rows} == {"power", "exponent", "hapmap"}
        for r in rows:
            assert r["sigma_0"] > r["sigma_k1"] > 0
            assert r["kappa"] > 1

    def test_table1_kappa_ordering(self):
        """Table 1: hapmap's effective kappa is orders of magnitude
        below the synthetic matrices'."""
        rows = {r["name"]: r for r in figures.table1_matrices(m=400,
                                                              n=120)}
        assert rows["hapmap"]["kappa"] < 0.01 * rows["power"]["kappa"]
        assert rows["hapmap"]["kappa"] < 0.01 * rows["exponent"]["kappa"]

    def test_fig06_error_structure(self):
        rows = figures.fig06_accuracy(m=1_200, n=200, k=40,
                                      matrices=("exponent",),
                                      include_p0=True, include_fft=True)
        r = rows[0]
        # q=0 within one order of QP3; q>=1 at par (Fig 6 + Sec 7).
        assert r["q0"] < 10 * r["qp3"]
        assert r["q1"] < 2.5 * r["qp3"]
        assert r["q2"] <= r["q1"] * 1.2
        assert r["q0_p0"] > r["q0"]          # p=0 is worse
        assert r["q0_fft"] < 10 * r["qp3"]   # FFT same error order

    def test_fig06_hapmap_large_error(self):
        """Fig 6: hapmap's rank-50 error is O(1) (0.6-1.0), unlike the
        synthetic matrices' ~1e-5."""
        rows = figures.fig06_accuracy(m=1_500, n=200, k=40,
                                      matrices=("hapmap", "exponent"),
                                      qs=(0,))
        r = {row["name"]: row for row in rows}
        assert r["hapmap"]["q0"] > 0.3
        assert r["exponent"]["q0"] < 1e-3


class TestKernelFigures:
    def test_fig07_ordering(self):
        data = figures.fig07_tallskinny_qr()
        for i in range(len(data["m"])):
            assert (data["cholqr"][i] > data["cgs"][i] > data["hhqr"][i]
                    > data["mgs"][i] > data["qp3"][i])

    def test_fig08_row_crossover(self):
        data = figures.fig08_sampling_kernels()
        gemm = np.array(data["gemm"])
        fft_eff = np.array(data["fft_effective"])
        ls = np.array(data["l"])
        # FFT effective beats GEMM somewhere in the upper range.
        wins = ls[fft_eff > gemm]
        assert wins.size > 0 and wins.min() >= 128

    def test_fig08_gemm_below_peaks(self):
        data = figures.fig08_sampling_kernels()
        for g, pc in zip(data["gemm"], data["peak_compute"]):
            assert g < pc

    def test_fig09_speedup_band(self):
        data = figures.fig09_shortwide_qr()
        ratios = np.array(data["cholqr"]) / np.array(data["hhqr"])
        assert ratios.max() > 60
        assert ratios.max() < 130

    def test_fig10_shapes(self):
        data = figures.fig10_estimated_gflops(ms=(10_000, 50_000))
        assert data["qp3"][1] < 30
        assert data["rs_q1"][1] > 400

    def test_fig18_monotone_anchors(self):
        data = figures.fig18_gemm_small_l()
        rates = data["gemm_gflops"]
        assert all(a < b for a, b in zip(rates, rates[1:]))
        assert rates[0] == pytest.approx(123.3, rel=0.15)
        assert rates[-1] == pytest.approx(778.5, rel=0.15)


class TestTimingFigures:
    def test_fig11_speedup_band(self):
        pts = figures.fig11_time_vs_rows()
        best = max(p["speedup"] for p in pts)
        assert 4.0 < best < 9.0  # q=1: paper up to 6.6x
        # Step 1 dominates at large m (Sec 9: 78 %).
        assert pts[-1]["step1_fraction"] > 0.6

    def test_fig11_q0_speedup_band(self):
        pts = figures.fig11_time_vs_rows(q=0)
        best = max(p["speedup"] for p in pts)
        assert 9.0 < best < 16.0  # paper: up to 12.8x

    def test_fig11_time_linear_in_m(self):
        pts = figures.fig11_time_vs_rows(ms=(10_000, 20_000, 40_000))
        t = [p["total"] for p in pts]
        # Roughly linear: doubling m should not quite double the total
        # (fixed QRCP cost), but stay within [1.3, 2.1]x.
        assert 1.3 < t[1] / t[0] < 2.1
        assert 1.3 < t[2] / t[1] < 2.1

    def test_fig12_qp3_grows_faster(self):
        pts = figures.fig12_time_vs_cols(ns=(500, 5_000))
        qp3_growth = pts[1]["qp3"] / pts[0]["qp3"]
        rs_growth = pts[1]["total"] / pts[0]["total"]
        assert qp3_growth > rs_growth

    def test_fig13_sampling_wins_across_l(self):
        pts = figures.fig13_time_vs_rank(ls=(32, 128, 512))
        assert all(p["speedup"] > 1 for p in pts)

    def test_fig14_q12_still_wins(self):
        """Fig 14: random sampling beats QP3 for q up to 12."""
        data = figures.fig14_time_vs_iterations(ms=(50_000,),
                                                qs=(0, 6, 12))
        assert data["q12"][0] < data["qp3"][0]
        assert data["q0"][0] < data["q6"][0] < data["q12"][0]

    def test_fig15_shape(self):
        pts = figures.fig15_multigpu_scaling()
        assert [p["ng"] for p in pts] == [1, 2, 3]
        assert pts[0]["speedup"] == 1.0
        assert 2.0 < pts[1]["speedup"] < 3.2
        assert 3.2 < pts[2]["speedup"] < 4.8
        assert 0 < pts[1]["comms_fraction"] < pts[2]["comms_fraction"] < 0.1


class TestAdaptiveFigures:
    def test_fig16_structure(self):
        runs = figures.fig16_adaptive_convergence(l_incs=(8, 16),
                                                  tolerance=1e-8,
                                                  m=1_200, n=200)
        assert len(runs) == 2
        for run in runs:
            assert run["converged"]
            assert run["estimates"][-1] <= 1e-8
            # Estimate pessimistic vs actual (Fig 16's dashed line).
            for est, act in zip(run["estimates"], run["actual_errors"]):
                assert est > 0.1 * act

    def test_fig17_interpolation_runs(self):
        runs = figures.fig17_adaptive_time(l_incs=(8,), tolerance=1e-8,
                                           m=1_200, n=200)
        rules = {r["rule"] for r in runs}
        assert rules == {"static", "interpolate"}
        for r in runs:
            assert r["total_seconds"] > 0

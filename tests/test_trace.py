"""Tests for the phase-tagged timeline (repro.gpu.trace)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.trace import PHASES, Phase, TimeLine


class TestPhase:
    def test_add_accumulates(self):
        p = Phase()
        p.add(0.5)
        p.add(0.25)
        assert p.seconds == pytest.approx(0.75)
        assert p.calls == 2


class TestTimeLine:
    def test_empty_total_zero(self):
        assert TimeLine().total == 0.0

    def test_charge_and_total(self):
        t = TimeLine()
        t.charge("sampling", 0.1)
        t.charge("qrcp", 0.2)
        assert t.total == pytest.approx(0.3)
        assert t.seconds("sampling") == pytest.approx(0.1)

    def test_calls_counted(self):
        t = TimeLine()
        t.charge("prng", 0.01)
        t.charge("prng", 0.01)
        assert t.calls("prng") == 2

    def test_events_logged_in_order(self):
        t = TimeLine()
        t.charge("prng", 0.01, label="a")
        t.charge("qr", 0.02, label="b")
        assert [e[1] for e in t.events] == ["a", "b"]

    def test_unknown_phase_raises(self):
        with pytest.raises(ConfigurationError):
            TimeLine().charge("nope", 1.0)
        with pytest.raises(ConfigurationError):
            TimeLine().seconds("nope")

    def test_negative_time_raises(self):
        with pytest.raises(ConfigurationError):
            TimeLine().charge("qr", -1.0)

    def test_breakdown_covers_all_phases(self):
        bd = TimeLine().breakdown()
        assert tuple(bd) == PHASES

    def test_fractions_sum_to_one(self):
        t = TimeLine()
        t.charge("sampling", 3.0)
        t.charge("comms", 1.0)
        fr = t.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["sampling"] == pytest.approx(0.75)

    def test_fractions_zero_when_empty(self):
        fr = TimeLine().fractions()
        assert all(v == 0.0 for v in fr.values())

    def test_merge_max_takes_per_phase_maximum(self):
        a, b = TimeLine(), TimeLine()
        a.charge("sampling", 1.0)
        a.charge("qr", 0.1)
        b.charge("sampling", 0.5)
        b.charge("qrcp", 0.2)
        merged = a.merge_max([b])
        assert merged.seconds("sampling") == pytest.approx(1.0)
        assert merged.seconds("qr") == pytest.approx(0.1)
        assert merged.seconds("qrcp") == pytest.approx(0.2)

    def test_iadd_accumulates(self):
        a, b = TimeLine(), TimeLine()
        a.charge("qr", 1.0)
        b.charge("qr", 2.0)
        b.charge("comms", 0.5)
        a += b
        assert a.seconds("qr") == pytest.approx(3.0)
        assert a.seconds("comms") == pytest.approx(0.5)

    def test_repr_mentions_total(self):
        t = TimeLine()
        t.charge("qr", 1.0)
        assert "total" in repr(t)


class TestChromeTrace:
    def test_events_serializable_and_sequential(self):
        import json
        t = TimeLine()
        t.charge("sampling", 0.5, label="gemm A")
        t.charge("qrcp", 0.25, label="qp3 B")
        trace = t.to_chrome_trace()
        json.dumps(trace)
        xs = [e for e in trace if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["gemm A", "qp3 B"]
        assert xs[0]["ts"] == 0.0
        assert xs[0]["dur"] == pytest.approx(5e5)
        assert xs[1]["ts"] == pytest.approx(5e5)  # starts after event 0

    def test_thread_metadata_per_phase(self):
        from repro.gpu.trace import PHASES
        trace = TimeLine().to_chrome_trace()
        names = {e["args"]["name"] for e in trace
                 if e.get("name") == "thread_name"}
        assert names == set(PHASES)

    def test_real_run_trace(self):
        from repro import GPUExecutor, SamplingConfig, SymArray, \
            random_sampling
        ex = GPUExecutor(seed=0)
        random_sampling(SymArray((10_000, 1_000)),
                        SamplingConfig(rank=20, power_iterations=1,
                                       seed=0), executor=ex)
        trace = ex.timeline.to_chrome_trace()
        cats = {e.get("cat") for e in trace if e["ph"] == "X"}
        assert {"sampling", "gemm_iter", "qrcp", "qr"} <= cats

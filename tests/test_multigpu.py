"""Tests for the multi-GPU runtime (repro.gpu.multigpu)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.random_sampling import random_sampling
from repro.errors import ConfigurationError
from repro.gpu.device import GPUExecutor, NumpyExecutor, SymArray
from repro.gpu.multigpu import CPUSpec, MultiGPUExecutor


class TestConstruction:
    def test_ng_validation(self):
        with pytest.raises(ConfigurationError):
            MultiGPUExecutor(ng=0)

    def test_devices_created(self):
        ex = MultiGPUExecutor(ng=3)
        assert len(ex.devices) == 3
        assert [d.device_id for d in ex.devices] == [0, 1, 2]

    def test_local_rows_ceiling(self):
        ex = MultiGPUExecutor(ng=3)
        assert ex.local_rows(150_000) == 50_000
        assert ex.local_rows(100) == 34


class TestMathIdentical:
    """The distributed executor must compute the same numbers as the
    single-device and pure-NumPy paths (only the clock differs)."""

    def test_fixed_rank_factors_match_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((300, 15)) @ rng.standard_normal((15, 60))
        cfg = SamplingConfig(rank=15, oversampling=5, power_iterations=1,
                             seed=9)
        ref = random_sampling(a, cfg, executor=NumpyExecutor(seed=9))
        out = random_sampling(a, cfg, executor=MultiGPUExecutor(ng=3,
                                                                seed=9))
        np.testing.assert_allclose(np.asarray(out.q), np.asarray(ref.q),
                                   atol=1e-9)
        np.testing.assert_allclose(np.asarray(out.r), np.asarray(ref.r),
                                   atol=1e-9)
        np.testing.assert_array_equal(out.perm, ref.perm)

    def test_residual_small_on_lowrank(self, lowrank_matrix):
        cfg = SamplingConfig(rank=12, oversampling=6, seed=2)
        out = random_sampling(lowrank_matrix, cfg,
                              executor=MultiGPUExecutor(ng=2, seed=2))
        assert out.residual(lowrank_matrix) < 1e-9


class TestTimingModel:
    def _run(self, ng: int, m: int = 150_000, q: int = 1):
        ex = MultiGPUExecutor(ng=ng, seed=0)
        cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=q,
                             seed=0)
        res = random_sampling(SymArray((m, 2_500)), cfg, executor=ex)
        return res

    def test_comms_charged_for_multi(self):
        res = self._run(3)
        assert res.breakdown["comms"] > 0

    def test_strong_scaling_speedup(self):
        """Figure 15: overall speedups of ~2.4x (2 GPUs) and ~3.8x
        (3 GPUs); superlinear via the GEMM aspect-ratio effect.  Allow
        a generous band around the paper's values."""
        t1 = self._run(1).seconds
        t2 = self._run(2).seconds
        t3 = self._run(3).seconds
        assert 2.0 < t1 / t2 < 3.2
        assert 3.2 < t1 / t3 < 4.8

    def test_comm_fraction_small_and_growing(self):
        """Figure 15: comms are 1.6 % of time on 2 GPUs, 4.3 % on 3."""
        r2 = self._run(2)
        r3 = self._run(3)
        f2 = r2.breakdown["comms"] / r2.seconds
        f3 = r3.breakdown["comms"] / r3.seconds
        assert 0.005 < f2 < 0.04
        assert 0.015 < f3 < 0.08
        assert f3 > f2

    def test_memory_accounted_per_device(self):
        ex = MultiGPUExecutor(ng=3, seed=0)
        ex.bind(SymArray((150_000, 2_500)))
        expect = 8 * 50_000 * 2_500
        assert all(d.memory.used == expect for d in ex.devices)

    def test_memory_ragged_last_device(self):
        """The last device of a ragged split owns the remainder block
        and must account only its true (smaller) size."""
        ex = MultiGPUExecutor(ng=3, seed=0)
        ex.bind(SymArray((100, 40)))
        # ceil(100/3) = 34 rows on devices 0-1, 100 - 2*34 = 32 on 2.
        assert [d.memory.used for d in ex.devices] == [
            8 * 34 * 40, 8 * 34 * 40, 8 * 32 * 40]
        assert ex.local_rows_of(2, 100) == 32

    def test_faster_than_single_gpu_executor(self):
        """At the Figure 15 shape, 3 simulated GPUs must beat the
        single-GPU executor end to end."""
        cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=1,
                             seed=0)
        single = random_sampling(SymArray((150_000, 2_500)), cfg,
                                 executor=GPUExecutor(seed=0)).seconds
        multi = self._run(3).seconds
        assert multi < single


class TestCPUSpec:
    def test_seconds_positive(self):
        cpu = CPUSpec()
        assert cpu.gemm_seconds(1e9) > 0
        assert cpu.panel_seconds(1e6) > 0
        assert cpu.potrf_seconds(64) > 0

    def test_custom_rates(self):
        cpu = CPUSpec(gemm_gflops=100.0)
        assert cpu.gemm_seconds(1e11) == pytest.approx(1.0)

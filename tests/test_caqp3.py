"""Tests for the communication-avoiding QP3 (repro.qr.caqp3)."""

import numpy as np
import pytest

from repro.config import QRCPConfig
from repro.gpu.kernels import KernelModel
from repro.matrices.synthetic import exponent_matrix
from repro.qr.caqp3 import caqp3, tournament_pivots
from repro.qr.qrcp import qp3_blocked

from tests.helpers import (assert_orthonormal_columns,
                           assert_valid_permutation)


class TestTournament:
    def test_selects_distinct_columns(self, rng):
        a = rng.standard_normal((80, 60))
        w = tournament_pivots(a, 12)
        assert len(set(w.tolist())) == 12
        assert w.max() < 60

    def test_single_block_matches_qrcp(self, rng):
        # With n <= 2b there is exactly one leaf: winners are QP3's.
        a = rng.standard_normal((50, 16))
        w = tournament_pivots(a, 8)
        ref = qp3_blocked(a, k=8).perm[:8]
        np.testing.assert_array_equal(w, ref)

    def test_finds_dominant_column(self, rng):
        a = rng.standard_normal((60, 90))
        a[:, 57] *= 100.0
        w = tournament_pivots(a, 4)
        assert w[0] == 57

    def test_b_larger_than_n_clamped(self, rng):
        a = rng.standard_normal((20, 5))
        w = tournament_pivots(a, 10)
        assert len(w) == 5


class TestCAQP3:
    def test_factorization_contract(self, rng):
        a = rng.standard_normal((100, 70))
        res = caqp3(a, k=25)
        assert_orthonormal_columns(res.q)
        assert_valid_permutation(res.perm, 70)
        np.testing.assert_allclose(res.q @ res.r[:, :25],
                                   a[:, res.perm[:25]], atol=1e-9)

    def test_full_factorization_residual(self, rng):
        a = rng.standard_normal((60, 40))
        res = caqp3(a)
        assert res.residual(a) < 1e-12

    def test_rank_revealing_close_to_qp3(self):
        a = exponent_matrix(400, 150, seed=2)
        e_ca = caqp3(a, k=50).residual(a)
        e_qp3 = qp3_blocked(a, k=50).residual(a)
        assert e_ca < 4 * e_qp3

    def test_lowrank_exact(self, lowrank_matrix):
        res = caqp3(lowrank_matrix, k=12)
        assert res.residual(lowrank_matrix) < 1e-10

    @pytest.mark.parametrize("block_size", [4, 8, 16, 64])
    def test_block_size_quality(self, block_size):
        a = exponent_matrix(300, 100, seed=3)
        res = caqp3(a, k=40, config=QRCPConfig(block_size=block_size))
        ref = qp3_blocked(a, k=40)
        assert res.residual(a) < 5 * ref.residual(a)

    def test_truncate_via_config(self, rng):
        a = rng.standard_normal((40, 30))
        res = caqp3(a, config=QRCPConfig(truncate=8))
        assert res.k == 8


class TestCAQP3Timing:
    def test_fewer_syncs_than_qp3(self):
        """At equal flops pricing, CAQP3's (k/b) panel syncs beat QP3's
        k per-pivot syncs once the sync cost dominates."""
        km = KernelModel()
        m, n, k = 50_000, 2_500, 54
        base_qp3 = km.qp3_seconds(m, n, k)
        base_ca = km.caqp3_seconds(m, n, k)
        # Single GPU: CAQP3 already wins (it trades the BLAS-2 panel
        # half for BLAS-3 TSQR tournaments) but by far less than
        # random sampling's margin.
        assert base_ca < base_qp3 < 8 * base_ca

    def test_latency_scaling_favors_ca(self):
        import dataclasses
        from repro.gpu.specs import KEPLER_K40C
        slow = dataclasses.replace(KEPLER_K40C,
                                   pivot_sync_s=100 * 180e-6)
        km = KernelModel(slow)
        m, n, k = 50_000, 2_500, 54
        assert km.caqp3_seconds(m, n, k) < 0.5 * km.qp3_seconds(m, n, k)

    def test_zero_rank_free(self):
        assert KernelModel().caqp3_seconds(10, 10, 0) == 0.0

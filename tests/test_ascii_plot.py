"""Tests for the terminal figure renderer (repro.bench.ascii_plot)."""

import pytest

from repro.bench.ascii_plot import line_chart, stacked_bars
from repro.errors import ConfigurationError


class TestLineChart:
    def test_basic_render(self):
        out = line_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]})
        assert "a" in out          # legend
        assert "o" in out          # glyph
        assert "+" in out          # axis corner

    def test_title_and_labels(self):
        out = line_chart([1, 10], {"y": [5.0, 50.0]}, title="T",
                         x_label="m")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "(m" in out

    def test_extremes_on_axis_rows(self):
        out = line_chart([0, 1], {"y": [2.0, 8.0]}, height=10)
        assert "8" in out.splitlines()[0]      # top label
        assert "2" in out.splitlines()[9]      # bottom label

    def test_multiple_series_distinct_glyphs(self):
        out = line_chart([1, 2], {"a": [1, 2], "b": [2, 1],
                                  "c": [1, 1]})
        assert "o a" in out and "x b" in out and "+ c" in out

    def test_log_axes(self):
        out = line_chart([1, 10, 100], {"y": [1e-6, 1e-3, 1.0]},
                         logx=True, logy=True)
        assert "logx" in out and "logy" in out

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"y": [0.0, 1.0]}, logy=True)

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"y": [1.0]})

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            line_chart([], {})

    def test_constant_series_ok(self):
        out = line_chart([1, 2, 3], {"y": [5.0, 5.0, 5.0]})
        assert "o" in out


class TestStackedBars:
    def test_basic_render(self):
        out = stacked_bars(["a", "b"],
                           [{"x": 1.0, "y": 1.0}, {"x": 3.0}])
        lines = out.splitlines()
        assert lines[0].startswith("a |")
        assert "x=x" in lines[-1] and "y=y" in lines[-1]

    def test_widths_proportional(self):
        out = stacked_bars([1, 2], [{"p": 1.0}, {"p": 2.0}], width=40)
        rows = out.splitlines()[:2]
        w1 = rows[0].count("p")
        w2 = rows[1].count("p")
        assert w2 == pytest.approx(2 * w1, abs=1)

    def test_reference_printed(self):
        out = stacked_bars(["a"], [{"p": 1.0}], reference={"a": 9.0})
        assert "ref" in out and "9" in out

    def test_glyphs_unique_on_collision(self):
        out = stacked_bars(["a"], [{"alpha": 1.0, "apple": 1.0}])
        legend = out.splitlines()[-1]
        glyphs = [tok.split("=")[0] for tok in legend.split()]
        assert len(set(glyphs)) == len(glyphs)

    def test_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            stacked_bars(["a"], [])

    def test_all_zero_raises(self):
        with pytest.raises(ConfigurationError):
            stacked_bars(["a"], [{"p": 0.0}])


class TestCLIPlotFlag:
    def test_plot_flag_adds_chart(self, capsys):
        from repro.cli import main
        assert main(["fig07", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "cholqr" in out
        assert "log y" in out        # the chart title marker

    def test_fig05_command(self, capsys):
        from repro.cli import main
        assert main(["fig05"]) == 0
        out = capsys.readouterr().out
        assert "flops/word" in out and "CAQP3" in out

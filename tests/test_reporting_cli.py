"""Tests for text reporting (repro.bench.reporting) and the CLI."""

import pytest

from repro.bench.reporting import (format_breakdown_table, format_series,
                                   format_table)
from repro.cli import main


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_scientific_for_small_values(self):
        out = format_table(["x"], [[1.5e-7]])
        assert "e-07" in out

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out


class TestFormatBreakdown:
    def test_phases_and_extras(self):
        pts = [{"m": 10, "total": 1.0, "qp3": 2.0,
                "breakdown": {"sampling": 0.4, "qr": 0.6}}]
        out = format_breakdown_table(pts, "m", ["sampling", "qr"],
                                     extra=["qp3"])
        assert "sampling" in out and "qp3" in out
        assert "0.4" in out

    def test_missing_phase_zero(self):
        pts = [{"m": 10, "total": 1.0, "breakdown": {}}]
        out = format_breakdown_table(pts, "m", ["comms"])
        assert "0" in out


class TestFormatSeries:
    def test_columns(self):
        out = format_series([1, 2], {"a": [10, 20], "b": [30, 40]},
                            x_name="m")
        lines = out.splitlines()
        assert "m" in lines[0] and "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4


class TestCLI:
    @pytest.mark.parametrize("cmd", ["fig07", "fig08", "fig09", "fig10",
                                     "fig11", "fig12", "fig13", "fig14",
                                     "fig15", "fig18"])
    def test_fast_commands_run(self, cmd, capsys):
        assert main([cmd]) == 0
        out = capsys.readouterr().out
        assert "Figure" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "table1" in out

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_entry_point_registered(self):
        import repro.cli
        assert callable(repro.cli.main)

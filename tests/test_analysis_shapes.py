"""Tests for the symbolic shape & cost-consistency rules (RS121-RS125)
and their supporting machinery: the shape lattice seeded by ``@shaped``
declarations, Σl propagation through stacked batches, the RS124 cost
interpreter, the incremental cache, SARIF export, and the three-way
``--audit-costs`` audit.

Each rule gets at least one true-positive and one clean fixture, and —
the load-bearing part — each rule is mutation-tested against the real
tree: a single seeded defect (swapped charge dims, a dropped ``writes=``
entry, a conditionally-skipped charge, a halved charge coefficient)
must flip the shipped tree from clean to exactly one finding.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.cache import AnalysisCache
from repro.analysis.cli import main as analyze_main
from repro.analysis.engine import all_rules, analyze_paths, run_analysis
from repro.analysis.findings import EXIT_CLEAN, EXIT_FINDINGS
from repro.analysis.sarif import render_sarif, to_sarif, validate_sarif
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]

SHAPE_RULES = ["RS121", "RS122", "RS123", "RS124", "RS125"]


def write_project(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path``; return the root."""
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src, encoding="utf-8")
    return tmp_path


def run_rules(tmp_path, files, select=None):
    root = write_project(tmp_path, files)
    return analyze_paths([root], root=root,
                         select=select or SHAPE_RULES)


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# The @shaped runtime marker
# ---------------------------------------------------------------------------

class TestShapedMarker:
    def test_records_declaration_on_function(self):
        from repro.analysis.annotations import shaped

        @shaped(params={"omega": ("l", "m"), "a": ("m", "n")},
                returns=("l", "n"))
        def sample(omega, a):
            return omega

        assert sample.__shaped__ == {
            "returns": ("l", "n"),
            "params": {"omega": ("l", "m"), "a": ("m", "n")}}
        assert sample(3, 4) == 3  # runtime no-op

    def test_scalar_dim_symbols_are_allowed(self):
        from repro.analysis.annotations import shaped

        @shaped(params={"k": "k"})
        def take(k):
            return k

        assert take.__shaped__["params"] == {"k": "k"}

    def test_rejects_empty_declarations(self):
        from repro.analysis.annotations import shaped
        with pytest.raises(ConfigurationError):
            shaped(params={"a": ()})
        with pytest.raises(ConfigurationError):
            shaped(returns="")
        with pytest.raises(ConfigurationError):
            shaped(params={"a": ("m", 2)})

    def test_shaped_is_exported_from_analysis(self):
        import repro.analysis as analysis
        assert "shaped" in analysis.__all__
        assert callable(analysis.shaped)


# ---------------------------------------------------------------------------
# RS121: charged kernel dims vs the math actually performed
# ---------------------------------------------------------------------------

_RS121_BAD = (
    "class Exec:\n"
    "    def _t_gemm(self, r, c, k, phase='other'):\n"
    "        pass\n"
    "    def sample_gemm(self, omega, a):\n"
    "        l, m = shape_of(omega)\n"
    "        m2, n = shape_of(a)\n"
    "        self._t_gemm(m, n, l, phase='sampling')\n"
    "        return _mm(omega, a, self.backend)\n")

_RS121_GOOD = _RS121_BAD.replace("self._t_gemm(m, n, l",
                                 "self._t_gemm(l, n, m")


class TestRS121:
    def test_flags_swapped_charge_dimensions(self, tmp_path):
        findings = run_rules(tmp_path, {"exec.py": _RS121_BAD},
                             select=["RS121"])
        assert rules_of(findings) == ["RS121"]
        assert findings[0].line == 7
        assert "charged GEMM dimensions" in findings[0].message

    def test_matching_charge_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"exec.py": _RS121_GOOD},
                             select=["RS121"])
        assert findings == []

    def test_shaped_declared_return_contradiction(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.analysis.annotations import shaped\n"
            "class Exec:\n"
            "    @shaped(params={'omega': ('l', 'm'), 'a': ('m', 'n')},\n"
            "            returns=('l', 'm'))\n"
            "    def sample_gemm(self, omega, a):\n"
            "        return _mm(omega, a, self.backend)\n")},
            select=["RS121"])
        assert rules_of(findings) == ["RS121"]
        assert "@shaped declares" in findings[0].message

    def test_shaped_consistent_return_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.analysis.annotations import shaped\n"
            "class Exec:\n"
            "    @shaped(params={'omega': ('l', 'm'), 'a': ('m', 'n')},\n"
            "            returns=('l', 'n'))\n"
            "    def sample_gemm(self, omega, a):\n"
            "        return _mm(omega, a, self.backend)\n")},
            select=["RS121"])
        assert findings == []

    def test_noqa_at_charge_site_suppresses(self, tmp_path):
        noqad = _RS121_BAD.replace(
            "phase='sampling')",
            "phase='sampling')  # repro: noqa RS121")
        findings = run_rules(tmp_path, {"exec.py": noqad},
                             select=["RS121", "RS113"])
        assert findings == []


# ---------------------------------------------------------------------------
# Symbolic-dim propagation: slices, transpose, stacked (Σl) batches
# ---------------------------------------------------------------------------

class TestShapePropagation:
    def test_transpose_swaps_axes(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "class Exec:\n"
            "    def gram(self, b):\n"
            "        l, n = shape_of(b)\n"
            "        self._t_gemm(l, l, n, phase='other')\n"
            "        return _mm(b, b.T, self.backend)\n")},
            select=["RS121"])
        assert findings == []

    def test_transpose_mismatch_is_flagged(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "class Exec:\n"
            "    def gram(self, b):\n"
            "        l, n = shape_of(b)\n"
            "        self._t_gemm(n, n, l, phase='other')\n"
            "        return _mm(b, b.T, self.backend)\n")},
            select=["RS121"])
        assert rules_of(findings) == ["RS121"]

    # A scalar @shaped symbol seeds the slice bound, so ``b[:k]`` has
    # rows ``k`` — without the declaration ``k`` is opaque and RS121
    # abstains rather than guess.
    _SLICED = (
        "from repro.analysis.annotations import shaped\n"
        "class Exec:\n"
        "    @shaped(params={'k': 'k'})\n"
        "    def head(self, b, y, k):\n"
        "        l, n = shape_of(b)\n"
        "        n2, t = shape_of(y)\n"
        "        c = b[:k]\n"
        "        self._t_gemm(k, t, n, phase='other')\n"
        "        return _mm(c, y, self.backend)\n")

    def test_head_slice_rows(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": self._SLICED},
                             select=["RS121"])
        assert findings == []

    def test_head_slice_mismatch_is_flagged(self, tmp_path):
        mutated = self._SLICED.replace("self._t_gemm(k, t, n",
                                       "self._t_gemm(l, t, n")
        findings = run_rules(tmp_path, {"mod.py": mutated},
                             select=["RS121"])
        assert rules_of(findings) == ["RS121"]

    _STACKED = (
        "class Exec:\n"
        "    def sample_gemm_stacked(self, omegas, a):\n"
        "        total_l = sum(shape_of(o)[0] for o in omegas)\n"
        "        m, n = shape_of(a)\n"
        "        self._t_gemm(total_l, n, m, phase='sampling')\n"
        "        return [_mm(o, a, self.backend) for o in omegas]\n")

    def test_stacked_sum_of_rider_rows_is_clean(self, tmp_path):
        # The coalesced batch charge: ONE (sum l_i) x n GEMM for the
        # whole rider list (the repro.serve batcher's Σl case).
        findings = run_rules(tmp_path, {"mod.py": self._STACKED},
                             select=["RS121"])
        assert findings == []

    def test_stacked_swapped_dims_are_flagged(self, tmp_path):
        mutated = self._STACKED.replace("self._t_gemm(total_l, n, m",
                                        "self._t_gemm(total_l, m, n")
        findings = run_rules(tmp_path, {"mod.py": mutated},
                             select=["RS121"])
        assert rules_of(findings) == ["RS121"]


# ---------------------------------------------------------------------------
# RS122: incomplete race annotations on stream submissions
# ---------------------------------------------------------------------------

class TestRS122:
    def test_missing_writes_is_flagged(self, tmp_path):
        findings = run_rules(tmp_path, {"repro/gpu/sched.py": (
            "class S:\n"
            "    def go(self):\n"
            "        self.streams.submit('k', 0, 1.0, reads=['A'])\n")},
            select=["RS122"])
        assert rules_of(findings) == ["RS122"]
        assert findings[0].line == 3

    def test_empty_writes_literal_is_flagged(self, tmp_path):
        findings = run_rules(tmp_path, {"repro/gpu/sched.py": (
            "class S:\n"
            "    def go(self):\n"
            "        self.streams.submit('k', 0, 1.0, reads=['A'],\n"
            "                            writes=[])\n")},
            select=["RS122"])
        assert rules_of(findings) == ["RS122"]

    def test_complete_annotations_are_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"repro/gpu/sched.py": (
            "class S:\n"
            "    def go(self):\n"
            "        self.streams.submit('k', 0, 1.0, reads=['A'],\n"
            "                            writes=['B'])\n"
            "        self.streams.submit('k2', 0, 1.0, reads=['B@g0'],\n"
            "                            writes=['C'])\n")},
            select=["RS122"])
        assert findings == []

    def test_dangling_derived_read_is_flagged(self, tmp_path):
        # 'B@g0' is a per-device replica of buffer 'B', but no
        # submission in the module ever writes 'B': the dependency
        # edge dangles and the scheduler can never order it.
        findings = run_rules(tmp_path, {"repro/gpu/sched.py": (
            "class S:\n"
            "    def go(self):\n"
            "        self.streams.submit('k', 0, 1.0, reads=['B@g0'],\n"
            "                            writes=['C'])\n")},
            select=["RS122"])
        assert rules_of(findings) == ["RS122"]
        assert "B@g0" in findings[0].message

    def test_dynamic_buffer_lists_open_the_module(self, tmp_path):
        # A forwarded variable makes the write set unknowable, so the
        # dangling-read check must stand down (no false positives).
        findings = run_rules(tmp_path, {"repro/gpu/sched.py": (
            "class S:\n"
            "    def fwd(self, bufs):\n"
            "        self.streams.submit('k', 0, 1.0, reads=['A'],\n"
            "                            writes=bufs)\n"
            "    def go(self):\n"
            "        self.streams.submit('k2', 0, 1.0, reads=['B@g0'],\n"
            "                            writes=['C'])\n")},
            select=["RS122"])
        assert findings == []

    def test_untimed_modules_are_exempt(self, tmp_path):
        # Same code outside repro/gpu/ with no streams import: the
        # scheduler contract does not apply.
        findings = run_rules(tmp_path, {"other.py": (
            "class S:\n"
            "    def go(self):\n"
            "        self.streams.submit('k', 0, 1.0, reads=['A'])\n")},
            select=["RS122"])
        assert findings == []


# ---------------------------------------------------------------------------
# RS123: uncharged / conditionally charged math in timed scopes
# ---------------------------------------------------------------------------

_TIMED_HEADER = "import repro.gpu.streams\n"


class TestRS123:
    def test_conditionally_charged_math_is_flagged(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            _TIMED_HEADER +
            "class Exec:\n"
            "    def f(self, a, b, l):\n"
            "        if l > 64:\n"
            "            self._t_gemm(2, 3, 4, phase='other')\n"
            "        return _mm(a, b, self.backend)\n")},
            select=["RS123"])
        assert rules_of(findings) == ["RS123"]
        assert findings[0].line == 6

    def test_unconditional_charge_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            _TIMED_HEADER +
            "class Exec:\n"
            "    def f(self, a, b):\n"
            "        self._t_gemm(2, 3, 4, phase='other')\n"
            "        return _mm(a, b, self.backend)\n")},
            select=["RS123"])
        assert findings == []

    def test_charge_only_inside_loop_is_flagged(self, tmp_path):
        # The loop may run zero times, leaving the trailing math
        # uncharged on that path.
        findings = run_rules(tmp_path, {"mod.py": (
            _TIMED_HEADER +
            "class Exec:\n"
            "    def f(self, a, b, chunks):\n"
            "        for c in chunks:\n"
            "            self._t_gemm(2, 3, 4, phase='other')\n"
            "        return _mm(a, b, self.backend)\n")},
            select=["RS123"])
        assert rules_of(findings) == ["RS123"]

    def test_one_arm_charging_conditional_is_flagged(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            _TIMED_HEADER +
            "class Exec:\n"
            "    def f(self, a, b, fast):\n"
            "        if fast:\n"
            "            self._t_gemm(2, 3, 4, phase='other')\n"
            "            return _mm(a, b, self.backend)\n"
            "        else:\n"
            "            return _mm(a, b, self.backend)\n")},
            select=["RS123"])
        assert "RS123" in rules_of(findings)

    def test_untimed_module_is_exempt(self, tmp_path):
        # No repro.gpu import: plain numerics module, nothing to time.
        findings = run_rules(tmp_path, {"mod.py": (
            "class Exec:\n"
            "    def f(self, a, b, l):\n"
            "        if l > 64:\n"
            "            self._t_gemm(2, 3, 4, phase='other')\n"
            "        return _mm(a, b, self.backend)\n")},
            select=["RS123"])
        assert findings == []


# ---------------------------------------------------------------------------
# RS124: asymptotic drift of the charged model vs the closed forms
# ---------------------------------------------------------------------------

_MINI_COSTS = ("def gaussian_sampling_cost(m, n, l):\n"
               "    flops = 2.0 * m * n * l\n"
               "    return flops\n")

_MINI_EXEC = (
    "class MiniExec:\n"
    "    def charge(self, phase, seconds=0.0, flops=0.0):\n"
    "        pass\n"
    "    def _t_gemm(self, r, c, k, phase='other'):\n"
    "        self.charge(phase, flops=2.0 * r * c * k)\n"
    "    def sample_gemm(self, omega, a):\n"
    "        l, m = shape_of(omega)\n"
    "        m2, n = shape_of(a)\n"
    "        self._t_gemm(l, n, m, phase='sampling')\n")


class TestRS124:
    def test_matching_model_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {
            "perfmodel/costs.py": _MINI_COSTS,
            "gpu/mini.py": _MINI_EXEC}, select=["RS124"])
        assert findings == []

    def test_halved_charge_drifts(self, tmp_path):
        mutated = _MINI_EXEC.replace("self._t_gemm(l, n, m",
                                     "self._t_gemm(l, n // 2, m")
        findings = run_rules(tmp_path, {
            "perfmodel/costs.py": _MINI_COSTS,
            "gpu/mini.py": mutated}, select=["RS124"])
        assert rules_of(findings) == ["RS124"]
        assert "sampling" in findings[0].message
        assert "gaussian_sampling_cost" in findings[0].message

    def test_wrong_closed_form_drifts(self, tmp_path):
        # Drift is symmetric: a wrong coefficient in costs.py is the
        # same finding as a wrong charge in the executor.
        bad_costs = _MINI_COSTS.replace("2.0 * m * n * l",
                                        "4.0 * m * n * l")
        findings = run_rules(tmp_path, {
            "perfmodel/costs.py": bad_costs,
            "gpu/mini.py": _MINI_EXEC}, select=["RS124"])
        assert rules_of(findings) == ["RS124"]

    def test_non_charging_executor_is_skipped(self, tmp_path):
        # A host-reference executor whose hooks are no-ops has zero
        # totals everywhere: that is not drift, it is abstention.
        noop = _MINI_EXEC.replace(
            "        self.charge(phase, flops=2.0 * r * c * k)\n",
            "        pass\n")
        findings = run_rules(tmp_path, {
            "perfmodel/costs.py": _MINI_COSTS,
            "gpu/mini.py": noop}, select=["RS124"])
        assert findings == []


# ---------------------------------------------------------------------------
# RS125: async hygiene in the serving layer
# ---------------------------------------------------------------------------

class TestRS125:
    def test_blocking_call_in_async_def(self, tmp_path):
        findings = run_rules(tmp_path, {"svc.py": (
            "import time\n"
            "async def worker(q):\n"
            "    time.sleep(0.1)\n")}, select=["RS125"])
        assert rules_of(findings) == ["RS125"]
        assert findings[0].line == 3

    def test_awaited_asyncio_sleep_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"svc.py": (
            "import asyncio\n"
            "async def worker(q):\n"
            "    await asyncio.sleep(0.1)\n")}, select=["RS125"])
        assert findings == []

    def test_unawaited_coroutine_statement(self, tmp_path):
        findings = run_rules(tmp_path, {"svc.py": (
            "import asyncio\n"
            "async def worker(q):\n"
            "    asyncio.sleep(0.1)\n")}, select=["RS125"])
        assert rules_of(findings) == ["RS125"]

    def test_unbounded_queue_in_async_module(self, tmp_path):
        findings = run_rules(tmp_path, {"svc.py": (
            "import asyncio\n"
            "class Svc:\n"
            "    def __init__(self):\n"
            "        self.q = asyncio.Queue()\n"
            "    async def pump(self):\n"
            "        await self.q.get()\n")}, select=["RS125"])
        assert rules_of(findings) == ["RS125"]

    def test_bounded_queue_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"svc.py": (
            "import asyncio\n"
            "class Svc:\n"
            "    def __init__(self):\n"
            "        self.q = asyncio.Queue(maxsize=8)\n"
            "    async def pump(self):\n"
            "        await self.q.get()\n")}, select=["RS125"])
        assert findings == []

    def test_offloaded_blocking_work_is_clean(self, tmp_path):
        # run_in_executor's lambda runs on a thread, not the loop:
        # nested scopes are exempt from the blocking-leaf check.
        findings = run_rules(tmp_path, {"svc.py": (
            "import time\n"
            "async def worker(loop, pool):\n"
            "    await loop.run_in_executor(pool,\n"
            "                               lambda: time.sleep(0.1))\n")},
            select=["RS125"])
        assert findings == []

    def test_sync_only_module_is_exempt(self, tmp_path):
        findings = run_rules(tmp_path, {"svc.py": (
            "import time\n"
            "def worker(q):\n"
            "    time.sleep(0.1)\n")}, select=["RS125"])
        assert findings == []


# ---------------------------------------------------------------------------
# Load-bearing mutations: each rule must catch its seeded defect in the
# REAL tree (not a fixture), and the unmutated tree must be clean.
# ---------------------------------------------------------------------------

class TestShapeMutationsRealTree:
    def _copy_tree(self, tmp_path):
        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", dest)
        return dest

    def _mutate(self, dest, rel, old, new):
        target = dest / rel
        src = target.read_text(encoding="utf-8")
        mutated = src.replace(old, new)
        assert mutated != src, f"mutation target not found in {rel}"
        target.write_text(mutated, encoding="utf-8")

    def test_unmutated_tree_is_clean(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        findings = analyze_paths([dest], root=tmp_path / "src",
                                 select=SHAPE_RULES)
        assert findings == [], [f.render() for f in findings]

    def test_swapped_charge_dims_caught_by_rs121(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        self._mutate(
            dest, "gpu/device.py",
            '        self._t_gemm(l, n, m, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n",
            '        self._t_gemm(m, n, l, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n")
        findings = analyze_paths([dest], root=tmp_path / "src",
                                 select=["RS121"])
        assert rules_of(findings) == ["RS121"], \
            [f.render() for f in findings]
        assert "device" in findings[0].path

    def test_dropped_writes_entry_caught_by_rs122(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        self._mutate(
            dest, "gpu/multigpu.py",
            'reads=["B@g0"], writes=["B_qrcp"])',
            'reads=["B@g0"])')
        findings = analyze_paths([dest], root=tmp_path / "src",
                                 select=["RS122"])
        assert rules_of(findings) == ["RS122"], \
            [f.render() for f in findings]
        assert "multigpu" in findings[0].path

    def test_conditional_charge_caught_by_rs123(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        self._mutate(
            dest, "gpu/device.py",
            '        self._t_gemm(l, n, m, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n",
            "        if l > 64:\n"
            '            self._t_gemm(l, n, m, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n")
        findings = analyze_paths([dest], root=tmp_path / "src",
                                 select=["RS123"])
        assert rules_of(findings) == ["RS123"], \
            [f.render() for f in findings]

    def test_mischarged_coefficient_caught_by_rs124(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        self._mutate(
            dest, "gpu/device.py",
            '        self._t_gemm(l, n, m, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n",
            '        self._t_gemm(l, n // 2, m, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n")
        findings = analyze_paths([dest], root=tmp_path / "src",
                                 select=["RS124"])
        assert rules_of(findings) == ["RS124"], \
            [f.render() for f in findings]
        assert "sampling" in findings[0].message


# ---------------------------------------------------------------------------
# Incremental cache: warm runs replay shape findings with zero parses
# ---------------------------------------------------------------------------

_CACHE_PROJ = {
    "exec.py": _RS121_BAD,
    "other.py": "def unrelated():\n    return 1\n",
}


class TestIncrementalCacheShapes:
    def test_warm_run_has_zero_parses_and_identical_findings(
            self, tmp_path):
        root = write_project(tmp_path / "proj", _CACHE_PROJ)
        cache = AnalysisCache(tmp_path / "cache")
        first = run_analysis([root], root=root, select=SHAPE_RULES,
                             cache=cache)
        assert first.stats.parses == 2
        assert rules_of(first.findings) == ["RS121"]

        cache2 = AnalysisCache(tmp_path / "cache")
        second = run_analysis([root], root=root, select=SHAPE_RULES,
                              cache=cache2)
        assert second.stats.parses == 0
        assert second.stats.analyzed == 0
        assert ([f.render() for f in second.findings]
                == [f.render() for f in first.findings])


# ---------------------------------------------------------------------------
# SARIF round-trip
# ---------------------------------------------------------------------------

class TestShapeSarif:
    def test_shape_rules_are_in_the_driver_catalog(self):
        registry = all_rules()
        assert set(SHAPE_RULES) <= set(registry)

    def test_cli_sarif_round_trip(self, tmp_path, capsys, monkeypatch):
        root = write_project(tmp_path / "proj", {"exec.py": _RS121_BAD})
        monkeypatch.chdir(tmp_path)
        code = analyze_main([str(root), "--select", "RS121",
                             "--format", "sarif", "--no-baseline",
                             "--no-cache"])
        assert code == EXIT_FINDINGS
        log = json.loads(capsys.readouterr().out)
        assert validate_sarif(log) == []
        res = log["runs"][0]["results"][0]
        assert res["ruleId"] == "RS121"
        ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids[res["ruleIndex"]] == "RS121"

    def test_render_matches_to_sarif(self, tmp_path):
        findings = run_rules(tmp_path, {"exec.py": _RS121_BAD},
                             select=["RS121"])
        registry = all_rules()
        assert json.loads(render_sarif(findings, registry)) \
            == to_sarif(findings, registry)


# ---------------------------------------------------------------------------
# --audit-costs: static totals vs an instrumented run vs closed forms
# ---------------------------------------------------------------------------

class TestAuditCosts:
    def test_shipped_tree_passes_the_audit(self, capsys):
        from repro.analysis.audit import audit_costs
        code = audit_costs([REPO_ROOT / "src" / "repro"])
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN, out
        for phase in ("sampling", "gemm_iter", "orth_iter", "qrcp", "qr"):
            assert phase in out

    def test_audit_detects_a_mischarge(self, tmp_path, capsys):
        # The static column reads the (mutated) tree on disk while the
        # runtime column runs the installed code: a seeded mischarge
        # shows up as static-vs-runtime drift.
        from repro.analysis.audit import audit_costs
        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", dest)
        target = dest / "gpu" / "device.py"
        src = target.read_text(encoding="utf-8")
        mutated = src.replace(
            '        self._t_gemm(l, n, m, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n",
            '        self._t_gemm(l, n // 2, m, phase="sampling")\n'
            "        return _mm(omega, a, self.backend)\n")
        assert mutated != src
        target.write_text(mutated, encoding="utf-8")
        code = audit_costs([dest])
        out = capsys.readouterr().out
        assert code == EXIT_FINDINGS, out
        assert "DRIFT" in out

    def test_cli_flag_is_wired(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = analyze_main(["src/repro", "--audit-costs"])
        assert code == EXIT_CLEAN
        assert "audit-costs" in capsys.readouterr().out

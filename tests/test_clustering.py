"""Tests for the clustering-quality measures (repro.core.clustering)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.clustering import (cluster_columns, clustering_accuracy,
                                   embed_columns,
                                   population_recovery_score)
from repro.errors import ShapeError
from repro.matrices.hapmap_like import hapmap_like_matrix


class TestClusteringAccuracy:
    def test_identical_labels(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert clustering_accuracy(labels, labels) == 1.0

    def test_permuted_labels_perfect(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([2, 2, 0, 0, 1, 1])
        assert clustering_accuracy(true, pred) == 1.0

    def test_partial_agreement(self):
        true = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([0, 0, 1, 1, 1, 1])
        assert clustering_accuracy(true, pred) == pytest.approx(5 / 6)

    def test_many_clusters_hungarian(self):
        # 12 clusters would need 479M permutations; Hungarian handles it.
        rng = np.random.default_rng(0)
        true = np.repeat(np.arange(12), 10)
        mapping = rng.permutation(12)
        pred = mapping[true]
        assert clustering_accuracy(true, pred) == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ShapeError):
            clustering_accuracy(np.zeros(3), np.zeros(4))


class TestEmbedding:
    def test_shape(self, rng):
        a = rng.standard_normal((300, 40))
        coords = embed_columns(a, rank=5)
        assert coords.shape == (40, 5)

    def test_centering_removes_mean_component(self, rng):
        base = rng.standard_normal(200)
        a = np.tile(base[:, None], (1, 30)) \
            + 0.01 * rng.standard_normal((200, 30))
        coords = embed_columns(a, rank=2, center=True)
        # After centering the shared mean direction carries ~no energy.
        assert np.linalg.norm(coords) < 10

    def test_1d_raises(self):
        with pytest.raises(ShapeError):
            embed_columns(np.zeros(5), rank=2)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def panel(self):
        return hapmap_like_matrix(5_000, 120, seed=3, return_panel=True)

    def test_population_recovery_with_power(self, panel):
        score = population_recovery_score(
            panel.genotypes, panel.labels, rank=6,
            config=SamplingConfig(rank=6, power_iterations=2, seed=4))
        assert score > 0.9

    def test_power_iterations_help_recovery(self, panel):
        s0 = population_recovery_score(
            panel.genotypes, panel.labels, rank=6,
            config=SamplingConfig(rank=6, power_iterations=0, seed=4))
        s2 = population_recovery_score(
            panel.genotypes, panel.labels, rank=6,
            config=SamplingConfig(rank=6, power_iterations=2, seed=4))
        assert s2 >= s0

    def test_cluster_columns_labels(self, panel):
        labels = cluster_columns(panel.genotypes, n_clusters=4, rank=6)
        assert labels.shape == (120,)
        assert set(labels.tolist()).issubset({0, 1, 2, 3})

    def test_too_few_clusters_raises(self, panel):
        with pytest.raises(ShapeError):
            cluster_columns(panel.genotypes, n_clusters=1, rank=4)

    def test_label_length_mismatch_raises(self, panel):
        with pytest.raises(ShapeError):
            population_recovery_score(panel.genotypes, np.zeros(7),
                                      rank=4)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for per-test random data."""
    return np.random.default_rng(12345)


@pytest.fixture
def tall_matrix(rng) -> np.ndarray:
    """A generic well-conditioned tall-skinny matrix (200 x 30)."""
    return rng.standard_normal((200, 30))


@pytest.fixture
def wide_matrix(rng) -> np.ndarray:
    """A generic well-conditioned short-wide matrix (25 x 300)."""
    return rng.standard_normal((25, 300))


@pytest.fixture
def lowrank_matrix(rng) -> np.ndarray:
    """An exactly rank-12 matrix (300 x 80)."""
    return (rng.standard_normal((300, 12))
            @ rng.standard_normal((12, 80)))


@pytest.fixture
def decaying_matrix() -> np.ndarray:
    """A 400 x 120 matrix with exponentially decaying spectrum
    (sigma_i = 10^{-i/10}) and Haar singular vectors, seeded."""
    from repro.matrices import exponent_matrix
    return exponent_matrix(400, 120, seed=7)

"""Tests for the synthetic Table 1 matrices (repro.matrices.synthetic)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices.synthetic import (exponent_matrix, exponent_spectrum,
                                      power_matrix, power_spectrum,
                                      random_orthonormal, spectrum_matrix)

from tests.helpers import assert_orthonormal_columns


class TestRandomOrthonormal:
    def test_orthonormal(self, rng):
        q = random_orthonormal(100, 20, seed=rng)
        assert_orthonormal_columns(q)

    def test_square(self):
        q = random_orthonormal(15, 15, seed=0)
        np.testing.assert_allclose(q @ q.T, np.eye(15), atol=1e-12)

    def test_seeded_reproducible(self):
        np.testing.assert_array_equal(random_orthonormal(30, 5, seed=42),
                                      random_orthonormal(30, 5, seed=42))

    def test_different_seeds_differ(self):
        a = random_orthonormal(30, 5, seed=1)
        b = random_orthonormal(30, 5, seed=2)
        assert not np.allclose(a, b)

    def test_wide_raises(self):
        with pytest.raises(ShapeError):
            random_orthonormal(5, 10)

    def test_haar_sign_convention(self):
        # The sign fix makes the distribution Haar; a necessary symptom
        # is that column means are centered (weak sanity check).
        q = random_orthonormal(2000, 3, seed=3)
        assert np.all(np.abs(q.mean(axis=0)) < 0.05)


class TestSpectra:
    def test_power_values(self):
        s = power_spectrum(5)
        np.testing.assert_allclose(s, [1.0, 2.0 ** -3, 3.0 ** -3,
                                       4.0 ** -3, 5.0 ** -3])

    def test_power_table1_sigma51(self):
        # Table 1: sigma_{k+1} ~ 8e-6 at k = 50.
        s = power_spectrum(500)
        assert s[51] == pytest.approx(52.0 ** -3)
        assert 7e-6 < s[51] < 9e-6

    def test_exponent_values(self):
        s = exponent_spectrum(21)
        assert s[0] == 1.0
        assert s[10] == pytest.approx(0.1)
        assert s[20] == pytest.approx(0.01)

    def test_exponent_table1_sigma51(self):
        # Table 1 quotes sigma_{k+1} ~ 1.3e-5 at k = 50; that value is
        # 10^(-4.9), i.e. the paper's indexing starts the decade count
        # at 1.  Our 0-based s[49] carries it; s[51] = 10^(-5.1).
        s = exponent_spectrum(500)
        assert s[49] == pytest.approx(1.26e-5, rel=0.02)
        assert s[51] == pytest.approx(10 ** -5.1, rel=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            power_spectrum(0)
        with pytest.raises(ShapeError):
            exponent_spectrum(0)


class TestSpectrumMatrix:
    def test_singular_values_match(self, rng):
        spec = np.array([5.0, 2.0, 1.0, 0.1])
        a = spectrum_matrix(50, 20, spec, seed=0)
        s = np.linalg.svd(a, compute_uv=False)
        np.testing.assert_allclose(s[:4], spec, atol=1e-12)
        np.testing.assert_allclose(s[4:], 0.0, atol=1e-12)

    def test_return_factors(self):
        spec = np.array([2.0, 1.0])
        a, x, y = spectrum_matrix(30, 10, spec, seed=1, return_factors=True)
        np.testing.assert_allclose((x * spec) @ y.T, a, atol=1e-14)
        assert_orthonormal_columns(x)
        assert_orthonormal_columns(y)

    def test_spectrum_too_long_raises(self):
        with pytest.raises(ShapeError):
            spectrum_matrix(10, 5, np.ones(6))

    def test_negative_spectrum_raises(self):
        with pytest.raises(ShapeError):
            spectrum_matrix(10, 5, np.array([1.0, -1.0]))

    def test_2d_spectrum_raises(self):
        with pytest.raises(ShapeError):
            spectrum_matrix(10, 5, np.ones((2, 2)))


class TestPaperMatrices:
    def test_power_matrix_spectrum(self):
        a = power_matrix(200, 60, seed=0)
        s = np.linalg.svd(a, compute_uv=False)
        np.testing.assert_allclose(s, power_spectrum(60), atol=1e-12)

    def test_exponent_matrix_spectrum(self):
        a = exponent_matrix(200, 60, seed=0)
        s = np.linalg.svd(a, compute_uv=False)
        np.testing.assert_allclose(s, exponent_spectrum(60), atol=1e-10)

    def test_kappa_at_k50(self):
        # Table 1 reports kappa = sigma_0/sigma_{k+1}: 1.3e5 (power)
        # and 7.9e4 (exponent); allow for the paper's one-off indexing
        # convention (a factor 10^0.2 for the exponent spectrum).
        sp = power_spectrum(500)
        se = exponent_spectrum(500)
        assert sp[0] / sp[51] == pytest.approx(1.3e5, rel=0.15)
        assert 7.9e4 * 0.8 < se[0] / se[49] < 1.26e5 * 1.2

    def test_seeded(self):
        np.testing.assert_array_equal(power_matrix(50, 20, seed=9),
                                      power_matrix(50, 20, seed=9))

"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_base(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_shape_error_is_value_error(self):
        assert issubclass(errors.ShapeError, ValueError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_cholesky_is_arithmetic_error(self):
        assert issubclass(errors.CholeskyBreakdownError, ArithmeticError)

    def test_device_errors(self):
        assert issubclass(errors.OutOfDeviceMemoryError, errors.DeviceError)
        assert issubclass(errors.SymbolicExecutionError, errors.DeviceError)

    def test_convergence_error_carries_history(self):
        e = errors.ConvergenceError("nope", history=[1, 2, 3])
        assert e.history == [1, 2, 3]
        e2 = errors.ConvergenceError("nope")
        assert e2.history == []

    def test_oom_message_contents(self):
        e = errors.OutOfDeviceMemoryError(100, 40, 200)
        assert "100" in str(e) and "40" in str(e) and "200" in str(e)

    def test_single_except_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.SymbolicExecutionError("x")

"""Tests for hardware specs and anchor curves (repro.gpu.specs)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.gpu.specs import KEPLER_K40C, AnchorCurve, GPUSpec


class TestAnchorCurve:
    def test_hits_anchors_exactly(self):
        c = AnchorCurve([(10, 1.0), (100, 10.0), (1000, 50.0)])
        assert c(10) == pytest.approx(1.0)
        assert c(100) == pytest.approx(10.0)
        assert c(1000) == pytest.approx(50.0)

    def test_loglog_interpolation(self):
        # Two decades, one decade of y: geometric midpoint maps to
        # geometric midpoint.
        c = AnchorCurve([(10, 1.0), (1000, 100.0)])
        assert c(100) == pytest.approx(10.0)

    def test_flat_extrapolation(self):
        c = AnchorCurve([(10, 2.0), (100, 20.0)])
        assert c(1) == pytest.approx(2.0)
        assert c(1e6) == pytest.approx(20.0)

    def test_monotone_between_monotone_anchors(self):
        c = AnchorCurve([(1, 1.0), (10, 5.0), (100, 9.0)])
        xs = [1.5, 3, 7, 20, 50, 99]
        ys = [c(x) for x in xs]
        assert all(a < b for a, b in zip(ys, ys[1:]))

    def test_unsorted_input_accepted(self):
        c = AnchorCurve([(100, 10.0), (10, 1.0)])
        assert c(10) == pytest.approx(1.0)

    def test_single_point_constant(self):
        c = AnchorCurve([(5, 3.0)])
        assert c(1) == c(100) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            AnchorCurve([])

    def test_nonpositive_anchor_raises(self):
        with pytest.raises(ConfigurationError):
            AnchorCurve([(0, 1.0)])
        with pytest.raises(ConfigurationError):
            AnchorCurve([(1, -1.0)])

    def test_duplicate_x_raises(self):
        with pytest.raises(ConfigurationError):
            AnchorCurve([(1, 1.0), (1, 2.0)])

    def test_nonpositive_query_raises(self):
        c = AnchorCurve([(1, 1.0)])
        with pytest.raises(ConfigurationError):
            c(0)


class TestGPUSpec:
    def test_default_is_k40c(self):
        assert "K40c" in KEPLER_K40C.name
        assert KEPLER_K40C.fp64_peak_gflops == 1430.0
        assert KEPLER_K40C.mem_bw_gbs == 288.0

    def test_validate_passes_default(self):
        KEPLER_K40C.validate()

    def test_gemm_cap_cannot_exceed_memory_peak(self):
        bad = dataclasses.replace(KEPLER_K40C, gemm_bw_cap_gbs=500.0)
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_dgemm_peak_below_fp64_peak(self):
        bad = dataclasses.replace(KEPLER_K40C, dgemm_peak_gflops=2000.0)
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_pcie_below_device_memory(self):
        bad = dataclasses.replace(KEPLER_K40C, pcie_bw_gbs=300.0)
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_calibration_curves_present(self):
        for attr in ("cholqr_ts_curve", "hhqr_ts_curve", "cgs_ts_curve",
                     "mgs_ts_curve", "cholqr_sw_curve",
                     "hhqr_sw_curve", "qp3_blas2_curve"):
            assert isinstance(getattr(KEPLER_K40C, attr), AnchorCurve)

"""Tests for the named test-matrix registry (repro.matrices.registry)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.matrices.registry import (TABLE1_SPECS, clear_matrix_cache,
                                     get_matrix, list_matrices,
                                     matrix_cache_info, table1_row)


class TestRegistry:
    def test_lists_all_three(self):
        assert set(list_matrices()) == {"power", "exponent", "hapmap"}

    def test_specs_carry_paper_shapes(self):
        assert TABLE1_SPECS["power"].paper_shape == (500_000, 500)
        assert TABLE1_SPECS["hapmap"].paper_shape == (503_783, 506)

    def test_get_matrix_scaled(self):
        a = get_matrix("power", m=100, n=40, seed=0)
        assert a.shape == (100, 40)

    def test_get_matrix_default_n(self):
        a = get_matrix("exponent", m=200, seed=0)
        assert a.shape == (200, 500)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_matrix("nope", m=10, n=10)

    def test_seeded_reproducible(self):
        np.testing.assert_array_equal(get_matrix("hapmap", m=50, n=20,
                                                 seed=1),
                                      get_matrix("hapmap", m=50, n=20,
                                                 seed=1))


class TestMatrixCache:
    def setup_method(self):
        clear_matrix_cache()

    def teardown_method(self):
        clear_matrix_cache()

    def test_repeat_request_hits_cache(self):
        get_matrix("power", m=80, n=30, seed=3)
        info = matrix_cache_info()
        assert info == {"hits": 0, "misses": 1, "entries": 1}
        get_matrix("power", m=80, n=30, seed=3)
        assert matrix_cache_info()["hits"] == 1

    def test_cache_key_includes_all_params(self):
        get_matrix("power", m=80, n=30, seed=3)
        get_matrix("power", m=80, n=30, seed=4)      # different seed
        get_matrix("power", m=81, n=30, seed=3)      # different m
        get_matrix("exponent", m=80, n=30, seed=3)   # different name
        assert matrix_cache_info()["misses"] == 4
        assert matrix_cache_info()["hits"] == 0

    def test_cached_copy_is_isolated(self):
        a = get_matrix("exponent", m=60, n=20, seed=0)
        a[0, 0] = 123.0
        b = get_matrix("exponent", m=60, n=20, seed=0)
        assert b[0, 0] != 123.0

    def test_generator_seed_bypasses_cache(self):
        get_matrix("power", m=40, n=20,
                   seed=np.random.default_rng(0))
        assert matrix_cache_info() == {"hits": 0, "misses": 0,
                                       "entries": 0}

    def test_cache_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATRIX_CACHE", "0")
        get_matrix("power", m=40, n=20, seed=0)
        assert matrix_cache_info()["entries"] == 0

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATRIX_CACHE", "lots")
        with pytest.raises(ConfigurationError):
            get_matrix("power", m=40, n=20, seed=0)

    def test_lru_eviction(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATRIX_CACHE", "2")
        get_matrix("power", m=40, n=20, seed=0)
        get_matrix("power", m=40, n=20, seed=1)
        get_matrix("power", m=40, n=20, seed=2)   # evicts seed=0
        assert matrix_cache_info()["entries"] == 2
        get_matrix("power", m=40, n=20, seed=0)   # miss again
        assert matrix_cache_info()["misses"] == 4


class TestTable1Row:
    def test_exponent_stats(self):
        a = get_matrix("exponent", m=300, n=200, seed=0)
        row = table1_row(a, k=50)
        assert row["sigma_0"] == pytest.approx(1.0, rel=1e-6)
        assert row["sigma_k1"] == pytest.approx(10 ** -5.1, rel=1e-3)
        assert row["kappa"] == pytest.approx(10 ** 5.1, rel=1e-3)

    def test_k_too_large_raises(self):
        a = get_matrix("power", m=60, n=30, seed=0)
        with pytest.raises(ConfigurationError):
            table1_row(a, k=30)

    def test_zero_tail_gives_inf_kappa(self, rng):
        a = rng.standard_normal((40, 5)) @ rng.standard_normal((5, 30))
        row = table1_row(a, k=10)
        assert row["kappa"] > 1e12  # numerically zero tail

"""Tests for the fixed-rank algorithm (repro.core.random_sampling)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.lowrank import best_rank_k_error
from repro.core.random_sampling import random_sampling
from repro.errors import (ConfigurationError, ShapeError,
                          SymbolicExecutionError)
from repro.gpu.device import GPUExecutor, NumpyExecutor, SymArray
from repro.matrices.synthetic import exponent_matrix, power_matrix
from repro.qr.qrcp import qp3_blocked

from tests.helpers import (assert_orthonormal_columns,
                           assert_valid_permutation)


class TestExactRecovery:
    def test_rank_k_matrix_recovered(self, lowrank_matrix):
        cfg = SamplingConfig(rank=12, oversampling=6, seed=0)
        f = random_sampling(lowrank_matrix, cfg)
        assert f.residual(lowrank_matrix) < 1e-10

    def test_rank_larger_than_true_rank(self, lowrank_matrix):
        cfg = SamplingConfig(rank=20, oversampling=5, seed=0)
        f = random_sampling(lowrank_matrix, cfg)
        assert f.residual(lowrank_matrix) < 1e-9

    def test_factor_contracts(self, decaying_matrix):
        cfg = SamplingConfig(rank=30, oversampling=10, seed=1)
        f = random_sampling(decaying_matrix, cfg)
        assert f.q.shape == (400, 30)
        assert f.r.shape == (30, 120)
        assert_orthonormal_columns(np.asarray(f.q))
        assert_valid_permutation(f.perm, 120)
        assert f.k == 30
        assert f.sample_size == 40

    def test_r_leading_block_triangular(self, decaying_matrix):
        f = random_sampling(decaying_matrix,
                            SamplingConfig(rank=20, seed=2))
        r = np.asarray(f.r)
        np.testing.assert_allclose(r[:, :20], np.triu(r[:, :20]))


class TestAccuracyVsOptimum:
    @pytest.mark.parametrize("q,factor", [(0, 30.0), (1, 6.0), (2, 4.0)])
    def test_error_within_factor_of_sigma_k1(self, decaying_matrix, q,
                                             factor):
        cfg = SamplingConfig(rank=30, oversampling=10, power_iterations=q,
                             seed=3)
        f = random_sampling(decaying_matrix, cfg)
        opt = best_rank_k_error(decaying_matrix, 30)
        assert f.residual(decaying_matrix) < factor * opt

    def test_power_iterations_never_hurt_much(self, decaying_matrix):
        errs = []
        for q in (0, 1, 2):
            cfg = SamplingConfig(rank=25, oversampling=10,
                                 power_iterations=q, seed=4)
            errs.append(random_sampling(decaying_matrix,
                                        cfg).residual(decaying_matrix))
        assert errs[1] <= errs[0] * 1.1
        assert errs[2] <= errs[1] * 1.1

    def test_figure6_parity_with_qp3(self):
        """Figure 6's core claim: q = 0 matches QP3's error to within
        one order of magnitude, q >= 1 matches it outright."""
        a = exponent_matrix(2_000, 300, seed=5)
        qp3_err = qp3_blocked(a, k=50).residual(a)
        e0 = random_sampling(a, SamplingConfig(rank=50, seed=6)).residual(a)
        e1 = random_sampling(a, SamplingConfig(rank=50, power_iterations=1,
                                               seed=6)).residual(a)
        assert e0 < 10 * qp3_err
        assert e1 < 2.0 * qp3_err

    def test_oversampling_improves_error(self):
        """Section 7: without oversampling (p = 0) the error norm is
        about an order of magnitude greater."""
        a = power_matrix(2_000, 300, seed=7)
        e_p0 = random_sampling(a, SamplingConfig(rank=50, oversampling=0,
                                                 seed=8)).residual(a)
        e_p10 = random_sampling(a, SamplingConfig(rank=50, oversampling=10,
                                                  seed=8)).residual(a)
        assert e_p10 < e_p0

    def test_fft_sampler_same_error_order(self):
        """Section 7: FFT sampling gives errors of the same order as
        Gaussian sampling."""
        a = exponent_matrix(1_024, 200, seed=9)
        eg = random_sampling(a, SamplingConfig(rank=40, seed=10)).residual(a)
        ef = random_sampling(a, SamplingConfig(rank=40, sampler="fft",
                                               seed=10)).residual(a)
        assert ef < 10 * eg
        assert eg < 10 * ef


class TestDeterminism:
    def test_same_seed_same_factors(self, decaying_matrix):
        cfg = SamplingConfig(rank=20, seed=11)
        f1 = random_sampling(decaying_matrix, cfg)
        f2 = random_sampling(decaying_matrix, cfg)
        np.testing.assert_array_equal(np.asarray(f1.q), np.asarray(f2.q))
        np.testing.assert_array_equal(f1.perm, f2.perm)

    def test_different_seed_different_sample(self, decaying_matrix):
        f1 = random_sampling(decaying_matrix, SamplingConfig(rank=20,
                                                             seed=1))
        f2 = random_sampling(decaying_matrix, SamplingConfig(rank=20,
                                                             seed=2))
        assert not np.allclose(np.asarray(f1.q), np.asarray(f2.q))


class TestValidation:
    def test_rank_exceeds_dims(self, rng):
        a = rng.standard_normal((30, 20))
        with pytest.raises(ConfigurationError):
            random_sampling(a, SamplingConfig(rank=25))

    def test_sample_size_exceeds_m(self, rng):
        a = rng.standard_normal((30, 40))
        with pytest.raises(ConfigurationError):
            random_sampling(a, SamplingConfig(rank=25, oversampling=10))


class TestTimedRuns:
    def test_symbolic_run_produces_breakdown(self):
        ex = GPUExecutor(seed=0)
        cfg = SamplingConfig(rank=54, oversampling=10, power_iterations=1,
                             seed=0)
        f = random_sampling(SymArray((50_000, 2_500)), cfg, executor=ex)
        assert f.symbolic
        assert f.seconds > 0
        for phase in ("prng", "sampling", "gemm_iter", "orth_iter",
                      "qrcp", "qr"):
            assert f.breakdown[phase] > 0, phase

    def test_symbolic_result_rejects_numerics(self):
        ex = GPUExecutor(seed=0)
        f = random_sampling(SymArray((1_000, 200)),
                            SamplingConfig(rank=10, seed=0), executor=ex)
        with pytest.raises(SymbolicExecutionError):
            f.approximation()
        with pytest.raises(SymbolicExecutionError):
            f.residual(np.zeros((1_000, 200)))

    def test_real_timed_run_matches_untimed_math(self, decaying_matrix):
        cfg = SamplingConfig(rank=20, power_iterations=1, seed=12)
        ref = random_sampling(decaying_matrix, cfg,
                              executor=NumpyExecutor(seed=12))
        timed = random_sampling(decaying_matrix, cfg,
                                executor=GPUExecutor(seed=12))
        np.testing.assert_allclose(np.asarray(timed.q), np.asarray(ref.q),
                                   atol=1e-10)
        assert timed.seconds > 0

    def test_q0_faster_than_q1(self):
        def run(q):
            ex = GPUExecutor(seed=0)
            cfg = SamplingConfig(rank=54, oversampling=10,
                                 power_iterations=q, seed=0)
            return random_sampling(SymArray((50_000, 2_500)), cfg,
                                   executor=ex).seconds
        assert run(0) < run(1) < run(2)

    def test_speedup_over_qp3_in_paper_band(self):
        """Section 9 headline: up to 12.8x (q=0) and 6.6x (q=1) over
        QP3 at m = 50 000, n = 2 500."""
        from repro.gpu.kernels import KernelModel
        qp3 = KernelModel().qp3_seconds(50_000, 2_500, 54)

        def run(q):
            ex = GPUExecutor(seed=0)
            cfg = SamplingConfig(rank=54, oversampling=10,
                                 power_iterations=q, seed=0)
            return random_sampling(SymArray((50_000, 2_500)), cfg,
                                   executor=ex).seconds
        s0 = qp3 / run(0)
        s1 = qp3 / run(1)
        assert 8.0 < s0 < 16.0
        assert 4.0 < s1 < 9.0

    def test_narrow_matrix_without_trailing_columns(self, rng):
        # n == k: step 3 returns R_bar directly (no T block).
        a = rng.standard_normal((200, 15))
        f = random_sampling(a, SamplingConfig(rank=15, oversampling=5,
                                              seed=0))
        assert f.r.shape == (15, 15)
        assert f.residual(a) < 1e-9

"""Tests for the Figure 10 performance estimator
(repro.perfmodel.estimate)."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.estimate import (estimate_qp3_gflops,
                                      estimate_qp3_seconds,
                                      estimate_random_sampling_gflops,
                                      estimate_random_sampling_seconds,
                                      estimate_speedup,
                                      estimated_gflops_sweep)


class TestEstimates:
    def test_qp3_under_29_gflops(self):
        """Fig 10: 'its performance was limited under 29 Gflop/s'."""
        for m in (10_000, 30_000, 50_000):
            assert estimate_qp3_gflops(m, 2_500, 54) < 29.5

    def test_sampling_reaches_hundreds(self):
        """Fig 10: ~676 Gflop/s for q=1 and ~489 for q=0 at m=50k."""
        g1 = estimate_random_sampling_gflops(50_000, 2_500, 64, 54, 1)
        g0 = estimate_random_sampling_gflops(50_000, 2_500, 64, 54, 0)
        assert g1 == pytest.approx(676.0, rel=0.25)
        assert g0 == pytest.approx(489.0, rel=0.25)
        assert g1 > g0

    def test_predicted_speedups_match_section8(self):
        """Sec 8: expected speedups ~6.7x (q=1) and ~14.3x (q=0)."""
        s1 = estimate_speedup(50_000, 2_500, 64, 54, 1)
        s0 = estimate_speedup(50_000, 2_500, 64, 54, 0)
        assert 4.0 < s1 < 9.0
        assert 9.0 < s0 < 18.0

    def test_seconds_increase_with_m(self):
        ts = [estimate_random_sampling_seconds(m, 2_500, 64, 54, 1)
              for m in (10_000, 20_000, 40_000)]
        assert ts[0] < ts[1] < ts[2]

    def test_seconds_increase_with_q(self):
        ts = [estimate_random_sampling_seconds(50_000, 2_500, 64, 54, q)
              for q in (0, 1, 2, 4)]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            estimate_random_sampling_seconds(100, 100, 64, 70, 0)  # k > l


class TestSweep:
    def test_series_keys_and_lengths(self):
        data = estimated_gflops_sweep([10_000, 20_000])
        assert set(data) == {"m", "qp3", "rs_q0", "rs_q1"}
        assert all(len(v) == 2 for v in data.values())

    def test_gflops_grow_with_m(self):
        data = estimated_gflops_sweep([5_000, 50_000])
        assert data["rs_q1"][1] > data["rs_q1"][0]

"""Tests for the paper-vs-measured reproduction report
(repro.bench.paper_reference)."""

import pytest

from repro.bench.paper_reference import (CLAIMS, PaperClaim,
                                         reproduction_report)


class TestClaimMechanics:
    def test_pass_within_tolerance(self):
        claim = PaperClaim("x", "c", 10.0, 0.1, lambda: 10.5)
        assert claim.check()["status"] == "PASS"

    def test_fail_outside_tolerance(self):
        claim = PaperClaim("x", "c", 10.0, 0.1, lambda: 12.0)
        assert claim.check()["status"] == "FAIL"

    def test_row_fields(self):
        row = PaperClaim("exp", "name", 1.0, 0.5, lambda: 1.0,
                         "Gflop/s").check()
        assert row["experiment"] == "exp"
        assert row["unit"] == "Gflop/s"
        assert row["measured"] == 1.0


class TestClaimRegistry:
    def test_covers_the_headline_experiments(self):
        exps = {c.experiment for c in CLAIMS}
        assert {"fig07", "fig08", "fig09", "fig10", "fig11",
                "fig15", "fig18"} <= exps

    def test_claims_have_positive_tolerances(self):
        assert all(0 < c.rtol < 1 for c in CLAIMS)

    def test_at_least_25_claims(self):
        assert len(CLAIMS) >= 25


class TestFullReport:
    def test_every_claim_passes(self):
        """The headline test of the whole reproduction: every encoded
        paper value is re-measured within its band."""
        rows = reproduction_report()
        fails = [r for r in rows if r["status"] == "FAIL"]
        assert not fails, fails

    def test_experiment_filter(self):
        rows = reproduction_report(experiments=["fig18"])
        assert len(rows) == 5
        assert all(r["experiment"] == "fig18" for r in rows)

    def test_cli_diff_command(self, capsys):
        from repro.cli import main
        assert main(["diff"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "paper" in out

"""Execute every Python block in docs/tutorial.md.

The tutorial's code blocks share one namespace (like a reader's REPL
session), so later sections can use names from earlier ones.  A block
that raises fails the test with its section heading in the message.
"""

import pathlib
import re

import pytest

TUTORIAL = (pathlib.Path(__file__).resolve().parent.parent
            / "docs" / "tutorial.md")


def _python_blocks():
    text = TUTORIAL.read_text()
    blocks = []
    heading = "(top)"
    in_block = None
    for line in text.splitlines():
        if line.startswith("#"):
            heading = line.lstrip("# ").strip() or heading
        if line.strip() == "```python":
            in_block = []
        elif line.strip() == "```" and in_block is not None:
            blocks.append((heading, "\n".join(in_block)))
            in_block = None
        elif in_block is not None:
            in_block.append(line)
    return blocks


def test_tutorial_has_blocks():
    blocks = _python_blocks()
    assert len(blocks) >= 7


def test_tutorial_blocks_execute():
    namespace: dict = {}
    for heading, code in _python_blocks():
        try:
            exec(compile(code, f"tutorial:{heading}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(f"tutorial block under {heading!r} failed: "
                        f"{exc!r}")


def test_tutorial_mentions_cli_commands():
    text = TUTORIAL.read_text()
    from repro.cli import _COMMANDS
    assert "diff" in _COMMANDS
    assert "python -m repro.cli diff" in text

"""Tests for the adaptive-l fixed-accuracy scheme (repro.core.adaptive)."""

import numpy as np
import pytest

from repro.config import AdaptiveConfig
from repro.core.adaptive import (AdaptiveResult, AdaptiveStep,
                                 _next_increment, adaptive_sampling)
from repro.errors import ConvergenceError
from repro.gpu.device import GPUExecutor, NumpyExecutor
from repro.matrices.synthetic import exponent_matrix

from tests.helpers import assert_orthonormal_rows


@pytest.fixture(scope="module")
def a_exp() -> np.ndarray:
    return exponent_matrix(1_500, 300, seed=0)


class TestConvergence:
    def test_converges_and_meets_tolerance(self, a_exp):
        cfg = AdaptiveConfig(tolerance=1e-8, l_init=8, l_inc=8, seed=1)
        res = adaptive_sampling(a_exp, cfg)
        assert res.converged
        assert res.steps[-1].error_estimate <= 1e-8
        # The probabilistic estimate upper-bounds the actual error.
        assert res.actual_error(a_exp) <= res.steps[-1].error_estimate * 10

    def test_basis_orthonormal(self, a_exp):
        cfg = AdaptiveConfig(tolerance=1e-6, seed=2)
        res = adaptive_sampling(a_exp, cfg)
        assert_orthonormal_rows(np.asarray(res.basis), tol=1e-10)

    def test_estimates_decrease_overall(self, a_exp):
        cfg = AdaptiveConfig(tolerance=1e-10, l_init=16, l_inc=16, seed=3)
        res = adaptive_sampling(a_exp, cfg)
        ests = [s.error_estimate for s in res.steps]
        assert ests[-1] < ests[0] * 1e-6

    def test_subspace_sizes_increase_by_inc(self, a_exp):
        cfg = AdaptiveConfig(tolerance=1e-8, l_init=8, l_inc=8, seed=4)
        res = adaptive_sampling(a_exp, cfg)
        sizes = [s.subspace_size for s in res.steps]
        assert sizes[0] == 8
        assert all(b - a == 8 for a, b in zip(sizes, sizes[1:]))

    def test_tighter_tolerance_needs_bigger_subspace(self, a_exp):
        r1 = adaptive_sampling(a_exp, AdaptiveConfig(tolerance=1e-4,
                                                     seed=5))
        r2 = adaptive_sampling(a_exp, AdaptiveConfig(tolerance=1e-8,
                                                     seed=5))
        assert r2.subspace_size > r1.subspace_size

    def test_power_iterations_supported(self, a_exp):
        cfg = AdaptiveConfig(tolerance=1e-6, power_iterations=1, seed=6)
        res = adaptive_sampling(a_exp, cfg)
        assert res.converged
        assert_orthonormal_rows(np.asarray(res.basis), tol=1e-9)

    def test_estimate_is_pessimistic(self, a_exp):
        """Figure 16: the estimate sits above the actual error."""
        cfg = AdaptiveConfig(tolerance=1e-9, l_init=16, l_inc=16, seed=7)
        res = adaptive_sampling(a_exp, cfg)
        basis = np.asarray(res.basis)
        for st in res.steps[:-1]:
            prefix = basis[: st.subspace_size, :]
            actual = np.linalg.norm(a_exp - (a_exp @ prefix.T) @ prefix, 2)
            assert st.error_estimate > 0.3 * actual


class TestCapAndExhaustion:
    def test_cap_raises_with_history(self, a_exp):
        cfg = AdaptiveConfig(tolerance=1e-13, l_init=8, l_inc=8,
                             max_subspace=32, seed=8)
        with pytest.raises(ConvergenceError) as exc:
            adaptive_sampling(a_exp, cfg)
        assert len(exc.value.history) >= 1

    def test_numerical_rank_exhaustion_converges_or_raises(self):
        """Past the numerical rank the DGKS guard drops annihilated
        rows; the run either converges (estimate below tol) or raises a
        ConvergenceError — it must never return garbage."""
        a = exponent_matrix(800, 150, seed=9)  # numerical rank ~ 150
        cfg = AdaptiveConfig(tolerance=1e-14, l_init=64, l_inc=64, seed=9)
        try:
            res = adaptive_sampling(a, cfg)
            assert res.converged
            assert_orthonormal_rows(np.asarray(res.basis), tol=1e-9)
        except ConvergenceError as e:
            assert e.history


class TestStepRules:
    def test_static_keeps_increment(self):
        cfg = AdaptiveConfig(tolerance=1e-8, l_inc=16, step_rule="static")
        hist = [AdaptiveStep(16, 16, 1e-2, 0.0),
                AdaptiveStep(32, 16, 1e-4, 0.0)]
        assert _next_increment(cfg, hist, 16) == 16

    def test_interpolate_targets_tolerance(self):
        cfg = AdaptiveConfig(tolerance=1e-8, l_inc=16,
                             step_rule="interpolate")
        # One decade per 16 vectors; 1e-4 -> 1e-8 needs ~64 more.
        hist = [AdaptiveStep(16, 16, 1e-3, 0.0),
                AdaptiveStep(32, 16, 1e-4, 0.0)]
        inc = _next_increment(cfg, hist, 16)
        assert 48 <= inc <= 64

    def test_interpolate_growth_clamped(self):
        cfg = AdaptiveConfig(tolerance=1e-30, l_inc=8,
                             step_rule="interpolate")
        hist = [AdaptiveStep(8, 8, 1e-2, 0.0),
                AdaptiveStep(16, 8, 9.9e-3, 0.0)]  # very shallow slope
        assert _next_increment(cfg, hist, 8) <= 32  # 4x cap

    def test_interpolate_handles_non_decreasing(self):
        cfg = AdaptiveConfig(tolerance=1e-8, step_rule="interpolate")
        hist = [AdaptiveStep(8, 8, 1e-3, 0.0),
                AdaptiveStep(16, 8, 2e-3, 0.0)]
        assert _next_increment(cfg, hist, 8) == 8

    def test_interpolate_needs_two_points(self):
        cfg = AdaptiveConfig(tolerance=1e-8, step_rule="interpolate")
        assert _next_increment(cfg, [], 8) == 8

    def test_interpolate_converges_end_to_end(self, a_exp):
        cfg = AdaptiveConfig(tolerance=1e-8, l_init=8, l_inc=8,
                             step_rule="interpolate", seed=10)
        res = adaptive_sampling(a_exp, cfg)
        assert res.converged
        # Adaptation should use fewer steps than the static rule.
        static = adaptive_sampling(a_exp, AdaptiveConfig(
            tolerance=1e-8, l_init=8, l_inc=8, seed=10))
        assert len(res.steps) < len(static.steps)


class TestTimedRuns:
    def test_modeled_seconds_recorded(self, a_exp):
        ex = GPUExecutor(seed=11)
        cfg = AdaptiveConfig(tolerance=1e-6, seed=11)
        res = adaptive_sampling(a_exp, cfg, executor=ex)
        assert res.seconds > 0
        times = [s.seconds for s in res.steps]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_larger_inc_fewer_steps(self, a_exp):
        def steps(inc):
            cfg = AdaptiveConfig(tolerance=1e-8, l_init=inc, l_inc=inc,
                                 seed=12)
            return len(adaptive_sampling(a_exp, cfg).steps)
        assert steps(32) < steps(8)


class TestEstimateRank:
    def test_upper_estimate_of_gap_rank(self):
        from repro.core.adaptive import estimate_rank
        from repro.matrices.gallery import gap_spectrum_matrix
        a = gap_spectrum_matrix(800, 200, rank=25, gap=1e8, seed=0)
        r = estimate_rank(a, 1e-4)
        assert 25 <= r <= 80  # never understates; modest overshoot

    def test_tighter_tolerance_larger_rank(self, a_exp):
        from repro.core.adaptive import estimate_rank
        assert estimate_rank(a_exp, 1e-8) > estimate_rank(a_exp, 1e-3)

    def test_bad_tolerance_raises(self, a_exp):
        from repro.core.adaptive import estimate_rank
        with pytest.raises(ConvergenceError):
            estimate_rank(a_exp, 0.0)


class TestResultObject:
    def test_subspace_size_property(self, a_exp):
        res = adaptive_sampling(a_exp, AdaptiveConfig(tolerance=1e-5,
                                                      seed=13))
        assert res.subspace_size == np.asarray(res.basis).shape[0]
        assert res.subspace_size == res.steps[-1].subspace_size

    def test_certified_bound_dominates_actual(self, a_exp):
        res = adaptive_sampling(a_exp, AdaptiveConfig(tolerance=1e-7,
                                                      l_inc=16, seed=15))
        bound = res.certified_bound(gamma=1e-6)
        assert bound >= res.actual_error(a_exp)
        # The bound stays within the quality factor of the raw estimate.
        assert bound < 30 * res.steps[-1].error_estimate

    def test_certified_bound_needs_steps(self):
        from repro.core.adaptive import AdaptiveResult
        import numpy as np
        empty = AdaptiveResult(basis=np.zeros((0, 3)), shape=(5, 3))
        with pytest.raises(ConvergenceError):
            empty.certified_bound()

    def test_relative_actual_error(self, a_exp):
        res = adaptive_sampling(a_exp, AdaptiveConfig(tolerance=1e-5,
                                                      seed=14))
        rel = res.actual_error(a_exp, relative=True)
        absolute = res.actual_error(a_exp, relative=False)
        assert rel == pytest.approx(
            absolute / np.linalg.norm(a_exp, 2))

"""Backend registry, selection, parity, and schema-v2 artifact tests.

The contract under test (see ``docs/backends.md``):

- ``SimulatedBackend`` and ``NumpyBackend`` share every kernel, so the
  full pipeline is bit-identical between them on real matrices;
- optional hardware backends (torch/cupy) register as unavailable when
  their dependency is missing and never break import;
- backend selection round-trips through config, env, and both CLIs;
- BENCH artifacts carry ``backend`` + ``wall_clock_s`` (schema v2) and
  ``obs diff`` survives a v1-vs-v2 comparison;
- RS114 keeps raw linalg from leaking outside ``repro/backends``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (BACKENDS, DEFAULT_BACKEND, CupyBackend,
                            NumpyBackend, SimulatedBackend, TorchBackend,
                            available_backends, default_backend_name,
                            detect_backend, get_default_backend, hostmath,
                            make_backend, resolve_backend)
from repro.backends.base import BackendStats, ComputeBackend
from repro.config import AdaptiveConfig, SamplingConfig
from repro.core.random_sampling import random_sampling
from repro.errors import CholeskyBreakdownError, ConfigurationError
from repro.matrices.registry import get_matrix, list_matrices

torch_missing = not TorchBackend.available()


# ---------------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_registry_names(self):
        assert list(BACKENDS) == ["simulated", "numpy", "torch", "cupy"]
        assert DEFAULT_BACKEND == "simulated"

    def test_model_backends_always_available(self):
        assert SimulatedBackend.available()
        assert NumpyBackend.available()
        for name in ("simulated", "numpy"):
            assert name in available_backends()

    def test_detect_backend_is_available(self):
        assert BACKENDS[detect_backend()].available()

    def test_make_backend_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("mkl")

    def test_make_backend_unavailable_lists_alternatives(self):
        missing = [n for n in BACKENDS if not BACKENDS[n].available()]
        if not missing:
            pytest.skip("every registered backend is installed here")
        with pytest.raises(ConfigurationError,
                           match="not available") as exc:
            make_backend(missing[0])
        assert "simulated" in str(exc.value)

    def test_make_backend_normalizes_case(self):
        assert make_backend("  NumPy ").name == "numpy"

    def test_default_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "simulated"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert default_backend_name() == detect_backend()

    def test_resolve_backend_forms(self):
        inst = NumpyBackend()
        assert resolve_backend(inst) is inst
        assert resolve_backend("numpy").name == "numpy"
        assert isinstance(resolve_backend(None), ComputeBackend)
        with pytest.raises(ConfigurationError, match="spec"):
            resolve_backend(3.14)

    def test_get_default_backend_caches(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_default_backend() is get_default_backend()

    def test_optional_backends_report_unavailability(self):
        # Never raises at import/probe time, with or without the dep.
        assert isinstance(TorchBackend.available(), bool)
        assert isinstance(CupyBackend.available(), bool)


# ---------------------------------------------------------------------------
# Kernel contract
# ---------------------------------------------------------------------------
class TestKernelContract:
    def test_stats_accounting(self):
        bk = NumpyBackend()
        assert bk.stats.kernel_calls == 0
        a = np.eye(4)
        bk.gemm(a, a)
        bk.svd(a)
        assert bk.stats.kernel_calls == 2
        assert bk.stats.wall_seconds >= 0.0
        d = bk.stats.to_dict()
        assert set(d) >= {"kernel_calls", "wall_seconds",
                          "h2d_bytes", "d2h_bytes"}
        bk.stats.reset()
        assert bk.stats.kernel_calls == 0

    def test_cholesky_contract_upper(self):
        bk = NumpyBackend()
        rng = bk.make_rng(0)
        a = bk.standard_normal(rng, (30, 6))
        g = a.T @ a
        r = bk.cholesky(g)
        assert np.allclose(np.tril(r, -1), 0.0)
        assert np.allclose(r.T @ r, g)

    def test_cholesky_breakdown(self):
        bk = NumpyBackend()
        with pytest.raises(CholeskyBreakdownError):
            bk.cholesky(np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_rng_shared_across_backends(self):
        # Omega must be backend-independent: always numpy PCG64.
        draws = []
        for name in ("simulated", "numpy"):
            bk = make_backend(name)
            draws.append(bk.standard_normal(bk.make_rng(42), (8, 3)))
        np.testing.assert_array_equal(draws[0], draws[1])

    def test_solve_triangular_trans(self):
        bk = NumpyBackend()
        r = np.triu(np.arange(1.0, 10.0).reshape(3, 3) + 3 * np.eye(3))
        b = np.arange(6.0).reshape(3, 2)
        x = bk.solve_triangular(r, b, lower=False, trans="T")
        np.testing.assert_allclose(r.T @ x, b)

    def test_hostmath_matches_numpy(self):
        a = np.arange(12.0).reshape(4, 3)
        assert hostmath.norm2(a) == pytest.approx(np.linalg.norm(a, 2))
        np.testing.assert_allclose(hostmath.svdvals(a),
                                   np.linalg.svd(a, compute_uv=False))


# ---------------------------------------------------------------------------
# Parity: simulated vs numpy bit-identical, torch to fp tolerance
# ---------------------------------------------------------------------------
def _factors(backend: str, name: str, m=300, n=120, k=20):
    a = get_matrix(name, m, n, seed=3)
    cfg = SamplingConfig(rank=k, oversampling=8, power_iterations=1,
                         seed=11, backend=backend)
    return a, random_sampling(a, cfg)


class TestParity:
    @pytest.mark.parametrize("name", list_matrices())
    def test_numpy_vs_simulated_bit_identical(self, name):
        a, f_sim = _factors("simulated", name)
        _, f_np = _factors("numpy", name)
        np.testing.assert_array_equal(f_sim.q, f_np.q)
        np.testing.assert_array_equal(f_sim.r, f_np.r)
        np.testing.assert_array_equal(f_sim.perm, f_np.perm)

    @pytest.mark.parametrize("name", list_matrices())
    def test_parity_runs_are_accurate(self, name):
        a, f = _factors("simulated", name)
        assert f.residual(a) < 0.5  # sanity: a real approximation

    @pytest.mark.skipif(torch_missing, reason="torch not installed")
    @pytest.mark.parametrize("name", list_matrices())
    def test_torch_parity_fp_tolerance(self, name):
        a, f_ref = _factors("simulated", name)
        _, f_t = _factors("torch", name)
        # Same random subspace, different arithmetic: factors agree to
        # fp tolerance (float32 on MPS devices, hence the loose atol).
        np.testing.assert_array_equal(f_ref.perm, f_t.perm)
        np.testing.assert_allclose(f_t.residual(a), f_ref.residual(a),
                                   rtol=1e-3, atol=1e-5)

    def test_cholqr_kernels_bit_identical(self):
        from repro.qr.cholqr import cholqr_rows
        rng = np.random.default_rng(5)
        b = rng.standard_normal((40, 200))
        q1, r1 = cholqr_rows(b, backend=make_backend("simulated"))
        q2, r2 = cholqr_rows(b, backend=make_backend("numpy"))
        np.testing.assert_array_equal(q1, q2)
        np.testing.assert_array_equal(r1, r2)


# ---------------------------------------------------------------------------
# Config and CLI round-trips
# ---------------------------------------------------------------------------
class TestSelectionRoundTrip:
    def test_config_accepts_registry_names(self):
        for name in ("simulated", "numpy", "torch", "cupy", "auto", None):
            assert SamplingConfig(rank=4, backend=name).backend == name
        assert AdaptiveConfig(tolerance=0.1,
                              backend="numpy").backend == "numpy"

    def test_config_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SamplingConfig(rank=4, backend="mkl")
        with pytest.raises(ConfigurationError, match="backend"):
            AdaptiveConfig(tolerance=0.1, backend="mkl")

    def test_config_may_name_unavailable_backend(self):
        # Constructing is legal; availability is a resolution-time check.
        missing = [n for n in BACKENDS if not BACKENDS[n].available()]
        if not missing:
            pytest.skip("every registered backend is installed here")
        assert SamplingConfig(rank=4,
                              backend=missing[0]).backend == missing[0]

    def test_executor_threads_backend(self):
        from repro.gpu.device import NumpyExecutor
        ex = NumpyExecutor(seed=0, backend="numpy")
        assert ex.backend.name == "numpy"

    def test_harness_records_backend(self):
        from repro.bench.harness import observed_fixed_rank
        _, rec = observed_fixed_rank("fig11", backend="numpy")
        assert rec.backend_name == "numpy"
        assert rec.backend_is_model is False
        assert rec.backend_wall_seconds >= 0.0

    def test_cli_backend_flag_sets_env(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert main(["list", "--backend", "numpy"]) == 0
        import os
        assert os.environ.get("REPRO_BACKEND") == "numpy"

    def test_cli_backend_flag_rejects_unknown(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with pytest.raises(SystemExit):
            main(["list", "--backend", "mkl"])
        assert "unknown backend" in capsys.readouterr().err

    def test_obs_cli_backend_round_trip(self, monkeypatch, tmp_path,
                                        capsys):
        from repro.obs.cli import main as obs_main
        import json
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        out = tmp_path / "BENCH_x.json"
        rc = obs_main(["run", "fig11", "--backend", "numpy",
                       "--bench", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == 2
        assert doc["backend"] == "numpy"
        assert doc["wall_clock_s"] >= 0.0
        assert "backend=numpy" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Artifact schema v2 + cross-version diff
# ---------------------------------------------------------------------------
class TestSchemaV2:
    def _v2(self):
        from repro.obs.artifact import build_artifact
        return build_artifact([], label="t", backend="numpy",
                              wall_clock_s=0.25)

    def test_build_artifact_v2_fields(self):
        from repro.obs.artifact import SCHEMA_VERSION, validate_artifact
        doc = self._v2()
        assert doc["schema_version"] == SCHEMA_VERSION == 2
        assert doc["backend"] == "numpy"
        assert doc["wall_clock_s"] == 0.25
        validate_artifact(doc)

    def test_default_backend_recorded(self, monkeypatch):
        from repro.obs.artifact import build_artifact
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert build_artifact([], label="t")["backend"] == "simulated"

    def test_validate_accepts_v1(self):
        from repro.obs.artifact import validate_artifact
        doc = self._v2()
        doc["schema_version"] = 1
        del doc["backend"], doc["wall_clock_s"]
        validate_artifact(doc)

    def test_validate_v2_requires_backend_fields(self):
        from repro.obs.artifact import validate_artifact
        doc = self._v2()
        del doc["backend"]
        with pytest.raises(ConfigurationError, match="backend"):
            validate_artifact(doc)

    def test_diff_across_schema_versions(self):
        from repro.obs.diff import diff_artifacts, render_diff
        new = self._v2()
        old = dict(new)
        old["schema_version"] = 1
        old = {k: v for k, v in old.items()
               if k not in ("backend", "wall_clock_s")}
        res = diff_artifacts(old, new)
        assert any("schema" in n for n in res.notes)
        text = render_diff(res)
        assert "obs diff note" in text

    def test_diff_notes_backend_skew(self):
        from repro.obs.diff import diff_artifacts
        a, b = self._v2(), self._v2()
        b["backend"] = "simulated"
        notes = diff_artifacts(a, b).notes
        assert any("backends differ" in n for n in notes)

    def test_diff_same_version_no_notes(self):
        from repro.obs.diff import diff_artifacts
        assert diff_artifacts(self._v2(), self._v2()).notes == []


# ---------------------------------------------------------------------------
# RS114: backend-boundary lint
# ---------------------------------------------------------------------------
class TestRS114:
    def _run(self, tmp_path, rel, source):
        from repro.analysis.engine import analyze_paths
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
        return [f.rule for f in analyze_paths([p], select=["RS114"],
                                              root=tmp_path)]

    def test_flags_linalg_call_outside_backends(self, tmp_path):
        assert self._run(tmp_path, "repro/core/x.py",
                         "import numpy as np\n"
                         "y = np.linalg.svd(a)\n") == ["RS114"]

    def test_flags_linalg_import(self, tmp_path):
        assert self._run(tmp_path, "repro/qr/x.py",
                         "from scipy.linalg import cholesky\n") == ["RS114"]

    def test_exempts_backends_package(self, tmp_path):
        assert self._run(tmp_path, "repro/backends/x.py",
                         "import numpy as np\n"
                         "y = np.linalg.svd(a)\n") == []

    def test_ignores_non_repro_paths(self, tmp_path):
        assert self._run(tmp_path, "scripts/x.py",
                         "import numpy as np\n"
                         "y = np.linalg.svd(a)\n") == []

    def test_plain_matmul_is_legal(self, tmp_path):
        assert self._run(tmp_path, "repro/qr/x.py", "c = a @ b\n") == []

    def test_core_tree_is_clean(self):
        from pathlib import Path
        from repro.analysis.engine import analyze_paths
        root = Path(__file__).resolve().parent.parent
        src = root / "src" / "repro"
        found = analyze_paths([src], select=["RS114"], root=root)
        assert found == []

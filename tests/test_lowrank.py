"""Tests for result types and error measures (repro.core.lowrank)."""

import numpy as np
import pytest

from repro.core.lowrank import (LowRankFactors, best_rank_k_error,
                                spectral_error)
from repro.errors import ShapeError, SymbolicExecutionError
from repro.gpu.device import SymArray


class TestSpectralError:
    def test_zero_for_exact(self, rng):
        a = rng.standard_normal((20, 10))
        assert spectral_error(a, a.copy()) == 0.0

    def test_relative_normalization(self, rng):
        a = rng.standard_normal((20, 10))
        err_abs = spectral_error(a, np.zeros_like(a), relative=False)
        assert err_abs == pytest.approx(np.linalg.norm(a, 2))
        assert spectral_error(a, np.zeros_like(a)) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            spectral_error(rng.standard_normal((3, 3)),
                           rng.standard_normal((3, 4)))


class TestBestRankK:
    def test_matches_svd_tail(self, decaying_matrix):
        s = np.linalg.svd(decaying_matrix, compute_uv=False)
        assert best_rank_k_error(decaying_matrix, 10,
                                 relative=False) == pytest.approx(s[10])
        assert best_rank_k_error(decaying_matrix, 10) == pytest.approx(
            s[10] / s[0])

    def test_zero_beyond_rank(self, lowrank_matrix):
        assert best_rank_k_error(lowrank_matrix, 80) == 0.0


class TestLowRankFactors:
    def _factors(self, rng):
        q = np.linalg.qr(rng.standard_normal((50, 5)))[0]
        r = rng.standard_normal((5, 20))
        perm = np.random.default_rng(0).permutation(20)
        return LowRankFactors(q=q, r=r, perm=perm, k=5, sample_size=8,
                              power_iterations=0)

    def test_approximation_undoes_permutation(self, rng):
        f = self._factors(rng)
        approx = f.approximation()
        np.testing.assert_allclose(approx[:, f.perm], f.q @ f.r)

    def test_residual_zero_for_consistent_a(self, rng):
        f = self._factors(rng)
        a = f.approximation()
        assert f.residual(a) < 1e-12

    def test_suboptimality_at_least_one(self, rng, decaying_matrix):
        from repro import SamplingConfig, random_sampling
        f = random_sampling(decaying_matrix,
                            SamplingConfig(rank=20, power_iterations=1,
                                           seed=0))
        assert f.suboptimality(decaying_matrix) >= 0.99

    def test_symbolic_flag_and_guards(self):
        f = LowRankFactors(q=SymArray((10, 2)), r=SymArray((2, 5)),
                           perm=np.arange(5), k=2, sample_size=3,
                           power_iterations=0)
        assert f.symbolic
        with pytest.raises(SymbolicExecutionError):
            f.approximation()

    def test_real_flag(self, rng):
        assert not self._factors(rng).symbolic

"""Smoke tests for the examples and the documentation.

- The simulated-device examples run end to end (they finish in well
  under a second each); the numerics-heavy ones are import-checked.
- Docstring examples in the public modules execute (doctest).
- The documentation files reference things that exist.
"""

import doctest
import importlib
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
DOCS = pathlib.Path(__file__).resolve().parent.parent


def _load_example(name: str):
    import importlib.util
    spec = importlib.util.spec_from_file_location(name,
                                                  EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", ["gpu_performance_tour",
                                      "multigpu_scaling",
                                      "cluster_projection"])
    def test_runs(self, name, capsys):
        mod = _load_example(name)
        mod.main()
        out = capsys.readouterr().out
        assert len(out) > 200  # produced its report


class TestHeavyExamplesImportable:
    @pytest.mark.parametrize("name", ["quickstart", "hapmap_clustering",
                                      "fixed_accuracy", "hss_solver"])
    def test_has_main(self, name):
        mod = _load_example(name)
        assert callable(mod.main)


class TestDoctests:
    @pytest.mark.parametrize("module_name", [
        "repro.core.random_sampling",
        "repro.core.svd",
        "repro.core.cur",
        "repro.hss.hodlr",
    ])
    def test_module_doctests(self, module_name):
        module = importlib.import_module(module_name)
        result = doctest.testmod(module)
        assert result.attempted > 0, f"{module_name} lost its doctests"
        assert result.failed == 0


class TestDocsConsistency:
    def test_design_lists_every_bench(self):
        design = (DOCS / "DESIGN.md").read_text()
        benches = sorted((DOCS / "benchmarks").glob("test_*.py"))
        missing = [b.name for b in benches if b.name not in design]
        assert not missing, f"DESIGN.md does not index: {missing}"

    def test_experiments_covers_every_figure(self):
        experiments = (DOCS / "EXPERIMENTS.md").read_text()
        for fig in ["Table 1"] + [f"Figure {i}" for i in range(5, 19)]:
            assert fig in experiments, fig

    def test_readme_examples_exist(self):
        readme = (DOCS / "README.md").read_text()
        for line in readme.splitlines():
            if "examples/" in line and ".py" in line:
                name = line.split("examples/")[1].split(".py")[0]
                assert (EXAMPLES / f"{name}.py").exists(), name

    def test_calibration_doc_constants_match(self):
        from repro.gpu.specs import KEPLER_K40C
        calib = (DOCS / "docs" / "calibration.md").read_text()
        assert str(int(KEPLER_K40C.dgemm_peak_gflops)) in calib
        assert "1.58" in calib  # iter_gemm_efficiency
        assert f"{KEPLER_K40C.gemm_bw_cap_gbs}" in calib

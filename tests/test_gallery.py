"""Tests for the hard-matrix gallery and algorithm robustness on it."""

import numpy as np
import pytest

from repro import SamplingConfig, random_sampling
from repro.errors import ShapeError
from repro.matrices.gallery import (devil_stairs, gap_spectrum_matrix,
                                    kahan_matrix, noisy_lowrank,
                                    slow_polynomial_decay)
from repro.qr.caqp3 import caqp3
from repro.qr.qrcp import qp3_blocked


class TestGenerators:
    def test_kahan_structure(self):
        k = kahan_matrix(20)
        np.testing.assert_allclose(k, np.triu(k))
        # Equal column norms after scaling is the defining trap; check
        # they are within a modest band.
        norms = np.linalg.norm(k, axis=0)
        assert norms.max() / norms.min() < 3

    def test_kahan_tiny_smallest_sv(self):
        k = kahan_matrix(40)
        s = np.linalg.svd(k, compute_uv=False)
        assert s[-1] < 1e-4 * s[0]

    def test_kahan_validation(self):
        with pytest.raises(ShapeError):
            kahan_matrix(0)
        with pytest.raises(ShapeError):
            kahan_matrix(5, theta=0.0)

    def test_devil_stairs_plateaus(self):
        a = devil_stairs(120, 60, steps=4, drop=10.0, seed=0)
        s = np.linalg.svd(a, compute_uv=False)
        # Four distinct levels, each ~10x apart.
        assert s[0] / s[-1] == pytest.approx(1e3, rel=0.2)
        assert s[0] == pytest.approx(s[10], rel=1e-6)  # same plateau

    def test_gap_spectrum(self):
        a = gap_spectrum_matrix(100, 50, rank=12, gap=1e5, seed=1)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[11] / s[12] == pytest.approx(1e5, rel=1e-3)

    def test_gap_validation(self):
        with pytest.raises(ShapeError):
            gap_spectrum_matrix(10, 10, rank=10)

    def test_noisy_lowrank_spectrum(self):
        a = noisy_lowrank(400, 100, rank=10, snr=1e4, seed=2)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[9] > 0.5            # signal plateau
        assert s[10] < 5e-4          # noise floor ~1/snr

    def test_slow_decay_heavy_tail(self):
        a = slow_polynomial_decay(200, 100, alpha=0.3, seed=3)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[50] > 0.2 * s[0]    # barely decays


class TestRobustness:
    """The algorithms on the adversarial gallery."""

    def test_kahan_qrcp_rank_revelation_failure(self):
        """The classic Kahan failure: QRCP's trailing diagonal entry
        |R_nn| overestimates sigma_min by a large factor (no pivoting
        triggers, so the tiny singular value stays hidden), while the
        truncated *residuals* of both algorithms remain near-optimal."""
        k = kahan_matrix(40)
        s = np.linalg.svd(k, compute_uv=False)
        res = qp3_blocked(k)
        assert abs(res.r[-1, -1]) > 20 * s[-1]  # the trap (we see ~60x)
        rank = 25
        det = qp3_blocked(k, k=rank)
        rnd = random_sampling(k, SamplingConfig(rank=rank, oversampling=6,
                                                power_iterations=2,
                                                seed=0))
        assert rnd.residual(k, relative=False) < 20 * s[rank]
        assert det.residual(k, relative=False) < 20 * s[rank]

    def test_gap_detected_by_all(self):
        a = gap_spectrum_matrix(300, 80, rank=15, gap=1e6, seed=4)
        for method in (lambda: qp3_blocked(a, k=15),
                       lambda: caqp3(a, k=15)):
            assert method().residual(a) < 1e-4
        rnd = random_sampling(a, SamplingConfig(rank=15, seed=5))
        assert rnd.residual(a) < 1e-4

    def test_devil_stairs_rank_tracking(self):
        a = devil_stairs(300, 100, steps=5, drop=100.0, seed=6)
        res = qp3_blocked(a, tolerance=1e-3)
        # Tolerance 1e-3 should cut within the second or third plateau
        # (levels at 1, 1e-2, 1e-4).
        assert 20 <= res.k <= 60

    def test_noisy_lowrank_recovery(self):
        a = noisy_lowrank(500, 120, rank=8, snr=1e3, seed=7)
        f = random_sampling(a, SamplingConfig(rank=8, power_iterations=1,
                                              seed=8))
        assert f.residual(a, relative=False) < 5e-3  # ~noise floor

    def test_slow_decay_needs_power_iterations(self):
        a = slow_polynomial_decay(400, 120, alpha=0.4, seed=9)
        e0 = random_sampling(a, SamplingConfig(rank=30, seed=10)).residual(a)
        e2 = random_sampling(a, SamplingConfig(rank=30, power_iterations=2,
                                               seed=10)).residual(a)
        assert e2 < e0  # iterations visibly help in the flat regime

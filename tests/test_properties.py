"""Property-based tests (hypothesis) for the core invariants.

These pin the algebraic contracts of the kernels over randomized
shapes/spectra rather than single examples:

- any QR variant reconstructs its input and returns an orthonormal Q;
- QRCP's permutation is a permutation and its diagonal dominates;
- random sampling is exact on matrices of rank <= k;
- the timing models are positive and monotone in the work;
- the anchor curve interpolates within the hull of its anchors.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SamplingConfig, random_sampling
from repro.gpu.kernels import KernelModel
from repro.gpu.specs import AnchorCurve
from repro.qr.cholqr import cholqr_columns
from repro.qr.gram_schmidt import block_orth_rows
from repro.qr.householder import householder_qr
from repro.qr.qrcp import qp3_blocked
from repro.qr.tsqr import tsqr

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _random_matrix(draw, max_m=80, max_n=40):
    m = draw(st.integers(2, max_m))
    n = draw(st.integers(1, min(m, max_n)))
    seed = draw(st.integers(0, 2 ** 31))
    return np.random.default_rng(seed).standard_normal((m, n))


matrices = st.builds(lambda seed, m, n: np.random.default_rng(
    seed).standard_normal((max(m, n), min(m, n))),
    st.integers(0, 2 ** 31), st.integers(2, 80), st.integers(1, 40))


@settings(max_examples=25, **COMMON)
@given(matrices)
def test_householder_qr_contract(a):
    f = householder_qr(a)
    q, r = f.q(), f.r()
    assert np.allclose(q @ r, a, atol=1e-9)
    assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-9)


@settings(max_examples=25, **COMMON)
@given(matrices)
def test_tsqr_contract(a):
    q, r = tsqr(a, leaf_count=4)
    assert np.allclose(q @ r, a, atol=1e-9)
    assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-9)


@settings(max_examples=25, **COMMON)
@given(matrices, st.integers(1, 20))
def test_qrcp_contract(a, k):
    k = min(k, *a.shape)
    res = qp3_blocked(a, k=k)
    assert sorted(res.perm.tolist()) == list(range(a.shape[1]))
    assert np.allclose(res.q.T @ res.q, np.eye(k), atol=1e-9)
    # Factored pivot columns reproduced exactly.
    assert np.allclose(res.q @ res.r[:, :k], a[:, res.perm[:k]],
                       atol=1e-8)
    # Pivot dominance: |r_11| is the largest column norm.
    assert abs(res.r[0, 0]) == pytest.approx(
        np.linalg.norm(a, axis=0).max(), rel=1e-9)


@settings(max_examples=20, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(1, 15), st.integers(0, 6))
def test_random_sampling_exact_on_lowrank(seed, rank, extra):
    rng = np.random.default_rng(seed)
    m, n = 120, 50
    a = rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n))
    k = min(rank + extra, n - 1)
    cfg = SamplingConfig(rank=max(k, rank), oversampling=5, seed=seed)
    f = random_sampling(a, cfg)
    assert f.residual(a) < 1e-8


@settings(max_examples=20, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(2, 12), st.integers(1, 6))
def test_block_orth_rows_invariants(seed, lp, lv):
    rng = np.random.default_rng(seed)
    n = 64
    q = np.linalg.qr(rng.standard_normal((n, lp)))[0].T
    v = rng.standard_normal((lv, n))
    w, c = block_orth_rows(q, v)
    assert np.allclose(w @ q.T, 0.0, atol=1e-10)
    assert np.allclose(c @ q + w, v, atol=1e-10)


@settings(max_examples=30, **COMMON)
@given(st.integers(0, 2 ** 31), st.integers(3, 40))
def test_cholqr_columns_contract(seed, n):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n * 3, n))
    q, r = cholqr_columns(a)
    assert np.allclose(q @ r, a, atol=1e-8)
    assert np.allclose(q.T @ q, np.eye(n), atol=1e-8)
    assert np.all(np.diag(r) > 0)


@settings(max_examples=40, **COMMON)
@given(st.integers(1, 512), st.integers(1_000, 200_000),
       st.integers(100, 5_000))
def test_gemm_model_positive_and_bounded(l, m, n):
    km = KernelModel()
    secs = km.gemm_seconds(l, n, m)
    assert secs > 0
    rate = 2.0 * l * m * n / (secs * 1e9)
    assert rate < km.spec.fp64_peak_gflops


@settings(max_examples=40, **COMMON)
@given(st.integers(2, 300), st.integers(2, 300))
def test_qp3_model_monotone_in_k(m, n):
    km = KernelModel()
    kmax = min(m, n)
    t_half = km.qp3_seconds(m, n, max(1, kmax // 2))
    t_full = km.qp3_seconds(m, n, kmax)
    assert 0 < t_half <= t_full


@settings(max_examples=30, **COMMON)
@given(st.lists(st.tuples(st.floats(1e-3, 1e6), st.floats(1e-3, 1e6)),
                min_size=1, max_size=8, unique_by=lambda p: p[0]),
       st.floats(1e-4, 1e7))
def test_anchor_curve_within_hull(points, x):
    curve = AnchorCurve(points)
    ys = [p[1] for p in points]
    val = curve(x)
    assert min(ys) * (1 - 1e-9) <= val <= max(ys) * (1 + 1e-9)

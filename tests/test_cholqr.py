"""Tests for CholQR and its stabilized variants (repro.qr.cholqr)."""

import numpy as np
import pytest

from repro.errors import CholeskyBreakdownError, ShapeError
from repro.matrices.synthetic import exponent_spectrum, spectrum_matrix
from repro.qr.cholqr import (cholqr2_columns, cholqr2_rows, cholqr_columns,
                             cholqr_rows, mixed_precision_cholqr_rows)

from tests.helpers import assert_orthonormal_columns, assert_orthonormal_rows


class TestCholQRColumns:
    def test_reconstruction(self, tall_matrix):
        q, r = cholqr_columns(tall_matrix)
        np.testing.assert_allclose(q @ r, tall_matrix, atol=1e-10)

    def test_orthonormal(self, tall_matrix):
        q, _ = cholqr_columns(tall_matrix)
        assert_orthonormal_columns(q)

    def test_r_upper_triangular(self, tall_matrix):
        _, r = cholqr_columns(tall_matrix)
        np.testing.assert_allclose(r, np.triu(r))

    def test_r_diag_positive(self, tall_matrix):
        _, r = cholqr_columns(tall_matrix)
        assert np.all(np.diag(r) > 0)

    def test_matches_numpy_qr_up_to_sign(self, tall_matrix):
        q, r = cholqr_columns(tall_matrix)
        q_np, r_np = np.linalg.qr(tall_matrix)
        s = np.sign(np.diag(r_np))
        np.testing.assert_allclose(q, q_np * s, atol=1e-9)

    def test_square_input(self, rng):
        a = rng.standard_normal((20, 20))
        q, r = cholqr_columns(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-9)

    def test_wide_raises(self, wide_matrix):
        with pytest.raises(ShapeError):
            cholqr_columns(wide_matrix)

    def test_singular_raises(self, rng):
        a = rng.standard_normal((50, 3))
        a = np.hstack([a, a])  # exactly dependent columns
        with pytest.raises(CholeskyBreakdownError):
            cholqr_columns(a)

    def test_singular_householder_fallback(self, rng):
        a = rng.standard_normal((50, 3))
        a = np.hstack([a, a])
        q, r = cholqr_columns(a, fallback="householder")
        assert_orthonormal_columns(q)
        np.testing.assert_allclose(q @ r, a, atol=1e-9)

    def test_illconditioned_shift_fallback(self):
        # kappa ~ 1e12: the Gram matrix has kappa ~ 1e24 and POTRF
        # breaks down; the shifted retry plus one reorthogonalization
        # still delivers near-orthonormal Q (theory only guarantees
        # full recovery for kappa <~ 1e8).
        a = spectrum_matrix(300, 40, 10.0 ** (-np.linspace(0, 12, 40)),
                            seed=3)
        q, r = cholqr_columns(a, fallback="shift")
        assert_orthonormal_columns(q, tol=1e-5)
        np.testing.assert_allclose(q @ r, a, atol=1e-8)


class TestCholQRRows:
    def test_reconstruction(self, wide_matrix):
        q, r = cholqr_rows(wide_matrix)
        np.testing.assert_allclose(r.T @ q, wide_matrix, atol=1e-10)

    def test_orthonormal_rows(self, wide_matrix):
        q, _ = cholqr_rows(wide_matrix)
        assert_orthonormal_rows(q)

    def test_r_upper_triangular(self, wide_matrix):
        _, r = cholqr_rows(wide_matrix)
        np.testing.assert_allclose(r, np.triu(r))

    def test_tall_raises(self, tall_matrix):
        with pytest.raises(ShapeError):
            cholqr_rows(tall_matrix)

    def test_singular_raises(self, rng):
        b = rng.standard_normal((3, 80))
        b = np.vstack([b, b])
        with pytest.raises(CholeskyBreakdownError):
            cholqr_rows(b)

    def test_singular_householder_fallback(self, rng):
        b = rng.standard_normal((3, 80))
        b = np.vstack([b, b])
        q, r = cholqr_rows(b, fallback="householder")
        assert_orthonormal_rows(q)
        np.testing.assert_allclose(r.T @ q, b, atol=1e-9)

    def test_shift_fallback_consistent(self):
        b = spectrum_matrix(30, 400, 10.0 ** (-np.linspace(0, 12, 30)),
                            seed=5)
        q, r = cholqr_rows(b, fallback="shift")
        assert_orthonormal_rows(q, tol=1e-5)
        np.testing.assert_allclose(r.T @ q, b, atol=1e-8)


class TestCholQR2:
    def test_columns_reconstruction(self, tall_matrix):
        q, r = cholqr2_columns(tall_matrix)
        np.testing.assert_allclose(q @ r, tall_matrix, atol=1e-10)
        assert_orthonormal_columns(q, tol=1e-13)

    def test_rows_reconstruction(self, wide_matrix):
        q, r = cholqr2_rows(wide_matrix)
        np.testing.assert_allclose(r.T @ q, wide_matrix, atol=1e-10)
        assert_orthonormal_rows(q, tol=1e-13)

    def test_improves_orthogonality_on_illconditioned(self):
        b = spectrum_matrix(40, 500, 10.0 ** (-np.linspace(0, 7, 40)),
                            seed=2)
        q1, _ = cholqr_rows(b, fallback="shift")
        q2, _ = cholqr2_rows(b, fallback="shift")
        d1 = np.linalg.norm(q1 @ q1.T - np.eye(40))
        d2 = np.linalg.norm(q2 @ q2.T - np.eye(40))
        assert d2 < d1
        assert d2 < 1e-12


class TestMixedPrecisionCholQR:
    def test_reconstruction(self, wide_matrix):
        q, r = mixed_precision_cholqr_rows(wide_matrix)
        np.testing.assert_allclose(r.T @ q, wide_matrix, atol=1e-9)

    def test_final_orthogonality_is_double(self, wide_matrix):
        q, _ = mixed_precision_cholqr_rows(wide_matrix)
        assert_orthonormal_rows(q, tol=1e-12)

    def test_tall_raises(self, tall_matrix):
        with pytest.raises(ShapeError):
            mixed_precision_cholqr_rows(tall_matrix)

    def test_moderately_illconditioned(self):
        # kappa ~ 1e4: the float32 Gram matrix (kappa^2 ~ 1e8) is at the
        # edge of single precision; the double-precision corrective pass
        # must still restore full orthogonality.
        b = spectrum_matrix(30, 300, 10.0 ** (-np.linspace(0, 4, 30)),
                            seed=9)
        q, r = mixed_precision_cholqr_rows(b)
        assert_orthonormal_rows(q, tol=1e-10)
        np.testing.assert_allclose(r.T @ q, b, atol=1e-7)

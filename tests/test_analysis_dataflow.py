"""Tests for the cross-module dataflow rules (RS115-RS119) and the
supporting machinery: the residency lattice, the incremental cache,
parallel analysis, baseline maintenance, and SARIF export.

Each rule gets at least one true-positive and one clean (negative)
fixture; the load-bearing mutation test checks that deleting the
``to_host`` download in the multi-GPU executor is caught by RS115.
"""

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.baseline import (load_baseline, update_baseline,
                                     write_baseline)
from repro.analysis.cache import AnalysisCache, selection_key
from repro.analysis.cli import main as analyze_main
from repro.analysis.engine import all_rules, analyze_paths, run_analysis
from repro.analysis.findings import (EXIT_CLEAN, EXIT_FINDINGS,
                                     AnalysisFinding)
from repro.analysis.sarif import render_sarif, to_sarif, validate_sarif
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]

DATAFLOW_RULES = ["RS115", "RS116", "RS117", "RS118", "RS119"]


def write_project(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path``; return the root."""
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src, encoding="utf-8")
    return tmp_path


def run_rules(tmp_path, files, select=None):
    root = write_project(tmp_path, files)
    return analyze_paths([root], root=root,
                         select=select or DATAFLOW_RULES)


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# RS115: device value reaching host-only math
# ---------------------------------------------------------------------------

class TestRS115:
    def test_flags_direct_hostmath_on_device_value(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.backends import hostmath\n"
            "def bad(ex, a):\n"
            "    d = ex.to_device(a)\n"
            "    return hostmath.norm(d)\n")})
        assert rules_of(findings) == ["RS115"]
        assert findings[0].line == 4

    def test_to_host_downloads_are_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.backends import hostmath\n"
            "def good(ex, a):\n"
            "    d = ex.to_device(a)\n"
            "    g = ex.gemm(d, d)\n"
            "    h = ex.to_host(g)\n"
            "    return hostmath.norm(h)\n")})
        assert findings == []

    def test_interprocedural_flow_across_modules(self, tmp_path):
        findings = run_rules(tmp_path, {
            "sinkmod.py": ("from repro.backends import hostmath\n"
                           "def sink(x):\n"
                           "    return hostmath.norm2(x)\n"),
            "caller.py": ("from sinkmod import sink\n"
                          "def caller(ex, a):\n"
                          "    d = ex.to_device(a)\n"
                          "    return sink(d)\n")})
        assert rules_of(findings) == ["RS115"]
        # The finding is anchored at the sink-side call site.
        assert findings[0].path == "caller.py"
        assert "parameter 'x'" in findings[0].message

    def test_flags_value_comparison_on_device(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "def bad(ex, a, tol):\n"
            "    d = ex.to_device(a)\n"
            "    return d > tol\n")})
        assert rules_of(findings) == ["RS115"]

    def test_identity_compare_and_shape_are_not_reads(self, tmp_path):
        # ``d is None`` compares references and ``d.shape`` is host-side
        # metadata; neither touches device array contents.
        findings = run_rules(tmp_path, {"mod.py": (
            "def meta(ex, a):\n"
            "    d = ex.to_device(a)\n"
            "    if d is None:\n"
            "        return 0\n"
            "    return d.shape[0] == 0\n")})
        assert findings == []

    def test_declared_host_return_of_device_value(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.analysis.annotations import residency\n"
            "class Exec:\n"
            "    @residency(returns='host')\n"
            "    def broken(self, a):\n"
            "        b = self.to_device(a)\n"
            "        return b\n")})
        assert rules_of(findings) == ["RS115"]

    def test_noqa_at_sink_suppresses(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.backends import hostmath\n"
            "def bad(ex, a):\n"
            "    d = ex.to_device(a)\n"
            "    return hostmath.norm(d)  # repro: noqa RS115\n")},
            select=DATAFLOW_RULES + ["RS113"])
        assert findings == []

    def test_noqa_at_source_does_not_suppress(self, tmp_path):
        # Suppression is sink-side by design: the noqa sits where the
        # device value was produced, not where it is misused.
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.backends import hostmath\n"
            "def bad(ex, a):\n"
            "    d = ex.to_device(a)  # repro: noqa RS115\n"
            "    return hostmath.norm(d)\n")},
            select=DATAFLOW_RULES + ["RS113"])
        assert "RS115" in rules_of(findings)

    def test_rs113_flags_stale_dataflow_noqa(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "def fine(ex, a):\n"
            "    return ex.to_host(ex.gemm(ex.to_device(a), a))"
            "  # repro: noqa RS115\n")},
            select=DATAFLOW_RULES + ["RS113"])
        assert rules_of(findings) == ["RS113"]


# ---------------------------------------------------------------------------
# RS116: transfer ping-pong
# ---------------------------------------------------------------------------

class TestRS116:
    def test_flags_upload_then_download(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "def pingpong(ex, a):\n"
            "    d = ex.to_device(a)\n"
            "    return ex.to_host(d)\n")})
        assert rules_of(findings) == ["RS116"]
        assert "ping-pong" in findings[0].message

    def test_flags_reupload_of_device_value(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "def reupload(ex, a):\n"
            "    d = ex.to_device(a)\n"
            "    return ex.to_device(d)\n")})
        assert rules_of(findings) == ["RS116"]
        assert "re-upload" in findings[0].message

    def test_kernel_between_transfers_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "def good(ex, a):\n"
            "    d = ex.to_device(a)\n"
            "    g = ex.gemm(d, d)\n"
            "    return ex.to_host(g)\n")})
        assert findings == []


# ---------------------------------------------------------------------------
# RS117: backend handle escaping the executor contract
# ---------------------------------------------------------------------------

class TestRS117:
    def test_flags_module_level_global(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.backends.registry import resolve_backend\n"
            "HANDLE = resolve_backend(None)\n")})
        assert rules_of(findings) == ["RS117"]

    def test_flags_public_return_outside_backends(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.backends.registry import resolve_backend\n"
            "def get_handle():\n"
            "    return resolve_backend(None)\n")})
        assert rules_of(findings) == ["RS117"]

    def test_flags_handle_into_untimed_scope(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.analysis.annotations import allow_untimed_math\n"
            "from repro.backends.registry import resolve_backend\n"
            "@allow_untimed_math('diag')\n"
            "def diag(a, backend):\n"
            "    return a\n"
            "def passer():\n"
            "    b = resolve_backend(None)\n"
            "    return diag(1.0, b)\n")})
        assert rules_of(findings) == ["RS117"]

    def test_private_helper_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "from repro.backends.registry import resolve_backend\n"
            "def _private_handle():\n"
            "    return resolve_backend(None)\n")})
        assert findings == []

    def test_backends_package_is_exempt(self, tmp_path):
        findings = run_rules(tmp_path, {"repro/backends/reg2.py": (
            "from repro.backends.registry import resolve_backend\n"
            "def get_handle():\n"
            "    return resolve_backend(None)\n")})
        assert findings == []


# ---------------------------------------------------------------------------
# RS118: timed work reachable from an unaccounted scope
# ---------------------------------------------------------------------------

_SCHED = ("from repro.gpu import streams\n"
          "class Sched:\n"
          "    def tick(self, device):\n"
          "        device.charge('other', 1.0)\n")


class TestRS118:
    def test_flags_untimed_scope_reaching_charge(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            _SCHED +
            "from repro.analysis.annotations import allow_untimed_math\n"
            "@allow_untimed_math('diag')\n"
            "def diag(sched, device):\n"
            "    sched.tick(device)\n")})
        assert rules_of(findings) == ["RS118"]

    def test_plain_function_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            _SCHED +
            "def normal(sched, device):\n"
            "    sched.tick(device)\n")})
        assert findings == []

    def test_main_guard_is_exempt(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            _SCHED +
            "def entry(sched, device):\n"
            "    sched.tick(device)\n"
            "if __name__ == '__main__':\n"
            "    entry(None, None)\n")})
        assert findings == []


# ---------------------------------------------------------------------------
# RS119: RNG not derived from the configured seed
# ---------------------------------------------------------------------------

class TestRS119:
    def test_flags_unseeded_and_hardcoded(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "import numpy as np\n"
            "def unseeded():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng.standard_normal(4)\n"
            "def hardcoded():\n"
            "    rng = np.random.default_rng(42)\n"
            "    return rng.standard_normal(4)\n")})
        assert rules_of(findings) == ["RS119", "RS119"]

    def test_seed_from_parameter_is_blessed(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "import numpy as np\n"
            "def seeded(cfg):\n"
            "    rng = np.random.default_rng(cfg.seed)\n"
            "    return rng.standard_normal(4)\n")})
        assert findings == []

    def test_interprocedural_rng_flow(self, tmp_path):
        findings = run_rules(tmp_path, {"mod.py": (
            "import numpy as np\n"
            "def draw_with(rng):\n"
            "    return rng.standard_normal(3)\n"
            "def flows_unseeded():\n"
            "    rng = np.random.default_rng()\n"
            "    return draw_with(rng)\n")})
        assert rules_of(findings) == ["RS119"]
        assert "parameter 'rng'" in findings[0].message

    def test_or_fallback_is_clean(self, tmp_path):
        # ``rng or default_rng()`` merges blessed and unblessed; merge
        # points get the benefit of the doubt.
        findings = run_rules(tmp_path, {"mod.py": (
            "import numpy as np\n"
            "def fallback(rng=None):\n"
            "    rng = rng or np.random.default_rng()\n"
            "    return rng.standard_normal(2)\n")})
        assert findings == []


# ---------------------------------------------------------------------------
# Load-bearing mutation: a deleted to_host in the multi-GPU executor
# ---------------------------------------------------------------------------

class TestToHostMutation:
    GPU_FILES = ["gpu/multigpu.py", "gpu/device.py", "gpu/streams.py",
                 "gpu/trace.py", "analysis/annotations.py"]

    def _copy_tree(self, tmp_path):
        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", dest)
        return dest

    def test_unmutated_tree_is_clean(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        findings = analyze_paths([dest], root=tmp_path / "src",
                                 select=DATAFLOW_RULES)
        assert findings == []

    def test_deleted_to_host_is_caught_by_rs115(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        target = dest / "gpu" / "multigpu.py"
        src = target.read_text(encoding="utf-8")
        mutated = src.replace(
            "        b = _mm(omega, a, self.backend)\n"
            "        return self.to_host(b)\n",
            "        b = _mm(omega, a, self.backend)\n"
            "        return b\n")
        assert mutated != src, "mutation target not found in multigpu.py"
        target.write_text(mutated, encoding="utf-8")
        findings = analyze_paths([dest], root=tmp_path / "src",
                                 select=["RS115"])
        assert any(f.rule == "RS115" and "multigpu" in f.path
                   for f in findings), [f.render() for f in findings]


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------

_CACHE_PROJ = {
    "liba.py": ("from repro.backends import hostmath\n"
                "def source(ex, a):\n"
                "    return ex.to_device(a)\n"),
    "libb.py": ("from liba import source\n"
                "from repro.backends import hostmath\n"
                "def bad(ex, a):\n"
                "    return hostmath.norm(source(ex, a))\n"),
    "libc.py": ("def unrelated():\n"
                "    return 1\n"),
}


class TestIncrementalCache:
    def test_second_run_has_zero_parses_and_identical_findings(
            self, tmp_path):
        root = write_project(tmp_path / "proj", _CACHE_PROJ)
        cache = AnalysisCache(tmp_path / "cache")
        first = run_analysis([root], root=root, select=DATAFLOW_RULES,
                             cache=cache)
        assert first.stats.parses == 3
        assert first.stats.cache_hits == 0

        cache2 = AnalysisCache(tmp_path / "cache")
        second = run_analysis([root], root=root, select=DATAFLOW_RULES,
                              cache=cache2)
        assert second.stats.parses == 0
        assert second.stats.analyzed == 0
        assert second.stats.cache_hits == 3
        assert ([f.render() for f in second.findings]
                == [f.render() for f in first.findings])
        assert rules_of(first.findings) == ["RS115"]

    def test_edit_invalidates_only_import_graph_dependents(self, tmp_path):
        root = write_project(tmp_path / "proj", _CACHE_PROJ)
        cache = AnalysisCache(tmp_path / "cache")
        run_analysis([root], root=root, select=DATAFLOW_RULES, cache=cache)

        # Editing liba re-analyzes liba and its dependent libb, while
        # libc (no import edge to liba) replays from cache.
        liba = root / "liba.py"
        liba.write_text(_CACHE_PROJ["liba.py"] + "\n# touched\n",
                        encoding="utf-8")
        cache2 = AnalysisCache(tmp_path / "cache")
        result = run_analysis([root], root=root, select=DATAFLOW_RULES,
                              cache=cache2)
        assert result.stats.analyzed == 2
        assert result.stats.cache_hits == 1
        assert rules_of(result.findings) == ["RS115"]

    def test_changed_selection_invalidates(self, tmp_path):
        root = write_project(tmp_path / "proj", _CACHE_PROJ)
        cache = AnalysisCache(tmp_path / "cache")
        run_analysis([root], root=root, select=DATAFLOW_RULES, cache=cache)
        cache2 = AnalysisCache(tmp_path / "cache")
        result = run_analysis([root], root=root, select=["RS115"],
                              cache=cache2)
        assert result.stats.cache_hits == 0

    def test_selection_key_is_order_insensitive(self):
        assert (selection_key(["RS115", "RS116"], ["a.py", "b.py"])
                == selection_key(["RS116", "RS115"], ["b.py", "a.py"]))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        root = write_project(tmp_path / "proj", _CACHE_PROJ)
        cache = AnalysisCache(tmp_path / "cache")
        run_analysis([root], root=root, select=DATAFLOW_RULES, cache=cache)
        for entry in (tmp_path / "cache").glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        cache2 = AnalysisCache(tmp_path / "cache")
        result = run_analysis([root], root=root, select=DATAFLOW_RULES,
                              cache=cache2)
        assert result.stats.cache_hits == 0
        assert rules_of(result.findings) == ["RS115"]


# ---------------------------------------------------------------------------
# Parallel analysis
# ---------------------------------------------------------------------------

class TestParallelJobs:
    def test_jobs_do_not_change_findings_or_order(self, tmp_path):
        files = dict(_CACHE_PROJ)
        files["libd.py"] = ("import numpy as np\n"
                            "def unseeded():\n"
                            "    rng = np.random.default_rng()\n"
                            "    return rng.standard_normal(4)\n")
        root = write_project(tmp_path / "proj", files)
        serial = run_analysis([root], root=root, select=DATAFLOW_RULES,
                              jobs=1)
        fanned = run_analysis([root], root=root, select=DATAFLOW_RULES,
                              jobs=2)
        assert ([f.render() for f in serial.findings]
                == [f.render() for f in fanned.findings])
        assert len(serial.findings) == 2


# ---------------------------------------------------------------------------
# Baseline maintenance (--update-baseline)
# ---------------------------------------------------------------------------

class TestUpdateBaseline:
    def test_prunes_stale_and_reports(self, tmp_path):
        root = write_project(tmp_path / "proj", _CACHE_PROJ)
        baseline = tmp_path / "analysis-baseline.json"
        findings = analyze_paths([root], root=root, select=DATAFLOW_RULES)
        write_baseline(baseline, findings)
        assert len(load_baseline(baseline)) == 1

        # Fix the violation, then prune: the stale entry is dropped.
        (root / "libb.py").write_text(
            "from liba import source\n"
            "def fine(ex, a):\n"
            "    return ex.to_host(ex.gemm(source(ex, a), a))\n",
            encoding="utf-8")
        fixed = analyze_paths([root], root=root, select=DATAFLOW_RULES)
        added, dropped, kept = update_baseline(baseline, fixed)
        assert added == [] and kept == []
        assert len(dropped) == 1 and dropped[0].startswith("RS115:")
        assert load_baseline(baseline) == {}

    def test_cli_update_baseline_prints_dropped(self, tmp_path, capsys,
                                                monkeypatch):
        root = write_project(tmp_path / "proj", {
            "bad.py": ("from repro.backends import hostmath\n"
                       "def bad(ex, a):\n"
                       "    return hostmath.norm(ex.to_device(a))\n")})
        monkeypatch.chdir(tmp_path)
        baseline = str(tmp_path / "bl.json")
        assert analyze_main([str(root), "--select", "RS115",
                             "--write-baseline", "--baseline", baseline,
                             "--no-cache"]) == EXIT_CLEAN
        (root / "bad.py").write_text("def ok():\n    return 1\n",
                                     encoding="utf-8")
        code = analyze_main([str(root), "--select", "RS115",
                             "--update-baseline", "--baseline", baseline,
                             "--no-cache"])
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN
        assert "dropped stale baseline entry RS115:" in out
        assert "1 dropped" in out


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------

class TestSarif:
    def _findings(self):
        return [AnalysisFinding(rule="RS115", path="repro/core/x.py",
                                line=12, col=4, message="device value "
                                "reaches hostmath", context="f")]

    def test_log_validates_against_structural_schema(self):
        log = to_sarif(self._findings(), all_rules())
        assert validate_sarif(log) == []
        assert log["version"] == "2.1.0"

    def test_result_fields(self):
        log = to_sarif(self._findings(), all_rules())
        run = log["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert ids == sorted(ids)
        assert set(DATAFLOW_RULES) <= set(ids)
        res = run["results"][0]
        assert res["ruleId"] == "RS115"
        assert ids[res["ruleIndex"]] == "RS115"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "repro/core/x.py"
        assert loc["region"] == {"startLine": 12, "startColumn": 5}
        assert res["partialFingerprints"][
            "reproAnalyzeFingerprint/v1"] == self._findings()[0].fingerprint()

    def test_render_is_json(self):
        text = render_sarif(self._findings(), all_rules())
        assert validate_sarif(json.loads(text)) == []

    def test_validator_rejects_malformed_logs(self):
        assert validate_sarif({"version": "2.0.0", "runs": []})
        assert validate_sarif({"version": "2.1.0"})
        bad_region = to_sarif(self._findings(), all_rules())
        bad_region["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]["startLine"] = 0
        assert any("startLine" in e for e in validate_sarif(bad_region))
        bad_index = to_sarif(self._findings(), all_rules())
        bad_index["runs"][0]["results"][0]["ruleIndex"] = 9999
        assert any("ruleIndex" in e for e in validate_sarif(bad_index))

    def test_cli_sarif_output(self, tmp_path, capsys, monkeypatch):
        root = write_project(tmp_path / "proj", {
            "bad.py": ("from repro.backends import hostmath\n"
                       "def bad(ex, a):\n"
                       "    return hostmath.norm(ex.to_device(a))\n")})
        monkeypatch.chdir(tmp_path)
        code = analyze_main([str(root), "--select", "RS115",
                             "--format", "sarif", "--no-baseline",
                             "--no-cache"])
        assert code == EXIT_FINDINGS
        log = json.loads(capsys.readouterr().out)
        assert validate_sarif(log) == []
        assert log["runs"][0]["results"][0]["ruleId"] == "RS115"


# ---------------------------------------------------------------------------
# Runtime residency declarations
# ---------------------------------------------------------------------------

class TestResidencyMarker:
    def test_records_declaration_on_function(self):
        from repro.analysis.annotations import residency

        @residency(returns="device", params={"a": "host"})
        def f(a):
            return a

        assert f.__residency__ == {"returns": "device",
                                   "params": {"a": "host"}}
        assert f(3) == 3

    def test_rejects_unknown_residency(self):
        from repro.analysis.annotations import residency
        with pytest.raises(ConfigurationError):
            residency(returns="gpu")
        with pytest.raises(ConfigurationError):
            residency(params={"a": "pinned"})

    def test_executor_transfers_are_bit_identical(self):
        from repro.gpu.device import NumpyExecutor
        ex = NumpyExecutor(seed=0)
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        d = ex.to_device(a)
        h = ex.to_host(d)
        assert h.dtype == a.dtype
        np.testing.assert_array_equal(h, a)

    def test_symbolic_arrays_pass_through(self):
        from repro.gpu import SymArray
        from repro.gpu.device import NumpyExecutor
        ex = NumpyExecutor(seed=0)
        s = SymArray((64, 64))
        assert ex.to_device(s) is s
        assert ex.to_host(s) is s


# ---------------------------------------------------------------------------
# Self-check: the dataflow family is clean on the shipped tree
# ---------------------------------------------------------------------------

class TestDataflowSelfCheck:
    def test_shipped_tree_clean_under_rs115_to_rs119(self):
        findings = analyze_paths(
            [REPO_ROOT / "src" / "repro"],
            root=REPO_ROOT / "src",
            select=DATAFLOW_RULES)
        assert findings == [], [f.render() for f in findings]

"""Tests for the JSON export (repro.bench.export) and its CLI flag."""

import json

import numpy as np
import pytest

from repro.bench.export import collect_experiment, dump_json, to_jsonable
from repro.errors import ConfigurationError


class TestToJsonable:
    def test_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_array(self):
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_nested(self):
        data = {"a": [np.float32(1.0), (2, np.int8(3))],
                "b": {"c": np.zeros(2)}}
        out = to_jsonable(data)
        json.dumps(out)  # round-trips
        assert out["a"][1] == [2, 3]

    def test_unserializable_raises(self):
        with pytest.raises(ConfigurationError):
            to_jsonable(object())


class TestDump:
    def test_dump_and_reload(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"x": np.float64(2.0)}, str(path), "exp")
        doc = json.loads(path.read_text())
        assert doc == {"experiment": "exp", "data": {"x": 2.0}}


class TestCollect:
    @pytest.mark.parametrize("name", ["fig07", "fig09", "fig10", "fig18"])
    def test_fast_experiments_collect_and_serialize(self, name):
        data = collect_experiment(name)
        json.dumps(to_jsonable(data))

    def test_fig11_points_serialize(self):
        data = collect_experiment("fig11")
        out = to_jsonable(data)
        json.dumps(out)
        assert out[0]["breakdown"]["sampling"] > 0

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            collect_experiment("fig99")


class TestCLIJson:
    def test_flag_writes_file(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "f.json"
        assert main(["fig18", "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["experiment"] == "fig18"
        assert len(doc["data"]["gemm_gflops"]) == 5

    def test_all_with_json_rejected(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["all", "--json", str(tmp_path / "x.json")])

"""Tests for input validation: the ``check_finite`` guards and device
memory accounting on bind."""

import numpy as np
import pytest

from repro import (AdaptiveConfig, GPUExecutor, SamplingConfig, SymArray,
                   adaptive_sampling, cur_decomposition, random_sampling,
                   randomized_svd)
from repro.errors import OutOfDeviceMemoryError, ShapeError
from repro.qr.utils import ensure_all_finite


@pytest.fixture
def nan_matrix(rng):
    a = rng.standard_normal((60, 20))
    a[5, 3] = np.nan
    return a


@pytest.fixture
def inf_matrix(rng):
    a = rng.standard_normal((60, 20))
    a[0, 0] = np.inf
    return a


class TestEnsureAllFinite:
    def test_clean_passes(self, rng):
        ensure_all_finite(rng.standard_normal((5, 5)))

    def test_nan_raises(self, nan_matrix):
        with pytest.raises(ShapeError):
            ensure_all_finite(nan_matrix)

    def test_inf_raises(self, inf_matrix):
        with pytest.raises(ShapeError):
            ensure_all_finite(inf_matrix)

    def test_symbolic_skipped(self):
        ensure_all_finite(SymArray((10, 10)))  # no data, no check

    def test_name_in_message(self, nan_matrix):
        with pytest.raises(ShapeError, match="input_matrix"):
            ensure_all_finite(nan_matrix, "input_matrix")


class TestEntryPointGuards:
    def test_random_sampling_rejects_nan(self, nan_matrix):
        with pytest.raises(ShapeError):
            random_sampling(nan_matrix, SamplingConfig(rank=5, seed=0))

    def test_random_sampling_opt_out(self, nan_matrix):
        # With the check disabled the guard's ShapeError must NOT fire;
        # behaviour is then undefined: NaNs either propagate into the
        # factors or trip a downstream numerical kernel.
        try:
            f = random_sampling(nan_matrix,
                                SamplingConfig(rank=5, seed=0),
                                check_finite=False)
        except ShapeError:
            pytest.fail("finite-check fired despite check_finite=False")
        except Exception:
            return  # downstream kernel objected — acceptable
        assert np.isnan(np.asarray(f.r)).any() or \
            np.isnan(np.asarray(f.q)).any()

    def test_adaptive_rejects_inf(self, inf_matrix):
        with pytest.raises(ShapeError):
            adaptive_sampling(inf_matrix, AdaptiveConfig(tolerance=1e-6,
                                                         seed=0))

    def test_svd_rejects_nan(self, nan_matrix):
        with pytest.raises(ShapeError):
            randomized_svd(nan_matrix, SamplingConfig(rank=5, seed=0))

    def test_cur_rejects_nan(self, nan_matrix):
        with pytest.raises(ShapeError):
            cur_decomposition(nan_matrix, SamplingConfig(rank=5, seed=0))


class TestDeviceMemoryOnBind:
    def test_fits_k40c(self):
        ex = GPUExecutor(seed=0)
        ex.bind(SymArray((500_000, 500)))  # the paper's 2 GB matrix
        assert ex.device.memory.used == 8 * 500_000 * 500

    def test_oversized_matrix_raises(self):
        ex = GPUExecutor(seed=0)
        with pytest.raises(OutOfDeviceMemoryError):
            ex.bind(SymArray((2_000_000, 1_000)))  # 16 GB > 12 GB

    def test_rebind_resets(self):
        ex = GPUExecutor(seed=0)
        ex.bind(SymArray((100_000, 2_500)))
        ex.bind(SymArray((100_000, 2_500)))  # no double accounting
        assert ex.device.memory.used == 8 * 100_000 * 2_500

    def test_run_through_public_api(self):
        with pytest.raises(OutOfDeviceMemoryError):
            random_sampling(SymArray((2_000_000, 1_000)),
                            SamplingConfig(rank=10, seed=0),
                            executor=GPUExecutor(seed=0))

"""Tests for the randomized SVD (repro.core.svd)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.svd import randomized_svd
from repro.errors import SymbolicExecutionError
from repro.gpu.device import GPUExecutor, NumpyExecutor, SymArray

from tests.helpers import assert_orthonormal_columns


class TestRandomizedSVD:
    def test_exact_on_lowrank(self, lowrank_matrix):
        f = randomized_svd(lowrank_matrix, SamplingConfig(rank=12, seed=0))
        assert f.residual(lowrank_matrix) < 1e-10

    def test_factor_shapes_and_orthogonality(self, decaying_matrix):
        f = randomized_svd(decaying_matrix,
                           SamplingConfig(rank=25, seed=1))
        assert f.u.shape == (400, 25)
        assert f.vt.shape == (25, 120)
        assert f.s.shape == (25,)
        assert_orthonormal_columns(f.u, tol=1e-8)
        assert_orthonormal_columns(f.vt.T, tol=1e-8)

    def test_singular_values_descending(self, decaying_matrix):
        f = randomized_svd(decaying_matrix,
                           SamplingConfig(rank=20, seed=2))
        assert all(a >= b for a, b in zip(f.s, f.s[1:]))

    def test_singular_values_accurate_with_power(self, decaying_matrix):
        f = randomized_svd(decaying_matrix,
                           SamplingConfig(rank=20, power_iterations=2,
                                          seed=3))
        s_true = np.linalg.svd(decaying_matrix, compute_uv=False)[:20]
        np.testing.assert_allclose(f.s, s_true, rtol=1e-3)

    def test_error_near_optimal(self, decaying_matrix):
        f = randomized_svd(decaying_matrix,
                           SamplingConfig(rank=30, power_iterations=1,
                                          seed=4))
        s = np.linalg.svd(decaying_matrix, compute_uv=False)
        assert f.residual(decaying_matrix, relative=False) < 5 * s[30]

    def test_deterministic(self, decaying_matrix):
        cfg = SamplingConfig(rank=10, seed=5)
        f1 = randomized_svd(decaying_matrix, cfg)
        f2 = randomized_svd(decaying_matrix, cfg)
        np.testing.assert_array_equal(f1.s, f2.s)

    def test_timed_run(self, decaying_matrix):
        ex = GPUExecutor(seed=6)
        f = randomized_svd(decaying_matrix, SamplingConfig(rank=10,
                                                           seed=6),
                           executor=ex)
        assert f.seconds > 0

    def test_symbolic_rejected(self):
        with pytest.raises(SymbolicExecutionError):
            randomized_svd(SymArray((100, 50)),
                           SamplingConfig(rank=10, seed=0),
                           executor=GPUExecutor(seed=0))

    def test_k_property(self, lowrank_matrix):
        f = randomized_svd(lowrank_matrix, SamplingConfig(rank=12,
                                                          seed=7))
        assert f.k == 12

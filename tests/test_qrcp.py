"""Tests for QR with column pivoting (repro.qr.qrcp)."""

import numpy as np
import pytest
import scipy.linalg

from repro.config import QRCPConfig
from repro.errors import ShapeError
from repro.matrices.synthetic import exponent_matrix
from repro.qr.qrcp import qp3_blocked, qrcp, qrcp_column

from tests.helpers import (assert_orthonormal_columns,
                           assert_valid_permutation)


@pytest.mark.parametrize("factorize", [qrcp_column, qp3_blocked],
                         ids=["column", "blocked"])
class TestQRCPCommon:
    def test_full_factorization_residual(self, factorize, rng):
        a = rng.standard_normal((60, 40))
        res = factorize(a)
        assert res.residual(a) < 1e-12

    def test_q_orthonormal(self, factorize, rng):
        a = rng.standard_normal((60, 40))
        res = factorize(a)
        assert_orthonormal_columns(res.q)

    def test_perm_is_permutation(self, factorize, rng):
        a = rng.standard_normal((60, 40))
        res = factorize(a)
        assert_valid_permutation(res.perm, 40)

    def test_r_leading_block_triangular(self, factorize, rng):
        a = rng.standard_normal((60, 40))
        res = factorize(a, k=15)
        np.testing.assert_allclose(res.r[:, :15], np.triu(res.r[:, :15]))

    def test_r_diag_decreasing(self, factorize, rng):
        # |r_11| >= |r_22| >= ... holds for column-norm pivoting on the
        # first step-norm; the standard (slightly weaker) property we
        # check is |r_jj| <= |r_11| for all j.
        a = rng.standard_normal((80, 50))
        res = factorize(a)
        d = np.abs(np.diag(res.r[:, :50]))
        assert np.all(d <= d[0] + 1e-12)

    def test_truncated_rank_low_rank_exact(self, factorize, lowrank_matrix):
        res = factorize(lowrank_matrix, k=12)
        assert res.residual(lowrank_matrix) < 1e-10

    def test_truncation_shapes(self, factorize, rng):
        a = rng.standard_normal((70, 45))
        res = factorize(a, k=20)
        assert res.q.shape == (70, 20)
        assert res.r.shape == (20, 45)
        assert res.k == 20

    def test_k_larger_than_dims_clamped(self, factorize, rng):
        a = rng.standard_normal((30, 10))
        res = factorize(a, k=99)
        assert res.k == 10

    def test_wide_matrix(self, factorize, rng):
        a = rng.standard_normal((20, 100))
        res = factorize(a, k=20)
        assert res.residual(a) < 1e-12

    def test_approximation_roundtrip(self, factorize, lowrank_matrix):
        res = factorize(lowrank_matrix, k=12)
        approx = res.approximation()
        assert np.linalg.norm(approx - lowrank_matrix) < 1e-8

    def test_error_tracks_sigma_kplus1(self, factorize, decaying_matrix):
        s = np.linalg.svd(decaying_matrix, compute_uv=False)
        res = factorize(decaying_matrix, k=30)
        err = res.residual(decaying_matrix, relative=False)
        # QRCP is not optimal but stays within a modest factor of
        # sigma_{k+1} in practice.
        assert s[30] * 0.99 < err < s[30] * 50


class TestAgreement:
    def test_blocked_matches_column_pivots(self, rng):
        a = rng.standard_normal((80, 50))
        rc = qrcp_column(a, k=25)
        rb = qp3_blocked(a, k=25)
        np.testing.assert_array_equal(rc.perm[:25], rb.perm[:25])

    def test_blocked_matches_column_r_up_to_sign(self, rng):
        a = rng.standard_normal((60, 30))
        rc = qrcp_column(a)
        rb = qp3_blocked(a)
        np.testing.assert_allclose(np.abs(np.diag(rc.r)),
                                   np.abs(np.diag(rb.r)), atol=1e-10)

    def test_matches_scipy_qp3_pivots(self, rng):
        a = rng.standard_normal((60, 35))
        _, _, piv = scipy.linalg.qr(a, pivoting=True)
        res = qp3_blocked(a)
        np.testing.assert_array_equal(res.perm, piv)

    def test_matches_scipy_qp3_r_magnitude(self, rng):
        a = rng.standard_normal((60, 35))
        _, r_sp, _ = scipy.linalg.qr(a, pivoting=True, mode="economic")
        res = qp3_blocked(a)
        np.testing.assert_allclose(np.abs(np.diag(res.r)),
                                   np.abs(np.diag(r_sp)), atol=1e-9)


class TestBlockedSpecifics:
    @pytest.mark.parametrize("block_size", [1, 4, 7, 32, 128])
    def test_block_size_invariance(self, rng, block_size):
        a = rng.standard_normal((50, 40))
        ref = qrcp_column(a, k=20)
        res = qp3_blocked(a, k=20, config=QRCPConfig(block_size=block_size))
        np.testing.assert_array_equal(res.perm[:20], ref.perm[:20])
        assert res.residual(a) < 1e-12 or res.residual(a) == pytest.approx(
            ref.residual(a), rel=1e-6)

    def test_norm_recompute_counter_zero_for_easy(self, rng):
        a = rng.standard_normal((60, 40))
        res = qp3_blocked(a)
        assert res.norm_recomputations == 0

    def test_norm_recompute_triggered_by_cancellation(self):
        # Columns with norms spanning many orders of magnitude force
        # the downdating formula into cancellation.
        a = exponent_matrix(200, 80, seed=11)
        res = qp3_blocked(a, k=60)
        assert res.norm_recomputations >= 1
        # sigma_61/sigma_0 = 10^-6 for this spectrum; QRCP stays within
        # a modest factor of the optimum.
        assert res.residual(a) < 1e-5

    def test_truncate_via_config(self, rng):
        a = rng.standard_normal((40, 30))
        res = qp3_blocked(a, config=QRCPConfig(truncate=8))
        assert res.k == 8


class TestFixedAccuracy:
    def test_tolerance_controls_rank(self):
        a = exponent_matrix(300, 120, seed=4)
        ks = [qp3_blocked(a, tolerance=tol).k
              for tol in (1e-2, 1e-5, 1e-8)]
        assert ks[0] < ks[1] < ks[2]

    def test_residual_tracks_tolerance(self):
        a = exponent_matrix(300, 120, seed=5)
        for tol in (1e-3, 1e-6):
            res = qp3_blocked(a, tolerance=tol)
            # The stopping norm bounds the residual within a modest
            # factor in both directions.
            assert res.residual(a) < 10 * tol
            assert res.residual(a) > 1e-3 * tol

    def test_huge_tolerance_gives_zero_rank(self, rng):
        a = rng.standard_normal((20, 10))
        res = qp3_blocked(a, tolerance=1e6)
        assert res.k == 0
        assert res.q.shape == (20, 0)
        assert res.r.shape == (0, 10)

    def test_tiny_tolerance_full_rank(self, rng):
        a = rng.standard_normal((20, 10))
        res = qp3_blocked(a, tolerance=1e-14)
        assert res.k == 10

    def test_negative_tolerance_raises(self, rng):
        with pytest.raises(ShapeError):
            qp3_blocked(rng.standard_normal((5, 5)), tolerance=-1.0)

    def test_factors_consistent_after_early_stop(self):
        a = exponent_matrix(200, 100, seed=6)
        res = qp3_blocked(a, tolerance=1e-4)
        np.testing.assert_allclose(res.q @ res.r[:, : res.k],
                                   a[:, res.perm[: res.k]], atol=1e-10)


class TestDispatch:
    def test_qrcp_default_blocked(self, rng):
        a = rng.standard_normal((30, 20))
        res = qrcp(a, k=10)
        assert res.k == 10

    def test_qrcp_column_method(self, rng):
        a = rng.standard_normal((30, 20))
        res = qrcp(a, k=10, method="column")
        assert res.k == 10

    def test_unknown_method_raises(self, rng):
        with pytest.raises(ShapeError):
            qrcp(rng.standard_normal((5, 5)), method="nope")

"""Tests for the HODLR compression/solver (repro.hss.hodlr)."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.errors import ShapeError
from repro.gpu.device import GPUExecutor
from repro.hss import HODLRStats, build_hodlr


def kernel_matrix(n: int, diag: float = 2.0) -> np.ndarray:
    """A well-conditioned kernel matrix with low-rank off-diagonals."""
    x = np.linspace(0.0, 1.0, n)
    a = 1.0 / (1.0 + np.abs(x[:, None] - x[None, :]))
    return a + diag * np.eye(n)


@pytest.fixture(scope="module")
def kmat() -> np.ndarray:
    return kernel_matrix(256)


@pytest.fixture(scope="module")
def hmat(kmat):
    return build_hodlr(kmat, leaf_size=32, rank=12)


class TestConstruction:
    def test_shape(self, hmat):
        assert hmat.shape == (256, 256)

    def test_to_dense_accurate(self, hmat, kmat):
        err = np.linalg.norm(hmat.to_dense() - kmat) / np.linalg.norm(kmat)
        assert err < 1e-8

    def test_stats(self, hmat):
        st = hmat.stats()
        assert isinstance(st, HODLRStats)
        assert st.n == 256
        assert st.levels == 3
        assert st.leaf_count == 8
        assert st.max_rank <= 12
        assert st.compression_ratio > 1.5

    def test_non_square_raises(self):
        with pytest.raises(ShapeError):
            build_hodlr(np.zeros((4, 5)))

    def test_bad_params_raise(self, kmat):
        with pytest.raises(ShapeError):
            build_hodlr(kmat, leaf_size=1)
        with pytest.raises(ShapeError):
            build_hodlr(kmat, rank=0)

    def test_small_matrix_single_leaf(self):
        a = kernel_matrix(16)
        h = build_hodlr(a, leaf_size=64, rank=4)
        assert h.stats().leaf_count == 1
        np.testing.assert_allclose(h.to_dense(), a)

    def test_odd_size(self):
        a = kernel_matrix(199)
        h = build_hodlr(a, leaf_size=25, rank=10)
        err = np.linalg.norm(h.to_dense() - a) / np.linalg.norm(a)
        assert err < 1e-7


class TestMatvec:
    def test_vector(self, hmat, kmat, rng):
        x = rng.standard_normal(256)
        np.testing.assert_allclose(hmat.matvec(x), kmat @ x, atol=1e-8)

    def test_block(self, hmat, kmat, rng):
        x = rng.standard_normal((256, 5))
        np.testing.assert_allclose(hmat.matvec(x), kmat @ x, atol=1e-8)

    def test_shape_mismatch_raises(self, hmat):
        with pytest.raises(ShapeError):
            hmat.matvec(np.zeros(100))


class TestSolve:
    def test_vector_solve(self, hmat, kmat, rng):
        b = rng.standard_normal(256)
        x = hmat.solve(b)
        assert np.linalg.norm(kmat @ x - b) / np.linalg.norm(b) < 1e-8

    def test_block_solve(self, hmat, kmat, rng):
        b = rng.standard_normal((256, 4))
        x = hmat.solve(b)
        assert np.linalg.norm(kmat @ x - b) / np.linalg.norm(b) < 1e-8

    def test_matches_dense_solve(self, hmat, kmat, rng):
        b = rng.standard_normal(256)
        np.testing.assert_allclose(hmat.solve(b), np.linalg.solve(kmat, b),
                                   atol=1e-7)

    def test_shape_mismatch_raises(self, hmat):
        with pytest.raises(ShapeError):
            hmat.solve(np.zeros(10))

    def test_leaf_only_solve_exact(self, rng):
        a = kernel_matrix(30)
        h = build_hodlr(a, leaf_size=64, rank=4)
        b = rng.standard_normal(30)
        np.testing.assert_allclose(h.solve(b), np.linalg.solve(a, b),
                                   atol=1e-10)


class TestRandomizedIntegration:
    def test_timed_compression(self, kmat):
        """The compression runs through the package's randomized SVD:
        a GPU executor accumulates modeled time."""
        ex = GPUExecutor(seed=0)
        build_hodlr(kmat, leaf_size=32, rank=12, executor=ex)
        assert ex.seconds > 0

    def test_rank_controls_accuracy(self):
        # A kernel with genuinely decaying off-diagonal spectrum:
        # higher compression rank -> lower reconstruction error.
        a = kernel_matrix(256, diag=0.5)
        errs = []
        for rank in (2, 6, 14):
            h = build_hodlr(a, leaf_size=32, rank=rank,
                            config=SamplingConfig(rank=rank,
                                                  power_iterations=2,
                                                  seed=1))
            errs.append(np.linalg.norm(h.to_dense() - a))
        assert errs[0] > errs[1] > errs[2]

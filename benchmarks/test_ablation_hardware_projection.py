"""Extension: cross-hardware projection of the performance model.

Section 8 frames the performance model as a way "to evaluate the
performance of random sampling on a target computer before
implementing the algorithm".  This bench does so for a Pascal-class
projection (P100 datasheet ratios over the K40c: ~3.3x FP64 compute,
~2.5x bandwidth, lower latencies) and checks that the paper's
conclusions are properties of the algorithm, not of the K40c:

- QP3 stays communication-bound (its rate rises with the bandwidth,
  not the compute, and stays far below the new peak);
- random sampling keeps an order-of-magnitude Gflop/s advantage;
- the q = 0 / q = 1 speedups stay in the same bands.
"""

from repro.bench.reporting import format_table
from repro.gpu.specs import KEPLER_K40C, PASCAL_P100_PROJECTION
from repro.obs import attach_series
from repro.perfmodel.estimate import (estimate_qp3_gflops,
                                      estimate_random_sampling_gflops,
                                      estimate_speedup)

M, N, L, K = 50_000, 2_500, 64, 54


def run_projection():
    rows = []
    for spec in (KEPLER_K40C, PASCAL_P100_PROJECTION):
        rows.append({
            "device": spec.name,
            "qp3_gflops": estimate_qp3_gflops(M, N, K, spec),
            "rs_q0_gflops": estimate_random_sampling_gflops(
                M, N, L, K, 0, spec),
            "rs_q1_gflops": estimate_random_sampling_gflops(
                M, N, L, K, 1, spec),
            "speedup_q0": estimate_speedup(M, N, L, K, 0, spec),
            "speedup_q1": estimate_speedup(M, N, L, K, 1, spec),
        })
    return rows


def test_hardware_projection(benchmark, print_table):
    rows = benchmark.pedantic(run_projection, rounds=1, iterations=1)
    k40, p100 = rows

    # QP3 rate follows the bandwidth (x2.5), not the compute (x3.3):
    # still communication-bound on the newer part.
    assert 2.0 < p100["qp3_gflops"] / k40["qp3_gflops"] < 3.0
    assert p100["qp3_gflops"] < 0.03 * PASCAL_P100_PROJECTION.\
        fp64_peak_gflops

    # Sampling keeps the order-of-magnitude rate advantage.
    assert p100["rs_q1_gflops"] > 10 * p100["qp3_gflops"]

    # The headline speedups persist across the generation.
    assert 4.0 < p100["speedup_q1"] < 9.0
    assert 8.0 < p100["speedup_q0"] < 18.0

    attach_series(benchmark, "ablation_hardware_projection", points=[
        {"params": {"device": r["device"]},
         "metrics": {k: float(v) for k, v in r.items()
                     if k != "device"}}
        for r in rows])
    print_table(format_table(
        ["device", "QP3 Gf/s", "RS q=0 Gf/s", "RS q=1 Gf/s",
         "speedup q=0", "speedup q=1"],
        [[r["device"], r["qp3_gflops"], r["rs_q0_gflops"],
          r["rs_q1_gflops"], r["speedup_q0"], r["speedup_q1"]]
         for r in rows],
        title="Cross-hardware projection (SS8's 'evaluate before "
              "implementing')"))

"""Figure 6: approximation error ||AP - QR|| / ||A||, QP3 vs random
sampling with q = 0, 1, 2 — plus the Section 7 text claims (p = 0
roughly an order worse; FFT sampling the same error order).

Paper values (m = 500k / 503k):

=========  ========  ========  ========  ========
matrix     QP3       q = 0     q = 1     q = 2
=========  ========  ========  ========  ========
power      4.47e-05  9.08e-05  4.59e-05  4.45e-05
exponent   2.69e-05  5.18e-05  2.69e-05  2.69e-05
hapmap     5.99e-01  9.86e-01  8.74e-01  8.18e-01
=========  ========  ========  ========  ========

The reduced default (m = 6 000) keeps the same spectra, so the same
relations must hold: q = 0 within one order of QP3, q >= 1 at parity,
and hapmap's error O(1).
"""

from repro.bench import fig06_accuracy
from repro.bench.reporting import format_table
from repro.obs import attach_series


def test_fig06(benchmark, print_table):
    rows = benchmark.pedantic(
        fig06_accuracy,
        kwargs={"m": 6_000, "n": 500, "k": 50, "include_p0": True,
                "include_fft": True},
        rounds=1, iterations=1)
    by_name = {r["name"]: r for r in rows}

    for name in ("power", "exponent"):
        r = by_name[name]
        assert r["q0"] < 10 * r["qp3"], name       # same order at q=0
        assert r["q1"] < 2.5 * r["qp3"], name      # parity at q=1
        assert r["q2"] <= 1.2 * r["q1"], name      # q=2 no worse
        assert r["q0_p0"] > 1.5 * r["q0"], name    # p=0 notably worse
        assert r["q0_fft"] < 10 * r["qp3"], name   # FFT same order
        assert r["qp3"] < 1e-3, name               # small errors here

    # hapmap signature (paper: QP3 0.599, q0 0.986, q2 0.818): errors
    # live in the O(0.1-1) regime — four orders above the synthetic
    # matrices — and the randomized errors exceed QP3's (the flat
    # genotype-noise bulk drives the tail term of the error bound).
    hm = by_name["hapmap"]
    assert hm["qp3"] > 0.05
    assert hm["q0"] > hm["qp3"]
    assert 0.05 < hm["q2"] < 1.0
    assert abs(hm["q2"] - hm["q0"]) < 0.3 * hm["q0"]

    attach_series(benchmark, "fig06", points=[
        {"params": {"matrix": n},
         "metrics": {k: float(v) for k, v in r.items() if k != "name"}}
        for n, r in by_name.items()])
    print_table(format_table(
        ["matrix", "QP3", "q=0", "q=1", "q=2", "q=0,p=0", "q=0,FFT"],
        [[r["name"], r["qp3"], r["q0"], r["q1"], r["q2"], r["q0_p0"],
          r["q0_fft"]] for r in rows],
        title="Figure 6 (reduced m): error ||AP - QR|| / ||A||"))

"""Ablation/extension: the hierarchical (HODLR) solver built on the
randomized kernel — the paper's Section 11 follow-up (its ref [22]).

Measures real wall time (pytest-benchmark) of the hierarchical solve
against NumPy's dense LU at growing n and checks the asymptotic story:
compression ratio and solve-time advantage both grow with n while the
residual stays at solver precision.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.hss import build_hodlr
from repro.obs import attach_series


def kernel_matrix(n: int) -> np.ndarray:
    x = np.linspace(0.0, 1.0, n)
    return 1.0 / (1.0 + 9.0 * np.abs(x[:, None] - x[None, :])) \
        + 2.0 * np.eye(n)


@pytest.fixture(scope="module")
def problem():
    n = 2_048
    a = kernel_matrix(n)
    h = build_hodlr(a, leaf_size=64, rank=14)
    b = np.random.default_rng(0).standard_normal(n)
    return a, h, b


def test_hodlr_solve_wall_time(benchmark, problem, print_table):
    a, h, b = problem
    x = benchmark(h.solve, b)
    resid = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
    assert resid < 1e-8

    st = h.stats()
    assert st.compression_ratio > 5.0

    # Asymptotics: ratio grows with n.
    ratios = []
    for n in (256, 1_024):
        hn = build_hodlr(kernel_matrix(n), leaf_size=64, rank=14)
        ratios.append(hn.stats().compression_ratio)
    assert ratios[0] < ratios[1] < st.compression_ratio

    attach_series(benchmark, "ablation_hodlr", points=[
        {"params": {"n": 256},
         "metrics": {"compression_ratio": ratios[0]}},
        {"params": {"n": 1_024},
         "metrics": {"compression_ratio": ratios[1]}},
        {"params": {"n": 2_048},
         "metrics": {"compression_ratio": st.compression_ratio,
                     "residual": float(resid)}}])
    print_table(format_table(
        ["n", "compression_ratio"],
        [[256, ratios[0]], [1024, ratios[1]], [2048,
                                               st.compression_ratio]],
        title="HODLR compression (randomized off-diagonal SVD, "
              "rank 14)"))


# The dense-LU reference publishes no reproduced series: its only
# output is the wall time pytest-benchmark already records.
def test_dense_solve_wall_time(benchmark, problem):  # repro: noqa RS107
    a, _, b = problem
    x = benchmark(np.linalg.solve, a, b)
    assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-10

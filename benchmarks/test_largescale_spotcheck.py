"""Large-scale numerics spot check (Figure 6 at 1/5 paper height).

The numerics benches default to a few thousand rows; this one runs the
Figure 6 comparison on a 100 000 x 500 ``exponent`` matrix — the same
construction as the paper's 500 000-row instance — to demonstrate the
claim the reduced defaults rely on: the approximation errors are
governed by the spectrum, not by the row count, so the reduced-scale
results transfer.

(This is real 100k-row linear algebra, not modeled time; the bench
takes a few minutes — dominated by generating the Haar-random
singular vectors of the test matrix.)
"""

import numpy as np

from repro import SamplingConfig, random_sampling
from repro.bench.reporting import format_table
from repro.matrices import exponent_matrix
from repro.obs import attach_series
from repro.qr.qrcp import qp3_blocked

M, N, K, P = 100_000, 500, 50, 10


def run_spotcheck():
    a = exponent_matrix(M, N, seed=0)
    row = {"m": M, "qp3": qp3_blocked(a, k=K).residual(a)}
    for q in (0, 1):
        cfg = SamplingConfig(rank=K, oversampling=P, power_iterations=q,
                             seed=1)
        row[f"q{q}"] = random_sampling(a, cfg).residual(a)
    # The reduced-scale reference the rest of the suite runs at.
    small = exponent_matrix(4_000, N, seed=0)
    row["qp3_small"] = qp3_blocked(small, k=K).residual(small)
    row["q0_small"] = random_sampling(
        small, SamplingConfig(rank=K, oversampling=P, seed=1)
    ).residual(small)
    return row


def test_largescale_spotcheck(benchmark, print_table):
    row = benchmark.pedantic(run_spotcheck, rounds=1, iterations=1)

    # Figure 6 relations at 100k rows.
    assert row["q0"] < 10 * row["qp3"]
    assert row["q1"] < 2.5 * row["qp3"]
    assert row["qp3"] < 1e-4  # spectrum-governed error level

    # Scale invariance: 100k-row and 4k-row errors agree within 3x —
    # the justification for the suite's reduced defaults.
    assert row["qp3"] < 3 * row["qp3_small"]
    assert row["qp3_small"] < 3 * row["qp3"]
    assert row["q0"] < 3 * row["q0_small"]
    assert row["q0_small"] < 3 * row["q0"]

    attach_series(benchmark, "largescale_spotcheck", points=[
        {"params": {"m": M},
         "metrics": {k: float(v) for k, v in row.items()}}])
    print_table(format_table(
        ["rows", "QP3", "q=0", "q=1"],
        [[M, row["qp3"], row["q0"], row["q1"]],
         [4_000, row["qp3_small"], row["q0_small"], ""]],
        title="Large-scale spot check (exponent, k=50): errors are "
              "row-count invariant"))

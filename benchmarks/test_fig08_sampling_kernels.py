"""Figure 8: pruned Gaussian GEMM vs full FFT vs GEMV sampling rates
over the subspace size (m = 50 000, n = 2 500), row and column variants.

Paper shape: GEMM climbs toward ~1 200 Gflop/s (near the memory-peak
line), GEMV sits flat and low, the FFT line is flat (fixed flops), and
the "FFT effective" curve crosses GEMM at l ~ 192 (row) / l ~ 128
(column) — beyond that the full FFT is the faster sampler.
"""

import numpy as np

from repro.bench import fig08_sampling_kernels, format_series
from repro.obs import attach_series


def _crossover(data):
    ls = np.array(data["l"])
    wins = ls[np.array(data["fft_effective"]) > np.array(data["gemm"])]
    return int(wins.min()) if wins.size else None


def test_fig08_row(benchmark, print_table):
    data = benchmark.pedantic(fig08_sampling_kernels,
                              kwargs={"axis": "row"},
                              rounds=1, iterations=1)
    gemm = np.array(data["gemm"])
    # GEMM monotone, near 1 200 at the top, below compute peak.
    assert all(a < b for a, b in zip(gemm, gemm[1:]))
    assert 1_000 < gemm[-1] < 1_430
    # GEMV flat and far below GEMM.
    assert max(data["gemv"]) < 80
    # Crossover in the paper's band.
    cross = _crossover(data)
    assert cross is not None and 128 <= cross <= 320
    attach_series(benchmark, "fig08_row", series=data, x_name="l",
                  metrics={"row_crossover_l": cross})
    series = {k: data[k] for k in ("gemm", "gemv", "fft",
                                   "fft_effective")}
    print_table(format_series(data["l"], series, x_name="l",
                              title=f"Figure 8a: row sampling Gflop/s "
                                    f"(crossover at l={cross}; "
                                    f"paper ~192)"))


def test_fig08_col(benchmark, print_table):
    data = benchmark.pedantic(fig08_sampling_kernels,
                              kwargs={"axis": "col"},
                              rounds=1, iterations=1)
    cross = _crossover(data)
    # Paper: column crossover earlier than the row crossover (~128).
    assert cross is not None and 64 <= cross <= 224
    row_cross = _crossover(fig08_sampling_kernels(axis="row"))
    assert cross <= row_cross
    attach_series(benchmark, "fig08_col", series=data, x_name="l",
                  metrics={"col_crossover_l": cross})
    series = {k: data[k] for k in ("gemm", "fft", "fft_effective")}
    print_table(format_series(data["l"], series, x_name="l",
                              title=f"Figure 8b: column sampling Gflop/s "
                                    f"(crossover at l={cross}; "
                                    f"paper ~128)"))

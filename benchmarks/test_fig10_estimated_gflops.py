"""Figure 10: estimated Gflop/s of random sampling (q = 0, 1) vs
truncated QP3, derived from the kernel models alone (Section 8's
"evaluate the performance before implementing").

Paper: QP3 limited under 29 Gflop/s; random sampling expected to reach
676 Gflop/s (q = 1) and 489 Gflop/s (q = 0) at m = 50 000 — implying
speedups of ~6.7x and ~14.3x once flop ratios are divided out.
"""

from repro.bench import fig10_estimated_gflops, format_series
from repro.obs import attach_series
from repro.perfmodel.estimate import estimate_speedup


def test_fig10(benchmark, print_table):
    data = benchmark.pedantic(fig10_estimated_gflops, rounds=1,
                              iterations=1)
    # QP3 under 29 Gflop/s everywhere.
    assert max(data["qp3"]) < 29.5
    # Sampling rates at m = 50k near the paper's estimates.
    q1_top = data["rs_q1"][-1]
    q0_top = data["rs_q0"][-1]
    assert 500 < q1_top < 850      # paper: 676
    assert 360 < q0_top < 620      # paper: 489
    assert q1_top > q0_top

    # Derived speedups (Section 8: 6.7x / 14.3x).
    s1 = estimate_speedup(50_000, 2_500, 64, 54, 1)
    s0 = estimate_speedup(50_000, 2_500, 64, 54, 0)
    assert 4.5 < s1 < 9.0
    assert 9.0 < s0 < 18.0

    attach_series(benchmark, "fig10", series=data, x_name="m", metrics={
        "rs_q1_at_50k": q1_top, "rs_q0_at_50k": q0_top,
        "predicted_speedup_q1": s1, "predicted_speedup_q0": s0})
    series = {k: v for k, v in data.items() if k != "m"}
    print_table(format_series(
        data["m"], series, x_name="m",
        title=f"Figure 10: estimated Gflop/s (paper: 676/489/<29; "
              f"predicted speedups q1={s1:.1f}x q0={s0:.1f}x)"))

"""Ablation: the oversampling parameter p (Section 7's text claims).

The paper: "Without oversampling (p = 0), the error norm was about an
order of magnitude greater.  A greater oversampling (p = 20 or 50)
could further improve the accuracy, but with a smaller factor (the
constant C(Omega, p) is roughly proportional to p^{-1/2})."

This ablation sweeps p at fixed k and checks that shape: a big jump
from p = 0 to p = 10, then diminishing returns — while the modeled
cost grows linearly with l = k + p.
"""

from repro.bench.reporting import format_table
from repro.obs import attach_series

from repro.bench.ablations import oversampling_ablation

run_ablation = oversampling_ablation


def test_ablation_oversampling(benchmark, print_table):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    err = {r["p"]: r["error"] for r in rows}
    secs = {r["p"]: r["modeled_s"] for r in rows}

    # p = 0 notably worse than p = 10.  (The paper reports ~an order
    # of magnitude on one 500k-row draw; at reduced scale the median
    # penalty is ~1.7-2x — the heavy tail of the p=0 error
    # distribution needs the paper's dimensions to bite.  Recorded in
    # EXPERIMENTS.md.)
    assert err[0] > 1.4 * err[10]
    # Error decreases monotonically with p ...
    assert err[0] > err[10] > err[50]
    # ... with diminishing per-unit-p returns beyond p = 10
    # (C ~ p^{-1/2}): the per-p improvement rate from 0 -> 10 exceeds
    # the rate from 10 -> 50.
    rate_0_10 = (err[0] / err[10]) ** (1.0 / 10.0)
    rate_10_50 = (err[10] / err[50]) ** (1.0 / 40.0)
    assert rate_0_10 > rate_10_50
    # Cost grows with l = k + p.
    assert secs[50] > secs[10] > secs[0]

    attach_series(benchmark, "ablation_oversampling", points=[
        {"params": {"p": r["p"]},
         "metrics": {"error": float(r["error"]),
                     "modeled_s": float(r["modeled_s"])}}
        for r in rows])
    print_table(format_table(
        ["p", "median error", "modeled_s"],
        [[r["p"], r["error"], r["modeled_s"]] for r in rows],
        title="Ablation: oversampling p at k=50 (paper: p=0 ~1 order "
              "worse; C ~ p^-1/2 beyond)"))

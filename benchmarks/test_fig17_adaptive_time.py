"""Figure 17: error estimate vs *modeled GPU time* for the adaptive
scheme with static and interpolation-adapted l_inc.

Paper shape (Section 10's trade-off): convergence in wall-time is
slower for small l_inc (inefficient small GEMMs, see Figure 18), large
static l_inc overshoots the subspace, and the interpolated rule does
well from any starting increment.
"""

import numpy as np

from repro.bench import fig17_adaptive_time
from repro.bench.reporting import format_table
from repro.obs import attach_series


def test_fig17(benchmark, print_table):
    runs = benchmark.pedantic(
        fig17_adaptive_time,
        kwargs={"l_incs": (8, 16, 32, 64), "tolerance": 1e-12,
                "m": 4_000, "n": 500},
        rounds=1, iterations=1)

    static = {r["l_inc"]: r for r in runs if r["rule"] == "static"}
    adaptive = {r["l_inc"]: r for r in runs if r["rule"] == "interpolate"}

    for r in runs:
        assert r["converged"], (r["l_inc"], r["rule"])
        assert r["total_seconds"] > 0
        # Modeled time strictly increases across steps.
        ts = r["times"]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    # The Figure 18 effect: with static steps, l_inc = 8 converges
    # slower in modeled time than l_inc = 32 (small panels run the
    # GEMM far below peak).
    assert static[8]["total_seconds"] > static[32]["total_seconds"]

    # The interpolated rule needs fewer steps than static from the
    # same small start.
    assert len(adaptive[8]["times"]) < len(static[8]["times"])

    attach_series(benchmark, "fig17", points=[
        {"params": {"l_inc": r["l_inc"], "rule": r["rule"]},
         "metrics": {"total_seconds": r["total_seconds"],
                     "final_size": r["final_size"],
                     "steps": len(r["times"])}}
        for r in runs])
    rows = [[r["l_inc"], r["rule"], len(r["times"]), r["final_size"],
             r["total_seconds"]] for r in runs]
    print_table(format_table(
        ["l_inc", "rule", "steps", "final_l", "modeled_s"], rows,
        title="Figure 17: adaptive scheme, modeled time to tol=1e-12"))

"""Figure 14: modeled time vs number of power iterations (q = 0 - 12)
against the QP3 line (n = 2 500, m sweep).

Paper: run time increases linearly with q, and random sampling
outperforms QP3 for up to twelve iterations (q <= 12) — a razor-thin
margin at q = 12 (their 0.47 s vs 0.477 s at m = 50k).
"""

import numpy as np

from repro.bench import fig14_time_vs_iterations, format_series
from repro.obs import attach_series


def test_fig14(benchmark, print_table):
    data = benchmark.pedantic(fig14_time_vs_iterations, rounds=1,
                              iterations=1)
    ms = data["m"]
    last = -1  # m = 50 000

    # Time linear in q at fixed m.
    qs = (0, 2, 4, 6, 8, 10, 12)
    times = np.array([data[f"q{q}"][last] for q in qs])
    increments = np.diff(times)
    assert np.allclose(increments, increments[0], rtol=0.05)

    # q <= 12 still beats QP3 in the large-m regime (the paper's
    # headline; at very small m the fixed QRCP-of-B cost makes high-q
    # sampling lose under the paper's own linear fits as well).
    big = [i for i, m in enumerate(ms) if m >= 20_000]
    for q in qs:
        for i in big:
            assert data[f"q{q}"][i] <= data["qp3"][i], (q, ms[i])

    # ... but only barely at q = 12 (within 15 % of QP3 at m = 50k).
    assert data["q12"][last] > 0.85 * data["qp3"][last]

    attach_series(benchmark, "fig14", series=data, x_name="m", metrics={
        "q12_over_qp3_at_50k": float(data["q12"][last]
                                     / data["qp3"][last])})
    series = {k: v for k, v in data.items() if k != "m"}
    print_table(format_series(ms, series, x_name="m",
                              title="Figure 14: time (s) vs power "
                                    "iterations (paper: wins up to "
                                    "q=12)"))

"""Figure 18: GEMM Gflop/s at the adaptive scheme's small panel widths
(m = 50 000, n = 2 500).

Paper table: l_inc -> Gflop/s = {8: 123.3, 16: 247.0, 32: 489.5,
48: 597.8, 64: 778.5}.  Our calibrated roofline must reproduce each
value within 15 %.
"""

import pytest

from repro.bench import fig18_gemm_small_l, format_series
from repro.obs import attach_series

PAPER = {8: 123.3, 16: 247.0, 32: 489.5, 48: 597.8, 64: 778.5}


def test_fig18(benchmark, print_table):
    data = benchmark.pedantic(fig18_gemm_small_l, rounds=1, iterations=1)
    rates = dict(zip((int(l) for l in data["l_inc"]),
                     data["gemm_gflops"]))

    for l, ref in PAPER.items():
        assert rates[l] == pytest.approx(ref, rel=0.15), f"l_inc={l}"

    # Monotone saturation.
    seq = data["gemm_gflops"]
    assert all(a < b for a, b in zip(seq, seq[1:]))

    attach_series(benchmark, "fig18", points=[
        {"params": {"l_inc": l},
         "metrics": {"model_gflops": rates[l], "paper_gflops": PAPER[l]}}
        for l in sorted(PAPER)])
    print_table(format_series(
        data["l_inc"],
        {"model_gflops": data["gemm_gflops"],
         "paper_gflops": [PAPER[int(l)] for l in data["l_inc"]]},
        x_name="l_inc",
        title="Figure 18: GEMM rate at small panel widths"))

"""Section 7: the numerical-reliability study, swept.

"In our numerical experiments, we use a wide range of input parameters
and a variety of matrices with different distributions of singular
values in order to provide insights into the reliability."

This bench runs the fixed-rank algorithm over a (matrix x k x p x q x
seed) grid and checks the reliability properties a user would infer
from Section 7:

- every run's error is bounded by a modest multiple of the optimum
  sigma_{k+1} once p >= 5 and q >= 1 (no catastrophic draws);
- across seeds, the error concentrates (max/min within a small factor)
  — the algorithm is *reliably* accurate, not accurate on average;
- q = 0 errors stay within one order of magnitude of q = 2 errors on
  fast-decaying spectra (the Figure 6 statement, quantified over the
  grid).
"""

import numpy as np

from repro import SamplingConfig, best_rank_k_error, random_sampling
from repro.bench.reporting import format_table
from repro.matrices.synthetic import exponent_matrix, power_matrix
from repro.obs import attach_series

SEEDS = range(5)
KS = (10, 30, 50)
PS = (5, 10)
QS = (0, 1, 2)


def run_sweep():
    rows = []
    for gen, name in ((power_matrix, "power"),
                      (exponent_matrix, "exponent")):
        a = gen(2_000, 300, seed=100)
        sigma = {k: best_rank_k_error(a, k, relative=True) for k in KS}
        for k in KS:
            for p in PS:
                for q in QS:
                    errs = [random_sampling(
                        a, SamplingConfig(rank=k, oversampling=p,
                                          power_iterations=q,
                                          seed=200 + s)).residual(a)
                        for s in SEEDS]
                    rows.append({
                        "matrix": name, "k": k, "p": p, "q": q,
                        "optimum": sigma[k],
                        "median": float(np.median(errs)),
                        "worst": float(max(errs)),
                        "spread": float(max(errs) / min(errs)),
                    })
    return rows


def test_reliability_sweep(benchmark, print_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    for r in rows:
        # No catastrophic runs anywhere on the grid.
        assert r["worst"] < 100 * r["optimum"], r
        if r["q"] >= 1:
            # With a power iteration, near-optimal in the worst case.
            assert r["worst"] < 10 * r["optimum"], r
        # Concentration across seeds.
        assert r["spread"] < (30 if r["q"] == 0 else 10), r

    # Figure 6 statement over the whole grid: q = 0 within one order
    # of q = 2 at the paper's (k, p) = (50, 10).
    for name in ("power", "exponent"):
        e0 = next(r for r in rows if r["matrix"] == name and r["k"] == 50
                  and r["p"] == 10 and r["q"] == 0)
        e2 = next(r for r in rows if r["matrix"] == name and r["k"] == 50
                  and r["p"] == 10 and r["q"] == 2)
        assert e0["median"] < 10 * e2["median"]

    worst_ratio = max(r["worst"] / r["optimum"] for r in rows
                      if r["q"] >= 1)
    attach_series(benchmark, "reliability_sweep", metrics={
        "worst_over_optimum_q>=1": worst_ratio,
        "grid_points": len(rows)})
    show = [r for r in rows if r["k"] == 50 and r["p"] == 10]
    print_table(format_table(
        ["matrix", "k", "p", "q", "sigma_k+1", "median", "worst",
         "spread"],
        [[r["matrix"], r["k"], r["p"], r["q"], r["optimum"],
          r["median"], r["worst"], r["spread"]] for r in show],
        title=f"Section 7 reliability sweep ({len(rows)} grid points, "
              f"5 seeds each; worst/optimum at q>=1: "
              f"{worst_ratio:.1f}x)"))

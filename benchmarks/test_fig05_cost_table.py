"""Figure 5: the computation/communication cost table (Section 5).

Regenerates every row of the paper's cost table from
:mod:`repro.perfmodel.costs` at the canonical experiment shape
(m = 50 000, n = 2 500, l = 64, k = 54, q = 1) and asserts the order
relations the section argues from:

- the total is dominated by the matrix-multiply terms (O(l m n (1+2q)));
- every random-sampling step has GEMM-class arithmetic intensity
  (O(sqrt(M_fast)) flops/word) except the tiny QRCP of B;
- QP3's intensity is O(panel)-class — the communication argument that
  motivates the whole paper;
- CAQP3 trades more flops for GEMM-class communication.
"""

from math import sqrt

from repro.bench.reporting import format_table
from repro.obs import attach_series
from repro.perfmodel import costs

M, N, L, K, Q = 50_000, 2_500, 64, 54, 1


def build_rows():
    rows = [
        ("Sampling (Gaussian)", costs.gaussian_sampling_cost(M, N, L)),
        ("Sampling (FFT)", costs.fft_sampling_cost(M, N, L)),
        ("Iter. (mult.)", costs.power_iteration_mult_cost(M, N, L, Q)),
        ("Iter. (orth.)", costs.power_iteration_orth_cost(M, N, L, Q)),
        ("QRCP", costs.qrcp_sampled_cost(N, L, K)),
        ("QR", costs.qr_selected_cost(M, K)),
        ("Total", costs.random_sampling_total_cost(M, N, L, K, Q)),
        ("QP3", costs.qp3_cost(M, N, K)),
        ("CAQP3", costs.caqp3_cost(M, N)),
    ]
    return rows


def test_fig05(benchmark, print_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    by = dict(rows)

    # Total dominated by the GEMM terms (sampling + iteration mult).
    gemm_flops = by["Sampling (Gaussian)"].flops + by["Iter. (mult.)"].flops
    assert gemm_flops > 0.9 * by["Total"].flops

    # Leading order O(l m n (1 + 2q)).
    assert by["Total"].flops < 1.2 * (2.0 * L * M * N * (1 + 2 * Q))

    # QRCP of B is marginal (Section 3's "marginal to the total cost").
    assert by["QRCP"].flops < 0.01 * by["Total"].flops

    # Intensity ordering: random sampling ~ sqrt(M_fast); QP3 ~ O(k).
    fast = costs.DEFAULT_FAST_MEMORY
    assert by["Total"].intensity() > 0.1 * sqrt(fast)
    assert by["QP3"].intensity() < 0.05 * sqrt(fast)

    # CAQP3: far more flops than QP3, but GEMM-class words.
    assert by["CAQP3"].flops > 10 * by["QP3"].flops
    assert by["CAQP3"].intensity() > 10 * by["QP3"].intensity()

    # FFT sampling needs *fewer* flops than pruned Gaussian at l = 64
    # (5 log2(m) ~ 80 < 2l = 128 per element) — yet §8 measures it
    # slower, because its achievable rate is far below GEMM's.  That
    # rate gap is the whole Figure 8 story; the flop relation here is
    # its precondition.
    assert by["Sampling (FFT)"].flops < by["Sampling (Gaussian)"].flops
    from repro.gpu.kernels import KernelModel
    km = KernelModel()
    assert (km.fft_sampling_seconds(M, N, axis="row")
            > km.gemm_seconds(L, N, M))

    attach_series(benchmark, "fig05", metrics={
        "intensities": {name: round(c.intensity(), 2)
                        for name, c in rows}})
    print_table(format_table(
        ["step", "#flops", "#words", "flops/word"],
        [[name, c.flops, c.words, c.intensity()] for name, c in rows],
        title=f"Figure 5 at (m,n,l,k,q)=({M},{N},{L},{K},{Q}); "
              f"sqrt(M_fast) = {sqrt(costs.DEFAULT_FAST_MEMORY):.0f}"))

"""Figure 11 + Section 9 headline numbers: modeled run time vs row
count (n = 2 500, (k; p; q) = (54; 10; 1)) with the phase breakdown
and the QP3 reference line.

Paper: QP3 time ~ 9.34e-6 m + 0.0098; sampling(q=1) ~ 1.15e-6 m +
0.0162; speedups up to 6.6x (avg 5.1x) at q = 1 and up to 12.8x
(avg 8.8x) at q = 0; at m = 50k step 1 holds 78 % of the time and the
matrix-multiplies ~75 %.
"""

import numpy as np

from repro.bench import fig11_time_vs_rows, format_breakdown_table
from repro.obs import attach_series

PHASES = ("prng", "sampling", "gemm_iter", "orth_iter", "qrcp", "qr")


def test_fig11_q1(benchmark, print_table):
    points = benchmark.pedantic(fig11_time_vs_rows, rounds=1, iterations=1)
    speedups = [p["speedup"] for p in points]

    assert 5.0 < max(speedups) < 8.5        # paper max 6.6x
    assert 3.5 < np.mean(speedups) < 7.0    # paper avg 5.1x

    last = points[-1]  # m = 50 000
    assert 0.65 < last["step1_fraction"] < 0.9   # paper 78 %
    gemm_share = (last["breakdown"]["sampling"]
                  + last["breakdown"]["gemm_iter"]) / last["total"]
    assert 0.6 < gemm_share < 0.85               # paper ~75 %

    # Linear-fit slopes within 2x of the paper's.
    ms = np.array([p["m"] for p in points], dtype=float)
    rs = np.array([p["total"] for p in points])
    qp3 = np.array([p["qp3"] for p in points])
    rs_slope = np.polyfit(ms, rs, 1)[0]
    qp3_slope = np.polyfit(ms, qp3, 1)[0]
    assert 0.6e-6 < rs_slope < 2.5e-6            # paper 1.15e-6
    assert 5e-6 < qp3_slope < 15e-6              # paper 9.34e-6

    attach_series(benchmark, "fig11", breakdown_points=points, metrics={
        "max_speedup_q1": max(speedups),
        "mean_speedup_q1": float(np.mean(speedups)),
        "step1_fraction_50k": last["step1_fraction"],
        "rs_slope": rs_slope, "qp3_slope": qp3_slope})
    print_table(format_breakdown_table(
        points, "m", PHASES, extra=("qp3", "speedup"),
        title="Figure 11: time (s) vs rows, q=1 "
              "(paper: max speedup 6.6x, avg 5.1x)"))


def test_fig11_q0_headline(benchmark):
    points = benchmark.pedantic(fig11_time_vs_rows, kwargs={"q": 0},
                                rounds=1, iterations=1)
    speedups = [p["speedup"] for p in points]
    assert 10.0 < max(speedups) < 16.0      # paper max 12.8x
    assert 6.0 < np.mean(speedups) < 12.0   # paper avg 8.8x
    attach_series(benchmark, "fig11_q0", breakdown_points=points, metrics={
        "max_speedup_q0": max(speedups),
        "mean_speedup_q0": float(np.mean(speedups))})

"""Figure 12: modeled time vs column count (m = 50 000, (l; p; q) =
(64; 10; 1)).

Paper: QP3's time grows much faster with n than random sampling's
(their fits differ by ~an order of magnitude in slope), so sampling
wins across the whole n = 500 - 5 000 range.
"""

import numpy as np

from repro.bench import fig12_time_vs_cols, format_breakdown_table
from repro.obs import attach_series

PHASES = ("prng", "sampling", "gemm_iter", "orth_iter", "qrcp", "qr")


def test_fig12(benchmark, print_table):
    points = benchmark.pedantic(fig12_time_vs_cols, rounds=1, iterations=1)

    # Sampling wins at every n.
    assert all(p["speedup"] > 1.5 for p in points)

    # QP3 grows faster in n than random sampling.
    ns = np.array([p["n"] for p in points], dtype=float)
    rs_slope = np.polyfit(ns, [p["total"] for p in points], 1)[0]
    qp3_slope = np.polyfit(ns, [p["qp3"] for p in points], 1)[0]
    assert qp3_slope > 3 * rs_slope

    # The paper's QP3 slope ~1.8e-4 s per column at m=50k, k=54.
    assert 0.9e-4 < qp3_slope < 3.6e-4

    attach_series(benchmark, "fig12", breakdown_points=points, metrics={
        "qp3_slope": qp3_slope, "rs_slope": rs_slope})
    print_table(format_breakdown_table(
        points, "n", PHASES, extra=("qp3", "speedup"),
        title="Figure 12: time (s) vs columns (m=50 000)"))

"""Ablation: the orthogonalization scheme inside the power iteration.

The paper picks CholQR with one full reorthogonalization (Section 6)
and motivates it with Figures 7/9; its conclusion floats CA-QR (TSQR)
and mixed-precision CholQR as alternatives.  This ablation runs the
full fixed-rank algorithm under every scheme and reports:

- numerical quality (approximation error, basis orthogonality) on an
  ill-conditioned matrix where plain CholQR is at risk, and
- modeled GPU time of the whole run.

Expected outcome (the paper's design rationale): CholQR2 matches the
unconditionally stable HHQR's error at a fraction of its modeled time;
MGS/CGS/HHQR cost far more; TSQR and mixed-precision CholQR sit
between.
"""

from repro.bench.reporting import format_table
from repro.obs import attach_series

from repro.bench.ablations import orthogonalization_ablation

run_ablation = orthogonalization_ablation


def test_ablation_orth(benchmark, print_table):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    by = {r["scheme"]: r for r in rows}

    # All schemes deliver the same error order on this matrix.
    errs = [r["error"] for r in rows]
    assert max(errs) < 10 * min(errs)

    # The paper's choice: CholQR2 is far cheaper than the BLAS-1/2
    # schemes at the same quality.
    assert by["cholqr2"]["modeled_s"] < 0.3 * by["householder"]["modeled_s"]
    assert by["cholqr2"]["modeled_s"] < 0.3 * by["mgs"]["modeled_s"]
    # CGS is the closest BLAS-2 contender; the end-to-end gap is
    # compressed by the shared GEMM cost but still clear.
    assert by["cholqr2"]["modeled_s"] < 0.75 * by["cgs"]["modeled_s"]
    # Single-pass CholQR is cheaper still; mixed precision in between.
    assert by["cholqr"]["modeled_s"] < by["cholqr2"]["modeled_s"]
    assert (by["cholqr"]["modeled_s"]
            < by["mixed_cholqr"]["modeled_s"]
            < by["cholqr2"]["modeled_s"] * 1.01)

    attach_series(benchmark, "ablation_orth", points=[
        {"params": {"scheme": r["scheme"]},
         "metrics": {"error": float(r["error"]),
                     "modeled_s": float(r["modeled_s"])}}
        for r in rows])
    print_table(format_table(
        ["scheme", "error", "modeled_s (50k x 2.5k, q=2)"],
        [[r["scheme"], r["error"], r["modeled_s"]] for r in rows],
        title="Ablation: orthogonalization scheme in the power "
              "iteration"))

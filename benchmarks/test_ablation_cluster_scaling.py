"""Extension: the Section 11 projection, run on a simulated cluster.

"We expect the performance benefits of random sampling to increase on
a computer with higher communication cost, like a distributed-memory
computer."  Two sweeps quantify this on the two-tier (PCIe +
interconnect) runtime:

1. **Strong scaling** of random sampling over 1-16 three-GPU nodes at
   m = 600k: the algorithm keeps scaling because its only interconnect
   traffic is a handful of short-wide allreduces.
2. **Latency sweep** at 8 nodes: as the per-message latency climbs
   from InfiniBand (~3 us) to WAN-ish (~1 ms), QP3's per-pivot global
   argmax makes its time grow much faster than sampling's, so the
   speedup *increases* with communication cost — and the effect
   strengthens with the rank (k allreduces vs O(1)).
"""

from repro.bench.reporting import format_table
from repro.obs import attach_series

M, N = 600_000, 2_500
LATENCIES = (3e-6, 30e-6, 300e-6, 3e-3)


from repro.bench.ablations import (cluster_latency_ablation,
                                   cluster_scaling_ablation)


def run_scaling():
    return cluster_scaling_ablation((1, 2, 4, 8, 16), m=M, n=N)


def run_latency_sweep():
    return cluster_latency_ablation(LATENCIES, ks=(54, 502), nodes=8,
                                    m=M, n=N)


def test_cluster_strong_scaling(benchmark, print_table):
    times = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    seq = [times[n] for n in (1, 2, 4, 8, 16)]
    assert all(a > b for a, b in zip(seq, seq[1:]))
    assert seq[0] / seq[3] > 5         # >= 62 % efficiency at 8 nodes
    attach_series(benchmark, "ablation_cluster_scaling", points=[
        {"params": {"nodes": n},
         "metrics": {"sampling_seconds": times[n],
                     "speedup_vs_1node": times[1] / times[n]}}
        for n in (1, 2, 4, 8, 16)])
    print_table(format_table(
        ["nodes", "sampling (s)", "speedup vs 1 node"],
        [[n, times[n], times[1] / times[n]] for n in (1, 2, 4, 8, 16)],
        title=f"Cluster strong scaling, m = {M} (3 GPUs/node)"))


def test_cluster_latency_sweep(benchmark, print_table):
    rows = benchmark.pedantic(run_latency_sweep, rounds=1, iterations=1)

    for k in (54, 502):
        sp = [r["speedup"] for r in rows if r["k"] == k]
        # The paper's claim: speedup grows monotonically with the
        # communication cost.
        assert all(a <= b * 1.001 for a, b in zip(sp, sp[1:])), k
    # ... and the effect is stronger at larger rank (more pivots).
    growth_small = ([r["speedup"] for r in rows if r["k"] == 54][-1]
                    / [r["speedup"] for r in rows if r["k"] == 54][0])
    growth_big = ([r["speedup"] for r in rows if r["k"] == 502][-1]
                  / [r["speedup"] for r in rows if r["k"] == 502][0])
    assert growth_big > growth_small > 1.0

    attach_series(benchmark, "ablation_cluster_latency", points=[
        {"params": {"latency": r["latency"], "k": r["k"]},
         "metrics": {"sampling": float(r["sampling"]),
                     "qp3": float(r["qp3"]),
                     "speedup": float(r["speedup"])}}
        for r in rows])
    print_table(format_table(
        ["latency (s)", "k", "sampling (s)", "QP3 (s)", "speedup"],
        [[r["latency"], r["k"], r["sampling"], r["qp3"], r["speedup"]]
         for r in rows],
        title="SS11 projection: speedup vs interconnect latency "
              "(8 nodes)"))

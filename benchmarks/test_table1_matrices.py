"""Table 1: the three test matrices and their spectral statistics.

Regenerates the sigma_0 / sigma_{k+1} / kappa rows.  The synthetic
spectra are exact by construction; the hapmap stand-in must show the
paper's signature (kappa orders of magnitude below the synthetic
matrices).  Runs at reduced m (the statistics are shape-stable);
``REPRO_FULL_SCALE=1`` restores 500k rows.
"""

from repro.bench import table1_matrices
from repro.bench.reporting import format_table
from repro.obs import attach_series


def test_table1(benchmark, print_table):
    rows = benchmark.pedantic(table1_matrices,
                              kwargs={"m": 4_000, "n": 500, "k": 50},
                              rounds=1, iterations=1)
    by_name = {r["name"]: r for r in rows}

    # Paper values: power sigma_k1 ~ 8e-6, kappa ~ 1.3e5;
    # exponent sigma_k1 ~ 1.3e-5 (their indexing), kappa ~ 7.9e4;
    # hapmap kappa ~ 2e1.
    assert 6e-6 < by_name["power"]["sigma_k1"] < 1e-5
    assert 5e4 < by_name["power"]["kappa"] < 3e5
    assert 5e-6 < by_name["exponent"]["sigma_k1"] < 2e-5
    assert 5e4 < by_name["exponent"]["kappa"] < 3e5
    assert by_name["hapmap"]["kappa"] < 1e2

    attach_series(benchmark, "table1", points=[
        {"params": {"matrix": name},
         "metrics": {k: float(v) for k, v in r.items() if k != "name"}}
        for name, r in by_name.items()])
    print_table(format_table(
        ["matrix", "m", "n", "sigma_0", "sigma_k+1", "kappa"],
        [[r["name"], r["m"], r["n"], r["sigma_0"], r["sigma_k1"],
          r["kappa"]] for r in rows],
        title="Table 1 (reduced m; paper: power 1/8e-6/1.3e5, "
              "exponent 1/1.3e-5/7.9e4, hapmap 9.9e3/5e2/2e1)"))

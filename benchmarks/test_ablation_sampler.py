"""Ablation: Gaussian vs FFT sampling, end to end (Sections 4/8).

The paper focuses on pruned Gaussian sampling ("more theoretical work
has been established") but measures FFT sampling as the faster option
for large subspaces (Figure 8).  This ablation runs the full algorithm
under both samplers and confirms:

- equal error order (Section 7's claim, Figure 6 footnote), and
- the modeled-time crossover: Gaussian wins at l = 64, FFT at l = 320.
"""

from repro.bench.reporting import format_table
from repro.obs import attach_series

from repro.bench.ablations import sampler_ablation

run_ablation = sampler_ablation


def test_ablation_sampler(benchmark, print_table):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    by = {r["sampler"]: r for r in rows}

    # Same error order (Fig 6 footnote).
    assert by["fft"]["error"] < 10 * by["gaussian"]["error"]
    assert by["gaussian"]["error"] < 10 * by["fft"]["error"]

    # Crossover (Fig 8): Gaussian faster at l=64, FFT faster at l=320.
    assert by["gaussian"]["modeled_s_l64"] < by["fft"]["modeled_s_l64"]
    assert by["fft"]["modeled_s_l320"] < by["gaussian"]["modeled_s_l320"]

    attach_series(benchmark, "ablation_sampler", points=[
        {"params": {"sampler": r["sampler"]},
         "metrics": {k: float(v) for k, v in r.items()
                     if k != "sampler"}}
        for r in rows])
    print_table(format_table(
        ["sampler", "error", "modeled_s (l=64)", "modeled_s (l=320)"],
        [[r["sampler"], r["error"], r["modeled_s_l64"],
          r["modeled_s_l320"]] for r in rows],
        title="Ablation: Gaussian vs FFT sampling (q=0)"))

"""Ablation: the fixed-accuracy problem — adaptive sampling vs
tolerance-truncated QP3.

Section 10 studies the adaptive-l scheme in isolation; the natural
deterministic baseline is QP3 stopped when the largest remaining
column norm meets the tolerance.  This ablation runs both on the
``exponent`` matrix across tolerances and checks the paper's framing:

- both meet the requested accuracy;
- the adaptive scheme oversamples (its probabilistic estimate is
  pessimistic, Section 10) so its subspace is somewhat larger than
  QP3's revealed rank;
- in modeled GPU time the adaptive scheme wins by the same BLAS-3 vs
  BLAS-2 margin as the fixed-rank comparison.
"""

from repro.bench.reporting import format_table
from repro.obs import attach_series

TOLS = (1e-4, 1e-7, 1e-10)

from repro.bench.ablations import fixed_accuracy_ablation


def run_ablation():
    return fixed_accuracy_ablation(TOLS)


def test_ablation_fixed_accuracy(benchmark, print_table):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    for r in rows:
        # Both methods meet the requested accuracy (within the usual
        # stopping-criterion slack).
        assert r["qp3_err"] < 10 * r["tol"]
        assert r["adaptive_err"] < 10 * r["tol"]
        # The probabilistic estimator oversamples relative to the
        # revealed rank (Section 10's storage-overhead remark).
        assert r["adaptive_l"] >= r["qp3_rank"]
        # ... but the BLAS-3 sampling still wins in modeled time.
        assert r["adaptive_modeled_s"] < r["qp3_modeled_s"]

    # Both ranks grow as the tolerance tightens.
    assert rows[0]["qp3_rank"] < rows[-1]["qp3_rank"]
    assert rows[0]["adaptive_l"] < rows[-1]["adaptive_l"]

    attach_series(benchmark, "ablation_fixed_accuracy", points=[
        {"params": {"tol": r["tol"]},
         "metrics": {k: float(v) for k, v in r.items() if k != "tol"}}
        for r in rows])
    print_table(format_table(
        ["tol", "QP3 rank", "QP3 err", "QP3 s", "adaptive l",
         "adaptive err", "adaptive s"],
        [[r["tol"], r["qp3_rank"], r["qp3_err"], r["qp3_modeled_s"],
          r["adaptive_l"], r["adaptive_err"], r["adaptive_modeled_s"]]
         for r in rows],
        title="Ablation: fixed-accuracy problem — tolerance-QP3 vs "
              "adaptive sampling"))

"""Figure 7: Gflop/s of QP3, HHQR, CholQR, CGS, MGS on tall-skinny
``m x 64`` panels (m = 2 500 - 50 000), from the calibrated kernel
models.

Paper shape: CholQR on top (up to ~33.2x HHQR, 30.5x average), then
CGS, then HHQR (~5x QP3), then MGS, then QP3 at the bottom.
"""

import numpy as np

from repro.bench import fig07_tallskinny_qr, format_series
from repro.obs import attach_series


def test_fig07(benchmark, print_table):
    data = benchmark.pedantic(fig07_tallskinny_qr, rounds=1, iterations=1)
    ms = data["m"]

    # Strict ordering at every m (the figure's curve stack).
    for i in range(len(ms)):
        assert (data["cholqr"][i] > data["cgs"][i] > data["hhqr"][i]
                > data["mgs"][i] > data["qp3"][i]), f"m={ms[i]}"

    # CholQR / HHQR speedup band (paper: avg 30.5x, max 33.2x).
    ratios = np.array(data["cholqr"]) / np.array(data["hhqr"])
    assert 20 < ratios.mean() < 40
    assert ratios.max() < 45

    # HHQR / QP3 around 5x.
    hq = np.array(data["hhqr"]) / np.array(data["qp3"])
    assert 2.5 < hq.mean() < 8

    # All curves increase with m (GPU utilization grows).
    for key in ("cholqr", "cgs", "hhqr", "mgs", "qp3"):
        ys = data[key]
        assert all(a < b for a, b in zip(ys, ys[1:])), key

    attach_series(benchmark, "fig07", series=data, x_name="m", metrics={
        "cholqr_over_hhqr_mean": float(ratios.mean())})
    series = {k: v for k, v in data.items() if k != "m"}
    print_table(format_series(ms, series, x_name="m",
                              title="Figure 7: tall-skinny QR (n=64), "
                                    "Gflop/s"))

"""Figure 13: modeled time vs subspace size l = 32 - 512
((m; n) = (50 000; 2 500), p = 10, q = 1).

Paper: QP3's time grows much more steeply with the target rank
(~0.81e-2 per l unit vs ~0.10e-2), so random sampling outperforms QP3
over the whole range.
"""

import numpy as np

from repro.bench import fig13_time_vs_rank, format_breakdown_table
from repro.obs import attach_series

PHASES = ("prng", "sampling", "gemm_iter", "orth_iter", "qrcp", "qr")


def test_fig13(benchmark, print_table):
    points = benchmark.pedantic(fig13_time_vs_rank, rounds=1, iterations=1)

    assert all(p["speedup"] > 1 for p in points)

    ls = np.array([p["l"] for p in points], dtype=float)
    rs = np.array([p["total"] for p in points])
    qp3 = np.array([p["qp3"] for p in points])
    rs_slope = np.polyfit(ls, rs, 1)[0]
    qp3_slope = np.polyfit(ls, qp3, 1)[0]

    # Paper fit ratio: 0.81e-2 vs 0.10e-2 => ~8x steeper for QP3.
    assert 4 < qp3_slope / rs_slope < 16
    # Both monotone in l.
    assert all(a < b for a, b in zip(rs, rs[1:]))
    assert all(a < b for a, b in zip(qp3, qp3[1:]))

    attach_series(benchmark, "fig13", breakdown_points=points, metrics={
        "slope_ratio": float(qp3_slope / rs_slope)})
    print_table(format_breakdown_table(
        points, "l", PHASES, extra=("qp3", "speedup"),
        title="Figure 13: time (s) vs subspace size "
              "(paper slope ratio ~8x)"))

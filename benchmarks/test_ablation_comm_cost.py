"""Ablation: how the algorithms degrade as communication gets dearer.

The paper closes on this claim (Section 11): "Due to its communication
efficiency, we expect the performance benefits of random sampling to
increase on a computer with higher communication cost, like a
distributed-memory computer", and plans a comparison against the
communication-avoiding QP3 (its ref [4]).

This ablation quantifies both statements with the kernel models: the
per-synchronization cost (0.18 ms on the single-node K40c, fitted from
the Figure 11 QP3 intercept) is scaled from 1x to 1000x — the ladder
from one GPU through multi-node clusters — and the three algorithms
are re-timed at the canonical shape (m = 50k, n = 2.5k, k = 54):

- **QP3** pays one global synchronization per pivot (k per run);
- **CAQP3** pays one tree reduction per panel (k / b per run);
- **random sampling** pays syncs only inside the tiny local QRCP of
  the sampled matrix — which stays on one node, so its cost is flat.
"""

from repro.bench.reporting import format_table
from repro.obs import attach_series

SCALES = (1, 10, 100, 1000)

from repro.bench.ablations import comm_cost_ablation


def run_ablation():
    return comm_cost_ablation(SCALES)


def test_ablation_comm_cost(benchmark, print_table):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    first, last = rows[0], rows[-1]
    # Sampling flat; QP3 degrades by its k syncs; CAQP3 by k/b.
    assert last["sampling_q1"] == first["sampling_q1"]
    assert last["qp3"] > 20 * first["qp3"]
    # CAQP3's added latency cost is ~k/(k/b) = b times smaller than
    # QP3's (per-panel trees vs per-pivot syncs).
    qp3_added = last["qp3"] - first["qp3"]
    ca_added = last["caqp3"] - first["caqp3"]
    assert 15 < qp3_added / ca_added < 40

    # The paper's claim: the sampling speedup *increases* with the
    # communication cost.
    speedups = [r["qp3"] / r["sampling_q1"] for r in rows]
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] > 4      # single-GPU regime (Fig 11)
    assert speedups[-1] > 100   # high-latency regime

    # CAQP3 closes part of the gap but never beats sampling here.
    for r in rows:
        assert r["sampling_q1"] < r["caqp3"] < r["qp3"] * 1.01

    attach_series(benchmark, "ablation_comm_cost", points=[
        {"params": {"sync_scale": r["sync_scale"]},
         "metrics": {"qp3": float(r["qp3"]),
                     "caqp3": float(r["caqp3"]),
                     "sampling_q1": float(r["sampling_q1"]),
                     "speedup": float(r["qp3"] / r["sampling_q1"])}}
        for r in rows])
    print_table(format_table(
        ["sync_scale", "QP3 (s)", "CAQP3 (s)", "sampling q=1 (s)",
         "sampling speedup"],
        [[r["sync_scale"], r["qp3"], r["caqp3"], r["sampling_q1"],
          r["qp3"] / r["sampling_q1"]] for r in rows],
        title="Ablation: per-sync cost 1x-1000x (paper SS11: sampling's "
              "advantage grows with communication cost)"))

"""Figure 16: convergence of the adaptive-l error estimate on the
``exponent`` matrix (q = 0) for static increments l_inc = 8-64.

Paper shape: every run's estimate decays geometrically to the 1e-12
tolerance; the actual error (dashed line) sits one to two orders of
magnitude *below* the estimates (the estimator is a probabilistic
upper bound), and smaller l_inc gives slightly more pessimistic
estimates near the start.
"""

import numpy as np

from repro.bench import fig16_adaptive_convergence
from repro.bench.reporting import format_table
from repro.obs import attach_series


def test_fig16(benchmark, print_table):
    runs = benchmark.pedantic(
        fig16_adaptive_convergence,
        kwargs={"l_incs": (8, 16, 32, 64), "tolerance": 1e-12,
                "m": 4_000, "n": 500},
        rounds=1, iterations=1)

    finals = {}
    for run in runs:
        assert run["converged"], run["l_inc"]
        assert run["estimates"][-1] <= 1e-12
        # Geometric decay: estimates drop by >= 6 orders overall.
        assert run["estimates"][0] / run["estimates"][-1] > 1e6
        # Estimate >= actual error at (almost) every step: allow the
        # final machine-floor steps a factor.
        for est, act in zip(run["estimates"], run["actual_errors"]):
            assert est > 0.2 * act
        # Pessimism: the estimate typically sits >= 1 order above the
        # actual error mid-convergence.
        mid = len(run["estimates"]) // 2
        assert run["estimates"][mid] > run["actual_errors"][mid]
        finals[run["l_inc"]] = run["final_size"]

    # Larger static increments overshoot the needed subspace.
    assert finals[64] >= finals[8]

    attach_series(benchmark, "fig16", points=[
        {"params": {"l_inc": l_inc},
         "metrics": {"final_size": size}}
        for l_inc, size in sorted(finals.items())])
    rows = []
    for run in runs:
        for l, est, act in zip(run["sizes"], run["estimates"],
                               run["actual_errors"]):
            rows.append([run["l_inc"], l, est, act])
    print_table(format_table(
        ["l_inc", "l", "eps_tilde", "actual_error"], rows,
        title="Figure 16: adaptive convergence (exponent, q=0, "
              "tol=1e-12)"))

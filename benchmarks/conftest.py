"""Shared configuration for the figure-regeneration benches.

Every bench regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index): the pytest-benchmark timing measures *our*
harness, while the reproduced series (modeled GPU seconds, error norms,
speedups) are published through
:func:`repro.obs.artifact.attach_series` — which lands them on
``benchmark.extra_info`` (kept in the pytest-benchmark JSON) *and*
registers them for the session-level ``BENCH_*.json`` artifact — so the
paper-vs-measured comparison in EXPERIMENTS.md and the CI perf gate can
both be refreshed from a single ``pytest benchmarks/ --benchmark-only``
run.  Set ``REPRO_BENCH_ARTIFACT=<path>`` to write that artifact when
the session ends (``REPRO_BENCH_LABEL`` overrides its label).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.obs import artifact


def pytest_sessionstart(session):
    artifact.reset_attached()


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_ARTIFACT")
    if not path:
        return
    label = os.environ.get("REPRO_BENCH_LABEL", "session")
    doc = artifact.write_attached(path, label=label)
    if doc is not None:
        npts = sum(len(e["points"]) for e in doc["figures"].values())
        print(f"\n[repro.obs: wrote {path}: "
              f"{len(doc['figures'])} figure(s), {npts} point(s)]")


@pytest.fixture
def print_table(capsys):
    """Print a rendered table to the real terminal (bypassing capture)."""
    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
    return _print

"""Shared configuration for the figure-regeneration benches.

Every bench regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index): the pytest-benchmark timing measures *our*
harness, while the reproduced series (modeled GPU seconds, error norms,
speedups) are attached to ``benchmark.extra_info`` and printed so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a
single ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def print_table(capsys):
    """Print a rendered table to the real terminal (bypassing capture)."""
    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
    return _print

"""Figure 9: CholQR vs HHQR on short-wide ``64 x n`` blocks
(n = 2 500 - 50 000).

Paper: CholQR reaches ~150 Gflop/s; speedups over HHQR up to 106.4x
with an average of 72.9x.
"""

import numpy as np

from repro.bench import fig09_shortwide_qr, format_series
from repro.obs import attach_series


def test_fig09(benchmark, print_table):
    data = benchmark.pedantic(fig09_shortwide_qr, rounds=1, iterations=1)
    cholqr = np.array(data["cholqr"])
    hhqr = np.array(data["hhqr"])

    assert all(a < b for a, b in zip(cholqr, cholqr[1:]))
    assert 120 < cholqr[-1] < 200          # top of the paper's axis
    ratios = cholqr / hhqr
    assert 50 < ratios.mean() < 95          # paper avg 72.9x
    assert 80 < ratios.max() < 130          # paper max 106.4x

    attach_series(benchmark, "fig09", series=data, x_name="n", metrics={
        "cholqr_over_hhqr_mean": float(ratios.mean()),
        "cholqr_over_hhqr_max": float(ratios.max())})
    print_table(format_series(
        data["n"], {"cholqr": data["cholqr"], "hhqr": data["hhqr"],
                    "speedup": ratios.tolist()},
        x_name="n",
        title="Figure 9: short-wide QR (m=64), Gflop/s "
              "(paper: avg 72.9x, max 106.4x)"))

"""Figure 15: strong scaling over 1-3 simulated GPUs
((m; n) = (150 000; 2 500), (l; p; q) = (64; 10; 1)).

Paper: overall speedups of ~2.4x (2 GPUs) and ~3.8x (3 GPUs); the GEMM
scales superlinearly (2.8x / 5.1x) because each device's local panel
gets shorter (440 -> 630 -> 760 Gflop/s); inter-GPU communication is
only 1.6 % (2 GPUs) / 4.3 % (3 GPUs) of total time thanks to the
communication-optimal CholQR.

Rendered as an overlap ablation: the stream-scheduled pipelined
runtime (``overlap=on``, the paper's implementation) against the
serial-sum model (``overlap=off``); on must beat off at every ng with
identical phase breakdowns.
"""

from repro.bench import format_breakdown_table
from repro.bench.figures import fig15_overlap_ablation
from repro.gpu.kernels import KernelModel
from repro.obs import attach_series

PHASES = ("prng", "sampling", "gemm_iter", "orth_iter", "qrcp", "qr",
          "comms")


def test_fig15(benchmark, print_table):
    points = benchmark.pedantic(fig15_overlap_ablation, rounds=1,
                                iterations=1)
    on, off = points[:3], points[3:]
    assert [p["ng"] for p in on] == [1, 2, 3]
    assert [p["ng"] for p in off] == [1, 2, 3]
    assert all(p["overlap"] == "on" for p in on)
    assert all(p["overlap"] == "off" for p in off)

    # Overall speedups in the paper's band (pipelined runtime).
    assert 2.0 < on[1]["speedup"] < 3.2          # paper 2.4x
    assert 3.2 < on[2]["speedup"] < 4.8          # paper 3.8x

    # Communication fractions small and growing with ng.
    assert 0.005 < on[1]["comms_fraction"] < 0.04   # paper 1.6 %
    assert 0.015 < on[2]["comms_fraction"] < 0.08   # paper 4.3 %
    assert on[2]["comms_fraction"] > on[1]["comms_fraction"]

    # The overlap ablation: the stream schedule never loses to the
    # serial sum, and the phase breakdowns are identical (overlap only
    # moves work in time, it does not change what is charged).
    for p_on, p_off in zip(on, off):
        assert p_on["total"] <= p_off["total"] + 1e-12
        assert set(p_on["breakdown"]) == set(p_off["breakdown"])
        for phase, secs in p_on["breakdown"].items():
            # Chunked submissions sum in a different order; identical
            # up to floating-point association.
            assert abs(secs - p_off["breakdown"][phase]) < 1e-9
    assert on[2]["total"] < off[2]["total"]      # real overlap at ng=3

    # Superlinear GEMM mechanism: per-device rate rises as the local
    # panel shrinks (paper: 440/630/760 Gflop/s).
    km = KernelModel()
    rates = []
    for ng in (1, 2, 3):
        local = -(-150_000 // ng)
        flops = 2.0 * 64 * local * 2_500
        rates.append(flops / (km.gemm_seconds(64, 2_500, local) * 1e9))
    assert rates[0] < rates[1] < rates[2]
    gemm_speedup_3 = 3 * rates[2] / rates[0]
    assert 4.0 < gemm_speedup_3 < 6.0            # paper 5.1x

    attach_series(benchmark, "fig15", breakdown_points=points, metrics={
        "speedup_2gpu": on[1]["speedup"],
        "speedup_3gpu": on[2]["speedup"],
        "comms_2gpu": on[1]["comms_fraction"],
        "comms_3gpu": on[2]["comms_fraction"],
        "speedup_3gpu_serial": off[2]["speedup"],
        "overlap_gain_3gpu": off[2]["total"] / on[2]["total"],
        "gemm_rates": rates})
    print_table(format_breakdown_table(
        points, "ng", PHASES, extra=("speedup", "comms_fraction"),
        title="Figure 15: strong scaling (paper: 2.4x/3.8x, comms "
              "1.6 %/4.3 %), overlap on then off"))

"""HODLR compression and direct solve using randomized sampling.

A HODLR (Hierarchically Off-Diagonal Low-Rank) matrix partitions an
``n x n`` matrix recursively::

    A = [[ A_11        U_1 V_2^T ]
         [ U_2 V_1^T   A_22      ]]

where the diagonal blocks recurse until a dense leaf and each
off-diagonal block is stored in factored low-rank form.  The low-rank
factors come from :func:`repro.core.svd.randomized_svd` — the paper's
randomized kernel — so the compression inherits its cost profile
(GEMM-dominated sampling + small factorizations).

Solving uses the standard HODLR recursion: with ``D = diag(A_11,
A_22)`` and the off-diagonal part written as ``U~ V~^T``,

    ``A = D (I + D^{-1} U~ V~^T)``

so ``A^{-1} b = (I + W~ V~^T)^{-1} D^{-1} b`` with ``W~ = D^{-1} U~``
computed by two recursive solves, and the outer inverse applied through
the Sherman-Morrison-Woodbury identity against a ``2r x 2r`` capacitance
matrix.  Total work is ``O(n log^2 n r^2)``-class versus the dense
``O(n^3)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import SamplingConfig
from ..backends import hostmath
from ..core.svd import randomized_svd
from ..errors import ShapeError
from ..gpu.device import NumpyExecutor

__all__ = ["HODLRMatrix", "HODLRStats", "build_hodlr"]


@dataclass
class HODLRStats:
    """Compression statistics of a built HODLR matrix."""

    n: int
    levels: int
    leaf_count: int
    max_rank: int
    stored_entries: int

    @property
    def dense_entries(self) -> int:
        return self.n * self.n

    @property
    def compression_ratio(self) -> float:
        """Dense entries over stored entries (> 1 means compressed)."""
        return self.dense_entries / max(1, self.stored_entries)


class _Node:
    """One node of the HODLR tree."""

    __slots__ = ("n", "dense", "left", "right", "u1", "v2t", "u2", "v1t")

    def __init__(self, n: int):
        self.n = n
        self.dense: Optional[np.ndarray] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.u1 = self.v2t = self.u2 = self.v1t = None

    @property
    def is_leaf(self) -> bool:
        return self.dense is not None


def _compress_block(block: np.ndarray, rank: int,
                    config: SamplingConfig,
                    executor: Optional[NumpyExecutor]):
    """Low-rank factors (U, V^T) of an off-diagonal block via the
    randomized SVD; falls back to the exact SVD for tiny blocks where
    the sampling overhead is silly."""
    m, n = block.shape
    r = min(rank, m, n)
    if r >= min(m, n) or min(m, n) <= 2 * config.oversampling:
        u, s, vt = hostmath.svd(block, full_matrices=False)
        return u[:, :r] * s[:r], vt[:r, :]
    cfg = SamplingConfig(rank=r,
                         oversampling=min(config.oversampling,
                                          max(0, min(m, n) - r)),
                         power_iterations=config.power_iterations,
                         sampler=config.sampler, orth=config.orth,
                         seed=config.seed)
    f = randomized_svd(block, cfg, executor=executor)
    return f.u * f.s, f.vt


def _build(a: np.ndarray, leaf_size: int, rank: int,
           config: SamplingConfig,
           executor: Optional[NumpyExecutor]) -> _Node:
    n = a.shape[0]
    node = _Node(n)
    if n <= leaf_size:
        node.dense = np.array(a, copy=True)
        return node
    h = n // 2
    node.u1, node.v2t = _compress_block(a[:h, h:], rank, config, executor)
    node.u2, node.v1t = _compress_block(a[h:, :h], rank, config, executor)
    node.left = _build(a[:h, :h], leaf_size, rank, config, executor)
    node.right = _build(a[h:, h:], leaf_size, rank, config, executor)
    return node


def _matvec(node: _Node, x: np.ndarray) -> np.ndarray:
    if node.is_leaf:
        return node.dense @ x
    h = node.left.n
    top = _matvec(node.left, x[:h]) + node.u1 @ (node.v2t @ x[h:])
    bot = node.u2 @ (node.v1t @ x[:h]) + _matvec(node.right, x[h:])
    return np.concatenate([top, bot], axis=0)


def _solve(node: _Node, b: np.ndarray) -> np.ndarray:
    """Recursive HODLR solve with multiple right-hand sides."""
    if node.is_leaf:
        return hostmath.solve(node.dense, b)
    h = node.left.n
    r1 = node.u1.shape[1]
    r2 = node.u2.shape[1]
    # Solve the diagonal blocks against [b_i | U_i] in one pass.
    top = _solve(node.left, np.hstack([b[:h], node.u1]))
    bot = _solve(node.right, np.hstack([b[h:], node.u2]))
    nrhs = b.shape[1]
    y1, w1 = top[:, :nrhs], top[:, nrhs:]
    y2, w2 = bot[:, :nrhs], bot[:, nrhs:]
    # Capacitance system:  (I + V~^T W~) z = V~^T y, with the
    # anti-diagonal coupling V~^T = [[0, V2^T], [V1^T, 0]].
    vy = np.vstack([node.v2t @ y2, node.v1t @ y1])
    cap = np.eye(r1 + r2)
    cap[:r1, r1:] += node.v2t @ w2
    cap[r1:, :r1] += node.v1t @ w1
    z = hostmath.solve(cap, vy)
    x1 = y1 - w1 @ z[:r1]
    x2 = y2 - w2 @ z[r1:]
    return np.vstack([x1, x2])


def _collect_stats(node: _Node, levels: int = 0):
    if node.is_leaf:
        return levels, 1, 0, node.dense.size
    l1, c1, r1, s1 = _collect_stats(node.left, levels + 1)
    l2, c2, r2, s2 = _collect_stats(node.right, levels + 1)
    stored = (node.u1.size + node.v2t.size + node.u2.size
              + node.v1t.size + s1 + s2)
    rank = max(r1, r2, node.u1.shape[1], node.u2.shape[1])
    return max(l1, l2), c1 + c2, rank, stored


class HODLRMatrix:
    """A HODLR-compressed square matrix with matvec and direct solve.

    Build with :func:`build_hodlr`.
    """

    def __init__(self, root: _Node):
        self._root = root
        self.n = root.n

    @property
    def shape(self):
        return (self.n, self.n)

    def stats(self) -> HODLRStats:
        """Compression statistics (levels, max off-diagonal rank,
        stored entries vs dense)."""
        levels, leaves, rank, stored = _collect_stats(self._root)
        return HODLRStats(n=self.n, levels=levels, leaf_count=leaves,
                          max_rank=rank, stored_entries=stored)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a vector or ``n x k`` block."""
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != self.n:
            raise ShapeError(f"x has {x.shape[0]} rows, expected {self.n}")
        y = _matvec(self._root, x)
        return y[:, 0] if squeeze else y

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (vector or multiple right-hand sides)."""
        b = np.asarray(b, dtype=np.float64)
        squeeze = b.ndim == 1
        if squeeze:
            b = b[:, None]
        if b.shape[0] != self.n:
            raise ShapeError(f"b has {b.shape[0]} rows, expected {self.n}")
        x = _solve(self._root, b)
        return x[:, 0] if squeeze else x

    def to_dense(self) -> np.ndarray:
        """Materialize the compressed operator (testing/debugging)."""
        return self.matvec(np.eye(self.n))


def build_hodlr(a: np.ndarray, leaf_size: int = 64, rank: int = 16,
                config: Optional[SamplingConfig] = None,
                executor: Optional[NumpyExecutor] = None) -> HODLRMatrix:
    """Compress a dense square matrix into HODLR form.

    Parameters
    ----------
    a:
        Dense ``n x n`` matrix whose off-diagonal blocks are
        numerically low-rank (kernel matrices, discretized integral
        operators, banded-plus-smooth operators...).
    leaf_size:
        Diagonal blocks at or below this size stay dense.
    rank:
        Off-diagonal compression rank.
    config:
        Sampling parameters for the randomized compression (rank is
        overridden per block); defaults to ``q = 1`` power iteration,
        which keeps the compression error near ``sigma_{r+1}`` of each
        block.
    executor:
        Executor used for the randomized compressions (a
        :class:`repro.gpu.GPUExecutor` accumulates the modeled GPU cost
        of the whole construction).

    Examples
    --------
    >>> import numpy as np
    >>> x = np.linspace(0, 1, 256)
    >>> a = 1.0 / (1.0 + np.abs(x[:, None] - x[None, :])) + np.eye(256)
    >>> h = build_hodlr(a, leaf_size=32, rank=12)
    >>> rhs = np.ones(256)
    >>> err = np.linalg.norm(a @ h.solve(rhs) - rhs)
    >>> bool(err < 1e-6)
    True
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"HODLR needs a square matrix, got {a.shape}")
    if leaf_size < 2:
        raise ShapeError(f"leaf_size must be >= 2, got {leaf_size}")
    if rank < 1:
        raise ShapeError(f"rank must be >= 1, got {rank}")
    cfg = config if config is not None else SamplingConfig(
        rank=rank, oversampling=10, power_iterations=1, seed=0)
    root = _build(a, leaf_size, rank, cfg, executor)
    return HODLRMatrix(root)

"""Hierarchical low-rank solver built on the randomized kernel.

The paper's conclusion plans to "extend our study by integrating our
GPU implementation of the randomized algorithm" into the HSS solver of
its reference [22] (Yamazaki-Tomov-Dongarra) / [7] (Ghysels et al.).
This package provides that integration in its weak-admissibility form
(HODLR): a dense matrix is split recursively into 2 x 2 blocks whose
off-diagonal blocks are compressed to low rank **by the package's own
randomized sampling kernel**, and linear systems are solved directly by
recursive block elimination with Sherman-Morrison-Woodbury updates.
"""

from .hodlr import HODLRMatrix, HODLRStats, build_hodlr

__all__ = ["HODLRMatrix", "HODLRStats", "build_hodlr"]

"""Experiment harness: drivers that regenerate every table and figure
of the paper's evaluation (Sections 6-10).

Each ``figNN_*`` function in :mod:`repro.bench.figures` returns plain
dict/rows data; :mod:`repro.bench.reporting` renders the paper-style
text tables; ``benchmarks/`` wraps the drivers in pytest-benchmark
targets; ``python -m repro.cli`` exposes them on the command line.
"""

from .harness import (
    FixedRankTiming,
    timed_fixed_rank,
    qp3_baseline_seconds,
    scale_rows,
    full_scale,
)
from .figures import (
    table1_matrices,
    fig06_accuracy,
    fig07_tallskinny_qr,
    fig08_sampling_kernels,
    fig09_shortwide_qr,
    fig10_estimated_gflops,
    fig11_time_vs_rows,
    fig12_time_vs_cols,
    fig13_time_vs_rank,
    fig14_time_vs_iterations,
    fig15_multigpu_scaling,
    fig16_adaptive_convergence,
    fig17_adaptive_time,
    fig18_gemm_small_l,
)
from .reporting import format_table, format_breakdown_table, format_series

__all__ = [
    "FixedRankTiming",
    "timed_fixed_rank",
    "qp3_baseline_seconds",
    "scale_rows",
    "full_scale",
    "table1_matrices",
    "fig06_accuracy",
    "fig07_tallskinny_qr",
    "fig08_sampling_kernels",
    "fig09_shortwide_qr",
    "fig10_estimated_gflops",
    "fig11_time_vs_rows",
    "fig12_time_vs_cols",
    "fig13_time_vs_rank",
    "fig14_time_vs_iterations",
    "fig15_multigpu_scaling",
    "fig16_adaptive_convergence",
    "fig17_adaptive_time",
    "fig18_gemm_small_l",
    "format_table",
    "format_breakdown_table",
    "format_series",
]

"""Ablation experiment drivers.

Each function runs one of the design-choice studies described in
DESIGN.md's experiment index and returns plain rows; the
``benchmarks/test_ablation_*.py`` files assert on them and
``python -m repro.cli ablation-...`` prints them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from ..config import AdaptiveConfig, SamplingConfig
from ..core.adaptive import adaptive_sampling
from ..core.random_sampling import random_sampling
from ..gpu.cluster import ClusterExecutor, NetworkSpec, cluster_qp3_seconds
from ..gpu.device import GPUExecutor, SymArray
from ..gpu.kernels import KernelModel
from ..gpu.specs import KEPLER_K40C
from ..matrices.synthetic import exponent_matrix, power_matrix

__all__ = [
    "orthogonalization_ablation",
    "oversampling_ablation",
    "sampler_ablation",
    "comm_cost_ablation",
    "fixed_accuracy_ablation",
    "cluster_scaling_ablation",
    "cluster_latency_ablation",
]

ORTH_SCHEMES = ("cholqr", "cholqr2", "mixed_cholqr", "tsqr",
                "householder", "cgs", "mgs")


def orthogonalization_ablation(schemes=ORTH_SCHEMES) -> List[Dict]:
    """Error + modeled time of the fixed-rank algorithm per
    orthogonalization scheme (the Section 6 design choice)."""
    a = exponent_matrix(3_000, 400, seed=40)
    rows = []
    for scheme in schemes:
        cfg = SamplingConfig(rank=50, oversampling=10, power_iterations=2,
                             orth=scheme, seed=41)
        err = random_sampling(a, cfg).residual(a)
        ex = GPUExecutor(seed=41)
        random_sampling(SymArray((50_000, 2_500)),
                        SamplingConfig(rank=54, oversampling=10,
                                       power_iterations=2, orth=scheme,
                                       seed=41), executor=ex)
        rows.append({"scheme": scheme, "error": err,
                     "modeled_s": ex.seconds})
    return rows


def oversampling_ablation(ps=(0, 2, 5, 10, 20, 50),
                          trials: int = 5) -> List[Dict]:
    """Error (median over seeds) and modeled cost per oversampling p
    (the Section 7 text claims)."""
    a = power_matrix(4_000, 400, seed=50)
    rows = []
    for p in ps:
        errs = [random_sampling(
            a, SamplingConfig(rank=50, oversampling=p, seed=51 + t)
        ).residual(a) for t in range(trials)]
        ex = GPUExecutor(seed=0)
        random_sampling(SymArray((50_000, 2_500)),
                        SamplingConfig(rank=50, oversampling=p,
                                       power_iterations=1, seed=0),
                        executor=ex)
        rows.append({"p": p, "error": float(np.median(errs)),
                     "modeled_s": ex.seconds})
    return rows


def sampler_ablation() -> List[Dict]:
    """Gaussian vs FFT sampling: error parity and the modeled-time
    crossover (Sections 4/7/8)."""
    a = exponent_matrix(2_048, 300, seed=60)
    rows = []
    for sampler in ("gaussian", "fft"):
        err = random_sampling(
            a, SamplingConfig(rank=50, sampler=sampler, seed=61)
        ).residual(a)
        times = {}
        for l in (64, 320):
            ex = GPUExecutor(seed=0)
            random_sampling(SymArray((50_000, 2_500)),
                            SamplingConfig(rank=l - 10, oversampling=10,
                                           sampler=sampler, seed=0),
                            executor=ex)
            times[l] = ex.seconds
        rows.append({"sampler": sampler, "error": err,
                     "modeled_s_l64": times[64],
                     "modeled_s_l320": times[320]})
    return rows


def comm_cost_ablation(scales=(1, 10, 100, 1000)) -> List[Dict]:
    """QP3 / CAQP3 / sampling times as the per-sync cost scales up
    (the Section 11 claim + the ref [4] comparison)."""
    m, n, k = 50_000, 2_500, 54
    ex = GPUExecutor(seed=0)
    random_sampling(SymArray((m, n)),
                    SamplingConfig(rank=k, oversampling=10,
                                   power_iterations=1, seed=0),
                    executor=ex)
    t_rs = ex.seconds
    rows = []
    for scale in scales:
        spec = dataclasses.replace(KEPLER_K40C,
                                   pivot_sync_s=scale * 180e-6)
        km = KernelModel(spec)
        rows.append({"sync_scale": scale,
                     "qp3": km.qp3_seconds(m, n, k),
                     "caqp3": km.caqp3_seconds(m, n, k),
                     "sampling_q1": t_rs})
    return rows


def fixed_accuracy_ablation(tols=(1e-4, 1e-7, 1e-10),
                            m: int = 4_000, n: int = 500) -> List[Dict]:
    """Tolerance-truncated QP3 vs adaptive sampling on the
    fixed-accuracy problem (the Section 10 baseline comparison)."""
    from ..qr.qrcp import qp3_blocked
    a = exponent_matrix(m, n, seed=70)
    km = KernelModel()
    rows = []
    for tol in tols:
        det = qp3_blocked(a, tolerance=tol)
        ex = GPUExecutor(seed=71)
        res = adaptive_sampling(a, AdaptiveConfig(tolerance=tol,
                                                  l_init=8, l_inc=16,
                                                  step_rule="interpolate",
                                                  seed=71), executor=ex)
        rows.append({
            "tol": tol,
            "qp3_rank": det.k,
            "qp3_err": det.residual(a, relative=False),
            "qp3_modeled_s": km.qp3_seconds(50_000, 2_500,
                                            max(det.k, 1)),
            "adaptive_l": res.subspace_size,
            "adaptive_err": res.actual_error(a),
            "adaptive_modeled_s": _modeled_adaptive_seconds(
                res.subspace_size),
        })
    return rows


def _modeled_adaptive_seconds(l: int, inc: int = 16) -> float:
    """Modeled cost of adaptively sampling an l-dimensional subspace at
    the canonical 50k x 2.5k shape (q = 0 loop)."""
    km = KernelModel()
    t = 0.0
    steps = max(1, -(-l // inc))
    for i in range(steps):
        t += km.curand_seconds(inc * 50_000)
        t += km.gemm_seconds(inc, 2_500, 50_000)
        t += km.block_orth_seconds(inc * i + 1, inc, 2_500)
        t += km.cholqr_seconds(inc, 2_500, reorth=True)
        t += 2 * km.gemm_seconds(inc, inc * i + 1, 2_500)
    return t


def cluster_scaling_ablation(node_counts=(1, 2, 4, 8, 16),
                             m: int = 600_000, n: int = 2_500,
                             k: int = 54) -> Dict[int, float]:
    """Modeled sampling seconds per node count (3 GPUs each)."""
    out = {}
    for nodes in node_counts:
        ex = ClusterExecutor(nodes=nodes, gpus_per_node=3, seed=0)
        cfg = SamplingConfig(rank=k, oversampling=10, power_iterations=1,
                             seed=0)
        out[nodes] = random_sampling(SymArray((m, n)), cfg,
                                     executor=ex).seconds
    return out


def cluster_latency_ablation(latencies=(3e-6, 30e-6, 300e-6, 3e-3),
                             ks=(54, 502), nodes: int = 8,
                             m: int = 600_000, n: int = 2_500
                             ) -> List[Dict]:
    """Sampling-vs-distributed-QP3 speedup over interconnect latency."""
    rows = []
    for lat in latencies:
        net = NetworkSpec(bandwidth_gbs=5.0, latency_s=lat)
        for k in ks:
            ex = ClusterExecutor(nodes=nodes, gpus_per_node=3,
                                 network=net, seed=0)
            cfg = SamplingConfig(rank=k, oversampling=10,
                                 power_iterations=1, seed=0)
            rs = random_sampling(SymArray((m, n)), cfg,
                                 executor=ex).seconds
            qp3 = cluster_qp3_seconds(m, n, k, nodes=nodes,
                                      gpus_per_node=3, network=net)
            rows.append({"latency": lat, "k": k, "sampling": rs,
                         "qp3": qp3, "speedup": qp3 / rs})
    return rows

"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation; each returns
plain data (dicts/lists) that the benches assert on and the CLI prints.
Default sizes are laptop-scale (see the per-function docstrings);
``REPRO_FULL_SCALE=1`` restores the paper's sizes for the numerics
experiments.  Performance experiments always run at paper scale — they
use the symbolic device, so size costs nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import AdaptiveConfig, SamplingConfig
from ..backends import hostmath
from ..core.adaptive import adaptive_sampling
from ..core.random_sampling import random_sampling
from ..errors import ConvergenceError
from ..gpu.device import GPUExecutor
from ..gpu.kernels import KernelModel, qr_flops
from ..gpu.specs import GPUSpec, KEPLER_K40C
from ..matrices.registry import get_matrix, table1_row, TABLE1_SPECS
from ..matrices.synthetic import exponent_matrix
from ..perfmodel.estimate import estimated_gflops_sweep
from ..qr.qrcp import qp3_blocked
from .harness import (FixedRankTiming, qp3_baseline_seconds, scale_rows,
                      timed_fixed_rank)
from .sweep import run_sweep, timed_point

__all__ = [
    "table1_matrices",
    "fig06_accuracy",
    "fig07_tallskinny_qr",
    "fig08_sampling_kernels",
    "fig09_shortwide_qr",
    "fig10_estimated_gflops",
    "fig11_time_vs_rows",
    "fig12_time_vs_cols",
    "fig13_time_vs_rank",
    "fig14_time_vs_iterations",
    "fig15_multigpu_scaling",
    "fig15_overlap_ablation",
    "fig16_adaptive_convergence",
    "fig17_adaptive_time",
    "fig18_gemm_small_l",
]

#: Default sweep grids (the paper's axes).
DEFAULT_MS = (2_500, 5_000, 10_000, 20_000, 30_000, 40_000, 50_000)
DEFAULT_NS = (500, 1_000, 2_000, 3_000, 4_000, 5_000)
DEFAULT_LS = (32, 64, 128, 192, 256, 320, 384, 448, 512)


# ----------------------------------------------------------------------
# Table 1 and Figure 6 (numerics)
# ----------------------------------------------------------------------
def table1_matrices(m: Optional[int] = None, n: Optional[int] = None,
                    k: int = 50, seed: int = 0) -> List[Dict]:
    """Regenerate Table 1: sigma_0, sigma_{k+1}, kappa for the three
    test matrices (default reduced m; the spectra are m-independent for
    the synthetic pair and shape-stable for hapmap)."""
    rows = []
    for name, spec in TABLE1_SPECS.items():
        mm = m if m is not None else scale_rows(spec.paper_shape[0], 8_000)
        nn = n if n is not None else spec.paper_shape[1]
        a = get_matrix(name, m=mm, n=nn, seed=seed)
        stats = table1_row(a, k=k)
        rows.append({"name": name, "m": mm, "n": nn, "k": k, **stats})
    return rows


def fig06_accuracy(m: Optional[int] = None, n: int = 500, k: int = 50,
                   p: int = 10, qs: Sequence[int] = (0, 1, 2),
                   matrices: Sequence[str] = ("power", "exponent", "hapmap"),
                   include_p0: bool = False,
                   include_fft: bool = False,
                   seed: int = 0) -> List[Dict]:
    """Figure 6: approximation error ``||AP - QR|| / ||A||`` of QP3 vs
    random sampling with q = 0, 1, 2 power iterations.

    Also covers the Section 7 text claims when requested: ``p = 0``
    loses about an order of magnitude (``include_p0``), and FFT
    sampling matches the Gaussian error order (``include_fft``).
    """
    rows = []
    for name in matrices:
        mm = m if m is not None else scale_rows(
            TABLE1_SPECS[name].paper_shape[0], 10_000)
        a = get_matrix(name, m=mm, n=n, seed=seed)
        row: Dict = {"name": name, "m": mm, "n": n}
        row["qp3"] = qp3_blocked(a, k=k).residual(a)
        for q in qs:
            cfg = SamplingConfig(rank=k, oversampling=p, power_iterations=q,
                                 seed=seed + 1)
            row[f"q{q}"] = random_sampling(a, cfg).residual(a)
        if include_p0:
            cfg = SamplingConfig(rank=k, oversampling=0, power_iterations=0,
                                 seed=seed + 1)
            row["q0_p0"] = random_sampling(a, cfg).residual(a)
        if include_fft:
            cfg = SamplingConfig(rank=k, oversampling=p, power_iterations=0,
                                 sampler="fft", seed=seed + 1)
            row["q0_fft"] = random_sampling(a, cfg).residual(a)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figures 7-9: kernel performance (modeled rates)
# ----------------------------------------------------------------------
def fig07_tallskinny_qr(ms: Sequence[int] = DEFAULT_MS, n: int = 64,
                        spec: GPUSpec = KEPLER_K40C) -> Dict[str, List[float]]:
    """Figure 7: Gflop/s of QP3, HHQR, CholQR, CGS, MGS on tall-skinny
    ``m x 64`` panels (modeled kernel rates)."""
    km = KernelModel(spec)
    out: Dict[str, List[float]] = {"m": [float(v) for v in ms]}
    flops = [qr_flops(m, n) for m in ms]
    out["cholqr"] = [f / (km.cholqr_seconds(m, n) * 1e9)
                     for m, f in zip(ms, flops)]
    out["cgs"] = [f / (km.cgs_seconds(m, n) * 1e9)
                  for m, f in zip(ms, flops)]
    out["hhqr"] = [f / (km.hhqr_seconds(m, n) * 1e9)
                   for m, f in zip(ms, flops)]
    out["mgs"] = [f / (km.mgs_seconds(m, n) * 1e9)
                  for m, f in zip(ms, flops)]
    out["qp3"] = [f / (km.qp3_seconds(m, n, n) * 1e9)
                  for m, f in zip(ms, flops)]
    return out


def fig08_sampling_kernels(ls: Sequence[int] = DEFAULT_LS, m: int = 50_000,
                           n: int = 2_500, axis: str = "row",
                           spec: GPUSpec = KEPLER_K40C
                           ) -> Dict[str, List[float]]:
    """Figure 8: pruned Gaussian GEMM vs full FFT vs GEMV sampling
    rates over the subspace size ``l``, plus the hardware peaks.

    ``fft_effective`` is the paper's ratio: pruned-Gaussian flops over
    the full-FFT time — the curves cross where FFT becomes faster.
    """
    km = KernelModel(spec)
    out: Dict[str, List[float]] = {"l": [float(v) for v in ls]}
    gemm, gemv, fft, fft_eff = [], [], [], []
    for l in ls:
        if axis == "row":
            g_flops = 2.0 * l * m * n
            g_secs = km.gemm_seconds(l, n, m)
            f_secs = km.fft_sampling_seconds(m, n, axis="row")
            mp = km._pad_pow2(m)
            f_flops = 5.0 * mp * np.log2(mp) * n
        else:
            g_flops = 2.0 * l * m * n
            g_secs = km.gemm_seconds(l, m, n)
            f_secs = km.fft_sampling_seconds(m, n, axis="col")
            np2 = km._pad_pow2(n)
            f_flops = 5.0 * np2 * np.log2(np2) * m
        gemm.append(g_flops / (g_secs * 1e9))
        gemv.append(km.gemv_gflops(m, n))
        fft.append(f_flops / (f_secs * 1e9))
        fft_eff.append(g_flops / (f_secs * 1e9))
    out["gemm"] = gemm
    out["gemv"] = gemv
    out["fft"] = fft
    out["fft_effective"] = fft_eff
    out["peak_compute"] = [spec.fp64_peak_gflops] * len(ls)
    # Memory-peak line at blocksize 512 (the figure's annotation):
    # 2*512 flops per 8*512 bytes streamed -> BW/4 * 512/... the paper
    # draws flops at full-bandwidth streaming of the large operand.
    out["peak_memory"] = [spec.mem_bw_gbs / 4.0 * l for l in ls]
    return out


def fig09_shortwide_qr(ns: Sequence[int] = DEFAULT_MS, m: int = 64,
                       spec: GPUSpec = KEPLER_K40C
                       ) -> Dict[str, List[float]]:
    """Figure 9: CholQR vs HHQR on short-wide ``64 x n`` blocks."""
    km = KernelModel(spec)
    out: Dict[str, List[float]] = {"n": [float(v) for v in ns]}
    flops = [qr_flops(n, m) for n in ns]
    out["cholqr"] = [f / (km.cholqr_seconds(m, n) * 1e9)
                     for n, f in zip(ns, flops)]
    out["hhqr"] = [f / (km.hhqr_seconds(m, n) * 1e9)
                   for n, f in zip(ns, flops)]
    return out


def fig10_estimated_gflops(ms: Sequence[int] = DEFAULT_MS, n: int = 2_500,
                           l: int = 64, k: int = 54,
                           spec: GPUSpec = KEPLER_K40C
                           ) -> Dict[str, List[float]]:
    """Figure 10: estimated Gflop/s of random sampling (q = 0, 1) and
    truncated QP3 from the kernel models alone."""
    return estimated_gflops_sweep(ms, n=n, l=l, k=k, qs=(0, 1), spec=spec)


# ----------------------------------------------------------------------
# Figures 11-15: end-to-end modeled time (symbolic runs)
# ----------------------------------------------------------------------
def _point(t: FixedRankTiming, **extra) -> Dict:
    d = {"m": t.m, "n": t.n, "k": t.k, "l": t.sample_size, "q": t.q,
         "ng": t.ng, "total": t.total, "breakdown": t.breakdown,
         "step1_fraction": t.step1_fraction, "gflops": t.gflops,
         "peak_memory_bytes": t.peak_memory_bytes}
    d.update(extra)
    return d


def fig11_time_vs_rows(ms: Sequence[int] = DEFAULT_MS, n: int = 2_500,
                       k: int = 54, p: int = 10, q: int = 1,
                       spec: GPUSpec = KEPLER_K40C) -> List[Dict]:
    """Figure 11: phase-stacked random-sampling time and the QP3 line
    over the row count (n = 2 500, (k; p; q) = (54; 10; 1))."""
    grid = [{"m": m, "n": n, "k": k, "p": p, "q": q, "spec": spec}
            for m in ms]
    points = []
    for pt, t in zip(grid, run_sweep(timed_point, grid)):
        qp3 = qp3_baseline_seconds(pt["m"], n, k=k, spec=spec)
        points.append(_point(t, qp3=qp3, speedup=qp3 / t.total))
    return points


def fig12_time_vs_cols(ns: Sequence[int] = DEFAULT_NS, m: int = 50_000,
                       k: int = 54, p: int = 10, q: int = 1,
                       spec: GPUSpec = KEPLER_K40C) -> List[Dict]:
    """Figure 12: time over the column count (m = 50 000)."""
    grid = [{"m": m, "n": n, "k": k, "p": p, "q": q, "spec": spec}
            for n in ns]
    points = []
    for pt, t in zip(grid, run_sweep(timed_point, grid)):
        qp3 = qp3_baseline_seconds(m, pt["n"], k=k, spec=spec)
        points.append(_point(t, qp3=qp3, speedup=qp3 / t.total))
    return points


def fig13_time_vs_rank(ls: Sequence[int] = DEFAULT_LS, m: int = 50_000,
                       n: int = 2_500, p: int = 10, q: int = 1,
                       spec: GPUSpec = KEPLER_K40C) -> List[Dict]:
    """Figure 13: time over the subspace size ``l`` (k = l - p)."""
    grid = [{"m": m, "n": n, "k": l - p, "p": p, "q": q, "spec": spec}
            for l in ls]
    points = []
    for pt, t in zip(grid, run_sweep(timed_point, grid)):
        qp3 = qp3_baseline_seconds(m, n, k=pt["k"], spec=spec)
        points.append(_point(t, qp3=qp3, speedup=qp3 / t.total))
    return points


def fig14_time_vs_iterations(ms: Sequence[int] = DEFAULT_MS,
                             qs: Sequence[int] = (0, 2, 4, 6, 8, 10, 12),
                             n: int = 2_500, k: int = 54, p: int = 10,
                             spec: GPUSpec = KEPLER_K40C
                             ) -> Dict[str, List[float]]:
    """Figure 14: random-sampling time per q = 0..12 plus the QP3 line,
    over the row count."""
    out: Dict[str, List[float]] = {"m": [float(v) for v in ms]}
    for q in qs:
        out[f"q{q}"] = [timed_fixed_rank(m, n, k=k, p=p, q=q,
                                         spec=spec).total for m in ms]
    out["qp3"] = [qp3_baseline_seconds(m, n, k=k, spec=spec) for m in ms]
    return out


def fig15_multigpu_scaling(ngs: Sequence[int] = (1, 2, 3), m: int = 150_000,
                           n: int = 2_500, k: int = 54, p: int = 10,
                           q: int = 1, spec: GPUSpec = KEPLER_K40C,
                           overlap: bool = True) -> List[Dict]:
    """Figure 15: strong scaling over 1-3 GPUs at (m; n) = (150k; 2.5k),
    with the comms phase and the speedup over one GPU.

    ``overlap`` selects the stream schedule: ``True`` is the paper's
    pipelined runtime (compute hides most of the PCIe reduction),
    ``False`` the serial-sum ablation; points are tagged with the
    setting so both series coexist in one artifact.
    """
    grid = [{"m": m, "n": n, "k": k, "p": p, "q": q, "ng": ng,
             "spec": spec, "overlap": overlap} for ng in ngs]
    points = []
    base_total = None
    for t in run_sweep(timed_point, grid):
        if base_total is None:
            base_total = t.total
        comms = t.breakdown.get("comms", 0.0)
        points.append(_point(t, speedup=base_total / t.total,
                             comms_fraction=comms / t.total,
                             overlap="on" if overlap else "off"))
    return points


def fig15_overlap_ablation(ngs: Sequence[int] = (1, 2, 3),
                           m: int = 150_000, n: int = 2_500, k: int = 54,
                           p: int = 10, q: int = 1,
                           spec: GPUSpec = KEPLER_K40C) -> List[Dict]:
    """Figure 15 rendered both ways: the overlap=on points followed by
    the overlap=off (serial-model) points, for the ablation plot and
    the benchmark artifact."""
    on = fig15_multigpu_scaling(ngs, m=m, n=n, k=k, p=p, q=q, spec=spec,
                                overlap=True)
    off = fig15_multigpu_scaling(ngs, m=m, n=n, k=k, p=p, q=q, spec=spec,
                                 overlap=False)
    return on + off


# ----------------------------------------------------------------------
# Figures 16-18: the adaptive scheme
# ----------------------------------------------------------------------
def _adaptive_matrix(m: Optional[int], n: Optional[int], seed: int
                     ) -> np.ndarray:
    mm = m if m is not None else scale_rows(50_000, 5_000)
    nn = n if n is not None else (2_500 if mm >= 50_000 else 500)
    return exponent_matrix(mm, nn, seed=seed)


def fig16_adaptive_convergence(l_incs: Sequence[int] = (8, 16, 32, 64),
                               tolerance: float = 1e-12,
                               m: Optional[int] = None,
                               n: Optional[int] = None,
                               q: int = 0, seed: int = 0) -> List[Dict]:
    """Figure 16: error-estimate convergence of the adaptive scheme on
    the ``exponent`` matrix for static increments, plus the actual
    error at each accepted subspace size."""
    a = _adaptive_matrix(m, n, seed)
    runs = []
    for inc in l_incs:
        ex = GPUExecutor(seed=seed + 1)
        cfg = AdaptiveConfig(tolerance=tolerance, l_init=8, l_inc=inc,
                             power_iterations=q, seed=seed + 1)
        res = adaptive_sampling(a, cfg, executor=ex)
        # The dashed "actual error" line: ||A - A Q^T Q|| at the final
        # and per-step subspace sizes (recomputed on prefixes).
        basis = np.asarray(res.basis)
        actuals = []
        for st in res.steps:
            qpfx = basis[: st.subspace_size, :]
            resid = a - (a @ qpfx.T) @ qpfx
            actuals.append(hostmath.norm2(resid))
        runs.append({
            "l_inc": inc,
            "sizes": [st.subspace_size for st in res.steps],
            "estimates": [st.error_estimate for st in res.steps],
            "actual_errors": actuals,
            "final_size": res.subspace_size,
            "converged": res.converged,
        })
    return runs


def fig17_adaptive_time(l_incs: Sequence[int] = (8, 16, 32, 64),
                        tolerance: float = 1e-12,
                        m: Optional[int] = None,
                        n: Optional[int] = None,
                        q: int = 0, seed: int = 0) -> List[Dict]:
    """Figure 17: error estimate vs *modeled time* for static and
    interpolation-adapted ``l_inc`` (both started at each l_inc)."""
    a = _adaptive_matrix(m, n, seed)
    runs = []
    for inc in l_incs:
        for rule in ("static", "interpolate"):
            ex = GPUExecutor(seed=seed + 1)
            cfg = AdaptiveConfig(tolerance=tolerance, l_init=inc, l_inc=inc,
                                 step_rule=rule, power_iterations=q,
                                 seed=seed + 1)
            try:
                res = adaptive_sampling(a, cfg, executor=ex)
                steps, converged = res.steps, res.converged
                final = res.subspace_size
            except ConvergenceError as exc:  # cap hit: keep the history
                steps, converged, final = exc.history, False, None
            runs.append({
                "l_inc": inc,
                "rule": rule,
                "times": [st.seconds for st in steps],
                "estimates": [st.error_estimate for st in steps],
                "sizes": [st.subspace_size for st in steps],
                "final_size": final,
                "converged": converged,
                "total_seconds": steps[-1].seconds if steps else 0.0,
            })
    return runs


def fig18_gemm_small_l(l_incs: Sequence[int] = (8, 16, 32, 48, 64),
                       m: int = 50_000, n: int = 2_500,
                       spec: GPUSpec = KEPLER_K40C) -> Dict[str, List[float]]:
    """Figure 18: GEMM Gflop/s for the small adaptive-step panel widths
    (the kernel-efficiency half of the Section 10 trade-off)."""
    km = KernelModel(spec)
    rates = []
    for l in l_incs:
        flops = 2.0 * l * m * n
        rates.append(flops / (km.gemm_seconds(l, n, m) * 1e9))
    return {"l_inc": [float(v) for v in l_incs], "gemm_gflops": rates}

"""The paper's published values, as data, and the reproduction diff.

Every number the paper prints in its evaluation (and that our
substitute substrate can meaningfully be compared against) is encoded
here with the tolerance band DESIGN.md assigns it.  ``reproduction_
report()`` re-measures each one and returns PASS/FAIL rows —
``python -m repro.cli diff`` is the one-command answer to "does this
reproduction still hold?".

Checks marked ``kind="shape"`` compare a qualitative feature
(crossover position, ordering); ``kind="value"`` checks a number within
``rtol``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..gpu.kernels import KernelModel
from . import figures
from .harness import timed_fixed_rank, qp3_baseline_seconds

__all__ = ["PaperClaim", "CLAIMS", "reproduction_report"]


@dataclass(frozen=True)
class PaperClaim:
    """One published number/feature and how to re-measure it."""

    experiment: str
    name: str
    paper_value: float
    rtol: float
    measure: Callable[[], float]
    unit: str = ""

    def check(self) -> Dict:
        measured = float(self.measure())
        ok = abs(measured - self.paper_value) <= self.rtol * abs(
            self.paper_value)
        return {"experiment": self.experiment, "claim": self.name,
                "paper": self.paper_value, "measured": measured,
                "rtol": self.rtol, "unit": self.unit,
                "status": "PASS" if ok else "FAIL"}


def _fig18_rate(l: int) -> Callable[[], float]:
    def inner() -> float:
        km = KernelModel()
        return 2.0 * l * 50_000 * 2_500 / (km.gemm_seconds(
            l, 2_500, 50_000) * 1e9)
    return inner


def _fig15_gemm_rate(m: int) -> Callable[[], float]:
    def inner() -> float:
        km = KernelModel()
        return 2.0 * 64 * m * 2_500 / (km.gemm_seconds(64, 2_500, m)
                                       * 1e9)
    return inner


def _fig11_speedup(q: int, stat: str) -> Callable[[], float]:
    def inner() -> float:
        pts = figures.fig11_time_vs_rows(q=q)
        speedups = [p["speedup"] for p in pts]
        return max(speedups) if stat == "max" else float(
            np.mean(speedups))
    return inner


def _fig11_step1() -> float:
    return figures.fig11_time_vs_rows()[-1]["step1_fraction"]


def _fig15_metric(ng: int, key: str) -> Callable[[], float]:
    def inner() -> float:
        pts = figures.fig15_multigpu_scaling()
        return float(next(p[key] for p in pts if p["ng"] == ng))
    return inner


def _fig08_crossover(axis: str) -> Callable[[], float]:
    def inner() -> float:
        data = figures.fig08_sampling_kernels(
            ls=tuple(range(32, 513, 16)), axis=axis)
        ls = np.array(data["l"])
        wins = ls[np.array(data["fft_effective"])
                  > np.array(data["gemm"])]
        return float(wins.min()) if wins.size else float("inf")
    return inner


def _fig07_ratio() -> float:
    d = figures.fig07_tallskinny_qr()
    return float(np.mean(np.array(d["cholqr"]) / np.array(d["hhqr"])))


def _fig09_ratio(stat: str) -> Callable[[], float]:
    def inner() -> float:
        d = figures.fig09_shortwide_qr()
        r = np.array(d["cholqr"]) / np.array(d["hhqr"])
        return float(r.max() if stat == "max" else r.mean())
    return inner


def _qp3_fit(which: str) -> Callable[[], float]:
    def inner() -> float:
        ms = np.array([10_000, 20_000, 30_000, 40_000, 50_000], float)
        ts = [qp3_baseline_seconds(int(m), 2_500, 54) for m in ms]
        slope, intercept = np.polyfit(ms, ts, 1)
        return float(slope if which == "slope" else intercept)
    return inner


def _rs_fit_slope() -> float:
    ms = np.array([10_000, 20_000, 30_000, 40_000, 50_000], float)
    ts = [timed_fixed_rank(int(m), 2_500, k=54, p=10, q=1).total
          for m in ms]
    return float(np.polyfit(ms, ts, 1)[0])


def _fig10(metric: str) -> Callable[[], float]:
    def inner() -> float:
        from ..perfmodel.estimate import (estimate_qp3_gflops,
                                          estimate_random_sampling_gflops)
        if metric == "qp3":
            return estimate_qp3_gflops(50_000, 2_500, 54)
        q = int(metric[-1])
        return estimate_random_sampling_gflops(50_000, 2_500, 64, 54, q)
    return inner


#: Every quantitative claim with its tolerance (see EXPERIMENTS.md for
#: the narrative around each).
CLAIMS: List[PaperClaim] = [
    # Figure 18 anchors.
    *[PaperClaim("fig18", f"GEMM Gflop/s at l_inc={l}", ref, 0.15,
                 _fig18_rate(l), "Gflop/s")
      for l, ref in [(8, 123.3), (16, 247.0), (32, 489.5),
                     (48, 597.8), (64, 778.5)]],
    # Figure 15 GEMM height anchors + scaling.
    *[PaperClaim("fig15", f"GEMM Gflop/s at m={m}", ref, 0.15,
                 _fig15_gemm_rate(m), "Gflop/s")
      for m, ref in [(150_000, 440.0), (75_000, 630.0),
                     (50_000, 760.0)]],
    PaperClaim("fig15", "overall speedup on 2 GPUs", 2.4, 0.25,
               _fig15_metric(2, "speedup"), "x"),
    PaperClaim("fig15", "overall speedup on 3 GPUs", 3.8, 0.25,
               _fig15_metric(3, "speedup"), "x"),
    PaperClaim("fig15", "comms share on 2 GPUs", 0.016, 0.6,
               _fig15_metric(2, "comms_fraction")),
    PaperClaim("fig15", "comms share on 3 GPUs", 0.043, 0.6,
               _fig15_metric(3, "comms_fraction")),
    # Figure 11 / Section 9 headlines.
    PaperClaim("fig11", "max speedup, q=1", 6.6, 0.25,
               _fig11_speedup(1, "max"), "x"),
    PaperClaim("fig11", "avg speedup, q=1", 5.1, 0.25,
               _fig11_speedup(1, "mean"), "x"),
    PaperClaim("fig11", "max speedup, q=0", 12.8, 0.25,
               _fig11_speedup(0, "max"), "x"),
    PaperClaim("fig11", "avg speedup, q=0", 8.8, 0.25,
               _fig11_speedup(0, "mean"), "x"),
    PaperClaim("fig11", "step-1 share at m=50k", 0.78, 0.10,
               _fig11_step1),
    PaperClaim("fig11", "QP3 fit slope", 9.34e-6, 0.20,
               _qp3_fit("slope"), "s/row"),
    PaperClaim("fig11", "QP3 fit intercept", 0.0098, 0.45,
               _qp3_fit("intercept"), "s"),
    PaperClaim("fig11", "sampling fit slope (q=1)", 1.15e-6, 0.25,
               _rs_fit_slope, "s/row"),
    # Figure 8 crossovers.
    PaperClaim("fig08", "FFT crossover, row sampling", 192.0, 0.35,
               _fig08_crossover("row"), "l"),
    PaperClaim("fig08", "FFT crossover, column sampling", 128.0, 0.35,
               _fig08_crossover("col"), "l"),
    # Figures 7/9 kernel ratios.
    PaperClaim("fig07", "CholQR/HHQR avg (tall-skinny)", 30.5, 0.2,
               _fig07_ratio, "x"),
    PaperClaim("fig09", "CholQR/HHQR avg (short-wide)", 72.9, 0.25,
               _fig09_ratio("mean"), "x"),
    PaperClaim("fig09", "CholQR/HHQR max (short-wide)", 106.4, 0.25,
               _fig09_ratio("max"), "x"),
    # Figure 10 estimates.
    PaperClaim("fig10", "QP3 estimated Gflop/s", 29.0, 0.15,
               _fig10("qp3"), "Gflop/s"),
    PaperClaim("fig10", "sampling estimated Gflop/s, q=0", 489.0, 0.25,
               _fig10("rs0"), "Gflop/s"),
    PaperClaim("fig10", "sampling estimated Gflop/s, q=1", 676.0, 0.25,
               _fig10("rs1"), "Gflop/s"),
]


def reproduction_report(experiments: Optional[List[str]] = None
                        ) -> List[Dict]:
    """Re-measure every encoded claim (optionally filtered by
    experiment id) and return PASS/FAIL rows."""
    rows = []
    for claim in CLAIMS:
        if experiments and claim.experiment not in experiments:
            continue
        rows.append(claim.check())
    return rows

"""Shared plumbing for the figure drivers.

The performance experiments run the *real algorithm control flow* over
symbolic (shape-only) arrays on the simulated device, so a 150 000 x
2 500 sweep point costs microseconds of wall time while producing the
modeled phase breakdown the paper plots.  Numerics experiments
(Figures 6, 16, 17) run real matrices, optionally scaled down via
:func:`scale_rows` (set ``REPRO_FULL_SCALE=1`` for paper sizes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import SamplingConfig
from ..core.random_sampling import random_sampling
from ..errors import ConfigurationError
from ..gpu.device import GPUExecutor, NumpyExecutor, SymArray
from ..gpu.kernels import KernelModel
from ..gpu.multigpu import MultiGPUExecutor
from ..gpu.specs import GPUSpec, KEPLER_K40C
from ..obs.spans import SpanRecorder

__all__ = ["FixedRankTiming", "timed_fixed_rank", "qp3_baseline_seconds",
           "scale_rows", "full_scale", "OBS_RUN_CONFIGS",
           "observed_fixed_rank"]


def full_scale() -> bool:
    """True when the environment requests paper-scale experiments."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")


def scale_rows(paper_rows: int, scaled_rows: int) -> int:
    """Pick the row count for a numerics experiment: the paper's value
    under ``REPRO_FULL_SCALE=1``, the laptop-scale default otherwise."""
    return paper_rows if full_scale() else scaled_rows


@dataclass
class FixedRankTiming:
    """Modeled timing of one fixed-rank run (one Figure 11-15 bar)."""

    m: int
    n: int
    k: int
    sample_size: int
    q: int
    ng: int
    total: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Observability aggregates (filled when a recorder watched the run).
    flops: float = 0.0
    bytes_moved: float = 0.0
    gflops: float = 0.0
    peak_memory_bytes: int = 0

    @property
    def step1_fraction(self) -> float:
        """Share of time in Step 1 (PRNG + sampling + iteration), the
        78 %-at-m=50k statistic of Section 9."""
        s1 = sum(self.breakdown.get(p, 0.0)
                 for p in ("prng", "sampling", "gemm_iter", "orth_iter"))
        return s1 / self.total if self.total > 0 else 0.0


def _env_pipeline_chunks() -> Optional[int]:
    """Validated ``REPRO_PIPELINE_CHUNKS`` (the CLI's --pipeline-chunks
    channel into pool workers); None when unset."""
    raw = os.environ.get("REPRO_PIPELINE_CHUNKS", "").strip()
    if not raw:
        return None
    try:
        chunks = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_PIPELINE_CHUNKS must be an integer, got "
            f"{raw!r}") from None
    if chunks < 1:
        raise ConfigurationError(
            f"REPRO_PIPELINE_CHUNKS must be >= 1, got {chunks}")
    return chunks


def timed_fixed_rank(m: int, n: int, k: int = 54, p: int = 10, q: int = 1,
                     ng: int = 1, sampler: str = "gaussian",
                     spec: GPUSpec = KEPLER_K40C,
                     seed: int = 0,
                     recorder: Optional[SpanRecorder] = None,
                     overlap: bool = True,
                     race_check: bool = False,
                     backend: Optional[str] = None,
                     pipeline_chunks: Optional[int] = None,
                     plan=None,
                     auto_tune: bool = False
                     ) -> FixedRankTiming:
    """Run the fixed-rank algorithm symbolically on the simulated
    device(s) and return the modeled phase breakdown.

    Every run is watched by a :class:`repro.obs.spans.SpanRecorder`
    (pass ``recorder`` to supply your own and keep the span tree); the
    returned timing carries the recorder's aggregates (FLOPs, bytes
    moved, achieved Gflop/s, peak device memory).  ``overlap`` selects
    the multi-GPU stream schedule: ``True`` pipelines compute against
    communication (the paper's runtime), ``False`` is the serial-sum
    ablation; phase breakdowns are identical either way.

    ``backend`` picks the compute backend the (non-symbolic parts of
    the) math runs on — ``None`` means the session default, the
    bit-reproducible ``"simulated"`` engine.  The backend's name and
    real wall-clock land on the recorder and in BENCH artifacts next
    to the modeled totals.

    ``race_check=True`` (multi-GPU runs only) attaches a happens-before
    :class:`repro.analysis.races.RaceChecker` to the stream scheduler
    in collecting mode; detected races land in ``recorder.races`` and
    the full report in ``recorder.race_report``.  Observation-only:
    modeled totals are unchanged.

    Schedule knobs: ``pipeline_chunks`` overrides the multi-GPU gather
    pipeline depth (``REPRO_PIPELINE_CHUNKS`` supplies it to sweep pool
    workers; explicit beats env); ``plan`` applies a tuning plan's
    knobs to the executor (a :class:`repro.tune.TunePlan`, plan path,
    or knob mapping), and ``auto_tune=True`` fetches — or searches for
    — the cached plan for this run's key via
    :func:`repro.tune.get_plan`.  All three are multi-GPU only:
    passing them explicitly at ``ng=1`` is a configuration error (the
    env fallback is ignored there so mixed-ng sweeps work).
    """
    env_chunks = _env_pipeline_chunks()
    if plan is not None and auto_tune:
        raise ConfigurationError(
            "pass either plan= or auto_tune=True, not both")
    if ng == 1:
        if pipeline_chunks is not None or plan is not None or auto_tune:
            raise ConfigurationError(
                "pipeline_chunks/plan/auto_tune tune the multi-GPU "
                "stream schedule; they need ng >= 2")
        ex: NumpyExecutor = GPUExecutor(spec=spec, seed=seed,
                                        backend=backend)
    else:
        chunks = pipeline_chunks if pipeline_chunks is not None \
            else env_chunks
        kwargs = {} if chunks is None else {"pipeline_chunks": chunks}
        ex = MultiGPUExecutor(ng=ng, spec=spec, seed=seed, overlap=overlap,
                              backend=backend, plan=plan, **kwargs)
        if auto_tune:
            from ..tune import PlanKey, get_plan
            tuned = get_plan(PlanKey(m=m, n=n, k=k, ng=ng,
                                     backend=ex.backend.name,
                                     overlap=overlap),
                             p=p, q=q, spec=spec)
            ex.apply_plan(tuned)
    rec = recorder if recorder is not None else SpanRecorder()
    ex.attach_recorder(rec)
    rec.note_backend(ex.backend)
    checker = None
    if race_check and hasattr(ex, "streams"):
        from ..analysis.races import RaceChecker
        checker = RaceChecker()
        ex.streams.attach_race_checker(checker)
    cfg = SamplingConfig(rank=k, oversampling=p, power_iterations=q,
                         sampler=sampler, seed=seed,
                         backend=ex.backend.name)
    run_name = f"fixed-rank m={m} n={n} k={k} q={q} ng={ng}"
    with rec.run_span(run_name):
        res = random_sampling(SymArray((m, n)), cfg, executor=ex)
    from ..matrices.registry import matrix_cache_info
    from ..tune.cache import plan_cache_info
    rec.note_cache("matrix_gallery", matrix_cache_info())
    rec.note_cache("plan", plan_cache_info())
    if checker is not None:
        rec.race_report = checker.report()
    elif race_check:
        rec.race_report = {"version": 1, "race_count": 0, "races": [],
                           "submissions": 0, "buffers": [], "lanes": [],
                           "note": "single-device run: no stream "
                                   "scheduler, nothing to race"}
    return FixedRankTiming(m=m, n=n, k=k, sample_size=cfg.sample_size, q=q,
                           ng=ng, total=res.seconds,
                           breakdown={ph: s for ph, s in res.breakdown.items()
                                      if s > 0.0},
                           flops=rec.total_flops,
                           bytes_moved=rec.total_bytes_moved,
                           gflops=rec.achieved_gflops(),
                           peak_memory_bytes=rec.peak_memory_bytes)


#: Representative single run per phase-breakdown figure, used by
#: ``repro-bench obs run <figure> --trace`` to produce a Chrome trace.
OBS_RUN_CONFIGS: Dict[str, Dict[str, int]] = {
    "fig11": {"m": 50_000, "n": 2_500, "k": 54, "p": 10, "q": 1, "ng": 1},
    "fig12": {"m": 50_000, "n": 5_000, "k": 54, "p": 10, "q": 1, "ng": 1},
    "fig13": {"m": 50_000, "n": 2_500, "k": 310, "p": 10, "q": 1, "ng": 1},
    "fig15": {"m": 150_000, "n": 2_500, "k": 54, "p": 10, "q": 1, "ng": 3},
}


def observed_fixed_rank(figure: str, **overrides):
    """Run ``figure``'s representative configuration under a fresh
    recorder; returns ``(FixedRankTiming, SpanRecorder)``."""
    try:
        params = dict(OBS_RUN_CONFIGS[figure])
    except KeyError:
        raise ConfigurationError(
            f"no observability run config for {figure!r}; available: "
            f"{sorted(OBS_RUN_CONFIGS)}") from None
    params.update(overrides)
    rec = SpanRecorder()
    timing = timed_fixed_rank(recorder=rec, **params)
    return timing, rec


def qp3_baseline_seconds(m: int, n: int, k: int = 54,
                         spec: GPUSpec = KEPLER_K40C) -> float:
    """Modeled time of the truncated QP3 baseline on one device."""
    return KernelModel(spec).qp3_seconds(m, n, k)

"""Shared plumbing for the figure drivers.

The performance experiments run the *real algorithm control flow* over
symbolic (shape-only) arrays on the simulated device, so a 150 000 x
2 500 sweep point costs microseconds of wall time while producing the
modeled phase breakdown the paper plots.  Numerics experiments
(Figures 6, 16, 17) run real matrices, optionally scaled down via
:func:`scale_rows` (set ``REPRO_FULL_SCALE=1`` for paper sizes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import SamplingConfig
from ..core.random_sampling import random_sampling
from ..gpu.device import GPUExecutor, NumpyExecutor, SymArray
from ..gpu.kernels import KernelModel
from ..gpu.multigpu import MultiGPUExecutor
from ..gpu.specs import GPUSpec, KEPLER_K40C

__all__ = ["FixedRankTiming", "timed_fixed_rank", "qp3_baseline_seconds",
           "scale_rows", "full_scale"]


def full_scale() -> bool:
    """True when the environment requests paper-scale experiments."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")


def scale_rows(paper_rows: int, scaled_rows: int) -> int:
    """Pick the row count for a numerics experiment: the paper's value
    under ``REPRO_FULL_SCALE=1``, the laptop-scale default otherwise."""
    return paper_rows if full_scale() else scaled_rows


@dataclass
class FixedRankTiming:
    """Modeled timing of one fixed-rank run (one Figure 11-15 bar)."""

    m: int
    n: int
    k: int
    sample_size: int
    q: int
    ng: int
    total: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def step1_fraction(self) -> float:
        """Share of time in Step 1 (PRNG + sampling + iteration), the
        78 %-at-m=50k statistic of Section 9."""
        s1 = sum(self.breakdown.get(p, 0.0)
                 for p in ("prng", "sampling", "gemm_iter", "orth_iter"))
        return s1 / self.total if self.total > 0 else 0.0


def timed_fixed_rank(m: int, n: int, k: int = 54, p: int = 10, q: int = 1,
                     ng: int = 1, sampler: str = "gaussian",
                     spec: GPUSpec = KEPLER_K40C,
                     seed: int = 0) -> FixedRankTiming:
    """Run the fixed-rank algorithm symbolically on the simulated
    device(s) and return the modeled phase breakdown."""
    if ng == 1:
        ex: NumpyExecutor = GPUExecutor(spec=spec, seed=seed)
    else:
        ex = MultiGPUExecutor(ng=ng, spec=spec, seed=seed)
    cfg = SamplingConfig(rank=k, oversampling=p, power_iterations=q,
                         sampler=sampler, seed=seed)
    res = random_sampling(SymArray((m, n)), cfg, executor=ex)
    return FixedRankTiming(m=m, n=n, k=k, sample_size=cfg.sample_size, q=q,
                           ng=ng, total=res.seconds,
                           breakdown={ph: s for ph, s in res.breakdown.items()
                                      if s > 0.0})


def qp3_baseline_seconds(m: int, n: int, k: int = 54,
                         spec: GPUSpec = KEPLER_K40C) -> float:
    """Modeled time of the truncated QP3 baseline on one device."""
    return KernelModel(spec).qp3_seconds(m, n, k)

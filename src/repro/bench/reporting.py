"""Plain-text rendering of experiment results.

Keeps the figure drivers pure-data; everything the CLI and benches
print goes through these formatters so the output style matches across
all fourteen experiments.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_breakdown_table", "format_series"]


def _fmt(value, width: int) -> str:
    if isinstance(value, float):
        if value == 0:
            text = "0"
        elif abs(value) >= 1000 or abs(value) < 1e-3:
            text = f"{value:.3e}"
        else:
            text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(v, 0).strip() for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_breakdown_table(points: Sequence[Mapping],
                           x_name: str,
                           phases: Sequence[str],
                           extra: Sequence[str] = (),
                           title: Optional[str] = None) -> str:
    """Render a stacked-bar figure (Figs 11-15) as a table.

    ``points`` are dicts with the x value under ``x_name``, a
    ``breakdown`` sub-dict, a ``total``, and optional extra scalar
    columns (e.g. the QP3 reference time).
    """
    headers = [x_name] + list(phases) + ["total"] + list(extra)
    rows = []
    for pt in points:
        bd = pt.get("breakdown", {})
        row = [pt[x_name]] + [bd.get(ph, 0.0) for ph in phases] \
            + [pt["total"]] + [pt.get(e, "") for e in extra]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_series(x: Sequence, series: Mapping[str, Sequence],
                  x_name: str = "x",
                  title: Optional[str] = None) -> str:
    """Render several y-series over a shared x axis (Figs 7-10, 14)."""
    headers = [x_name] + list(series)
    rows = [[xv] + [series[name][i] for name in series]
            for i, xv in enumerate(x)]
    return format_table(headers, rows, title=title)

"""Machine-readable export of experiment results.

``python -m repro.cli fig11 --json out.json`` routes every driver's
data through :func:`to_jsonable` and writes one JSON document per
experiment, so downstream plotting (matplotlib notebooks, paper-diff
scripts) can consume the reproduction without scraping tables.

``repro-bench obs run`` goes through :func:`write_figure_artifact`
instead, which produces the versioned ``BENCH_<figure>.json`` series
artifact defined by :mod:`repro.obs.artifact`.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Optional

from ..errors import ConfigurationError
# Canonical converter lives with the artifact schema; re-exported here
# because every driver historically imported it from this module.
from ..obs.artifact import (build_artifact, figure_record, to_jsonable,
                            write_artifact)

__all__ = ["to_jsonable", "dump_json", "collect_experiment",
           "OBS_FIGURES", "write_figure_artifact"]


def dump_json(data: Any, path: str, experiment: str) -> None:
    """Write ``{"experiment": ..., "data": ...}`` to ``path``."""
    doc = {"experiment": experiment, "data": to_jsonable(data)}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


#: Driver registry for export: experiment name -> zero-arg callable
#: returning plain data.  Populated lazily to avoid import cycles.
def collect_experiment(name: str) -> Any:
    """Run one experiment driver and return its raw data."""
    from . import figures

    drivers: Dict[str, Callable[[], Any]] = {
        "table1": figures.table1_matrices,
        "fig06": lambda: figures.fig06_accuracy(include_p0=True,
                                                include_fft=True),
        "fig07": figures.fig07_tallskinny_qr,
        "fig08": lambda: {
            "row": figures.fig08_sampling_kernels(axis="row"),
            "col": figures.fig08_sampling_kernels(axis="col")},
        "fig09": figures.fig09_shortwide_qr,
        "fig10": figures.fig10_estimated_gflops,
        "fig11": figures.fig11_time_vs_rows,
        "fig12": figures.fig12_time_vs_cols,
        "fig13": figures.fig13_time_vs_rank,
        "fig14": figures.fig14_time_vs_iterations,
        "fig15": figures.fig15_multigpu_scaling,
        "fig16": figures.fig16_adaptive_convergence,
        "fig17": figures.fig17_adaptive_time,
        "fig18": figures.fig18_gemm_small_l,
    }
    try:
        driver = drivers[name]
    except KeyError:
        raise ConfigurationError(
            f"no exportable driver for {name!r}; available: "
            f"{sorted(drivers)}") from None
    return driver()


def _obs_figures() -> Dict[str, Callable[[], Any]]:
    from . import figures

    return {
        "fig11": figures.fig11_time_vs_rows,
        "fig12": figures.fig12_time_vs_cols,
        "fig13": figures.fig13_time_vs_rank,
        # fig15 exports the overlap ablation: the pipelined (on) and
        # serial-model (off) series, distinguished by the "overlap"
        # point parameter.
        "fig15": figures.fig15_overlap_ablation,
    }


#: Figures exportable as BENCH artifacts (phase-breakdown sweeps).
OBS_FIGURES = frozenset(("fig11", "fig12", "fig13", "fig15"))


def write_figure_artifact(path: str, name: str,
                          label: Optional[str] = None,
                          backend: Optional[str] = None) -> Dict:
    """Run one phase-breakdown figure driver and write its reproduced
    series as a ``BENCH_<figure>.json`` artifact; returns the document.

    The schema-v2 fields record which compute backend the session ran
    on (``backend``, defaulting to the session default's name) and the
    real wall-clock seconds the driver took — the paper-model totals
    inside the points stay modeled seconds.  Figure-level metrics carry
    the matrix-gallery LRU counter deltas of the run
    (``matrix_cache_{hits,misses,entries}``), mirroring the plan-cache
    counters ``repro-bench tune --bench`` publishes; both are
    drift-only in the ``obs diff`` gate.
    """
    from ..matrices.registry import matrix_cache_info

    drivers = _obs_figures()
    try:
        driver = drivers[name]
    except KeyError:
        raise ConfigurationError(
            f"figure {name!r} has no BENCH artifact export; available: "
            f"{sorted(drivers)}") from None
    before = matrix_cache_info()
    t0 = time.perf_counter()
    record = figure_record(name, breakdown_points=driver())
    wall = time.perf_counter() - t0
    after = matrix_cache_info()
    cache_metrics = {
        "matrix_cache_hits": after["hits"] - before["hits"],
        "matrix_cache_misses": after["misses"] - before["misses"],
        "matrix_cache_entries": after["entries"],
    }
    record.setdefault("metrics", {}).update(to_jsonable(cache_metrics))
    doc = build_artifact([record], label=label or name,
                         backend=backend, wall_clock_s=wall)
    write_artifact(path, doc)
    return doc

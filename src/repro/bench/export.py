"""Machine-readable export of experiment results.

``python -m repro.cli fig11 --json out.json`` routes every driver's
data through :func:`to_jsonable` and writes one JSON document per
experiment, so downstream plotting (matplotlib notebooks, paper-diff
scripts) can consume the reproduction without scraping tables.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict

import numpy as np

from ..errors import ConfigurationError

__all__ = ["to_jsonable", "dump_json", "collect_experiment"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment data (numpy scalars/arrays,
    dataclass-free dicts/lists/tuples) into JSON-safe structures."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    raise ConfigurationError(
        f"cannot serialize {type(value).__name__} to JSON")


def dump_json(data: Any, path: str, experiment: str) -> None:
    """Write ``{"experiment": ..., "data": ...}`` to ``path``."""
    doc = {"experiment": experiment, "data": to_jsonable(data)}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


#: Driver registry for export: experiment name -> zero-arg callable
#: returning plain data.  Populated lazily to avoid import cycles.
def collect_experiment(name: str) -> Any:
    """Run one experiment driver and return its raw data."""
    from . import figures

    drivers: Dict[str, Callable[[], Any]] = {
        "table1": figures.table1_matrices,
        "fig06": lambda: figures.fig06_accuracy(include_p0=True,
                                                include_fft=True),
        "fig07": figures.fig07_tallskinny_qr,
        "fig08": lambda: {
            "row": figures.fig08_sampling_kernels(axis="row"),
            "col": figures.fig08_sampling_kernels(axis="col")},
        "fig09": figures.fig09_shortwide_qr,
        "fig10": figures.fig10_estimated_gflops,
        "fig11": figures.fig11_time_vs_rows,
        "fig12": figures.fig12_time_vs_cols,
        "fig13": figures.fig13_time_vs_rank,
        "fig14": figures.fig14_time_vs_iterations,
        "fig15": figures.fig15_multigpu_scaling,
        "fig16": figures.fig16_adaptive_convergence,
        "fig17": figures.fig17_adaptive_time,
        "fig18": figures.fig18_gemm_small_l,
    }
    try:
        driver = drivers[name]
    except KeyError:
        raise ConfigurationError(
            f"no exportable driver for {name!r}; available: "
            f"{sorted(drivers)}") from None
    return driver()

"""Parallel sweep runner: process-pool over figure grid points.

The figure drivers in :mod:`repro.bench.figures` evaluate a grid of
independent sweep points (one modeled run per ``m``/``n``/``l``/``ng``
value).  Modeled runs are cheap, but the Python-side control flow —
and, for numerics figures, the real matrix generation — adds up over a
bench session.  :func:`run_sweep` maps a **top-level picklable worker**
over the grid with a :class:`concurrent.futures.ProcessPoolExecutor`,
preserving order, so ``repro-bench`` and the pytest benches scale to
the runner's cores.

Knobs:

- ``REPRO_SWEEP_PROCS`` (or ``repro-bench --parallel N``) sets the
  worker count; unset/1 keeps the old in-process serial path, ``0``
  means ``os.cpu_count()``.
- Grid points carry their own ``seed`` (see :func:`seeded_grid`), so
  results do not depend on which worker ran which point.
- Workers lean on the per-process LRU matrix cache in
  :mod:`repro.matrices.registry`: repeated sweep points hit the cache
  instead of regenerating identical matrices.

``python -m repro.bench.sweep --compare N`` times the bench-smoke
sweep serially and with ``N`` workers and prints a Markdown table (CI
appends it to the job summary).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["sweep_procs", "run_sweep", "seeded_grid", "timed_point",
           "accuracy_point", "compare_wallclock", "format_compare_markdown"]


def sweep_procs(default: int = 1) -> int:
    """Worker count from ``REPRO_SWEEP_PROCS`` (0 -> all cores)."""
    raw = os.environ.get("REPRO_SWEEP_PROCS", "").strip()
    if not raw:
        return default
    try:
        procs = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SWEEP_PROCS must be an integer, got {raw!r}") from None
    if procs < 0:
        raise ConfigurationError(
            f"REPRO_SWEEP_PROCS must be >= 0, got {procs}")
    return procs if procs else (os.cpu_count() or 1)


def run_sweep(worker: Callable[[Dict], object], grid: Sequence[Dict],
              procs: Optional[int] = None) -> List[object]:
    """Map ``worker`` over ``grid`` points, order-preserving.

    ``procs=None`` reads :func:`sweep_procs`; ``procs<=1`` (or a grid
    of one) runs serially in-process — identical results either way,
    because every point is self-contained (own params, own seed).
    ``worker`` must be a module-level function so it pickles.
    """
    grid = list(grid)
    if procs is None:
        procs = sweep_procs()
    if procs <= 1 or len(grid) <= 1:
        return [worker(pt) for pt in grid]
    with ProcessPoolExecutor(max_workers=min(procs, len(grid))) as pool:
        return list(pool.map(worker, grid))


def seeded_grid(grid: Sequence[Dict], base_seed: int = 0) -> List[Dict]:
    """Give every point its own derived seed (``base_seed + index``)
    unless it already carries one: results stay deterministic no
    matter which worker process picks the point up."""
    out = []
    for i, pt in enumerate(grid):
        pt = dict(pt)
        pt.setdefault("seed", base_seed + i)
        out.append(pt)
    return out


# ----------------------------------------------------------------------
# top-level workers (picklable)
# ----------------------------------------------------------------------
def timed_point(params: Dict):
    """One modeled fixed-rank run; ``params`` are
    :func:`repro.bench.harness.timed_fixed_rank` keyword arguments."""
    from .harness import timed_fixed_rank
    return timed_fixed_rank(**params)


def accuracy_point(params: Dict) -> float:
    """One real-matrix accuracy run: residual of random sampling on a
    gallery matrix (uses the registry's per-process LRU cache)."""
    from ..config import SamplingConfig
    from ..core.random_sampling import random_sampling
    from ..matrices.registry import get_matrix
    a = get_matrix(params["name"], m=params["m"], n=params["n"],
                   seed=params.get("matrix_seed", 0))
    cfg = SamplingConfig(rank=params["k"],
                         oversampling=params.get("p", 10),
                         power_iterations=params.get("q", 1),
                         seed=params.get("seed", 0))
    return random_sampling(a, cfg).residual(a)


# ----------------------------------------------------------------------
# wall-clock comparison (CI job summary)
# ----------------------------------------------------------------------
def _modeled_grid() -> List[Dict]:
    """The bench-smoke modeled sweep: fig11 + fig13 + fig15 (both
    overlap settings) grid points."""
    from .figures import DEFAULT_LS, DEFAULT_MS
    grid: List[Dict] = []
    for m in DEFAULT_MS:
        grid.append({"m": m, "n": 2_500, "k": 54, "p": 10, "q": 1})
    for l in DEFAULT_LS:
        grid.append({"m": 50_000, "n": 2_500, "k": l - 10, "p": 10, "q": 1})
    for overlap in (True, False):
        for ng in (1, 2, 3):
            grid.append({"m": 150_000, "n": 2_500, "k": 54, "p": 10,
                         "q": 1, "ng": ng, "overlap": overlap})
    return seeded_grid(grid)


def _accuracy_grid(points: int, m: int, n: int) -> List[Dict]:
    """Real-matrix accuracy points, each with its own matrix seed so
    every point pays full generation cost (the host-wall-clock-bound
    half of the bench suite, where the pool actually earns its keep)."""
    names = ("power", "exponent")
    grid = [{"name": names[i % len(names)], "m": m, "n": n, "k": 50,
             "p": 10, "q": 1, "matrix_seed": i} for i in range(points)]
    return seeded_grid(grid)


def compare_wallclock(procs: int, repeats: int = 3,
                      accuracy_points: int = 8, m: int = 4_000,
                      n: int = 400) -> Dict[str, float]:
    """Time the smoke sweep (modeled grid + real-matrix accuracy
    points) serially vs with ``procs`` workers; raises if the pooled
    run produced different numbers."""
    modeled = _modeled_grid() * repeats
    accuracy = _accuracy_grid(accuracy_points, m=m, n=n)
    t0 = time.perf_counter()
    serial = run_sweep(timed_point, modeled, procs=1)
    serial_acc = run_sweep(accuracy_point, accuracy, procs=1)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_sweep(timed_point, modeled, procs=procs)
    pooled_acc = run_sweep(accuracy_point, accuracy, procs=procs)
    t_pool = time.perf_counter() - t0
    if [t.total for t in serial] != [t.total for t in pooled] or \
            serial_acc != pooled_acc:
        raise ConfigurationError(
            "parallel sweep changed results; worker is not deterministic")
    return {"points": len(modeled) + len(accuracy), "procs": procs,
            "serial_s": t_serial, "parallel_s": t_pool,
            "speedup": t_serial / t_pool if t_pool > 0 else float("inf")}


def format_compare_markdown(stats: Dict[str, float]) -> str:
    return "\n".join([
        "### Parallel sweep runner",
        "",
        "| points | workers | serial (s) | parallel (s) | speedup |",
        "|-------:|--------:|-----------:|-------------:|--------:|",
        "| {points} | {procs} | {serial_s:.2f} | {parallel_s:.2f} "
        "| {speedup:.2f}x |".format(**stats),
    ])


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.sweep",
        description="Compare serial vs process-pool sweep wall-clock "
                    "(Markdown output for the CI job summary).")
    parser.add_argument("--compare", type=int, metavar="N", default=None,
                        help="run the smoke sweep serially and with N "
                             "workers (0 = all cores)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeat the grid this many times (default 3)")
    parser.add_argument("--pipeline-chunks", type=int, metavar="N",
                        default=None,
                        help="gather pipeline depth for the sweep's "
                             "multi-GPU points (>= 1; exported as "
                             "REPRO_PIPELINE_CHUNKS so pool workers "
                             "inherit it; single-GPU points ignore it). "
                             "Prefer a tuned plan ('repro-bench tune') "
                             "over hand-set values")
    args = parser.parse_args(argv)
    if args.compare is None:
        parser.error("nothing to do; pass --compare N")
    if args.pipeline_chunks is not None:
        if args.pipeline_chunks < 1:
            parser.error("--pipeline-chunks must be >= 1")
        os.environ["REPRO_PIPELINE_CHUNKS"] = str(args.pipeline_chunks)
    procs = args.compare if args.compare else (os.cpu_count() or 1)
    print(format_compare_markdown(
        compare_wallclock(procs, repeats=args.repeats)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Terminal rendering of the paper's figures: line charts and stacked
bars in plain ASCII.

The CLI uses these to *draw* each figure next to its numeric table, so
a reproduction run can be eyeballed against the paper without any
plotting dependency.  Log axes are supported because most of the
paper's interesting structure (Figures 16/17, the kernel-rate spans)
lives across decades.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["line_chart", "stacked_bars"]

#: Distinct plot glyphs, one per series.
_MARKS = "ox+*#@%&"


def _nice_num(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 1e-2:
        return f"{value:.1e}"
    return f"{value:.3g}"


def _transform(values: Sequence[float], log: bool) -> List[float]:
    if not log:
        return list(values)
    out = []
    for v in values:
        if v <= 0:
            raise ConfigurationError(
                f"log axis requires positive values, got {v}")
        out.append(math.log10(v))
    return out


def line_chart(x: Sequence[float], series: Mapping[str, Sequence[float]],
               width: int = 64, height: int = 18,
               logx: bool = False, logy: bool = False,
               title: Optional[str] = None,
               x_label: str = "x") -> str:
    """Render one or more y-series over a shared x axis.

    Each series gets its own glyph; a legend and the axis ranges are
    appended.  Points are mapped to the nearest cell (no
    interpolation), which is faithful enough for sweep data.
    """
    if not x or not series:
        raise ConfigurationError("line_chart needs data")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ConfigurationError(
                f"series {name!r} length {len(ys)} != x length {len(x)}")
    xt = _transform(x, logx)
    all_y = [v for ys in series.values() for v in ys]
    yt_min_src = min(all_y)
    yt_max_src = max(all_y)
    yt = {name: _transform(ys, logy) for name, ys in series.items()}
    ymin = min(v for ys in yt.values() for v in ys)
    ymax = max(v for ys in yt.values() for v in ys)
    xmin, xmax = min(xt), max(xt)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(yt.items()):
        mark = _MARKS[si % len(_MARKS)]
        for xv, yv in zip(xt, ys):
            col = int(round((xv - xmin) / xspan * (width - 1)))
            row = int(round((yv - ymin) / yspan * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top = _nice_num(yt_max_src)
    bottom = _nice_num(yt_min_src)
    gutter = max(len(top), len(bottom)) + 1
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(label.rjust(gutter) + " |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    xl = _nice_num(min(x))
    xr = _nice_num(max(x))
    axis = (" " * (gutter + 2) + xl
            + " " * max(1, width - len(xl) - len(xr)) + xr)
    lines.append(axis + f"   ({x_label}"
                 + (", logx" if logx else "")
                 + (", logy" if logy else "") + ")")
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * (gutter + 2) + legend)
    return "\n".join(lines)


def stacked_bars(labels: Sequence, parts: Sequence[Mapping[str, float]],
                 width: int = 56,
                 title: Optional[str] = None,
                 reference: Optional[Mapping] = None) -> str:
    """Render one horizontal stacked bar per label (the Figures 11-15
    phase stacks).

    ``parts[i]`` maps phase name -> seconds for ``labels[i]``; the bar
    is split proportionally with one letter per phase (first letter of
    the phase name, uniquified).  ``reference`` optionally maps labels
    to a scalar (e.g. the QP3 time) printed at the end of each row.
    """
    if len(labels) != len(parts):
        raise ConfigurationError("labels/parts length mismatch")
    if not parts:
        raise ConfigurationError("stacked_bars needs data")
    phases: List[str] = []
    for pt in parts:
        for name in pt:
            if name not in phases:
                phases.append(name)
    glyphs: Dict[str, str] = {}
    used = set()
    for name in phases:
        g = next((c for c in name if c not in used), "?")
        used.add(g)
        glyphs[name] = g

    totals = [sum(pt.values()) for pt in parts]
    scale_max = max(totals + ([max(reference.values())] if reference
                              else []))
    if scale_max <= 0:
        raise ConfigurationError("nothing to draw (all totals zero)")

    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = max(len(str(l)) for l in labels)
    for label, pt, total in zip(labels, parts, totals):
        bar_cells = int(round(total / scale_max * width))
        bar = ""
        assigned = 0
        items = [(ph, pt.get(ph, 0.0)) for ph in phases if pt.get(ph, 0)]
        for i, (ph, secs) in enumerate(items):
            cells = (bar_cells - assigned if i == len(items) - 1
                     else int(round(secs / total * bar_cells)))
            bar += glyphs[ph] * max(0, cells)
            assigned += cells
        suffix = f"  {_nice_num(total)}s"
        if reference and label in reference:
            suffix += f"  (ref {_nice_num(reference[label])}s)"
        lines.append(f"{str(label).rjust(label_w)} |{bar.ljust(width)}|"
                     + suffix)
    legend = "   ".join(f"{glyphs[ph]}={ph}" for ph in phases)
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)

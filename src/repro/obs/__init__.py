"""Run-level observability for the simulated-GPU reproduction.

Layers (see ``docs/observability.md``):

- :mod:`repro.obs.spans` — hierarchical run → step → kernel spans
  wrapping the :class:`repro.gpu.trace.TimeLine` phase accounting,
  with per-phase counters (calls, FLOPs, bytes moved) and the device
  memory high-water mark.
- :mod:`repro.obs.chrome` — Chrome trace-event export of a recorded
  run (loadable in Perfetto / ``chrome://tracing``).
- :mod:`repro.obs.artifact` — the versioned ``BENCH_*.json`` series
  artifact and the bench-side :func:`~repro.obs.artifact.attach_series`
  publisher.
- :mod:`repro.obs.diff` — the per-phase artifact diff behind the CI
  perf-regression gate (``repro-bench obs diff``).
"""

from .spans import PhaseCounter, Span, SpanRecorder
from .chrome import (chrome_document, spans_to_chrome,
                     validate_chrome_trace, write_chrome_trace)
from .artifact import (ARTIFACT_KIND, SCHEMA_VERSION, attach_series,
                       attached_records, build_artifact, figure_record,
                       load_artifact, point, point_key,
                       points_from_breakdown, points_from_series,
                       reset_attached, to_jsonable, validate_artifact,
                       write_artifact, write_attached)
from .diff import (DEFAULT_FLOOR, DEFAULT_TOLERANCE, DiffEntry,
                   DiffResult, diff_artifacts, render_diff)

__all__ = [
    "Span", "PhaseCounter", "SpanRecorder",
    "spans_to_chrome", "chrome_document", "write_chrome_trace",
    "validate_chrome_trace",
    "SCHEMA_VERSION", "ARTIFACT_KIND", "to_jsonable", "point",
    "points_from_breakdown", "points_from_series", "figure_record",
    "build_artifact", "write_artifact", "load_artifact",
    "validate_artifact", "point_key", "attach_series", "reset_attached",
    "attached_records", "write_attached",
    "DiffEntry", "DiffResult", "diff_artifacts", "render_diff",
    "DEFAULT_TOLERANCE", "DEFAULT_FLOOR",
]

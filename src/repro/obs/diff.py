"""Per-phase comparison of two ``BENCH_*.json`` artifacts.

This is the CI perf-regression gate: the committed baseline artifact is
diffed against a freshly produced one, and any phase (or point total)
that got *slower* by more than the relative tolerance fails the run.
The modeled device is deterministic, so on an unchanged tree the delta
is exactly zero; a non-zero delta means the performance model — i.e.
the reproduced figures — changed and the baseline must be regenerated
deliberately.

Exit-code contract (mirrors :mod:`repro.analysis`):

- ``0`` — every compared value within tolerance;
- ``1`` — at least one regression (slower phase/total, or a missing
  figure/point/phase that the baseline had);
- ``2`` — usage error (unreadable path, malformed or wrong-schema
  artifact, bad arguments).

Faster-than-baseline values are reported as improvements but do not
fail the gate; metric drift (speedups, Gflop/s, error norms) is
reported for information only — the gate is on modeled time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..errors import ConfigurationError
from .artifact import point_key, validate_artifact

__all__ = ["DiffEntry", "DiffResult", "diff_artifacts", "render_diff",
           "DEFAULT_TOLERANCE", "DEFAULT_FLOOR"]

#: Default relative tolerance of the gate (5 %).
DEFAULT_TOLERANCE = 0.05
#: Phases below this many modeled seconds are never gated (noise floor).
DEFAULT_FLOOR = 1e-9

_STATUS_ORDER = ("regression", "missing", "improvement", "drift", "ok")


@dataclass(frozen=True)
class DiffEntry:
    """One compared value across the two artifacts."""

    figure: str
    point: str          # rendered parameter assignment
    field: str          # "total", a phase tag, or "metric:<name>"
    base: float
    new: float
    status: str         # ok | regression | improvement | drift | missing

    @property
    def delta(self) -> float:
        return self.new - self.base

    @property
    def rel(self) -> float:
        denom = max(abs(self.base), DEFAULT_FLOOR)
        return self.delta / denom


@dataclass
class DiffResult:
    entries: List[DiffEntry]
    #: Informational context lines (schema-version or backend skew
    #: between the two artifacts); never gate the result.
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries
                if e.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def worst(self) -> List[DiffEntry]:
        """Entries sorted most-severe first (for reporting)."""
        rank = {s: i for i, s in enumerate(_STATUS_ORDER)}
        return sorted(self.entries,
                      key=lambda e: (rank[e.status], -abs(e.rel)))


def _params_text(key: str) -> str:
    # point_key is a sorted-JSON params dict; render it compactly.
    return key.replace('"', "").replace("{", "").replace("}", "") \
              .replace(" ", "").replace(":", "=")


def _compare_timing(figure: str, key: str, field: str, base: float,
                    new: float, tol: float, floor: float) -> DiffEntry:
    if max(base, new) <= floor:
        status = "ok"
    else:
        rel = (new - base) / max(base, floor)
        if rel > tol:
            status = "regression"
        elif rel < -tol:
            status = "improvement"
        else:
            status = "ok"
    return DiffEntry(figure, _params_text(key), field, base, new, status)


def diff_artifacts(base: Mapping, new: Mapping,
                   tol: float = DEFAULT_TOLERANCE,
                   floor: float = DEFAULT_FLOOR) -> DiffResult:
    """Compare every figure/point/phase of ``base`` against ``new``."""
    if tol < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tol}")
    if floor < 0:
        raise ConfigurationError(f"floor must be >= 0, got {floor}")
    validate_artifact(base, source="baseline artifact")
    validate_artifact(new, source="new artifact")

    # Cross-version and cross-backend comparisons are legal — v1
    # artifacts simply have no backend/wall-clock fields, and modeled
    # times are backend-independent — but worth surfacing.
    notes: List[str] = []
    bv, nv = base.get("schema_version"), new.get("schema_version")
    if bv != nv:
        notes.append(f"comparing schema v{bv} baseline against v{nv}")
    bb, nb = base.get("backend"), new.get("backend")
    if bb != nb and not (bb is None and nb is None):
        notes.append(f"backends differ: baseline={bb or 'n/a'} "
                     f"new={nb or 'n/a'} (modeled times are "
                     f"backend-independent; wall clock is not)")

    entries: List[DiffEntry] = []
    base_figures: Dict = base["figures"]
    new_figures: Dict = new["figures"]
    for fig, base_entry in sorted(base_figures.items()):
        new_entry = new_figures.get(fig)
        if new_entry is None:
            entries.append(DiffEntry(fig, "*", "figure", 0.0, 0.0,
                                     "missing"))
            continue
        new_points = {point_key(p): p for p in new_entry["points"]}
        for bp in base_entry["points"]:
            key = point_key(bp)
            np_ = new_points.get(key)
            if np_ is None:
                entries.append(DiffEntry(fig, _params_text(key), "point",
                                         0.0, 0.0, "missing"))
                continue
            entries.extend(_diff_point(fig, key, bp, np_, tol, floor))
    return DiffResult(entries, notes=notes)


def _diff_point(fig: str, key: str, base_point: Mapping,
                new_point: Mapping, tol: float, floor: float
                ) -> List[DiffEntry]:
    out: List[DiffEntry] = []
    base_total = base_point.get("total_seconds")
    new_total = new_point.get("total_seconds")
    if base_total is not None:
        if new_total is None:
            out.append(DiffEntry(fig, _params_text(key), "total",
                                 float(base_total), 0.0, "missing"))
        else:
            out.append(_compare_timing(fig, key, "total",
                                       float(base_total),
                                       float(new_total), tol, floor))
    base_phases = base_point.get("phases") or {}
    new_phases = new_point.get("phases") or {}
    for phase, base_secs in base_phases.items():
        if phase not in new_phases:
            if base_secs > floor:
                out.append(DiffEntry(fig, _params_text(key), phase,
                                     float(base_secs), 0.0, "missing"))
            continue
        out.append(_compare_timing(fig, key, phase, float(base_secs),
                                   float(new_phases[phase]), tol, floor))
    # Metrics: informational drift only, never gated.
    base_metrics = base_point.get("metrics") or {}
    new_metrics = new_point.get("metrics") or {}
    for name, bv in base_metrics.items():
        nv = new_metrics.get(name)
        if not isinstance(bv, (int, float)) or \
                not isinstance(nv, (int, float)):
            continue
        rel = abs(nv - bv) / max(abs(bv), floor)
        status = "drift" if rel > tol else "ok"
        out.append(DiffEntry(fig, _params_text(key), f"metric:{name}",
                             float(bv), float(nv), status))
    return out


def render_diff(result: DiffResult, tol: float = DEFAULT_TOLERANCE,
                show_ok: bool = False) -> str:
    """Text report of a diff (regressions first)."""
    from ..bench.reporting import format_table  # lazy: obs !-> bench

    rows: List[Tuple] = []
    for e in result.worst():
        if e.status == "ok" and not show_ok:
            continue
        rows.append([e.status.upper(), e.figure, e.point, e.field,
                     e.base, e.new, f"{e.rel:+.2%}"])
    lines = []
    if rows:
        lines.append(format_table(
            ["status", "figure", "point", "field", "baseline", "new",
             "rel"], rows,
            title=f"BENCH diff (tolerance {tol:.2%})"))
    for note in result.notes:
        lines.append(f"[obs diff note: {note}]")
    regress = len(result.regressions)
    drift = sum(e.status == "drift" for e in result.entries)
    improve = sum(e.status == "improvement" for e in result.entries)
    lines.append(f"[obs diff: {len(result.entries)} compared, "
                 f"{regress} regression(s), {improve} improvement(s), "
                 f"{drift} metric drift(s)]")
    return "\n".join(lines)

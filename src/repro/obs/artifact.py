"""The versioned ``BENCH_*.json`` artifact: the repo's durable record
of the reproduced performance series.

One artifact holds one or more *figures*; each figure holds *points*
keyed by their parameter assignment::

    {
      "schema_version": 2,
      "kind": "repro-bench",
      "label": "fig11" | "smoke" | ...,
      "backend": "simulated",
      "wall_clock_s": 0.041,
      "figures": {
        "fig11": {
          "points": [
            {"params": {"m": 50000, "n": 2500, "k": 54, "l": 64,
                        "q": 1, "ng": 1},
             "phases": {"prng": ..., "sampling": ..., ...},
             "total_seconds": ...,
             "metrics": {"qp3_seconds": ..., "speedup": ...,
                         "gflops": ...}}
          ],
          "metrics": {...figure-level scalars...},
          "meta": {...}
        }
      }
    }

``phases`` are modeled seconds per phase-legend tag and sum to
``total_seconds`` (the executor clock) for serial runs; under the
stream scheduler's ``overlap=on`` schedule the phase sum can *exceed*
``total_seconds`` (the critical path), never undershoot it.  The diff
gate in :mod:`repro.obs.diff` compares per-phase values and totals
independently, so both layouts diff cleanly.  Benches publish their
reproduced series with :func:`attach_series`, which both records them
on ``benchmark.extra_info`` (so pytest-benchmark JSON keeps them) and
registers them for the session-level artifact the CI jobs upload.

Schema history
--------------
- **v2** (current): adds the top-level ``backend`` (compute-backend
  registry name that executed the math) and ``wall_clock_s`` (real
  host/device seconds spent inside backend kernels) fields, recorded
  alongside the modeled totals.
- **v1**: modeled data only.

Readers accept every version in :data:`SUPPORTED_SCHEMA_VERSIONS`;
:func:`load_artifact` and ``repro-bench obs diff`` handle v1 and v2
artifacts interchangeably (the v2 fields simply read as absent on v1
documents), so a perf gate can compare across the version bump.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..gpu.trace import PHASES

__all__ = [
    "SCHEMA_VERSION", "SUPPORTED_SCHEMA_VERSIONS", "ARTIFACT_KIND",
    "to_jsonable", "point",
    "points_from_breakdown", "points_from_series", "figure_record",
    "build_artifact", "write_artifact", "load_artifact",
    "validate_artifact", "point_key", "attach_series", "reset_attached",
    "attached_records", "write_attached",
]

SCHEMA_VERSION = 2
#: Versions readers accept; writers always emit :data:`SCHEMA_VERSION`.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)
ARTIFACT_KIND = "repro-bench"

#: Parameter keys recognized in the breakdown-point dicts produced by
#: :func:`repro.bench.figures._point` (the sweep identity of a point).
_BREAKDOWN_PARAMS = ("m", "n", "k", "l", "q", "ng", "overlap")


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment data (numpy scalars/arrays,
    dicts/lists/tuples) into JSON-safe structures."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    raise ConfigurationError(
        f"cannot serialize {type(value).__name__} to JSON")


# ----------------------------------------------------------------------
# point constructors
# ----------------------------------------------------------------------
def point(params: Mapping[str, Any],
          phases: Optional[Mapping[str, float]] = None,
          total_seconds: Optional[float] = None,
          metrics: Optional[Mapping[str, Any]] = None) -> Dict:
    """One artifact point; validates the phase tags."""
    phases = dict(phases or {})
    for name in phases:
        if name not in PHASES:
            raise ConfigurationError(
                f"unknown phase {name!r} in artifact point; expected "
                f"one of {PHASES}")
    if total_seconds is None and phases:
        total_seconds = float(sum(phases.values()))
    out: Dict = {"params": to_jsonable(dict(params))}
    if phases:
        out["phases"] = to_jsonable(phases)
    if total_seconds is not None:
        out["total_seconds"] = float(total_seconds)
    if metrics:
        out["metrics"] = to_jsonable(dict(metrics))
    return out


def points_from_breakdown(points: Sequence[Mapping[str, Any]]
                          ) -> List[Dict]:
    """Convert ``repro.bench.figures`` breakdown points (the Figure
    11-15 dicts with ``breakdown``/``total``) into artifact points.
    Scalar extras (``qp3``, ``speedup``, ``gflops``, ...) land in the
    point's metrics."""
    out = []
    for p in points:
        params = {k: p[k] for k in _BREAKDOWN_PARAMS if k in p}
        if not params:
            raise ConfigurationError(
                f"breakdown point has no recognized parameters: "
                f"{sorted(p)}")
        metrics = {k: v for k, v in p.items()
                   if k not in _BREAKDOWN_PARAMS
                   and k not in ("breakdown", "total")
                   and isinstance(v, (int, float, np.integer, np.floating))}
        out.append(point(params, phases=p.get("breakdown"),
                         total_seconds=p.get("total"), metrics=metrics))
    return out


def points_from_series(x_name: str, series: Mapping[str, Sequence]
                       ) -> List[Dict]:
    """Convert a series dict (``{"m": [...], "cholqr": [...], ...}``,
    the Figure 7-10/14 shape) into one artifact point per x value."""
    if x_name not in series:
        raise ConfigurationError(
            f"series has no x column {x_name!r}; got {sorted(series)}")
    xs = list(series[x_name])
    out = []
    for i, x in enumerate(xs):
        metrics = {}
        for key, values in series.items():
            if key == x_name:
                continue
            if len(values) != len(xs):
                raise ConfigurationError(
                    f"series {key!r} has {len(values)} values for "
                    f"{len(xs)} x points")
            metrics[key] = values[i]
        out.append(point({x_name: x}, metrics=metrics))
    return out


# ----------------------------------------------------------------------
# artifact documents
# ----------------------------------------------------------------------
def figure_record(figure: str,
                  points: Optional[Sequence[Mapping]] = None,
                  breakdown_points: Optional[Sequence[Mapping]] = None,
                  series: Optional[Mapping[str, Sequence]] = None,
                  x_name: Optional[str] = None,
                  metrics: Optional[Mapping[str, Any]] = None,
                  meta: Optional[Mapping[str, Any]] = None) -> Dict:
    """One figure entry, from whichever raw shape the driver produced."""
    if not figure:
        raise ConfigurationError("figure name must be non-empty")
    pts: List[Dict] = [point(**{k: v for k, v in p.items()
                                if k in ("params", "phases",
                                         "total_seconds", "metrics")})
                       for p in (points or [])]
    if breakdown_points is not None:
        pts.extend(points_from_breakdown(breakdown_points))
    if series is not None:
        if x_name is None:
            raise ConfigurationError("series export needs x_name")
        pts.extend(points_from_series(x_name, series))
    record: Dict = {"figure": str(figure), "points": pts}
    if metrics:
        record["metrics"] = to_jsonable(dict(metrics))
    if meta:
        record["meta"] = to_jsonable(dict(meta))
    return record


def build_artifact(records: Sequence[Mapping], label: str = "run",
                   backend: Optional[str] = None,
                   wall_clock_s: Optional[float] = None) -> Dict:
    """Assemble figure records into one artifact document.

    Records for the same figure merge: points are deduplicated by
    parameter key (later records win), figure metrics are merged.
    ``backend`` names the compute backend that produced the numbers
    (defaults to the session default's name) and ``wall_clock_s``
    records the real seconds its kernels took — the v2 fields that sit
    next to the modeled totals.
    """
    figures: Dict[str, Dict] = {}
    for record in records:
        fig = record["figure"]
        entry = figures.setdefault(
            fig, {"points": [], "metrics": {}, "meta": {}})
        by_key = {point_key(p): p for p in entry["points"]}
        for p in record.get("points", []):
            by_key[point_key(p)] = p
        entry["points"] = list(by_key.values())
        entry["metrics"].update(record.get("metrics", {}))
        entry["meta"].update(record.get("meta", {}))
    for entry in figures.values():
        if not entry["metrics"]:
            del entry["metrics"]
        if not entry["meta"]:
            del entry["meta"]
    if backend is None:
        from ..backends import default_backend_name
        backend = default_backend_name()
    return {"schema_version": SCHEMA_VERSION, "kind": ARTIFACT_KIND,
            "label": str(label), "backend": str(backend),
            "wall_clock_s": float(wall_clock_s or 0.0),
            "figures": figures}


def point_key(p: Mapping) -> str:
    """Stable identity of a point: its sorted parameter assignment."""
    return json.dumps(to_jsonable(p.get("params", {})), sort_keys=True)


def write_artifact(path: str, doc: Mapping) -> None:
    validate_artifact(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> Dict:
    """Read and validate a ``BENCH_*.json`` document."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read artifact {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed JSON in {path}: {exc}")
    validate_artifact(doc, source=path)
    return doc


def validate_artifact(doc: Any, source: str = "artifact") -> None:
    """Structural validation of one artifact document."""
    if not isinstance(doc, Mapping):
        raise ConfigurationError(f"{source}: not a JSON object")
    version = doc.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ConfigurationError(
            f"{source}: schema_version {version!r} is not supported "
            f"(accepted: {SUPPORTED_SCHEMA_VERSIONS})")
    if version >= 2:
        if not isinstance(doc.get("backend"), str):
            raise ConfigurationError(
                f"{source}: schema v{version} requires a string "
                f"'backend' field")
        if not isinstance(doc.get("wall_clock_s"), (int, float)):
            raise ConfigurationError(
                f"{source}: schema v{version} requires a numeric "
                f"'wall_clock_s' field")
    if doc.get("kind") != ARTIFACT_KIND:
        raise ConfigurationError(
            f"{source}: kind {doc.get('kind')!r} is not {ARTIFACT_KIND!r}")
    figures = doc.get("figures")
    if not isinstance(figures, Mapping):
        raise ConfigurationError(f"{source}: missing figures object")
    for fig, entry in figures.items():
        if not isinstance(entry, Mapping) or \
                not isinstance(entry.get("points"), list):
            raise ConfigurationError(
                f"{source}: figure {fig!r} needs a points list")
        for i, p in enumerate(entry["points"]):
            if not isinstance(p, Mapping) or \
                    not isinstance(p.get("params"), Mapping):
                raise ConfigurationError(
                    f"{source}: figure {fig!r} point {i} needs params")
            for name in (p.get("phases") or {}):
                if name not in PHASES:
                    raise ConfigurationError(
                        f"{source}: figure {fig!r} point {i} has unknown "
                        f"phase {name!r}")


# ----------------------------------------------------------------------
# bench attachment (the RS107 contract)
# ----------------------------------------------------------------------
#: Figure records attached during the current pytest session; the
#: benchmarks/ conftest writes them to $REPRO_BENCH_ARTIFACT on exit.
_ATTACHED: List[Dict] = []


def attach_series(benchmark, figure: str, *,
                  points: Optional[Sequence[Mapping]] = None,
                  breakdown_points: Optional[Sequence[Mapping]] = None,
                  series: Optional[Mapping[str, Sequence]] = None,
                  x_name: Optional[str] = None,
                  metrics: Optional[Mapping[str, Any]] = None,
                  meta: Optional[Mapping[str, Any]] = None) -> Dict:
    """Publish a bench's reproduced series.

    The canonical record lands on ``benchmark.extra_info`` (under
    ``"repro_obs"``, merged with any figure-level metrics for the
    pytest-benchmark JSON output) and is registered for the
    session-level ``BENCH_*.json`` artifact.  This is the one sanctioned
    path for reproduced numbers out of ``benchmarks/`` — rule RS107 of
    ``python -m repro.analysis`` flags benches that bypass it.
    """
    record = figure_record(figure, points=points,
                           breakdown_points=breakdown_points,
                           series=series, x_name=x_name,
                           metrics=metrics, meta=meta)
    extra = getattr(benchmark, "extra_info", None)
    if extra is None:
        raise ConfigurationError(
            "attach_series needs a pytest-benchmark fixture (or any "
            "object with an extra_info mapping)")
    existing = extra.get("repro_obs")
    if existing is not None:
        record = {
            "figure": record["figure"],
            "points": list(existing.get("points", [])) + record["points"],
            "metrics": {**existing.get("metrics", {}),
                        **record.get("metrics", {})},
            "meta": {**existing.get("meta", {}), **record.get("meta", {})},
        }
    extra["repro_obs"] = record
    for key, value in (record.get("metrics") or {}).items():
        extra[key] = value
    _ATTACHED.append(record)
    return record


#: perf_counter at the last reset; write_attached reports the session
#: wall-clock (attach-to-write) in the artifact's ``wall_clock_s``.
_SESSION_T0: List[float] = []


def reset_attached() -> None:
    _ATTACHED.clear()
    _SESSION_T0[:] = [time.perf_counter()]


def attached_records() -> List[Dict]:
    return list(_ATTACHED)


def write_attached(path: str, label: str = "session") -> Optional[Dict]:
    """Write every record attached this session to one artifact."""
    if not _ATTACHED:
        return None
    wall = (time.perf_counter() - _SESSION_T0[0]) if _SESSION_T0 else 0.0
    doc = build_artifact(_ATTACHED, label=label, wall_clock_s=wall)
    write_artifact(path, doc)
    return doc

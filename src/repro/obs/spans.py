"""Hierarchical spans over the simulated-GPU executor.

A run is recorded as a three-level span tree::

    run                      (one per algorithm invocation)
    └── step                 (a contiguous stretch of one phase tag)
        └── kernel           (one SimulatedGPU.charge call)

Kernel spans carry the modeled seconds, a FLOP estimate and the bytes
moved (both from the :mod:`repro.perfmodel.costs` word model via the
executor timing hooks), the device id, and the device-memory
high-water mark sampled at charge time.  The recorder lays spans out
on a single modeled clock — the same sequential layout
:meth:`repro.gpu.trace.TimeLine.to_chrome_trace` uses — so the span
tree, the timeline, and the Chrome-trace export all agree on phase
attribution and totals.

Stream-scheduled work (:mod:`repro.gpu.streams`) places kernels at an
explicit ``start`` on a named per-device ``stream`` instead of the
sequential clock; the recorder clock then tracks the max end time (the
critical path).  Symmetric multi-device work arrives once *accounted*
(it feeds the per-phase counters) plus unaccounted mirror spans for
the other devices, which appear in the tree and the Chrome trace but
never in the totals.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..gpu.trace import PHASES

__all__ = ["Span", "PhaseCounter", "SpanRecorder"]

SPAN_KINDS = ("run", "step", "kernel")


@dataclass
class Span:
    """One node of the span tree (all times are modeled seconds)."""

    name: str
    kind: str
    start: float = 0.0
    duration: float = 0.0
    phase: Optional[str] = None
    device_id: int = 0
    flops: float = 0.0
    bytes_moved: float = 0.0
    memory_high_water: int = 0
    #: Stream name for scheduler-placed kernels (None = serial clock).
    stream: Optional[str] = None
    #: False for mirror spans of symmetric multi-device work: they
    #: appear in the tree/trace but not in the counters or totals.
    accounted: bool = True
    #: Free-form tags (e.g. serve request ids) so concurrent requests
    #: sharing one recorder stay distinguishable in the Chrome trace.
    labels: Tuple[str, ...] = ()
    children: List["Span"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in SPAN_KINDS:
            raise ConfigurationError(
                f"unknown span kind {self.kind!r}; expected {SPAN_KINDS}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict:
        """Plain-data view (used by tests and the artifact metadata)."""
        return {
            "name": self.name, "kind": self.kind, "phase": self.phase,
            "start": self.start, "duration": self.duration,
            "device_id": self.device_id, "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "memory_high_water": self.memory_high_water,
            "stream": self.stream, "accounted": self.accounted,
            "labels": list(self.labels),
            "children": [c.to_dict() for c in self.children],
        }


@dataclass
class PhaseCounter:
    """Aggregated per-phase counters across one recorded run."""

    seconds: float = 0.0
    calls: int = 0
    flops: float = 0.0
    bytes_moved: float = 0.0

    def add(self, seconds: float, flops: float, bytes_moved: float) -> None:
        self.seconds += seconds
        self.calls += 1
        self.flops += flops
        self.bytes_moved += bytes_moved

    def to_dict(self) -> Dict:
        return {"seconds": self.seconds, "calls": self.calls,
                "flops": self.flops, "bytes_moved": self.bytes_moved}


class SpanRecorder:
    """Collects the span tree and counters for one (or more) runs.

    Attach to an executor with ``executor.attach_recorder(recorder)``;
    every subsequent :meth:`repro.gpu.device.SimulatedGPU.charge`
    lands here as a kernel span.  Kernel spans arriving with a phase
    different from the open step close that step and open a new one,
    so the step level reflects the algorithm's actual phase sequence
    (prng, sampling, the gemm/orth interleave, qrcp, qr, ...).
    """

    def __init__(self) -> None:
        self.runs: List[Span] = []
        self.clock = 0.0
        self._run: Optional[Span] = None
        self._step: Optional[Span] = None
        self.counters: Dict[str, PhaseCounter] = {}
        self.peak_memory_bytes = 0
        #: Races mirrored from an attached stream-scheduler race checker
        #: (dicts in the :meth:`repro.analysis.races.Race.to_dict`
        #: shape), so the artifact carries them next to the spans.
        self.races: List[Dict] = []
        #: Full :meth:`repro.analysis.races.RaceChecker.report` document
        #: of the run, set by the bench harness under ``race_check``.
        self.race_report: Optional[Dict] = None
        #: Registry name of the compute backend that ran the math
        #: (set by :meth:`note_backend`; None until a backend reports).
        self.backend_name: Optional[str] = None
        #: True when the backend feeds the modeled clock (figures must
        #: be bit-reproducible).
        self.backend_is_model: bool = True
        #: The watched backend, polled for real wall-clock at readout.
        self._backend = None
        #: Labels applied to every span recorded while a
        #: :meth:`labelled` context is open (e.g. a serve request id).
        self._labels: Tuple[str, ...] = ()
        #: Named LRU-cache counter snapshots (``{"hits", "misses",
        #: "entries"}`` per cache), noted by the harness so the
        #: matrix-gallery and plan caches are observable in BENCH
        #: artifacts; see :meth:`note_cache`.
        self.cache_counters: Dict[str, Dict[str, int]] = {}

    @contextmanager
    def labelled(self, *labels: str):
        """Tag every span recorded inside the context with ``labels``.

        Serve-layer usage: the continuous batcher opens
        ``recorder.labelled(req_a, req_b, ...)`` around a coalesced
        kernel so the shared span lists every request riding the batch,
        while per-request pipelines run under their own single-id
        context.  Contexts nest; duplicate labels collapse.
        """
        previous = self._labels
        merged = list(previous)
        for lab in labels:
            lab = str(lab)
            if lab not in merged:
                merged.append(lab)
        self._labels = tuple(merged)
        try:
            yield self
        finally:
            self._labels = previous

    def note_backend(self, backend) -> None:
        """Register the :class:`repro.backends.base.ComputeBackend`
        whose kernels back this run.  The backend's name travels into
        BENCH artifacts, and its ``stats.wall_seconds`` — the *real*
        host/device wall-clock — is surfaced via
        :attr:`backend_wall_seconds` next to the modeled totals."""
        self._backend = backend
        self.backend_name = getattr(backend, "name", None)
        self.backend_is_model = bool(getattr(backend, "is_model", True))

    @property
    def backend_wall_seconds(self) -> float:
        """Real seconds the backend spent inside kernels (0.0 when no
        backend was registered, e.g. purely symbolic runs)."""
        if self._backend is None:
            return 0.0
        return float(self._backend.stats.wall_seconds)

    def note_cache(self, name: str, info: Dict[str, int]) -> None:
        """Snapshot one named LRU cache's counters onto this recorder.

        ``info`` is the ``{"hits", "misses", "entries"}`` dict the
        repo's caches expose (:func:`repro.matrices.registry.
        matrix_cache_info`, :func:`repro.tune.plan_cache_info`).  Later
        snapshots of the same name replace earlier ones, so the
        recorder ends up with the run's final counter state — the
        values BENCH exports publish as drift-only metrics.
        """
        if not name:
            raise ConfigurationError("cache name must be non-empty")
        self.cache_counters[name] = {str(k): int(v)
                                     for k, v in dict(info).items()}

    def record_race(self, race: Dict) -> None:
        """Mirror one detected race (called by the stream scheduler)."""
        self.races.append(dict(race))

    # -- run management ---------------------------------------------------
    def begin_run(self, name: str = "run") -> Span:
        """Open a run span; implicit for bare ``record_kernel`` calls."""
        if self._run is not None:
            raise ConfigurationError(
                f"run {self._run.name!r} is still open; end it first")
        self._run = Span(name=name, kind="run", start=self.clock,
                         labels=self._labels)
        self.runs.append(self._run)
        return self._run

    def end_run(self) -> Span:
        if self._run is None:
            raise ConfigurationError("no open run to end")
        self._close_step()
        run, self._run = self._run, None
        run.duration = self.clock - run.start
        return run

    def run_span(self, name: str = "run") -> "_RunContext":
        """``with recorder.run_span("fig11 m=50000"): ...``"""
        return _RunContext(self, name)

    # -- kernel ingestion (called by SimulatedGPU.charge) -----------------
    def record_kernel(self, phase: str, label: str, seconds: float,
                      flops: float = 0.0, bytes_moved: float = 0.0,
                      device_id: int = 0, memory_high_water: int = 0,
                      stream: Optional[str] = None,
                      start: Optional[float] = None,
                      accounted: bool = True,
                      labels: Sequence[str] = ()) -> Span:
        """Ingest one kernel charge.

        Without ``start`` the kernel is laid out sequentially at the
        current clock (the serial single-device model).  Stream-
        scheduled kernels pass their DAG-computed ``start`` (plus the
        ``stream`` name); the clock then advances to the max end seen,
        i.e. the critical path.  ``accounted=False`` records a mirror
        span (symmetric work on another device) that never touches the
        counters, the clock, or the peak-memory aggregate.  ``labels``
        (merged with any open :meth:`labelled` context) tag the span
        with request/run identifiers for the Chrome-trace export.
        """
        if phase not in PHASES:
            raise ConfigurationError(
                f"unknown phase {phase!r}; expected one of {PHASES}")
        if seconds < 0:
            raise ConfigurationError(f"negative span duration: {seconds}")
        if start is not None and start < 0:
            raise ConfigurationError(f"negative span start: {start}")
        placed = self.clock if start is None else start
        if self._run is None:
            self.begin_run()
        if self._step is None or self._step.phase != phase:
            self._close_step()
            self._step = Span(name=phase, kind="step", phase=phase,
                              start=min(self.clock, placed),
                              labels=self._labels)
            self._run.children.append(self._step)
        merged = list(self._labels)
        for lab in labels:
            lab = str(lab)
            if lab not in merged:
                merged.append(lab)
        kernel = Span(name=label or phase, kind="kernel", phase=phase,
                      start=placed, duration=seconds,
                      device_id=device_id, flops=flops,
                      bytes_moved=bytes_moved,
                      memory_high_water=memory_high_water,
                      stream=stream, accounted=accounted,
                      labels=tuple(merged))
        self._step.children.append(kernel)
        self._step.flops += flops
        self._step.bytes_moved += bytes_moved
        if accounted:
            self.clock = max(self.clock, placed + seconds)
            self.counters.setdefault(phase, PhaseCounter()).add(
                seconds, flops, bytes_moved)
            self.peak_memory_bytes = max(self.peak_memory_bytes,
                                         int(memory_high_water))
        return kernel

    def _close_step(self) -> None:
        if self._step is not None:
            self._step.duration = self.clock - self._step.start
            self._step = None

    # -- aggregate views ---------------------------------------------------
    @property
    def total(self) -> float:
        """Total modeled seconds across every recorded kernel."""
        return sum(c.seconds for c in self.counters.values())

    @property
    def total_flops(self) -> float:
        return sum(c.flops for c in self.counters.values())

    @property
    def total_bytes_moved(self) -> float:
        return sum(c.bytes_moved for c in self.counters.values())

    def achieved_gflops(self) -> float:
        """FLOPs over modeled seconds (0 when nothing was timed)."""
        t = self.total
        return self.total_flops / (t * 1e9) if t > 0 else 0.0

    def kernel_spans(self) -> Iterator[Span]:
        self._sync_open()
        for run in self.runs:
            for span in run.walk():
                if span.kind == "kernel":
                    yield span

    def spans(self) -> List[Span]:
        """The recorded run spans (open spans get a current-clock end)."""
        self._sync_open()
        return list(self.runs)

    def _sync_open(self) -> None:
        """Give still-open run/step spans an up-to-date duration."""
        if self._step is not None:
            self._step.duration = self.clock - self._step.start
        if self._run is not None:
            self._run.duration = self.clock - self._run.start

    def counters_dict(self) -> Dict[str, Dict]:
        """Per-phase counters in the paper's legend order."""
        return {p: self.counters[p].to_dict()
                for p in PHASES if p in self.counters}


class _RunContext:
    def __init__(self, recorder: SpanRecorder, name: str):
        self.recorder = recorder
        self.name = name
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self.recorder.begin_run(self.name)
        return self.span

    def __exit__(self, *exc) -> None:
        self.recorder.end_run()

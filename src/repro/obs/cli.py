"""``repro-bench obs`` — run, render, and diff observability artifacts.

Subcommands::

    repro-bench obs run fig11 --bench BENCH_fig11.json --trace fig11.trace.json
    repro-bench obs run fig15 --race-check --race-report race-report.json
    repro-bench obs render BENCH_fig11.json
    repro-bench obs diff benchmarks/baseline/BENCH_smoke.json BENCH_smoke.json --tol 0.05

``run`` executes one figure's sweep on the instrumented simulated
device and writes the ``BENCH_<figure>.json`` series artifact and/or a
Chrome-trace JSON of the figure's representative run (open it in
Perfetto).  ``diff`` is the CI perf gate; its exit codes are 0
(within tolerance), 1 (regression), 2 (usage error) — see
:mod:`repro.obs.diff`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError
from .artifact import load_artifact
from .diff import (DEFAULT_FLOOR, DEFAULT_TOLERANCE, diff_artifacts,
                   render_diff)

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench obs",
        description="Observability artifacts: produce, render, and "
                    "diff BENCH_*.json / Chrome-trace exports.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one figure instrumented and export artifacts")
    run.add_argument("figure",
                     help="figure to run (a phase-breakdown figure: "
                          "fig11, fig12, fig13, or fig15)")
    run.add_argument("--bench", metavar="PATH", default=None,
                     help="write the BENCH_<figure>.json series "
                          "artifact to PATH")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome-trace JSON of the figure's "
                          "representative run to PATH (open in "
                          "Perfetto)")
    run.add_argument("--label", default=None,
                     help="artifact label (default: the figure name)")
    run.add_argument("--backend", metavar="NAME", default=None,
                     help="compute backend for the run (simulated, "
                          "numpy, torch, cupy, or auto); defaults to "
                          "$REPRO_BACKEND or 'simulated'.  Recorded in "
                          "the artifact's schema-v2 backend field")
    run.add_argument("--overlap", choices=("on", "off"), default="on",
                     help="multi-GPU stream schedule for the --trace "
                          "run: 'on' pipelines compute against comms "
                          "(default), 'off' is the serial-sum ablation; "
                          "--bench always exports both fig15 series")
    run.add_argument("--pipeline-chunks", metavar="N", type=int,
                     default=None,
                     help="gather pipeline depth for the figure's "
                          "representative multi-GPU run (>= 1; "
                          "multi-GPU figures only).  Prefer a tuned "
                          "plan ('repro-bench tune') over hand-set "
                          "values")
    run.add_argument("--race-check", action="store_true",
                     help="run the figure's representative config under "
                          "the happens-before race sanitizer and print "
                          "the race report; exits 1 if any race is "
                          "found (see docs/static_analysis.md)")
    run.add_argument("--race-report", metavar="PATH", default=None,
                     help="with --race-check, also write the "
                          "machine-readable race report JSON to PATH")

    render = sub.add_parser("render",
                            help="print one artifact as text tables")
    render.add_argument("artifact", help="BENCH_*.json path")

    diff = sub.add_parser(
        "diff", help="compare two artifacts (the CI perf gate)")
    diff.add_argument("baseline", help="baseline BENCH_*.json")
    diff.add_argument("new", help="freshly produced BENCH_*.json")
    diff.add_argument("--tol", type=float, default=DEFAULT_TOLERANCE,
                      help="relative tolerance before a slower phase "
                           f"fails the gate (default {DEFAULT_TOLERANCE})")
    diff.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                      help="modeled seconds below which phases are "
                           f"never gated (default {DEFAULT_FLOOR})")
    diff.add_argument("--show-ok", action="store_true",
                      help="also list values that matched")
    return parser


def _cmd_run(args) -> int:
    # Imports are deferred so `obs diff` stays light for CI.
    from ..bench.export import OBS_FIGURES, write_figure_artifact
    from ..bench.harness import observed_fixed_rank
    from .chrome import write_chrome_trace

    if args.figure not in OBS_FIGURES:
        print(f"obs run: unsupported figure {args.figure!r}; supported: "
              f"{', '.join(sorted(OBS_FIGURES))}", file=sys.stderr)
        return EXIT_ERROR
    if not args.bench and not args.trace and not args.race_check:
        print("obs run: nothing to do; pass --bench, --trace, and/or "
              "--race-check", file=sys.stderr)
        return EXIT_ERROR
    if args.race_report and not args.race_check:
        print("obs run: --race-report requires --race-check",
              file=sys.stderr)
        return EXIT_ERROR
    if args.backend:
        # Resolve eagerly for a clean error, then export for every
        # executor the figure sweep constructs downstream.
        import os

        from ..backends import make_backend
        make_backend(args.backend)
        os.environ["REPRO_BACKEND"] = args.backend
    # Explicit knob overrides for the representative run (validated by
    # the harness: multi-GPU only, >= 1; errors surface as exit 2).
    overrides = {}
    if args.pipeline_chunks is not None:
        overrides["pipeline_chunks"] = args.pipeline_chunks
    races_found = 0
    if args.race_check:
        from ..analysis.races import render_report, write_report
        _, recorder = observed_fixed_rank(
            args.figure, overlap=(args.overlap != "off"), race_check=True,
            **overrides)
        report = recorder.race_report or {}
        print(render_report(report))
        if args.race_report:
            write_report(args.race_report, report)
            print(f"[wrote {args.race_report}]")
        races_found = report.get("race_count", 0)
    if args.trace:
        timing, recorder = observed_fixed_rank(
            args.figure, overlap=(args.overlap != "off"), **overrides)
        write_chrome_trace(args.trace, recorder,
                           process_name=f"simulated-gpu {args.figure}")
        print(f"[wrote {args.trace}: {sum(1 for _ in recorder.kernel_spans())} "
              f"kernel spans, {timing.total:.4f} modeled s, "
              f"{timing.gflops:.1f} Gflop/s, peak memory "
              f"{timing.peak_memory_bytes / 1e9:.2f} GB]")
    if args.bench:
        doc = write_figure_artifact(args.bench, args.figure,
                                    label=args.label,
                                    backend=args.backend)
        npts = len(doc["figures"][args.figure]["points"])
        print(f"[wrote {args.bench}: {npts} points, "
              f"backend={doc['backend']}, "
              f"wall_clock_s={doc['wall_clock_s']:.3f}]")
    return EXIT_REGRESSION if races_found else EXIT_OK


def _cmd_render(args) -> int:
    from ..bench.reporting import format_table
    from ..gpu.trace import PHASES

    doc = load_artifact(args.artifact)
    print(f"artifact {args.artifact}: label={doc['label']!r} "
          f"schema_version={doc['schema_version']}")
    for fig, entry in sorted(doc["figures"].items()):
        points = entry["points"]
        phase_cols = [p for p in PHASES
                      if any(p in (pt.get("phases") or {})
                             for pt in points)]
        metric_cols = sorted({m for pt in points
                              for m in (pt.get("metrics") or {})})
        headers = (["params"] + phase_cols
                   + (["total"] if any("total_seconds" in pt
                                       for pt in points) else [])
                   + metric_cols)
        rows = []
        for pt in points:
            params = ",".join(f"{k}={v}"
                              for k, v in sorted(pt["params"].items()))
            row = [params]
            row += [(pt.get("phases") or {}).get(p, "") for p in phase_cols]
            if "total" in headers:
                row.append(pt.get("total_seconds", ""))
            row += [(pt.get("metrics") or {}).get(m, "")
                    for m in metric_cols]
            rows.append(row)
        print()
        print(format_table(headers, rows, title=f"figure {fig}"))
        for name, value in sorted((entry.get("metrics") or {}).items()):
            print(f"  {name} = {value}")
    return EXIT_OK


def _cmd_diff(args) -> int:
    base = load_artifact(args.baseline)
    new = load_artifact(args.new)
    result = diff_artifacts(base, new, tol=args.tol, floor=args.floor)
    print(render_diff(result, tol=args.tol, show_ok=args.show_ok))
    return EXIT_OK if result.ok else EXIT_REGRESSION


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors, 0 on --help; keep the code.
        return int(exc.code or 0)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "render":
            return _cmd_render(args)
        return _cmd_diff(args)
    except ReproError as exc:
        print(f"repro-bench obs: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())

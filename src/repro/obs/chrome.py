"""Chrome trace-event export of a recorded run.

Dump with :func:`write_chrome_trace` and open the file in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: the run and its
phase steps appear on a "run" thread, the kernels on one thread per
phase, all in microseconds of modeled time.

Stream-scheduled kernels (multi-GPU runs through
:mod:`repro.gpu.streams`) additionally land on one *process per
device* — ``gpu0``, ``gpu1``, ... plus ``host`` — with one thread per
named stream (``compute``, ``comms``, ``h2d``, ``d2h`` / ``cpu``,
``pcie``), so Perfetto renders the actual compute-communication
overlap per device.

The emitted document is the object form of the trace-event format::

    {"traceEvents": [...], "displayTimeUnit": "ms"}

with metadata ("M") events naming the process and threads and complete
("X") events for every span.  :func:`validate_chrome_trace` checks the
structural contract the viewers rely on and is exercised by the
exporter round-trip tests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from ..errors import ConfigurationError
from ..gpu.trace import PHASES
from .spans import Span, SpanRecorder

__all__ = ["spans_to_chrome", "chrome_document", "write_chrome_trace",
           "validate_chrome_trace"]

#: Thread ids: 0 is the run/step thread, phases follow in legend order.
_RUN_TID = 0
_PHASE_TIDS = {name: i + 1 for i, name in enumerate(PHASES)}

#: Stream-scheduled kernels get one process per device: pid 1 is the
#: host (cpu/pcie streams), GPUs start at pid 2 (gpu0 -> 2, gpu1 -> 3,
#: ...), leaving pid 0 for the run/phase layout above.
_HOST_PID = 1
_DEVICE_PID_BASE = 2
_STREAM_TIDS = {"compute": 0, "comms": 1, "h2d": 2, "d2h": 3,
                "cpu": 0, "pcie": 1}


def _meta(pid: int, tid: int, name: str, value: str) -> Dict:
    return {"ph": "M", "pid": pid, "tid": tid, "name": name,
            "args": {"name": value}}


def _stream_track(span: Span) -> tuple:
    """(pid, tid, process name) of a stream-scheduled kernel span."""
    if span.device_id < 0:
        return _HOST_PID, _STREAM_TIDS[span.stream], "host"
    return (_DEVICE_PID_BASE + span.device_id, _STREAM_TIDS[span.stream],
            f"gpu{span.device_id}")


def spans_to_chrome(recorder: Union[SpanRecorder, List[Span]],
                    process_name: str = "simulated-gpu",
                    pid: int = 0) -> List[Dict]:
    """Flatten a recorder's span tree into trace events."""
    runs = recorder.spans() if isinstance(recorder, SpanRecorder) \
        else list(recorder)
    events: List[Dict] = [_meta(pid, _RUN_TID, "process_name", process_name),
                          _meta(pid, _RUN_TID, "thread_name", "run")]
    for phase, tid in _PHASE_TIDS.items():
        events.append(_meta(pid, tid, "thread_name", phase))
    seen_tracks = set()
    body: List[Dict] = []
    for run in runs:
        for span in run.walk():
            if span.kind == "kernel" and span.stream is not None:
                span_pid, tid, pname = _stream_track(span)
                if (span_pid, -1) not in seen_tracks:
                    seen_tracks.add((span_pid, -1))
                    events.append(_meta(span_pid, 0, "process_name", pname))
                if (span_pid, tid) not in seen_tracks:
                    seen_tracks.add((span_pid, tid))
                    events.append(_meta(span_pid, tid, "thread_name",
                                        span.stream))
            else:
                span_pid = pid
                tid = (_RUN_TID if span.kind in ("run", "step")
                       else _PHASE_TIDS[span.phase])
            event = {
                "ph": "X",
                "pid": span_pid,
                "tid": tid,
                "name": span.name,
                "cat": span.phase or span.kind,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
            }
            if span.kind == "kernel":
                event["args"] = {
                    "device_id": span.device_id,
                    "flops": span.flops,
                    "bytes_moved": span.bytes_moved,
                    "memory_high_water": span.memory_high_water,
                    "accounted": span.accounted,
                }
                if span.stream is not None:
                    event["args"]["stream"] = span.stream
                if span.labels:
                    event["args"]["labels"] = list(span.labels)
            elif span.labels:
                event["args"] = {"labels": list(span.labels)}
            body.append(event)
    return events + body


def chrome_document(events: List[Dict]) -> Dict:
    """Wrap trace events in the JSON-object container format."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str,
                       recorder: Union[SpanRecorder, List[Span]],
                       process_name: str = "simulated-gpu") -> Dict:
    """Export a recorder to ``path``; returns the written document."""
    events = spans_to_chrome(recorder, process_name=process_name)
    validate_chrome_trace(events)
    doc = chrome_document(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def validate_chrome_trace(events: List[Dict]) -> None:
    """Check the trace-event structural contract.

    Raises :class:`repro.errors.ConfigurationError` on the first
    malformed event; returning means every event would load in
    Perfetto / ``chrome://tracing``.
    """
    if not isinstance(events, list) or not events:
        raise ConfigurationError("trace must be a non-empty event list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ConfigurationError(f"event {i} is not an object: {ev!r}")
        ph = ev.get("ph")
        if ph not in ("M", "X"):
            raise ConfigurationError(
                f"event {i} has unsupported phase type {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                raise ConfigurationError(f"event {i} is missing {key!r}")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                raise ConfigurationError(
                    f"metadata event {i} needs an args object")
            continue
        for key in ("ts", "dur"):
            value = ev.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ConfigurationError(
                    f"event {i} has invalid {key}: {value!r}")

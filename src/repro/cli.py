"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli fig11
    python -m repro.cli fig06 --full-scale
    python -m repro.cli all

Performance figures run on the simulated device in milliseconds;
numerics figures (6, 16, 17) compute real matrices at reduced default
sizes unless ``--full-scale`` (or ``REPRO_FULL_SCALE=1``) is given.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List

from .bench import figures
from .bench.ascii_plot import line_chart, stacked_bars
from .bench.reporting import (format_breakdown_table, format_series,
                              format_table)
from .gpu.trace import PHASES

#: Set by --plot: figure commands append an ASCII chart to the table.
_PLOT = {"enabled": False}


def _maybe_plot_series(x, series, title, logy=False):
    if _PLOT["enabled"]:
        print()
        print(line_chart(x, series, logy=logy, title=title))


def _maybe_plot_stack(points, x_name, title):
    if _PLOT["enabled"]:
        print()
        print(stacked_bars(
            [pt[x_name] for pt in points],
            [{k: v for k, v in pt["breakdown"].items() if v > 0}
             for pt in points],
            title=title,
            reference={pt[x_name]: pt.get("qp3", pt["total"])
                       for pt in points}))

__all__ = ["main"]

_STACK_PHASES = [p for p in PHASES if p != "other"]


def _print_table1() -> None:
    rows = figures.table1_matrices()
    print(format_table(
        ["matrix", "m", "n", "sigma_0", "sigma_k+1", "kappa"],
        [[r["name"], r["m"], r["n"], r["sigma_0"], r["sigma_k1"],
          r["kappa"]] for r in rows],
        title="Table 1: test matrices (sigma_{k+1} at k = 50)"))


def _print_fig06() -> None:
    rows = figures.fig06_accuracy(include_p0=True, include_fft=True)
    print(format_table(
        ["matrix", "QP3", "q=0", "q=1", "q=2", "q=0,p=0", "q=0,FFT"],
        [[r["name"], r["qp3"], r["q0"], r["q1"], r["q2"],
          r.get("q0_p0", ""), r.get("q0_fft", "")] for r in rows],
        title="Figure 6: approximation error ||AP - QR|| / ||A||"))


def _print_fig07() -> None:
    data = figures.fig07_tallskinny_qr()
    ms = data.pop("m")
    print(format_series(ms, data, x_name="m",
                        title="Figure 7: tall-skinny QR (n = 64), Gflop/s"))
    _maybe_plot_series(ms, data, "Figure 7 (Gflop/s, log y)", logy=True)


def _print_fig08() -> None:
    for axis in ("row", "col"):
        data = figures.fig08_sampling_kernels(axis=axis)
        ls = data.pop("l")
        print(format_series(
            ls, data, x_name="l",
            title=f"Figure 8{'a' if axis == 'row' else 'b'}: "
                  f"{axis} sampling (m = 50 000, n = 2 500), Gflop/s"))
        print()


def _print_fig09() -> None:
    data = figures.fig09_shortwide_qr()
    ns = data.pop("n")
    print(format_series(ns, data, x_name="n",
                        title="Figure 9: short-wide QR (m = 64), Gflop/s"))


def _print_fig10() -> None:
    data = figures.fig10_estimated_gflops()
    ms = data.pop("m")
    print(format_series(ms, data, x_name="m",
                        title="Figure 10: estimated Gflop/s "
                              "(n = 2 500, l = 64)"))
    _maybe_plot_series(ms, data, "Figure 10 (Gflop/s)")


def _print_fig05() -> None:
    from math import sqrt
    from .perfmodel import costs
    m, n, l, k, q = 50_000, 2_500, 64, 54, 1
    rows = [
        ("Sampling (Gaussian)", costs.gaussian_sampling_cost(m, n, l)),
        ("Sampling (FFT)", costs.fft_sampling_cost(m, n, l)),
        ("Iter. (mult.)", costs.power_iteration_mult_cost(m, n, l, q)),
        ("Iter. (orth.)", costs.power_iteration_orth_cost(m, n, l, q)),
        ("QRCP", costs.qrcp_sampled_cost(n, l, k)),
        ("QR", costs.qr_selected_cost(m, k)),
        ("Total", costs.random_sampling_total_cost(m, n, l, k, q)),
        ("QP3", costs.qp3_cost(m, n, k)),
        ("CAQP3", costs.caqp3_cost(m, n)),
    ]
    print(format_table(
        ["step", "#flops", "#words", "flops/word"],
        [[name, c.flops, c.words, c.intensity()] for name, c in rows],
        title=f"Figure 5 at (m,n,l,k,q)=({m},{n},{l},{k},{q}); "
              f"sqrt(M_fast)={sqrt(costs.DEFAULT_FAST_MEMORY):.0f}"))


def _print_stacked(points: List[Dict], x_name: str, title: str,
                   extra=("qp3", "speedup")) -> None:
    extras = [e for e in extra if e in points[0]]
    print(format_breakdown_table(points, x_name, _STACK_PHASES,
                                 extra=extras, title=title))
    _maybe_plot_stack(points, x_name, title + " [stack]")


def _print_fig11() -> None:
    _print_stacked(figures.fig11_time_vs_rows(), "m",
                   "Figure 11: time (s) vs rows "
                   "(n = 2 500, (k; p; q) = (54; 10; 1))")


def _print_fig12() -> None:
    _print_stacked(figures.fig12_time_vs_cols(), "n",
                   "Figure 12: time (s) vs columns (m = 50 000)")


def _print_fig13() -> None:
    _print_stacked(figures.fig13_time_vs_rank(), "l",
                   "Figure 13: time (s) vs subspace size "
                   "(m = 50 000, n = 2 500)")


def _print_fig14() -> None:
    data = figures.fig14_time_vs_iterations()
    ms = data.pop("m")
    print(format_series(ms, data, x_name="m",
                        title="Figure 14: time (s) vs power iterations"))


def _print_fig15() -> None:
    for overlap in (True, False):
        points = figures.fig15_multigpu_scaling(overlap=overlap)
        tag = "overlap=on" if overlap else "overlap=off (serial model)"
        _print_stacked(points, "ng",
                       f"Figure 15: strong scaling, (m; n) = "
                       f"(150k; 2 500), {tag}",
                       extra=("speedup", "comms_fraction"))
        if overlap:
            print()


def _print_fig16() -> None:
    runs = figures.fig16_adaptive_convergence()
    for run in runs:
        rows = list(zip(run["sizes"], run["estimates"],
                        run["actual_errors"]))
        print(format_table(
            ["l", "eps_tilde", "actual_error"], rows,
            title=f"Figure 16: adaptive convergence, l_inc = "
                  f"{run['l_inc']} (final l = {run['final_size']})"))
        print()


def _print_fig17() -> None:
    runs = figures.fig17_adaptive_time()
    rows = [[r["l_inc"], r["rule"], r["final_size"],
             r["total_seconds"], r["converged"]] for r in runs]
    print(format_table(
        ["l_inc", "rule", "final_l", "modeled_s", "converged"], rows,
        title="Figure 17: adaptive scheme, modeled time to tolerance"))


def _print_fig18() -> None:
    data = figures.fig18_gemm_small_l()
    print(format_series(data["l_inc"], {"gemm_gflops": data["gemm_gflops"]},
                        x_name="l_inc",
                        title="Figure 18: GEMM Gflop/s at adaptive "
                              "panel widths (m = 50 000, n = 2 500)"))


def _print_ablation_orth() -> None:
    from .bench.ablations import orthogonalization_ablation
    rows = orthogonalization_ablation()
    print(format_table(
        ["scheme", "error", "modeled_s (50k x 2.5k, q=2)"],
        [[r["scheme"], r["error"], r["modeled_s"]] for r in rows],
        title="Ablation: orthogonalization scheme in the power "
              "iteration"))


def _print_ablation_oversampling() -> None:
    from .bench.ablations import oversampling_ablation
    rows = oversampling_ablation()
    print(format_table(
        ["p", "median error", "modeled_s"],
        [[r["p"], r["error"], r["modeled_s"]] for r in rows],
        title="Ablation: oversampling p at k = 50"))


def _print_ablation_sampler() -> None:
    from .bench.ablations import sampler_ablation
    rows = sampler_ablation()
    print(format_table(
        ["sampler", "error", "modeled_s (l=64)", "modeled_s (l=320)"],
        [[r["sampler"], r["error"], r["modeled_s_l64"],
          r["modeled_s_l320"]] for r in rows],
        title="Ablation: Gaussian vs FFT sampling (q=0)"))


def _print_ablation_comm() -> None:
    from .bench.ablations import comm_cost_ablation
    rows = comm_cost_ablation()
    print(format_table(
        ["sync_scale", "QP3 (s)", "CAQP3 (s)", "sampling q=1 (s)",
         "speedup"],
        [[r["sync_scale"], r["qp3"], r["caqp3"], r["sampling_q1"],
          r["qp3"] / r["sampling_q1"]] for r in rows],
        title="Ablation: per-sync cost 1x-1000x (SS11)"))


def _print_ablation_fixed_accuracy() -> None:
    from .bench.ablations import fixed_accuracy_ablation
    rows = fixed_accuracy_ablation()
    print(format_table(
        ["tol", "QP3 rank", "QP3 err", "QP3 s", "adaptive l",
         "adaptive err", "adaptive s"],
        [[r["tol"], r["qp3_rank"], r["qp3_err"], r["qp3_modeled_s"],
          r["adaptive_l"], r["adaptive_err"], r["adaptive_modeled_s"]]
         for r in rows],
        title="Ablation: fixed-accuracy problem"))


def _print_ablation_cluster() -> None:
    from .bench.ablations import (cluster_latency_ablation,
                                  cluster_scaling_ablation)
    times = cluster_scaling_ablation()
    print(format_table(
        ["nodes", "sampling (s)", "speedup vs 1 node"],
        [[nodes, t, times[1] / t] for nodes, t in times.items()],
        title="Cluster strong scaling (3 GPUs/node, m = 600k)"))
    print()
    rows = cluster_latency_ablation()
    print(format_table(
        ["latency (s)", "k", "sampling (s)", "QP3 (s)", "speedup"],
        [[r["latency"], r["k"], r["sampling"], r["qp3"], r["speedup"]]
         for r in rows],
        title="SS11 projection: speedup vs interconnect latency "
              "(8 nodes)"))


def _print_diff() -> None:
    from .bench.paper_reference import reproduction_report
    rows = reproduction_report()
    print(format_table(
        ["status", "experiment", "claim", "paper", "measured", "rtol"],
        [[r["status"], r["experiment"], r["claim"], r["paper"],
          r["measured"], r["rtol"]] for r in rows],
        title="Reproduction report: paper vs measured "
              f"({sum(r['status'] == 'PASS' for r in rows)}/{len(rows)} "
              "PASS)"))
    fails = [r for r in rows if r["status"] == "FAIL"]
    if fails:
        print(f"\n{len(fails)} claim(s) FAILED")


_COMMANDS: Dict[str, Callable[[], None]] = {
    "diff": _print_diff,
    "ablation-orth": _print_ablation_orth,
    "ablation-oversampling": _print_ablation_oversampling,
    "ablation-sampler": _print_ablation_sampler,
    "ablation-comm": _print_ablation_comm,
    "ablation-fixed-accuracy": _print_ablation_fixed_accuracy,
    "ablation-cluster": _print_ablation_cluster,
    "table1": _print_table1,
    "fig05": _print_fig05,
    "fig06": _print_fig06,
    "fig07": _print_fig07,
    "fig08": _print_fig08,
    "fig09": _print_fig09,
    "fig10": _print_fig10,
    "fig11": _print_fig11,
    "fig12": _print_fig12,
    "fig13": _print_fig13,
    "fig14": _print_fig14,
    "fig15": _print_fig15,
    "fig16": _print_fig16,
    "fig17": _print_fig17,
    "fig18": _print_fig18,
}


def main(argv=None) -> int:
    """Entry point for ``python -m repro.cli`` / ``repro-bench``."""
    if argv is None:
        argv = sys.argv[1:]
    # `repro-bench analyze ...` delegates everything after the subcommand
    # to the static analyzer (same engine as `python -m repro.analysis`).
    if argv and argv[0] == "analyze":
        from .analysis.cli import main as analyze_main
        return analyze_main(argv[1:])
    # `repro-bench obs ...` delegates to the observability toolchain
    # (run/render/diff of BENCH_*.json artifacts and Chrome traces).
    if argv and argv[0] == "obs":
        from .obs.cli import main as obs_main
        return obs_main(argv[1:])
    # `repro-bench sweep ...` delegates to the parallel sweep runner
    # (serial-vs-pool wall-clock comparison for the CI job summary).
    if argv and argv[0] == "sweep":
        from .bench.sweep import main as sweep_main
        return sweep_main(argv[1:])
    # `repro-bench serve ...` delegates to the serving layer (the
    # async low-rank service loadtest; see docs/serving.md).
    if argv and argv[0] == "serve":
        from .serve.cli import main as serve_main
        return serve_main(argv[1:])
    # `repro-bench tune ...` delegates to the critical-path autotuner
    # (plan search, plan cache, BENCH before/after artifacts; see
    # docs/performance.md).
    if argv and argv[0] == "tune":
        from .tune.cli import main as tune_main
        return tune_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures; "
                    "'analyze' runs the repo's static analyzer; 'obs' "
                    "runs, renders, and diffs observability artifacts.")
    parser.add_argument("experiment",
                        choices=sorted(_COMMANDS) + ["all", "list"],
                        help="which experiment to run ('all' runs every "
                             "one; 'list' prints the available names; "
                             "'analyze' runs the static analyzer — see "
                             "'analyze --help'; 'obs' handles BENCH "
                             "artifacts — see 'obs --help')")
    parser.add_argument("--full-scale", action="store_true",
                        help="use the paper's matrix sizes for the "
                             "numerics experiments (slow)")
    parser.add_argument("--plot", action="store_true",
                        help="append ASCII charts to the figure tables")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the experiment's raw data as "
                             "JSON to PATH (single experiments only)")
    parser.add_argument("--parallel", metavar="N", type=int, default=None,
                        help="run sweep grid points over N worker "
                             "processes (0 = all cores); equivalent to "
                             "REPRO_SWEEP_PROCS=N")
    parser.add_argument("--backend", metavar="NAME", default=None,
                        help="compute backend for the math kernels "
                             "(simulated, numpy, torch, cupy, or 'auto' "
                             "to pick the best installed stack); "
                             "equivalent to REPRO_BACKEND=NAME")
    parser.add_argument("--pipeline-chunks", metavar="N", type=int,
                        default=None,
                        help="gather pipeline depth for multi-GPU "
                             "experiments (>= 1; ignored by single-GPU "
                             "runs); equivalent to "
                             "REPRO_PIPELINE_CHUNKS=N.  Prefer a tuned "
                             "plan ('repro-bench tune') over hand-set "
                             "values")
    args = parser.parse_args(argv)

    if args.full_scale:
        os.environ["REPRO_FULL_SCALE"] = "1"
    if args.parallel is not None:
        if args.parallel < 0:
            parser.error("--parallel must be >= 0")
        os.environ["REPRO_SWEEP_PROCS"] = str(args.parallel)
    if args.backend is not None:
        from .backends import make_backend
        from .errors import ConfigurationError
        try:
            make_backend(args.backend)  # fail fast on unknown/unavailable
        except ConfigurationError as exc:
            parser.error(str(exc))
        os.environ["REPRO_BACKEND"] = args.backend
    if args.pipeline_chunks is not None:
        if args.pipeline_chunks < 1:
            parser.error("--pipeline-chunks must be >= 1")
        os.environ["REPRO_PIPELINE_CHUNKS"] = str(args.pipeline_chunks)
    _PLOT["enabled"] = bool(args.plot)

    if args.experiment == "list":
        for name in sorted(_COMMANDS):
            print(name)
        return 0
    if args.experiment == "all":
        if args.json:
            parser.error("--json needs a single experiment")
        for name in sorted(_COMMANDS):
            print(f"=== {name} ===")
            _COMMANDS[name]()
            print()
        return 0
    _COMMANDS[args.experiment]()
    if args.json:
        from .bench.export import collect_experiment, dump_json
        dump_json(collect_experiment(args.experiment), args.json,
                  args.experiment)
        print(f"[wrote {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

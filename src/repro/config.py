"""Parameter objects for the randomized low-rank approximation algorithms.

The notation follows Figure 1 of the paper:

=========  ==================================================
``m x n``  dimension of the input matrix ``A``
``k``      target rank of the approximation
``p``      oversampling dimension
``l``      total sampling dimension (``l = k + p``)
``q``      number of power iterations
``ng``     number of (simulated) GPUs
=========  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError

__all__ = [
    "ORTH_SCHEMES",
    "SAMPLER_KINDS",
    "SamplingConfig",
    "AdaptiveConfig",
    "QRCPConfig",
]

#: Orthogonalization schemes accepted for the power-iteration QR step.
ORTH_SCHEMES = ("cholqr", "cholqr2", "householder", "cgs", "mgs", "tsqr",
                "mixed_cholqr")

#: Supported sampling-operator kinds for Step 1 of the algorithm.
SAMPLER_KINDS = ("gaussian", "fft")


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigurationError(msg)


def _require_backend(name: Optional[str]) -> None:
    """Validate a backend field by registry name (availability is
    checked later, at resolution time — a config naming ``"torch"`` is
    legal to *construct* on a machine without torch)."""
    if name is None:
        return
    from .backends import BACKENDS
    _require(name == "auto" or name in BACKENDS,
             f"backend must be 'auto' or one of {tuple(BACKENDS)}, "
             f"got {name!r}")


def _require_plan(plan: Optional[str], auto_tune: bool) -> None:
    """Validate the tuning fields (the artifact itself is loaded and
    schema-checked at application time, not construction time)."""
    if plan is not None:
        _require(isinstance(plan, str) and bool(plan),
                 f"plan must be a plan-artifact path, got {plan!r}")
        _require(not auto_tune,
                 "pass either plan= or auto_tune=True, not both")


@dataclass(frozen=True)
class SamplingConfig:
    """Parameters of the fixed-rank randomized sampling algorithm (Fig. 2b).

    Parameters
    ----------
    rank:
        Target rank ``k`` of the approximation.
    oversampling:
        Oversampling parameter ``p``; the sampled subspace has dimension
        ``l = k + p``.  The paper uses ``p = 10`` throughout.
    power_iterations:
        Number ``q`` of power iterations applied to the sampled matrix.
        ``q = 0`` (no iteration) already matches QP3's error order on
        the paper's test matrices; larger ``q`` sharpens the error bound
        to ``c(p, Omega)^(1/(2q+1)) * sigma_{k+1}``.
    sampler:
        ``"gaussian"`` for pruned Gaussian sampling (the paper's focus)
        or ``"fft"`` for subsampled-FFT sampling.
    orth:
        Orthogonalization scheme used inside the power iteration; the
        paper uses CholQR with one full reorthogonalization
        (``"cholqr2"``).
    reorthogonalize:
        Apply one full reorthogonalization pass after each
        orthogonalization (the paper's stabilization; implied by
        ``orth="cholqr2"``).
    seed:
        Seed for the Gaussian / FFT row-selection PRNG.  ``None`` draws
        fresh entropy.
    backend:
        Compute-backend registry name (``"simulated"``, ``"numpy"``,
        ``"torch"``, ``"cupy"``, or ``"auto"``) the pipeline's math
        should run on; ``None`` defers to ``REPRO_BACKEND`` / the
        session default.  See :mod:`repro.backends`.
    plan:
        Path to a ``repro-tune`` plan artifact whose schedule knobs
        are applied to the run (executor knobs via
        :meth:`repro.gpu.multigpu.MultiGPUExecutor.apply_plan`, config
        knobs via :func:`repro.tune.apply_plan_to_config`).  ``None``
        runs the hand-set defaults.
    auto_tune:
        Fetch — or, on a plan-cache miss, search for — the tuned plan
        matching this run's key (shape, rank, ng, backend, overlap)
        before executing.  Mutually exclusive with ``plan``.
    """

    rank: int
    oversampling: int = 10
    power_iterations: int = 0
    sampler: str = "gaussian"
    orth: str = "cholqr2"
    reorthogonalize: bool = True
    seed: Optional[int] = None
    backend: Optional[str] = None
    plan: Optional[str] = None
    auto_tune: bool = False

    def __post_init__(self) -> None:
        _require(self.rank >= 1, f"rank must be >= 1, got {self.rank}")
        _require(self.oversampling >= 0,
                 f"oversampling must be >= 0, got {self.oversampling}")
        _require(self.power_iterations >= 0,
                 f"power_iterations must be >= 0, got {self.power_iterations}")
        _require(self.sampler in SAMPLER_KINDS,
                 f"sampler must be one of {SAMPLER_KINDS}, got {self.sampler!r}")
        _require(self.orth in ORTH_SCHEMES,
                 f"orth must be one of {ORTH_SCHEMES}, got {self.orth!r}")
        _require_backend(self.backend)
        _require_plan(self.plan, self.auto_tune)

    @property
    def sample_size(self) -> int:
        """Total sampling dimension ``l = k + p``."""
        return self.rank + self.oversampling

    def with_rank(self, rank: int) -> "SamplingConfig":
        """Return a copy of this config with a different target rank."""
        return replace(self, rank=rank)

    def validate_for(self, m: int, n: int) -> None:
        """Check that this configuration is feasible for an ``m x n`` input."""
        _require(self.rank <= min(m, n),
                 f"rank {self.rank} exceeds min(m, n) = {min(m, n)}")
        _require(self.sample_size <= m,
                 f"sample size l = {self.sample_size} exceeds m = {m}")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Parameters of the adaptive-``l`` fixed-accuracy scheme (Fig. 3).

    The scheme grows the sampled subspace by ``l_inc`` basis vectors per
    step until the probabilistic error estimate ``eps_tilde`` drops
    below ``tolerance``.

    Parameters
    ----------
    tolerance:
        Target accuracy ``eps`` on ``||A - A B^T B||``.
    l_init:
        Initial subspace size (the paper starts at 8).
    l_inc:
        Static subspace increment per adaptive step.
    step_rule:
        ``"static"`` keeps ``l_inc`` fixed (``f(l, inc) = inc``);
        ``"interpolate"`` adjusts the next increment by linear
        interpolation of the last two error estimates (Section 10).
    power_iterations:
        ``q``, as for :class:`SamplingConfig`.
    max_subspace:
        Hard cap on the subspace dimension; exceeding it raises
        :class:`repro.errors.ConvergenceError`.
    orth, reorthogonalize, seed, backend, plan, auto_tune:
        As for :class:`SamplingConfig`; a plan may additionally set
        this config's own ``l_inc`` knob (applied through
        :func:`repro.tune.apply_plan_to_config`, which re-runs this
        validation).
    """

    tolerance: float
    l_init: int = 8
    l_inc: int = 8
    step_rule: str = "static"
    power_iterations: int = 0
    max_subspace: Optional[int] = None
    orth: str = "cholqr2"
    reorthogonalize: bool = True
    seed: Optional[int] = None
    backend: Optional[str] = None
    plan: Optional[str] = None
    auto_tune: bool = False

    def __post_init__(self) -> None:
        _require(self.tolerance > 0.0,
                 f"tolerance must be positive, got {self.tolerance}")
        _require(self.l_init >= 1, f"l_init must be >= 1, got {self.l_init}")
        _require(self.l_inc >= 1, f"l_inc must be >= 1, got {self.l_inc}")
        _require(self.step_rule in ("static", "interpolate"),
                 f"step_rule must be 'static' or 'interpolate', "
                 f"got {self.step_rule!r}")
        _require(self.power_iterations >= 0,
                 f"power_iterations must be >= 0, got {self.power_iterations}")
        _require(self.orth in ORTH_SCHEMES,
                 f"orth must be one of {ORTH_SCHEMES}, got {self.orth!r}")
        if self.max_subspace is not None:
            _require(self.max_subspace >= self.l_init,
                     "max_subspace must be >= l_init")
        _require_backend(self.backend)
        _require_plan(self.plan, self.auto_tune)


@dataclass(frozen=True)
class QRCPConfig:
    """Parameters of the blocked QP3 factorization (Section 2).

    Parameters
    ----------
    block_size:
        Panel width ``nb`` of the blocked algorithm.  LAPACK's dgeqp3
        default is 32; larger panels trade pivot freshness for BLAS-3
        update volume.
    truncate:
        Stop after this many columns (the truncated QP3 of the paper);
        ``None`` factors all columns.
    norm_recompute_tol:
        Downdated column norms whose square falls below this multiple of
        the running round-off estimate are recomputed from scratch
        (the Quintana-Orti/Sun/Bischof safeguard).
    """

    block_size: int = 32
    truncate: Optional[int] = None
    norm_recompute_tol: float = 1e-1

    def __post_init__(self) -> None:
        _require(self.block_size >= 1,
                 f"block_size must be >= 1, got {self.block_size}")
        if self.truncate is not None:
            _require(self.truncate >= 1,
                     f"truncate must be >= 1, got {self.truncate}")
        _require(0.0 < self.norm_recompute_tol <= 1.0,
                 "norm_recompute_tol must be in (0, 1]")

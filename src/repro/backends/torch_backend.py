"""Optional PyTorch backend: real hardware speed behind the contract.

Auto-detected at import (VRAMancer's ``compute_engine.py`` pattern):
if ``torch`` is importable the backend registers as available and picks
the best device — CUDA, then Apple MPS, then CPU — at construction.
When torch is absent, :meth:`TorchBackend.available` is simply false
and everything else in the repo (including ``repro-bench --backend
torch`` error messages and the skip logic of the parity test suite)
degrades gracefully; nothing here may raise at import time.

Numerical contract: float64 everywhere torch supports it (CUDA/CPU),
float32 on MPS (which has no float64 unit) — so results match the
modeling backends to fp tolerance, not bit-for-bit.  The sampling
matrix Ω is still drawn through the shared numpy PCG64 generator
(:meth:`repro.backends.base.ComputeBackend.make_rng`), so backends
diverge only in kernel arithmetic, never in the random subspace.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import CholeskyBreakdownError, ConfigurationError
from .base import ComputeBackend

try:  # pragma: no cover - exercised only where torch is installed
    import torch
except Exception:  # ImportError, or a broken install
    torch = None

__all__ = ["TorchBackend"]


class TorchBackend(ComputeBackend):
    """Torch math engine (CUDA > MPS > CPU), host-in/host-out."""

    name = "torch"
    is_model = False

    def __init__(self, device: Optional[str] = None) -> None:
        super().__init__()
        if torch is None:
            raise ConfigurationError(
                "backend 'torch' needs PyTorch installed; pick "
                "'simulated'/'numpy', or pip install torch")
        self.device = torch.device(device) if device is not None \
            else self._detect_device()
        # MPS has no float64; everything else runs double precision.
        self.dtype = (torch.float32 if self.device.type == "mps"
                      else torch.float64)

    @staticmethod
    def _detect_device() -> "torch.device":
        if torch.cuda.is_available():
            return torch.device("cuda")
        mps = getattr(torch.backends, "mps", None)
        if mps is not None and mps.is_available():
            return torch.device("mps")
        return torch.device("cpu")

    @classmethod
    def available(cls) -> bool:
        return torch is not None

    def synchronize(self) -> None:
        if torch is not None and self.device.type == "cuda":
            torch.cuda.synchronize(self.device)

    # -- transfers -------------------------------------------------------
    def _to_device(self, a: np.ndarray) -> "torch.Tensor":
        return torch.as_tensor(np.ascontiguousarray(a),
                               dtype=self.dtype, device=self.device)

    def _to_host(self, a) -> np.ndarray:
        if torch is not None and isinstance(a, torch.Tensor):
            return a.detach().cpu().numpy().astype(np.float64, copy=False)
        return np.asarray(a)

    def _t(self, a: np.ndarray) -> "torch.Tensor":
        """H2D with traffic accounting (internal operand staging)."""
        a = np.asarray(a)
        self.stats.record_h2d(a.nbytes)
        return self._to_device(a)

    def _n(self, t: "torch.Tensor") -> np.ndarray:
        """D2H with traffic accounting."""
        out = self._to_host(t)
        self.stats.record_d2h(out.nbytes)
        return out

    # -- kernels ---------------------------------------------------------
    def _gemm(self, a, b) -> np.ndarray:
        return self._n(self._t(a) @ self._t(b))

    def _cholesky(self, g) -> np.ndarray:
        try:
            return self._n(torch.linalg.cholesky(self._t(g), upper=True))
        except Exception as exc:  # torch.linalg.LinAlgError (version-dep.)
            raise CholeskyBreakdownError(str(exc)) from exc

    def _solve_triangular(self, r, b, lower: bool, trans: str
                          ) -> np.ndarray:
        tr, tb = self._t(r), self._t(b)
        if trans in ("T", "t", 1):
            # Solving r^T x = b: the transpose of an upper factor is
            # lower triangular (and vice versa).
            tr, lower = tr.mT, not lower
        return self._n(torch.linalg.solve_triangular(
            tr, tb, upper=not lower))

    def _svd(self, a, full_matrices: bool
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        u, s, vh = torch.linalg.svd(self._t(a),
                                    full_matrices=full_matrices)
        return self._n(u), self._n(s), self._n(vh)

    def _qr(self, a) -> Tuple[np.ndarray, np.ndarray]:
        q, r = torch.linalg.qr(self._t(a))
        return self._n(q), self._n(r)

    def _lstsq(self, a, b) -> np.ndarray:
        ta, tb = self._t(a), self._t(b)
        if self.device.type == "cpu":
            # gelsd matches numpy's minimum-norm SVD solution for
            # rank-deficient systems; the GPU drivers only offer gels.
            sol = torch.linalg.lstsq(ta, tb, driver="gelsd").solution
        else:  # pragma: no cover - needs a CUDA device
            sol = torch.linalg.lstsq(ta, tb).solution
        return self._n(sol)

    def _row_norms(self, a) -> np.ndarray:
        return self._n(torch.linalg.vector_norm(self._t(a), dim=1))

    def _norm(self, a, ord):
        t = self._t(a)
        if t.ndim == 1:
            return float(torch.linalg.vector_norm(
                t, ord=2 if ord is None else ord))
        if ord is None:
            return float(torch.linalg.vector_norm(t))
        return float(torch.linalg.matrix_norm(t, ord=ord))

    def _fft(self, a, n: Optional[int], axis: int) -> np.ndarray:
        # MPS FFT support is partial; run the transform on CPU there.
        t = torch.as_tensor(np.ascontiguousarray(a), dtype=self.dtype,
                            device="cpu" if self.device.type == "mps"
                            else self.device)
        self.stats.record_h2d(np.asarray(a).nbytes)
        out = torch.fft.fft(t, n=n, dim=axis)
        res = out.detach().cpu().numpy().astype(np.complex128, copy=False)
        self.stats.record_d2h(res.nbytes)
        return res

"""The compute-backend contract behind the executor layer.

A :class:`ComputeBackend` supplies the *math* of the executor operation
set — GEMM, the CholQR building blocks (Gram/Cholesky/triangular
solve), the small SVD, row norms, the sampling RNG, and the host↔device
transfer hooks — while the executors in :mod:`repro.gpu` keep the
*accounting*: modeled kernel time, phase attribution, device memory,
and stream placement.  The split means one pipeline can run

- bit-reproducibly on the modeling backends (``simulated`` — the
  default — and ``numpy``, which share the exact same host BLAS/LAPACK
  call sequence), and
- at true wall-clock speed on real hardware (``torch``/``cupy``) with
  no algorithm changes.

Canonical data form
-------------------
Backend methods accept and return **host** ``numpy.ndarray`` values.
A hardware backend moves operands through :meth:`to_device` /
:meth:`to_host` internally and records the traffic on :class:`its
stats <BackendStats>`, so the executor layer stays array-library
agnostic.  (Keeping operands device-resident across calls is an
optimization the contract deliberately leaves open; the transfer hooks
are where it will land.)

Every public kernel call is timed with the host monotonic clock into
``stats.wall_seconds`` — the "real wall-clock recorded alongside
modeled time" that :mod:`repro.obs` surfaces in BENCH artifacts.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import CholeskyBreakdownError

__all__ = ["BackendStats", "ComputeBackend"]


@dataclass
class BackendStats:
    """Wall-clock and transfer accounting for one backend instance."""

    #: Real seconds spent inside backend kernel calls (monotonic clock).
    wall_seconds: float = 0.0
    kernel_calls: int = 0
    h2d_bytes: int = 0
    h2d_calls: int = 0
    d2h_bytes: int = 0
    d2h_calls: int = 0
    _extra: dict = field(default_factory=dict, repr=False)

    def record_kernel(self, seconds: float) -> None:
        self.wall_seconds += seconds
        self.kernel_calls += 1

    def record_h2d(self, nbytes: int) -> None:
        self.h2d_bytes += int(nbytes)
        self.h2d_calls += 1

    def record_d2h(self, nbytes: int) -> None:
        self.d2h_bytes += int(nbytes)
        self.d2h_calls += 1

    def reset(self) -> None:
        self.wall_seconds = 0.0
        self.kernel_calls = 0
        self.h2d_bytes = self.h2d_calls = 0
        self.d2h_bytes = self.d2h_calls = 0

    def to_dict(self) -> dict:
        return {"wall_seconds": self.wall_seconds,
                "kernel_calls": self.kernel_calls,
                "h2d_bytes": self.h2d_bytes, "h2d_calls": self.h2d_calls,
                "d2h_bytes": self.d2h_bytes, "d2h_calls": self.d2h_calls}


class _KernelTimer:
    """Context manager charging elapsed wall time to a stats object."""

    __slots__ = ("stats", "t0")

    def __init__(self, stats: BackendStats):
        self.stats = stats

    def __enter__(self) -> "_KernelTimer":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stats.record_kernel(time.perf_counter() - self.t0)


class ComputeBackend(abc.ABC):
    """Abstract math engine; see the module docstring for the contract.

    Subclasses implement the ``_``-prefixed kernels; the public methods
    add uniform wall-clock accounting and error mapping and must not be
    overridden.
    """

    #: Registry name (``repro-bench --backend <name>``).
    name: str = "abstract"
    #: True for backends whose runs feed the modeled clock (figures
    #: must be bit-reproducible across machines).
    is_model: bool = False
    #: True when repeated runs with one seed are bit-identical.
    deterministic: bool = True

    def __init__(self) -> None:
        self.stats = BackendStats()

    # -- availability ----------------------------------------------------
    @classmethod
    def available(cls) -> bool:
        """Whether this backend's runtime dependency is importable (and
        its device reachable).  Always true for the host backends."""
        return True

    # -- rng -------------------------------------------------------------
    def make_rng(self, seed: Optional[int] = None) -> np.random.Generator:
        """Sampling-matrix PRNG.  Every backend draws Ω through numpy's
        PCG64 so a given seed produces the *same sampling matrix* on
        every backend — cross-backend parity is then a property of the
        kernels alone."""
        return np.random.default_rng(seed)

    def standard_normal(self, rng: np.random.Generator,
                        shape: Tuple[int, ...]) -> np.ndarray:
        """Draw the Gaussian sampling block Ω (cuRAND in the paper)."""
        return rng.standard_normal(shape)

    # -- transfers -------------------------------------------------------
    def to_device(self, a: np.ndarray):
        """H2D hook: adopt a host array into the backend's native form,
        recording the traffic.  Host backends pass through."""
        a = np.asarray(a)
        self.stats.record_h2d(a.nbytes)
        return self._to_device(a)

    def to_host(self, a) -> np.ndarray:
        """D2H hook: return a native array to host numpy form."""
        out = self._to_host(a)
        self.stats.record_d2h(np.asarray(out).nbytes)
        return out

    def synchronize(self) -> None:
        """Drain outstanding device work (no-op on host backends)."""

    def _to_device(self, a: np.ndarray):
        return a

    def _to_host(self, a) -> np.ndarray:
        return np.asarray(a)

    # -- public kernel API (uniform timing / error mapping) --------------
    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense matrix product ``a @ b`` (the paper's BLAS-3 core)."""
        with _KernelTimer(self.stats):
            return self._gemm(a, b)

    def cholesky(self, g: np.ndarray) -> np.ndarray:
        """Upper Cholesky factor ``R`` with ``R^T R = g`` (POTRF).

        Raises :class:`repro.errors.CholeskyBreakdownError` when ``g``
        is not numerically SPD, whatever the native failure type.
        """
        with _KernelTimer(self.stats):
            return self._cholesky(g)

    def solve_triangular(self, r: np.ndarray, b: np.ndarray,
                         lower: bool = False,
                         trans: str = "N") -> np.ndarray:
        """Triangular solve (TRSM); ``trans="T"`` solves ``r^T x = b``."""
        with _KernelTimer(self.stats):
            return self._solve_triangular(r, b, lower=lower, trans=trans)

    def svd(self, a: np.ndarray, full_matrices: bool = False
            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense SVD ``U, s, Vt`` (the randomized SVD's small tail)."""
        with _KernelTimer(self.stats):
            return self._svd(a, full_matrices=full_matrices)

    def qr(self, a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Reduced QR factorization of a tall matrix."""
        with _KernelTimer(self.stats):
            return self._qr(a)

    def lstsq(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``a x = b`` (CUR's core solve)."""
        with _KernelTimer(self.stats):
            return self._lstsq(a, b)

    def row_norms(self, a: np.ndarray) -> np.ndarray:
        """Per-row Euclidean norms."""
        with _KernelTimer(self.stats):
            return self._row_norms(a)

    def norm(self, a: np.ndarray, ord=None) -> float:
        """Matrix/vector norm reduced to a host float."""
        with _KernelTimer(self.stats):
            return float(self._norm(a, ord=ord))

    def fft(self, a: np.ndarray, n: Optional[int] = None,
            axis: int = 0) -> np.ndarray:
        """DFT along ``axis`` padded to ``n`` (the SRFT operator)."""
        with _KernelTimer(self.stats):
            return self._fft(a, n=n, axis=axis)

    # -- kernels to implement -------------------------------------------
    @abc.abstractmethod
    def _gemm(self, a, b) -> np.ndarray: ...

    @abc.abstractmethod
    def _cholesky(self, g) -> np.ndarray: ...

    @abc.abstractmethod
    def _solve_triangular(self, r, b, lower: bool, trans: str
                          ) -> np.ndarray: ...

    @abc.abstractmethod
    def _svd(self, a, full_matrices: bool): ...

    @abc.abstractmethod
    def _qr(self, a): ...

    @abc.abstractmethod
    def _lstsq(self, a, b) -> np.ndarray: ...

    @abc.abstractmethod
    def _row_norms(self, a) -> np.ndarray: ...

    @abc.abstractmethod
    def _norm(self, a, ord): ...

    @abc.abstractmethod
    def _fft(self, a, n, axis) -> np.ndarray: ...

    # -- misc ------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


def _map_cholesky_breakdown(exc: Exception) -> CholeskyBreakdownError:
    """Uniform breakdown mapping helper for backend implementations."""
    return CholeskyBreakdownError(str(exc))

"""Host-side dense numerics: the one sanctioned home of raw
``numpy.linalg`` / ``numpy.fft`` / ``scipy.linalg`` calls.

Every module outside :mod:`repro.backends` must route linear algebra
either through an executor operation (so the FLOPs are charged to the
kernel model — rule RS101) or, for host-side diagnostics and small
glue factorizations, through the helpers here (rule RS114).  Keeping
the raw LAPACK/BLAS entry points in one module means a compute backend
can be swapped underneath the executors while the *verification* math
(residual norms, reference SVDs, orthogonality defects) stays on one
canonical, bit-stable host implementation.

These helpers deliberately stay thin: same semantics, same defaults,
same exception types as the underlying routines, except where a
docstring says otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg

__all__ = [
    "LinAlgError", "norm", "norm2", "column_norms", "row_norms",
    "svd", "svdvals", "qr", "solve", "lstsq", "cholesky_upper",
    "solve_triangular", "fft",
]

#: The breakdown exception of the host LAPACK routines (scipy re-uses
#: numpy's class, so one ``except`` clause covers both).
LinAlgError = np.linalg.LinAlgError


def norm(a, ord=None, axis=None):
    """``np.linalg.norm`` passthrough (vector/matrix norms)."""
    return np.linalg.norm(a, ord=ord, axis=axis)


def norm2(a) -> float:
    """Spectral norm of a matrix (largest singular value) as a float."""
    return float(np.linalg.norm(a, ord=2))


def column_norms(a) -> np.ndarray:
    """Per-column Euclidean norms (QRCP's pivot weights)."""
    return np.linalg.norm(a, axis=0)


def row_norms(a) -> np.ndarray:
    """Per-row Euclidean norms (the adaptive scheme's DGKS guard)."""
    return np.linalg.norm(a, axis=1)


def svd(a, full_matrices: bool = False
        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin (by default) singular value decomposition ``U, s, Vt``."""
    return np.linalg.svd(a, full_matrices=full_matrices)


def svdvals(a) -> np.ndarray:
    """Singular values only (no singular vectors accumulated)."""
    return np.linalg.svd(a, compute_uv=False)


def qr(a) -> Tuple[np.ndarray, np.ndarray]:
    """Reduced QR factorization (LAPACK ``geqrf``/``orgqr``)."""
    return np.linalg.qr(a)


def solve(a, b) -> np.ndarray:
    """Dense linear solve ``a x = b`` (LAPACK ``gesv``)."""
    return np.linalg.solve(a, b)


def lstsq(a, b) -> np.ndarray:
    """Minimum-norm least-squares solution of ``a x = b`` (``gelsd``).

    Returns only the solution; use the executor/backend SVD if you need
    rank or residual diagnostics.
    """
    x, *_ = np.linalg.lstsq(a, b, rcond=None)
    return x


def cholesky_upper(g) -> np.ndarray:
    """Upper Cholesky factor ``R`` with ``R^T R = g``.

    Raises :data:`LinAlgError` when ``g`` is not numerically SPD;
    callers that want the repo's error taxonomy should go through
    :meth:`repro.backends.base.ComputeBackend.cholesky`, which maps the
    breakdown to :class:`repro.errors.CholeskyBreakdownError`.
    """
    return scipy.linalg.cholesky(g, lower=False)


def solve_triangular(r, b, lower: bool = False,
                     trans: str = "N") -> np.ndarray:
    """Triangular solve (LAPACK ``trtrs``); ``trans="T"`` solves
    ``r^T x = b``."""
    return scipy.linalg.solve_triangular(r, b, lower=lower, trans=trans)


def fft(a, n: Optional[int] = None, axis: int = 0) -> np.ndarray:
    """Discrete Fourier transform along ``axis``, zero-padded to ``n``
    (the SRFT sampling operator's transform)."""
    return np.fft.fft(a, n=n, axis=axis)

"""Optional CuPy backend: the paper's actual cuBLAS/cuSOLVER stack.

Auto-detected like the torch backend: the module always imports, and
:meth:`CupyBackend.available` is true only when ``cupy`` is installed
*and* a CUDA device is reachable (a CuPy install on a GPU-less host
imports fine but cannot allocate, so availability probes the device
count rather than the import alone).

This is the closest runtime to the SC'15 setup — cuBLAS GEMM,
cuSOLVER POTRF/GESVD — so wall-clock numbers from this backend are the
ones to put next to the modeled K40c clock in BENCH artifacts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import CholeskyBreakdownError, ConfigurationError
from .base import ComputeBackend

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy
except Exception:  # ImportError, or a broken CUDA toolchain
    cupy = None

__all__ = ["CupyBackend"]


class CupyBackend(ComputeBackend):
    """CuPy math engine on CUDA, host-in/host-out."""

    name = "cupy"
    is_model = False

    def __init__(self) -> None:
        super().__init__()
        if not self.available():
            raise ConfigurationError(
                "backend 'cupy' needs CuPy and a reachable CUDA device; "
                "pick 'simulated'/'numpy' instead")

    @classmethod
    def available(cls) -> bool:
        if cupy is None:
            return False
        try:  # pragma: no cover - needs CUDA hardware
            return int(cupy.cuda.runtime.getDeviceCount()) > 0
        except Exception:
            return False

    # Everything below needs a CUDA device, so coverage on CPU-only CI
    # stops at the constructor guard.
    def synchronize(self) -> None:  # pragma: no cover
        cupy.cuda.get_current_stream().synchronize()

    # -- transfers -------------------------------------------------------
    def _to_device(self, a: np.ndarray):  # pragma: no cover
        return cupy.asarray(np.ascontiguousarray(a), dtype=cupy.float64)

    def _to_host(self, a) -> np.ndarray:  # pragma: no cover
        if cupy is not None and isinstance(a, cupy.ndarray):
            return cupy.asnumpy(a)
        return np.asarray(a)

    def _t(self, a: np.ndarray):  # pragma: no cover
        a = np.asarray(a)
        self.stats.record_h2d(a.nbytes)
        return self._to_device(a)

    def _n(self, d) -> np.ndarray:  # pragma: no cover
        out = self._to_host(d)
        self.stats.record_d2h(out.nbytes)
        return out

    # -- kernels ---------------------------------------------------------
    def _gemm(self, a, b) -> np.ndarray:  # pragma: no cover
        return self._n(self._t(a) @ self._t(b))

    def _cholesky(self, g) -> np.ndarray:  # pragma: no cover
        try:
            # cupy.linalg.cholesky returns the lower factor L with
            # L L^T = g; the contract wants upper R = L^T.
            low = cupy.linalg.cholesky(self._t(g))
        except Exception as exc:
            raise CholeskyBreakdownError(str(exc)) from exc
        res = self._n(low.T.copy())
        if not np.all(np.isfinite(res)):
            # Older CuPy reports POTRF breakdown as NaNs, not a raise.
            raise CholeskyBreakdownError(
                "cuSOLVER potrf produced non-finite factor")
        return res

    def _solve_triangular(self, r, b, lower: bool, trans: str
                          ) -> np.ndarray:  # pragma: no cover
        import cupyx.scipy.linalg as cpsl
        return self._n(cpsl.solve_triangular(
            self._t(r), self._t(b), lower=lower, trans=trans))

    def _svd(self, a, full_matrices: bool):  # pragma: no cover
        u, s, vh = cupy.linalg.svd(self._t(a),
                                   full_matrices=full_matrices)
        return self._n(u), self._n(s), self._n(vh)

    def _qr(self, a):  # pragma: no cover
        q, r = cupy.linalg.qr(self._t(a))
        return self._n(q), self._n(r)

    def _lstsq(self, a, b) -> np.ndarray:  # pragma: no cover
        x, *_ = cupy.linalg.lstsq(self._t(a), self._t(b), rcond=None)
        return self._n(x)

    def _row_norms(self, a) -> np.ndarray:  # pragma: no cover
        return self._n(cupy.linalg.norm(self._t(a), axis=1))

    def _norm(self, a, ord):  # pragma: no cover
        return float(cupy.linalg.norm(self._t(a), ord=ord))

    def _fft(self, a, n: Optional[int], axis: int
             ) -> np.ndarray:  # pragma: no cover
        d = self._t(a)
        out = cupy.fft.fft(d, n=n, axis=axis)
        res = cupy.asnumpy(out)
        self.stats.record_d2h(res.nbytes)
        return res

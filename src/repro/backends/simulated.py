"""The simulated-clock modeling backend — the repo's default.

``SimulatedBackend`` *is* the NumPy math engine: it subclasses
:class:`repro.backends.numpy_backend.NumpyBackend` and overrides no
kernel, so a run on either backend executes the identical host
BLAS/LAPACK sequence and produces **bit-identical factors** (the parity
suite in ``tests/test_backends.py`` asserts this on every gallery
matrix).  What the name changes is the *accounting contract*:

- ``is_model = True`` marks runs whose timing comes from the
  :class:`repro.gpu.device.SimulatedGPU` kernel model, i.e. the
  numbers that land in reproduced figures and the CI perf gate.  The
  modeled clock is a deterministic function of shapes, so BENCH
  artifacts diff to exactly zero across machines.
- Symbolic (:class:`repro.gpu.device.SymArray`) sweeps only make sense
  here: a hardware backend has nothing to run when the arrays carry
  shapes but no data.

The executors charge modeled seconds *around* these kernels; the
backend's own ``stats.wall_seconds`` still measures real host time, so
an observability artifact carries both clocks side by side.
"""

from __future__ import annotations

from .numpy_backend import NumpyBackend

__all__ = ["SimulatedBackend"]


class SimulatedBackend(NumpyBackend):
    """NumPy math under the modeled device clock (bit-reproducible)."""

    name = "simulated"
    is_model = True

"""The host NumPy backend: the repo's original math engine, extracted.

Every kernel delegates to :mod:`repro.backends.hostmath` — the exact
BLAS/LAPACK call sequence the executors used before the backend split —
so results are bit-identical to the historical behavior and to
:class:`repro.backends.simulated.SimulatedBackend` (which subclasses
this without touching the math).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import CholeskyBreakdownError
from . import hostmath
from .base import ComputeBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ComputeBackend):
    """Plain NumPy/SciPy on the host, timed at real wall-clock speed."""

    name = "numpy"
    is_model = False

    def _gemm(self, a, b) -> np.ndarray:
        return np.asarray(a) @ np.asarray(b)

    def _cholesky(self, g) -> np.ndarray:
        try:
            return hostmath.cholesky_upper(g)
        except hostmath.LinAlgError as exc:
            raise CholeskyBreakdownError(str(exc)) from exc

    def _solve_triangular(self, r, b, lower: bool, trans: str
                          ) -> np.ndarray:
        return hostmath.solve_triangular(r, b, lower=lower, trans=trans)

    def _svd(self, a, full_matrices: bool
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return hostmath.svd(np.asarray(a), full_matrices=full_matrices)

    def _qr(self, a) -> Tuple[np.ndarray, np.ndarray]:
        return hostmath.qr(np.asarray(a))

    def _lstsq(self, a, b) -> np.ndarray:
        return hostmath.lstsq(a, b)

    def _row_norms(self, a) -> np.ndarray:
        return hostmath.row_norms(np.asarray(a))

    def _norm(self, a, ord):
        return hostmath.norm(a, ord=ord)

    def _fft(self, a, n: Optional[int], axis: int) -> np.ndarray:
        return hostmath.fft(a, n=n, axis=axis)

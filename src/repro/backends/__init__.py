"""Pluggable compute backends behind the executor contract.

The registry maps names to :class:`~repro.backends.base.ComputeBackend`
classes; selection resolves in priority order

1. an explicit ``backend=`` argument / config field / ``--backend``
   CLI flag,
2. the ``REPRO_BACKEND`` environment variable,
3. the repo default ``"simulated"`` (bit-reproducible modeled clock).

``"auto"`` asks :func:`detect_backend` for the fastest *available*
hardware stack — CuPy, then torch, then plain NumPy — mirroring the
auto-detection idiom of VRAMancer's ``compute_engine.py``.  Optional
backends whose dependency is missing stay registered but unavailable;
asking for one by name raises :class:`repro.errors.ConfigurationError`
with the installed alternatives listed.

See ``docs/backends.md`` for the full contract and worked examples.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type, Union

from ..errors import ConfigurationError
from . import hostmath
from .base import BackendStats, ComputeBackend
from .cupy_backend import CupyBackend
from .numpy_backend import NumpyBackend
from .simulated import SimulatedBackend
from .torch_backend import TorchBackend

__all__ = [
    "BackendStats", "ComputeBackend", "NumpyBackend", "SimulatedBackend",
    "TorchBackend", "CupyBackend", "BACKENDS", "DEFAULT_BACKEND",
    "available_backends", "detect_backend", "default_backend_name",
    "get_default_backend", "make_backend", "resolve_backend", "hostmath",
]

#: Name → class registry (insertion order = documentation order).
BACKENDS: Dict[str, Type[ComputeBackend]] = {
    "simulated": SimulatedBackend,
    "numpy": NumpyBackend,
    "torch": TorchBackend,
    "cupy": CupyBackend,
}

#: The repo-wide default: modeled clock, bit-reproducible figures.
DEFAULT_BACKEND = "simulated"

#: Hardware preference order used by ``"auto"`` detection.
_AUTO_ORDER = ("cupy", "torch", "numpy")


def available_backends() -> List[str]:
    """Registry names whose runtime dependency is importable here."""
    return [name for name, cls in BACKENDS.items() if cls.available()]


def detect_backend() -> str:
    """Best *hardware* backend name on this machine (``"auto"`` mode):
    CuPy if a CUDA device answers, else torch, else plain NumPy."""
    for name in _AUTO_ORDER:
        if BACKENDS[name].available():
            return name
    return "numpy"


def default_backend_name() -> str:
    """Session default: ``REPRO_BACKEND`` env var if set (``"auto"``
    resolves through :func:`detect_backend`), else ``"simulated"``."""
    name = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not name:
        return DEFAULT_BACKEND
    if name == "auto":
        return detect_backend()
    return name


_DEFAULT_CACHE: Dict[str, ComputeBackend] = {}


def get_default_backend() -> ComputeBackend:
    """Process-wide cached instance of the session default backend.

    Kernels deep in the QR stack resolve ``backend=None`` through this,
    so a bare ``cholqr_rows(b)`` call costs no construction; executors
    hold their own instance and pass it down explicitly.
    """
    name = default_backend_name()
    if name == "auto":
        name = detect_backend()
    inst = _DEFAULT_CACHE.get(name)
    if inst is None:
        inst = make_backend(name)
        _DEFAULT_CACHE[name] = inst
    return inst


def make_backend(name: Optional[str] = None) -> ComputeBackend:
    """Instantiate a backend by registry name.

    ``None`` uses :func:`default_backend_name`; ``"auto"`` picks the
    best available hardware stack.  Unknown or unavailable names raise
    :class:`~repro.errors.ConfigurationError` listing what this machine
    can actually run.
    """
    if name is None:
        name = default_backend_name()
    name = name.strip().lower()
    if name == "auto":
        name = detect_backend()
    cls = BACKENDS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown backend {name!r}; known: {', '.join(BACKENDS)}")
    if not cls.available():
        raise ConfigurationError(
            f"backend {name!r} is not available on this machine "
            f"(missing dependency or no device); available: "
            f"{', '.join(available_backends())}")
    return cls()


def resolve_backend(
        spec: Union[None, str, ComputeBackend]) -> ComputeBackend:
    """Normalize a backend spec — ``None`` / registry name / instance —
    to a live :class:`ComputeBackend`.  The one entry point the
    executors, QR kernels, and pipelines share."""
    if isinstance(spec, ComputeBackend):
        return spec
    if spec is None:
        return get_default_backend()
    if isinstance(spec, str):
        return make_backend(spec)
    raise ConfigurationError(
        f"backend spec must be None, a name, or a ComputeBackend "
        f"instance; got {type(spec).__name__}")

"""Admission control: bounded queue depth and load shedding.

The controller is the service's front door.  Every submission passes
through :meth:`AdmissionController.admit` *before* touching the queue;
an over-depth queue or a closed service raises the typed
:mod:`repro.errors` rejection (``queue_full`` / ``closed``) and bumps
the matching counter, so shed load is observable, not silent.
Structural validation (``invalid``) happens even earlier, in
:class:`repro.serve.request.DecompRequest` construction.
"""

from __future__ import annotations

from typing import Optional

from ..errors import (ConfigurationError, QueueFullError,
                      ServiceClosedError)
from .metrics import ServiceCounters
from .request import DecompRequest

__all__ = ["AdmissionController"]


class AdmissionController:
    """Gatekeeper in front of the service queue.

    Parameters
    ----------
    capacity:
        Maximum queued-but-undispatched requests.  Submissions arriving
        at depth >= capacity are shed with
        :class:`repro.errors.QueueFullError`.
    counters:
        The service's :class:`repro.serve.metrics.ServiceCounters`;
        every rejection is recorded there by taxonomy reason.
    default_deadline_s:
        Deadline applied to requests that carry none (``None`` = no
        implicit deadline).
    """

    def __init__(self, capacity: int,
                 counters: Optional[ServiceCounters] = None,
                 default_deadline_s: Optional[float] = None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"admission capacity must be >= 1, got {capacity}")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ConfigurationError(
                f"default deadline must be positive, got "
                f"{default_deadline_s}")
        self.capacity = capacity
        self.counters = counters if counters is not None else \
            ServiceCounters()
        self.default_deadline_s = default_deadline_s
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admitting; queued work may still drain."""
        self._closed = True

    def effective_deadline_s(self, request: DecompRequest
                             ) -> Optional[float]:
        """The request's deadline, falling back to the service default."""
        if request.deadline_s is not None:
            return request.deadline_s
        return self.default_deadline_s

    def admit(self, request: DecompRequest, depth: int) -> None:
        """Admit ``request`` at current queue ``depth`` or shed it.

        Raises
        ------
        ServiceClosedError
            After :meth:`close` — clients should stop submitting.
        QueueFullError
            Queue depth is at capacity; the error carries both numbers
            so clients can implement backoff.
        """
        if self._closed:
            self.counters.note_rejected("closed")
            raise ServiceClosedError(
                f"service is closed; request {request.request_id} "
                f"rejected", request_id=request.request_id)
        if depth >= self.capacity:
            self.counters.note_rejected("queue_full")
            raise QueueFullError(depth, self.capacity,
                                 request_id=request.request_id)

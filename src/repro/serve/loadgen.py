"""Seeded synthetic load generator behind ``repro-bench serve loadtest``.

Drives a :class:`repro.serve.service.LowRankService` twice with the
*same* deterministic request stream — once with the continuous batcher
on, once with it off (the control arm) — and emits a schema-v2
``BENCH_serve_*.json`` artifact comparing the two.

Two kinds of numbers land in the artifact, on purpose:

- **Observed** wall-clock latency percentiles, batch occupancy, and
  rejection counts go into point *metrics* — machine-dependent, so the
  ``obs diff`` gate treats them as informational drift, never failure.
- **Modeled** sketch-phase seconds (straight from the
  :class:`repro.gpu.kernels.KernelModel`, assuming the intended wave
  structure coalesces perfectly) go into point *phases* /
  ``total_seconds`` — bit-reproducible on any machine, so they form
  the deterministic regression gate against the committed baseline.

The hard service-level assertions (batched p99 <= solo p99, max batch
occupancy >= 8) live in :meth:`LoadReport.gate`, wired to the CLI's
``--gate`` exit code.

All randomness (rank jitter) comes from one ``random.Random(seed)``,
so a seed pins the whole request stream.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..gpu.device import KEPLER_K40C
from ..gpu.kernels import KernelModel
from ..obs.artifact import build_artifact, figure_record, point
from .request import DecompRequest, MatrixRef
from .service import LowRankService, ServeConfig

__all__ = ["LoadSpec", "LoadReport", "run_loadtest"]


@dataclass(frozen=True)
class LoadSpec:
    """One loadtest scenario (fully determined by its fields)."""

    #: Total simulated clients (one request each).
    clients: int = 64
    #: Clients submitting concurrently per wave; every wave's requests
    #: target the same matrix with the Gaussian fixed-rank pipeline, so
    #: a wave is one compatibility class >= this wide.
    concurrency: int = 16
    matrix_name: str = "power"
    m: int = 3000
    n: int = 640
    matrix_seed: int = 0
    #: Rank jitter bounds (inclusive); mixed ranks exercise the
    #: variable-height Omega stacking.  Smoke defaults keep the
    #: per-rider pipeline light so the amortized per-batch costs
    #: (matrix materialization, dispatch) dominate the margin.
    rank_min: int = 4
    rank_max: int = 8
    oversampling: int = 4
    #: Batch window handed to the service (seconds).
    window_s: float = 0.012
    #: Kept equal to ``concurrency`` by default so the window closes
    #: the moment a full wave is collected instead of burning the
    #: remaining window on an empty queue.
    max_batch: int = 16
    max_queue_depth: int = 1024
    #: Per-request deadline (None = none; the smoke run leaves this
    #: off so slow CI machines don't shed load and skew percentiles).
    deadline_s: Optional[float] = None
    #: Unmeasured warmup waves per arm (BLAS thread pools, matrix LRU,
    #: allocator) so the first measured wave is not an outlier and the
    #: arm that happens to run first is not penalized.
    warmup_waves: int = 1
    #: Measured repetitions per arm, run alternately (batched, solo,
    #: batched, ...).  The gate compares the *median-of-reps* p99 of
    #: each arm, so a single noisy wave on a shared CI box cannot flip
    #: the verdict.
    repeats: int = 3
    seed: int = 0
    backend: Optional[str] = None

    def validate(self) -> None:
        if self.clients < 1:
            raise ConfigurationError(
                f"clients must be >= 1, got {self.clients}")
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {self.concurrency}")
        if not 1 <= self.rank_min <= self.rank_max:
            raise ConfigurationError(
                f"need 1 <= rank_min <= rank_max, got "
                f"[{self.rank_min}, {self.rank_max}]")
        if self.rank_max + self.oversampling > self.m:
            raise ConfigurationError(
                f"l = {self.rank_max + self.oversampling} exceeds "
                f"m = {self.m}")
        if self.repeats < 1:
            raise ConfigurationError(
                f"repeats must be >= 1, got {self.repeats}")

    def matrix_ref(self) -> MatrixRef:
        return MatrixRef(name=self.matrix_name, m=self.m, n=self.n,
                         seed=self.matrix_seed)

    def request_ranks(self) -> List[int]:
        """The deterministic per-client rank stream."""
        rng = random.Random(self.seed)
        return [rng.randint(self.rank_min, self.rank_max)
                for _ in range(self.clients)]

    def waves(self) -> List[List[int]]:
        """Ranks grouped into submission waves of ``concurrency``."""
        ranks = self.request_ranks()
        return [ranks[i:i + self.concurrency]
                for i in range(0, len(ranks), self.concurrency)]


@dataclass
class LoadReport:
    """Everything one loadtest produced, both arms."""

    spec: LoadSpec
    #: The *representative* ``ServiceCounters.summary()`` of each arm —
    #: the repetition with the median p99 — plus ``wall_s`` and
    #: ``errors`` added by the driver.
    batched: Dict = field(default_factory=dict)
    solo: Dict = field(default_factory=dict)
    #: Every repetition's summary, in run order (representatives above
    #: are drawn from these; the gate checks completion on all of them).
    batched_reps: List[Dict] = field(default_factory=list)
    solo_reps: List[Dict] = field(default_factory=list)
    #: Deterministic modeled sketch costs (KernelModel, ideal waves).
    modeled: Dict = field(default_factory=dict)

    @property
    def p99_speedup(self) -> float:
        """Observed solo p99 over batched p99 (>1 means batching won)."""
        b = self.batched.get("latency_p99_s", 0.0)
        s = self.solo.get("latency_p99_s", 0.0)
        return (s / b) if b > 0 else 0.0

    def gate(self, min_occupancy: int = 8) -> List[str]:
        """Hard loadtest assertions; empty list = pass."""
        failures: List[str] = []
        for mode, reps in (("batched", self.batched_reps or
                            [self.batched]),
                           ("solo", self.solo_reps or [self.solo])):
            for i, summary in enumerate(reps):
                if summary.get("completed") != self.spec.clients:
                    failures.append(
                        f"{mode} rep {i}: completed "
                        f"{summary.get('completed')} of "
                        f"{self.spec.clients} requests "
                        f"(errors: {summary.get('errors')})")
        occ = self.batched.get("max_occupancy", 0)
        if occ < min_occupancy:
            failures.append(
                f"batched: max batch occupancy {occ} < required "
                f"{min_occupancy}")
        b = self.batched.get("latency_p99_s", 0.0)
        s = self.solo.get("latency_p99_s", 0.0)
        if b > s:
            failures.append(
                f"batched p99 {b * 1e3:.1f} ms exceeds solo p99 "
                f"{s * 1e3:.1f} ms")
        return failures

    def artifact(self) -> Dict:
        """The schema-v2 BENCH document for this run."""
        spec = self.spec
        base_params = {"clients": spec.clients,
                       "concurrency": spec.concurrency,
                       "m": spec.m, "n": spec.n,
                       "window_ms": spec.window_s * 1e3,
                       "seed": spec.seed}
        points = []
        for mode, summary in (("batched", self.batched),
                              ("solo", self.solo)):
            model = self.modeled[mode]
            metrics = {k: v for k, v in summary.items()
                       if isinstance(v, (int, float))}
            metrics["rejected_total"] = sum(
                summary.get("rejections", {}).values())
            points.append(point(
                params={**base_params, "mode": mode},
                phases={"prng": model["prng_s"],
                        "sampling": model["sampling_s"]},
                total_seconds=model["prng_s"] + model["sampling_s"],
                metrics=metrics))
        record = figure_record(
            "serve", points=points,
            metrics={"p99_speedup": self.p99_speedup,
                     "modeled_sampling_speedup":
                         self.modeled["solo"]["sampling_s"]
                         / self.modeled["batched"]["sampling_s"]},
            meta={"matrix": spec.matrix_name,
                  "rank_range": [spec.rank_min, spec.rank_max],
                  "oversampling": spec.oversampling,
                  "max_batch": spec.max_batch,
                  "repeats": spec.repeats})
        wall = (self.batched.get("wall_s", 0.0)
                + self.solo.get("wall_s", 0.0))
        return build_artifact([record], label="serve-loadtest",
                              backend=spec.backend,
                              wall_clock_s=wall)

    def markdown(self) -> str:
        """The latency/occupancy table for ``$GITHUB_STEP_SUMMARY``."""
        rows = ["| mode | completed | p50 (ms) | p95 (ms) | p99 (ms) "
                "| mean occ | max occ | shed | wall (s) |",
                "|---|---|---|---|---|---|---|---|---|"]
        for mode, s in (("batched", self.batched), ("solo", self.solo)):
            shed = sum(s.get("rejections", {}).values())
            rows.append(
                f"| {mode} | {s.get('completed', 0)} "
                f"| {s.get('latency_p50_s', 0.0) * 1e3:.1f} "
                f"| {s.get('latency_p95_s', 0.0) * 1e3:.1f} "
                f"| {s.get('latency_p99_s', 0.0) * 1e3:.1f} "
                f"| {s.get('mean_occupancy', 0.0):.2f} "
                f"| {s.get('max_occupancy', 0)} | {shed} "
                f"| {s.get('wall_s', 0.0):.2f} |")
        rows.append("")
        rows.append(f"p99 speedup (solo / batched): "
                    f"**{self.p99_speedup:.2f}x** "
                    f"(median-p99 repetition of {self.spec.repeats} "
                    f"per arm)")
        return "\n".join(rows)


def modeled_sketch_costs(spec: LoadSpec) -> Dict[str, Dict[str, float]]:
    """Deterministic modeled Step-1 costs of both arms.

    Assumes the intended wave structure coalesces perfectly (each wave
    = one stacked GEMM); the PRNG draws are per-request in both arms.
    Pure function of the spec — this is what the ``obs diff`` baseline
    gate compares.
    """
    kernels = KernelModel(KEPLER_K40C)
    ls = [[r + spec.oversampling for r in wave]
          for wave in spec.waves()]
    prng = sum(kernels.curand_seconds(l * spec.m)
               for wave in ls for l in wave)
    solo = sum(kernels.gemm_seconds(l, spec.n, spec.m)
               for wave in ls for l in wave)
    batched = sum(kernels.gemm_seconds(sum(wave), spec.n, spec.m)
                  for wave in ls)
    return {"batched": {"prng_s": prng, "sampling_s": batched},
            "solo": {"prng_s": prng, "sampling_s": solo}}


async def _drive(spec: LoadSpec, batching: bool) -> Dict:
    """Run one arm: wave-structured submissions against one service."""
    config = ServeConfig(max_queue_depth=spec.max_queue_depth,
                         batch_window_s=spec.window_s,
                         max_batch=spec.max_batch, batching=batching,
                         default_deadline_s=spec.deadline_s,
                         backend=spec.backend)
    ref = spec.matrix_ref()
    errors = 0
    t0 = time.perf_counter()
    async with LowRankService(config) as svc:
        for w in range(spec.warmup_waves):
            warm = [DecompRequest(matrix=ref, rank=spec.rank_max,
                                  oversampling=spec.oversampling,
                                  seed=1_000_000 + w * spec.concurrency
                                  + j)
                    for j in range(spec.concurrency)]
            await asyncio.gather(*(svc.submit(r) for r in warm),
                                 return_exceptions=True)
        svc.counters.reset()
        t0 = time.perf_counter()
        i = 0
        for wave in spec.waves():
            requests = [
                DecompRequest(matrix=ref, rank=rank,
                              oversampling=spec.oversampling,
                              seed=i + j)
                for j, rank in enumerate(wave)]
            i += len(wave)
            outcomes = await asyncio.gather(
                *(svc.submit(r) for r in requests),
                return_exceptions=True)
            errors += sum(isinstance(o, BaseException) for o in outcomes)
        summary = svc.counters.summary()
    summary["wall_s"] = time.perf_counter() - t0
    summary["errors"] = errors
    return summary


def _median_rep(reps: List[Dict]) -> Dict:
    """The repetition with the median p99 (upper median on ties)."""
    ordered = sorted(reps, key=lambda s: s.get("latency_p99_s", 0.0))
    return ordered[len(ordered) // 2]


def run_loadtest(spec: LoadSpec) -> LoadReport:
    """Run both arms of the loadtest and assemble the report.

    Arms alternate (batched, solo, batched, ...) for ``spec.repeats``
    rounds so slow-machine drift hits both equally; the report's
    headline numbers are each arm's median-p99 repetition.
    """
    spec.validate()
    # Pay matrix generation before timing either arm.
    spec.matrix_ref().materialize()
    batched_reps: List[Dict] = []
    solo_reps: List[Dict] = []
    for _ in range(spec.repeats):
        batched_reps.append(asyncio.run(_drive(spec, batching=True)))
        solo_reps.append(asyncio.run(_drive(spec, batching=False)))
    return LoadReport(spec=spec,
                      batched=_median_rep(batched_reps),
                      solo=_median_rep(solo_reps),
                      batched_reps=batched_reps, solo_reps=solo_reps,
                      modeled=modeled_sketch_costs(spec))

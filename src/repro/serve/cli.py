"""``repro-bench serve ...`` — the serving-layer command group.

Currently one subcommand::

    repro-bench serve loadtest --clients 200 --gate \\
        --bench BENCH_serve_smoke.json --summary summary.md

runs the synthetic load generator (both arms: batcher on and off),
prints the latency/occupancy table, optionally writes the schema-v2
BENCH artifact and a GitHub-flavoured markdown summary, and with
``--gate`` exits non-zero unless batching actually won (batched p99 <=
solo p99) at real coalescing depth (max occupancy >= ``--min-occupancy``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..obs.artifact import write_artifact
from .loadgen import LoadSpec, run_loadtest

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Serving-layer tools (see docs/serving.md).")
    sub = parser.add_subparsers(dest="command", required=True)
    lt = sub.add_parser(
        "loadtest",
        help="drive the service with a seeded synthetic client fleet, "
             "batcher on vs off")
    lt.add_argument("--clients", type=int, default=64,
                    help="total simulated clients (default 64)")
    lt.add_argument("--concurrency", type=int, default=16,
                    help="clients submitting concurrently per wave "
                         "(default 16)")
    lt.add_argument("--matrix", default="power",
                    help="gallery matrix name (default power)")
    lt.add_argument("--m", type=int, default=3000,
                    help="matrix rows (default 3000)")
    lt.add_argument("--n", type=int, default=640,
                    help="matrix columns (default 640)")
    lt.add_argument("--rank-min", type=int, default=4)
    lt.add_argument("--rank-max", type=int, default=8)
    lt.add_argument("--oversampling", type=int, default=4)
    lt.add_argument("--window-ms", type=float, default=12.0,
                    help="batch window in milliseconds (default 12)")
    lt.add_argument("--max-batch", type=int, default=16)
    lt.add_argument("--repeats", type=int, default=3,
                    help="measured repetitions per arm; the gate "
                         "compares median-of-reps p99 (default 3)")
    lt.add_argument("--deadline-s", type=float, default=None,
                    help="per-request deadline (default: none)")
    lt.add_argument("--seed", type=int, default=0,
                    help="load-stream seed (default 0)")
    lt.add_argument("--backend", default=None,
                    help="compute backend name (default: session "
                         "default)")
    lt.add_argument("--bench", metavar="PATH", default=None,
                    help="write the BENCH_serve_*.json artifact here")
    lt.add_argument("--summary", metavar="PATH", default=None,
                    help="append the markdown table to PATH (e.g. "
                         "$GITHUB_STEP_SUMMARY)")
    lt.add_argument("--gate", action="store_true",
                    help="exit 1 unless batched p99 <= solo p99 and "
                         "occupancy reaches --min-occupancy")
    lt.add_argument("--min-occupancy", type=int, default=8,
                    help="batch occupancy the gate requires "
                         "(default 8)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    spec = LoadSpec(clients=args.clients, concurrency=args.concurrency,
                    matrix_name=args.matrix, m=args.m, n=args.n,
                    rank_min=args.rank_min, rank_max=args.rank_max,
                    oversampling=args.oversampling,
                    window_s=args.window_ms / 1e3,
                    max_batch=args.max_batch, repeats=args.repeats,
                    deadline_s=args.deadline_s, seed=args.seed,
                    backend=args.backend)
    report = run_loadtest(spec)
    table = report.markdown()
    print(f"serve loadtest: {spec.clients} clients, "
          f"{spec.concurrency}/wave, window "
          f"{spec.window_s * 1e3:g} ms")
    print()
    print(table)
    if args.bench:
        write_artifact(args.bench, report.artifact())
        print(f"\n[wrote {args.bench}]")
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write("### serve loadtest\n\n")
            fh.write(table)
            fh.write("\n")
    if args.gate:
        failures = report.gate(min_occupancy=args.min_occupancy)
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("\ngate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

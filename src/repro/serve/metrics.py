"""Service counters: queue depth, batch occupancy, latency percentiles.

Pure-python on purpose — the serving layer orchestrates, it does not
compute, so nothing here may touch numpy (the RS114 backend boundary
stays trivially clean) and percentiles use the classic nearest-rank
definition over a sorted copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import REJECTION_REASONS, ConfigurationError

__all__ = ["percentile", "ServiceCounters"]


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Returns 0.0 on an empty sample list so report tables render
    without special-casing a drained run.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], "
                                 f"got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if q <= 0.0:
        return float(ordered[0])
    rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil(q*n/100)
    rank = min(len(ordered), -(-(q * len(ordered)) // 100))
    return float(ordered[int(rank) - 1])


@dataclass
class ServiceCounters:
    """Aggregated service-side observability counters.

    One instance per :class:`repro.serve.service.LowRankService`;
    mutated only from the service's event loop (plus the completion
    callbacks it schedules), read at any time.
    """

    submitted: int = 0
    completed: int = 0
    #: Rejections/terminations by taxonomy reason (queue_full, closed,
    #: invalid, deadline, cancelled).
    rejections: Dict[str, int] = field(
        default_factory=lambda: {r: 0 for r in REJECTION_REASONS})
    #: Current and high-water queue depth.
    queue_depth: int = 0
    max_queue_depth: int = 0
    #: One entry per dispatched batch: how many requests rode it.
    batch_sizes: List[int] = field(default_factory=list)
    #: How many requests were served from a coalesced (size > 1) batch.
    coalesced_requests: int = 0
    #: Submission-to-completion seconds of successful requests.
    latencies_s: List[float] = field(default_factory=list)
    queue_waits_s: List[float] = field(default_factory=list)

    def reset(self) -> None:
        """Zero every counter in place (e.g. after a warmup wave)."""
        self.submitted = 0
        self.completed = 0
        self.rejections = {r: 0 for r in REJECTION_REASONS}
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.batch_sizes = []
        self.coalesced_requests = 0
        self.latencies_s = []
        self.queue_waits_s = []

    def note_submitted(self) -> None:
        self.submitted += 1

    def note_depth(self, depth: int) -> None:
        self.queue_depth = depth
        self.max_queue_depth = max(self.max_queue_depth, depth)

    def note_rejected(self, reason: str) -> None:
        if reason not in self.rejections:
            raise ConfigurationError(
                f"unknown rejection reason {reason!r}; expected one of "
                f"{REJECTION_REASONS}")
        self.rejections[reason] += 1

    def note_batch(self, size: int) -> None:
        self.batch_sizes.append(size)
        if size > 1:
            self.coalesced_requests += size

    def note_completed(self, latency_s: float, queue_wait_s: float) -> None:
        self.completed += 1
        self.latencies_s.append(float(latency_s))
        self.queue_waits_s.append(float(queue_wait_s))

    # -- derived views ----------------------------------------------------
    @property
    def batches(self) -> int:
        return len(self.batch_sizes)

    @property
    def mean_occupancy(self) -> float:
        """Mean requests per dispatched batch (1.0 = no coalescing)."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def max_occupancy(self) -> int:
        return max(self.batch_sizes) if self.batch_sizes else 0

    def latency_percentiles(self) -> Dict[str, float]:
        return {"p50": percentile(self.latencies_s, 50.0),
                "p95": percentile(self.latencies_s, 95.0),
                "p99": percentile(self.latencies_s, 99.0)}

    def summary(self) -> Dict[str, object]:
        """Plain-data snapshot for reports and BENCH artifact metrics."""
        lat = self.latency_percentiles()
        mean = (sum(self.latencies_s) / len(self.latencies_s)
                if self.latencies_s else 0.0)
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejections": dict(self.rejections),
            "max_queue_depth": self.max_queue_depth,
            "batches": self.batches,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "coalesced_requests": self.coalesced_requests,
            "latency_mean_s": mean,
            "latency_p50_s": lat["p50"],
            "latency_p95_s": lat["p95"],
            "latency_p99_s": lat["p99"],
        }

"""``repro.serve`` — low-rank approximation as a service.

An asyncio job-queue service: clients submit decomposition requests
(a gallery matrix reference, ``k``/``tol``, an algorithm, a compute
backend) and receive versioned result artifacts carrying factor
metadata, modeled/wall timings, and span ids.

The load-bearing idea follows the paper: random sampling turns the
approximation into a few large GEMMs whose GPU throughput dwarfs
per-request overheads, so many small concurrent sketch requests should
be *coalesced* — the continuous batcher stacks the Gaussian sampling
operators of compatible queued requests and runs one batched
``Omega A`` product, then splits per-request slices back out
bit-identically to solo runs.

Layers (see ``docs/serving.md``):

- :mod:`repro.serve.request` — :class:`MatrixRef`,
  :class:`DecompRequest`, :class:`ResultArtifact`;
- :mod:`repro.serve.metrics` — queue-depth / occupancy / latency
  counters and pure-python percentiles;
- :mod:`repro.serve.admission` — bounded queue depth, deadline
  validation, load shedding with the typed :mod:`repro.errors`
  rejection taxonomy;
- :mod:`repro.serve.batcher` — compatibility grouping and the
  coalesced sketch math;
- :mod:`repro.serve.service` — :class:`LowRankService`, the asyncio
  queue + batch window + worker dispatch loop;
- :mod:`repro.serve.loadgen` — the seeded synthetic load generator
  behind ``repro-bench serve loadtest``.
"""

from .request import (ALGORITHMS, RESULT_SCHEMA_VERSION, DecompRequest,
                      MatrixRef, ResultArtifact)
from .metrics import ServiceCounters, percentile
from .admission import AdmissionController
from .batcher import BatchPlan, plan_batches, run_jobs
from .service import LowRankService, ServeConfig
from .loadgen import LoadReport, LoadSpec, run_loadtest

__all__ = [
    "ALGORITHMS", "RESULT_SCHEMA_VERSION", "DecompRequest", "MatrixRef",
    "ResultArtifact", "ServiceCounters", "percentile",
    "AdmissionController", "BatchPlan", "plan_batches", "run_jobs",
    "LowRankService", "ServeConfig", "LoadReport", "LoadSpec",
    "run_loadtest",
]

"""Continuous batching: plan compatibility groups, run coalesced math.

The paper's central observation — random sampling turns low-rank
approximation into a few large GEMMs that run at near-peak GPU
throughput — cuts the other way for a *service*: many small concurrent
sketch requests each pay kernel-dispatch and matrix-materialization
overheads that one big GEMM would amortize.  The batcher therefore
stacks the Gaussian sampling operators of compatible queued requests::

    [Omega_1]           [B_1]
    [Omega_2]  @  A  =  [B_2]      one GEMM, row-block outputs
    [  ...  ]           [...]

and feeds each request its ``B_i`` slice through
``random_sampling(..., presampled=B_i)``.  Each ``Omega_i`` is drawn
from the request's *own* seeded executor PRNG (exactly as a solo run
would draw it), and the stacked sketch runs through
:meth:`repro.gpu.device.NumpyExecutor.sample_gemm_stacked` — one
modeled device launch whose row blocks are, by that primitive's
contract, bitwise the blocks' own products — so the coalesced results
are bit-identical to solo runs.  The parity tests in
``tests/test_serve.py`` assert this at the numpy-equality level.

:func:`plan_batches` is pure planning (no math, trivially testable);
:func:`run_jobs` is the synchronous execution of one plan, called by
:class:`repro.serve.service.LowRankService` on its worker thread.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.adaptive import adaptive_sampling
from ..core.random_sampling import random_sampling
from ..errors import ConfigurationError, ServeError
from ..gpu.device import GPUExecutor, shape_of
from ..obs.spans import SpanRecorder
from .request import DecompRequest, ResultArtifact

__all__ = ["BatchPlan", "plan_batches", "run_jobs"]

#: run_jobs returns this per request: a ResultArtifact on success, a
#: ServeError (deadline/cancel skip) or arbitrary exception otherwise.
Outcome = object


@dataclass
class BatchPlan:
    """One dispatch unit: requests that run together on the worker."""

    requests: List[DecompRequest]
    #: The shared ``DecompRequest.batch_key`` — ``None`` marks an
    #: unbatchable singleton.
    key: Optional[Tuple] = None
    batch_id: str = "batch-0000"

    def __post_init__(self) -> None:
        if not self.requests:
            raise ConfigurationError("a batch plan needs >= 1 request")
        for req in self.requests:
            if req.batch_key != self.key:
                raise ConfigurationError(
                    f"request {req.request_id} (key {req.batch_key!r}) "
                    f"does not belong in plan {self.batch_id} "
                    f"(key {self.key!r})")

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def coalesced(self) -> bool:
        """True when the plan shares one stacked sketch GEMM."""
        return self.key is not None and len(self.requests) > 1


def plan_batches(requests: List[DecompRequest],
                 max_batch: Optional[int] = None,
                 prefix: str = "batch") -> List[BatchPlan]:
    """Group a window's requests into dispatch plans.

    Requests with equal non-``None`` ``batch_key`` coalesce (in
    first-seen key order, submission order within a key, chunked at
    ``max_batch``); unbatchable requests each get a singleton plan in
    their original position relative to their key group.
    """
    if max_batch is not None and max_batch < 1:
        raise ConfigurationError(
            f"max_batch must be >= 1, got {max_batch}")
    groups: List[Tuple[Optional[Tuple], List[DecompRequest]]] = []
    index: Dict[Tuple, List[DecompRequest]] = {}
    for req in requests:
        key = req.batch_key
        if key is None:
            groups.append((None, [req]))
            continue
        bucket = index.get(key)
        if bucket is None:
            bucket = index[key] = []
            groups.append((key, bucket))
        bucket.append(req)
    plans: List[BatchPlan] = []
    for key, bucket in groups:
        step = max_batch if (max_batch and key is not None) else \
            len(bucket)
        for lo in range(0, len(bucket), max(1, step)):
            chunk = bucket[lo:lo + max(1, step)]
            plans.append(BatchPlan(requests=chunk, key=key,
                                   batch_id=f"{prefix}-{len(plans):04d}"))
    return plans


def _labelled(recorder: Optional[SpanRecorder], *labels: str):
    return recorder.labelled(*labels) if recorder is not None \
        else nullcontext()


def _run_span(recorder: Optional[SpanRecorder], name: str):
    return recorder.run_span(name) if recorder is not None \
        else nullcontext()


def _make_executor(req: DecompRequest, recorder: Optional[SpanRecorder],
                   default_backend: Optional[str]) -> GPUExecutor:
    ex = GPUExecutor(seed=req.seed,
                     backend=req.backend or default_backend)
    if recorder is not None:
        ex.attach_recorder(recorder)
    return ex


def _finish(req: DecompRequest, artifact: ResultArtifact,
            plan: BatchPlan, stacked: int,
            coalesced: bool) -> ResultArtifact:
    artifact.batch = {"batch_id": plan.batch_id, "size": stacked,
                      "coalesced": coalesced}
    artifact.spans = {"run": req.request_id,
                      "labels": [req.request_id],
                      "batch_run": plan.batch_id if coalesced else None}
    artifact.backend = req.backend
    return artifact


def _run_solo(req: DecompRequest, a: np.ndarray,
              recorder: Optional[SpanRecorder],
              default_backend: Optional[str]) -> ResultArtifact:
    """One request, the ordinary (uncoalesced) pipelines."""
    ex = _make_executor(req, recorder, default_backend)
    t0 = time.perf_counter()
    with _labelled(recorder, req.request_id), \
            _run_span(recorder, req.request_id):
        if req.algorithm == "fixed_rank":
            factors = random_sampling(a, req.sampling_config(),
                                      executor=ex, check_finite=False)
            wall = time.perf_counter() - t0
            return ResultArtifact(
                request_id=req.request_id, algorithm=req.algorithm,
                factors={"q_shape": list(shape_of(factors.q)),
                         "r_shape": list(shape_of(factors.r)),
                         "rank": factors.k,
                         "sample_size": factors.sample_size},
                modeled_seconds=factors.seconds,
                breakdown=dict(factors.breakdown),
                wall_run_s=wall, payload=factors)
        if req.algorithm == "adaptive":
            result = adaptive_sampling(a, req.adaptive_config(),
                                       executor=ex, check_finite=False)
            wall = time.perf_counter() - t0
            return ResultArtifact(
                request_id=req.request_id, algorithm=req.algorithm,
                factors={"subspace_size": result.subspace_size,
                         "converged": result.converged,
                         "steps": len(result.steps)},
                modeled_seconds=result.seconds,
                breakdown={}, wall_run_s=wall, payload=result)
        # cholqr: plain tall-skinny factorization of the full matrix.
        ex.bind(a)
        q, r = ex.qr_selected(a, scheme="cholqr2")
        wall = time.perf_counter() - t0
        return ResultArtifact(
            request_id=req.request_id, algorithm=req.algorithm,
            factors={"q_shape": list(shape_of(q)),
                     "r_shape": list(shape_of(r))},
            modeled_seconds=ex.seconds,
            breakdown=dict(ex.timeline.breakdown()),
            wall_run_s=wall, payload=(q, r))


def run_jobs(plan: BatchPlan,
             recorder: Optional[SpanRecorder] = None,
             default_backend: Optional[str] = None,
             skip: Optional[Callable[[DecompRequest],
                                     Optional[ServeError]]] = None,
             on_result: Optional[Callable[[str, Outcome], None]] = None
             ) -> Dict[str, Outcome]:
    """Execute one plan synchronously; map request id -> outcome.

    ``skip`` is consulted at the two cancellation points — before the
    stacked GEMM (request never enters the batch) and again before each
    request's Steps 2-3 (mid-batch cancellation: its Omega block rode
    the GEMM, its pipeline never runs).  A skip outcome is the
    ServeError the service will surface; any exception a request's math
    raises is captured as that request's outcome without poisoning its
    batch-mates.

    ``on_result`` fires the moment each request's outcome is known
    (still on the worker thread) — the service bridges it back to the
    event loop so early riders of a batch complete without waiting for
    their batch-mates' Steps 2-3.
    """
    results: Dict[str, Outcome] = {}

    def emit(request_id: str, outcome: Outcome) -> None:
        results[request_id] = outcome
        if on_result is not None:
            on_result(request_id, outcome)

    live: List[DecompRequest] = []
    for req in plan.requests:
        verdict = skip(req) if skip is not None else None
        if verdict is not None:
            emit(req.request_id, verdict)
        else:
            live.append(req)
    if not live:
        return results
    a = live[0].matrix.materialize()

    if not (plan.key is not None and len(live) > 1):
        for req in live:
            matrix = a if req.matrix == live[0].matrix else \
                req.matrix.materialize()
            try:
                artifact = _run_solo(req, matrix, recorder,
                                     default_backend)
            except ServeError as exc:
                emit(req.request_id, exc)
                continue
            except Exception as exc:  # surface per request, keep going
                emit(req.request_id, exc)
                continue
            emit(req.request_id, _finish(
                req, artifact, plan, stacked=1, coalesced=False))
        return results

    # --- coalesced fixed-rank path --------------------------------------
    m = shape_of(a)[0]
    walls = {req.request_id: time.perf_counter() for req in live}
    executors: Dict[str, GPUExecutor] = {}
    omegas: List[np.ndarray] = []
    with _run_span(recorder, plan.batch_id):
        # Each request draws its Omega from its own seeded PRNG, on its
        # own executor — the exact draw its solo run would make.
        for req in live:
            ex = _make_executor(req, recorder, default_backend)
            executors[req.request_id] = ex
            with _labelled(recorder, req.request_id):
                omegas.append(ex.prng_gaussian(req.sample_size, m))
        # One stacked sketch GEMM covers every rider (the device
        # charges a single (sum l) x n launch; the host reference
        # computes each row block per rider so slices stay bitwise
        # equal to solo runs — see GPUExecutor.sample_gemm_stacked).
        batch_ex = _make_executor(live[0], recorder, default_backend)
        batch_ex.bind(a)
        with _labelled(recorder, *[r.request_id for r in live]):
            b_blocks = batch_ex.sample_gemm_stacked(omegas, a)
    gemm_seconds = batch_ex.seconds
    total_l = sum(req.sample_size for req in live)

    for req, b_slice in zip(live, b_blocks):
        l = req.sample_size
        verdict = skip(req) if skip is not None else None
        if verdict is not None:  # cancelled mid-batch: Omega rode the
            emit(req.request_id, verdict)  # GEMM, pipeline skipped
            continue
        share = gemm_seconds * (l / total_l)
        ex = executors[req.request_id]
        try:
            with _labelled(recorder, req.request_id), \
                    _run_span(recorder, req.request_id):
                factors = random_sampling(a, req.sampling_config(),
                                          executor=ex, check_finite=False,
                                          presampled=b_slice)
        except Exception as exc:
            emit(req.request_id, exc)
            continue
        breakdown = dict(factors.breakdown)
        breakdown["sampling"] = breakdown.get("sampling", 0.0) + share
        artifact = ResultArtifact(
            request_id=req.request_id, algorithm=req.algorithm,
            factors={"q_shape": list(shape_of(factors.q)),
                     "r_shape": list(shape_of(factors.r)),
                     "rank": factors.k,
                     "sample_size": factors.sample_size},
            modeled_seconds=factors.seconds + share,
            breakdown=breakdown,
            wall_run_s=time.perf_counter() - walls[req.request_id],
            payload=factors)
        emit(req.request_id, _finish(
            req, artifact, plan, stacked=len(live), coalesced=True))
    return results

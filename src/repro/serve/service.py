"""The asyncio job-queue service: admission -> window -> batch -> worker.

:class:`LowRankService` is the orchestrator tying the serve layer
together.  ``submit()`` passes the admission controller, enqueues a
job, and awaits its future under the request's deadline.  A single
batch-loop task drains the queue: the first job opens a *batch window*
(:attr:`ServeConfig.batch_window_s`) during which further queued jobs
are collected, the window's requests are grouped by compatibility
(:func:`repro.serve.batcher.plan_batches`), and each plan runs on the
worker thread via :func:`repro.serve.batcher.run_jobs`.  Deadlines are
enforced at every stage — queued, inside the window, and between the
stacked GEMM and a request's own pipeline — and every shed or expired
request is a typed :mod:`repro.errors` rejection plus a counter bump.

The math itself is synchronous NumPy; one worker thread (the default)
keeps the span recorder single-writer so the service can export one
coherent Chrome trace across all requests, with per-request labels
telling concurrent submissions apart.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import (ConfigurationError, DeadlineExceededError,
                      RequestCancelledError, ServeError,
                      ServiceClosedError)
from ..obs.spans import SpanRecorder
from .admission import AdmissionController
from .batcher import BatchPlan, plan_batches, run_jobs
from .metrics import ServiceCounters
from .request import DecompRequest, ResultArtifact

__all__ = ["ServeConfig", "LowRankService"]


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs (see ``docs/serving.md`` for the tuning guide)."""

    #: Queued-but-undispatched requests beyond which submissions shed.
    max_queue_depth: int = 64
    #: Batch window: how long the batcher waits, after the first job of
    #: a cycle arrives, for more coalescible work.  0 disables waiting
    #: (each drain cycle still batches whatever is already queued).
    batch_window_s: float = 0.01
    #: Hard cap on requests sharing one stacked GEMM.
    max_batch: int = 32
    #: Master switch: False dispatches every request solo (the loadtest
    #: control arm).
    batching: bool = True
    #: Deadline for requests that carry none (None = unbounded).
    default_deadline_s: Optional[float] = None
    #: Worker threads running the math.  Keep at 1 (the default) to
    #: also record spans; recording is disabled for workers > 1 since
    #: the recorder is single-writer.
    workers: int = 1
    #: Default compute backend for requests that name none.
    backend: Optional[str] = None
    #: Path to a ``repro-tune`` plan artifact; knobs matching this
    #: config's own fields (e.g. ``max_batch``) are applied at service
    #: construction via :func:`repro.tune.apply_plan_to_config`.
    plan: Optional[str] = None

    def validate(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got "
                f"{self.max_queue_depth}")
        if self.batch_window_s < 0:
            raise ConfigurationError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}")
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if self.default_deadline_s is not None \
                and self.default_deadline_s <= 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive, got "
                f"{self.default_deadline_s}")
        if self.plan is not None and (
                not isinstance(self.plan, str) or not self.plan):
            raise ConfigurationError(
                f"plan must be a plan-artifact path, got {self.plan!r}")


class _Job:
    """Queue entry: a request plus its completion future and clocks."""

    __slots__ = ("request", "future", "enqueued_t", "deadline_t",
                 "expired", "cancelled")

    def __init__(self, request: DecompRequest, future: asyncio.Future,
                 enqueued_t: float, deadline_t: Optional[float]) -> None:
        self.request = request
        self.future = future
        self.enqueued_t = enqueued_t
        self.deadline_t = deadline_t
        self.expired = False
        self.cancelled = False


_STOP = object()


class LowRankService:
    """Async low-rank-approximation service with continuous batching.

    Usage::

        async with LowRankService(ServeConfig()) as svc:
            art = await svc.submit(DecompRequest(matrix=ref, rank=32))

    ``submit`` resolves to a :class:`repro.serve.request.ResultArtifact`
    or raises the typed rejection (queue full, closed, deadline,
    cancelled).  :attr:`counters` aggregates service metrics and
    :attr:`recorder` holds the span tree of everything the worker ran.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.config.validate()
        if self.config.plan is not None:
            from ..tune import apply_plan_to_config
            self.config = apply_plan_to_config(self.config)
            self.config.validate()
        self.counters = ServiceCounters()
        self.admission = AdmissionController(
            self.config.max_queue_depth, counters=self.counters,
            default_deadline_s=self.config.default_deadline_s)
        #: Span recorder shared by all requests (single worker only).
        self.recorder: Optional[SpanRecorder] = (
            SpanRecorder() if self.config.workers == 1 else None)
        # Depth is already capped upstream: AdmissionController rejects
        # beyond max_queue_depth before anything reaches this queue.
        self._queue: "asyncio.Queue" = asyncio.Queue()  # repro: noqa RS125
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._batch_ids = itertools.count()
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "LowRankService":
        if self._started:
            raise ConfigurationError("service already started")
        self._started = True
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        self._loop_task = asyncio.get_running_loop().create_task(
            self._batch_loop())
        return self

    async def close(self) -> None:
        """Stop admitting, drain queued work, shut the worker down."""
        self.admission.close()
        if self._loop_task is not None:
            await self._queue.put(_STOP)
            await self._loop_task
            self._loop_task = None
        if self._pool is not None:
            # The batch loop has already drained (awaited above), so
            # the pool is idle and wait=True returns immediately.
            self._pool.shutdown(wait=True)  # repro: noqa RS125
            self._pool = None

    async def __aenter__(self) -> "LowRankService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission --------------------------------------------------------
    async def submit(self, request: DecompRequest) -> ResultArtifact:
        """Admit ``request``, await its result under its deadline."""
        if not self._started:
            raise ServiceClosedError(
                "service not started; use 'async with LowRankService()'",
                request_id=request.request_id)
        self.admission.admit(request, self._queue.qsize())
        self.counters.note_submitted()
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        deadline_s = self.admission.effective_deadline_s(request)
        job = _Job(request, loop.create_future(), enqueued_t=now,
                   deadline_t=None if deadline_s is None
                   else now + deadline_s)
        await self._queue.put(job)
        self.counters.note_depth(self._queue.qsize())
        try:
            if job.deadline_t is None:
                return await job.future
            timeout = max(0.0, job.deadline_t - time.monotonic())
            return await asyncio.wait_for(
                asyncio.shield(job.future), timeout)
        except asyncio.TimeoutError:
            job.expired = True
            self.counters.note_rejected("deadline")
            raise DeadlineExceededError(
                f"request {request.request_id} missed its "
                f"{deadline_s:g}s deadline",
                request_id=request.request_id,
                waited_s=time.monotonic() - job.enqueued_t) from None
        except asyncio.CancelledError:
            job.cancelled = True
            job.future.cancel()
            self.counters.note_rejected("cancelled")
            raise

    # -- batch loop --------------------------------------------------------
    async def _collect_window(self, first: _Job) -> List[_Job]:
        """The batch window: gather coalescible work behind ``first``."""
        jobs = [first]
        window = self.config.batch_window_s
        if not self.config.batching:
            return jobs
        deadline = time.monotonic() + window
        while len(jobs) < self.config.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    job = self._queue.get_nowait()
                else:
                    job = await asyncio.wait_for(self._queue.get(),
                                                 remaining)
            except (asyncio.TimeoutError, asyncio.QueueEmpty):
                break
            if job is _STOP:
                # Put the sentinel back for the outer loop.
                self._queue.put_nowait(_STOP)
                break
            jobs.append(job)
        return jobs

    def _skip_verdict(self, jobs_by_id: Dict[str, _Job]):
        """The cancellation points run_jobs consults (worker thread)."""
        def verdict(req: DecompRequest) -> Optional[ServeError]:
            job = jobs_by_id[req.request_id]
            if job.cancelled or job.future.cancelled():
                job.cancelled = True
                return RequestCancelledError(
                    f"request {req.request_id} was cancelled",
                    request_id=req.request_id)
            if job.expired:
                return DeadlineExceededError(
                    f"request {req.request_id} expired in the queue",
                    request_id=req.request_id)
            if job.deadline_t is not None \
                    and time.monotonic() > job.deadline_t:
                job.expired = True
                return DeadlineExceededError(
                    f"request {req.request_id} expired before dispatch",
                    request_id=req.request_id)
            return None
        return verdict

    def _finish_job(self, job: _Job, outcome,
                    noted_batches: set) -> None:
        """Resolve one job's future (event-loop thread)."""
        if isinstance(outcome, ResultArtifact):
            latency = time.monotonic() - job.enqueued_t
            outcome.service_latency_s = latency
            outcome.queue_wait_s = max(0.0, latency - outcome.wall_run_s)
            if not job.future.done():
                self.counters.note_completed(latency,
                                             outcome.queue_wait_s)
                job.future.set_result(outcome)
            key = outcome.batch["batch_id"]
            if key not in noted_batches:
                noted_batches.add(key)
                self.counters.note_batch(outcome.batch["size"])
        elif isinstance(outcome, BaseException):
            if not job.future.done():
                job.future.set_exception(outcome)
                # The submitter may already be gone (expired deadline):
                # mark the exception retrieved so the event loop does
                # not warn about it.
                job.future.add_done_callback(
                    lambda f: f.cancelled() or f.exception())
        elif not job.future.done():
            job.future.cancel()

    async def _dispatch(self, plan: BatchPlan,
                        jobs_by_id: Dict[str, _Job]) -> None:
        loop = asyncio.get_running_loop()
        noted_batches: set = set()

        def on_result(request_id: str, outcome) -> None:
            # Worker thread -> event loop: complete each rider the
            # moment its own pipeline finishes, not when the whole
            # batch does.
            loop.call_soon_threadsafe(
                self._finish_job, jobs_by_id[request_id], outcome,
                noted_batches)

        results = await loop.run_in_executor(
            self._pool,
            lambda: run_jobs(plan, recorder=self.recorder,
                             default_backend=self.config.backend,
                             skip=self._skip_verdict(jobs_by_id),
                             on_result=on_result))
        # Safety net: anything the callbacks missed resolves here.
        for req in plan.requests:
            job = jobs_by_id[req.request_id]
            if not job.future.done():
                self._finish_job(job, results.get(req.request_id),
                                 noted_batches)

    async def _batch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is _STOP:
                break
            jobs = await self._collect_window(job)
            self.counters.note_depth(self._queue.qsize())
            live = [j for j in jobs if not j.cancelled]
            if self.config.batching:
                plans = plan_batches(
                    [j.request for j in live],
                    max_batch=self.config.max_batch,
                    prefix=f"batch-{next(self._batch_ids)}")
            else:
                plans = [
                    BatchPlan([j.request], key=j.request.batch_key,
                              batch_id=f"solo-{next(self._batch_ids)}")
                    for j in live]
            jobs_by_id = {j.request.request_id: j for j in jobs}
            for plan in plans:
                await self._dispatch(plan, jobs_by_id)
            for j in jobs:
                if j.cancelled and not j.future.done():
                    j.future.cancel()

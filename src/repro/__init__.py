"""repro — randomized sampling for low-rank approximation of dense
matrices, with a simulated multi-GPU performance substrate.

A from-scratch reproduction of:

    Théo Mary, Ichitaro Yamazaki, Jakub Kurzak, Piotr Luszczek,
    Stanimire Tomov, Jack Dongarra.  "Performance of Random Sampling
    for Computing Low-rank Approximations of a Dense Matrix on GPUs."
    SC '15.  DOI 10.1145/2807591.2807613.

Quickstart
----------
>>> import numpy as np
>>> from repro import random_sampling, SamplingConfig
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((2000, 200)) @ rng.standard_normal((200, 150))
>>> factors = random_sampling(a, SamplingConfig(rank=60, seed=1))
>>> factors.q.shape, factors.r.shape
((2000, 60), (60, 150))

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the
system inventory, and ``EXPERIMENTS.md`` for the paper-vs-measured
record of every table and figure.
"""

from .config import AdaptiveConfig, QRCPConfig, SamplingConfig
from .core import (
    AdaptiveResult,
    AdaptiveStep,
    CURDecomposition,
    LowRankFactors,
    RandomizedSVD,
    adaptive_sampling,
    best_rank_k_error,
    cur_decomposition,
    power_iterate,
    random_sampling,
    randomized_svd,
    sample,
    spectral_error,
)
from .hss import HODLRMatrix, HODLRStats, build_hodlr
from .errors import (
    CholeskyBreakdownError,
    ConfigurationError,
    ConvergenceError,
    DeviceError,
    NotOrthogonalError,
    OutOfDeviceMemoryError,
    ReproError,
    ShapeError,
    SymbolicExecutionError,
)
from .gpu import (
    KEPLER_K40C,
    ClusterExecutor,
    GPUExecutor,
    GPUSpec,
    KernelModel,
    MultiGPUExecutor,
    NetworkSpec,
    NumpyExecutor,
    SimulatedGPU,
    SymArray,
    scaled_spec,
)
from .qr import qrcp

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SamplingConfig",
    "AdaptiveConfig",
    "QRCPConfig",
    # core algorithms
    "random_sampling",
    "adaptive_sampling",
    "power_iterate",
    "sample",
    "qrcp",
    "randomized_svd",
    "cur_decomposition",
    "build_hodlr",
    "RandomizedSVD",
    "CURDecomposition",
    "HODLRMatrix",
    "HODLRStats",
    # results & errors measures
    "LowRankFactors",
    "AdaptiveResult",
    "AdaptiveStep",
    "spectral_error",
    "best_rank_k_error",
    # execution backends
    "NumpyExecutor",
    "GPUExecutor",
    "MultiGPUExecutor",
    "ClusterExecutor",
    "NetworkSpec",
    "scaled_spec",
    "SimulatedGPU",
    "SymArray",
    "GPUSpec",
    "KernelModel",
    "KEPLER_K40C",
    # exceptions
    "ReproError",
    "ShapeError",
    "NotOrthogonalError",
    "CholeskyBreakdownError",
    "ConvergenceError",
    "DeviceError",
    "OutOfDeviceMemoryError",
    "SymbolicExecutionError",
    "ConfigurationError",
]

"""Gallery of hard test matrices for rank-revealing factorizations.

Beyond the paper's three evaluation matrices, the rank-revealing-QR
literature uses a standard set of adversarial spectra to stress pivot
selection and subspace sampling.  These are used by the robustness
tests (and are handy for users evaluating the algorithms on their own
regime):

- :func:`kahan_matrix` — Kahan's classic example on which unmodified
  QRCP underestimates the smallest singular value;
- :func:`devil_stairs` — a staircase spectrum (plateaus separated by
  sharp drops) that defeats naive rank estimates;
- :func:`gap_spectrum_matrix` — a single large spectral gap at a known
  index (the easiest case; used as a sanity anchor);
- :func:`noisy_lowrank` — exact low rank plus white noise at a chosen
  SNR (the hapmap-like regime, parameterized);
- :func:`slow_polynomial_decay` — sigma_i = i^{-alpha} for small alpha,
  the worst regime for a fixed oversampling budget.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .synthetic import RngLike, _as_generator, random_orthonormal, \
    spectrum_matrix

__all__ = ["kahan_matrix", "devil_stairs", "gap_spectrum_matrix",
           "noisy_lowrank", "slow_polynomial_decay"]


def kahan_matrix(n: int, theta: float = 1.2) -> np.ndarray:
    """Kahan's upper-triangular matrix ``K = diag(c^i) * (I - s*U)``.

    ``c = cos(theta)``, ``s = sin(theta)``, ``U`` strictly upper ones.
    Its columns have equal norms after the diagonal scaling, so
    column-pivoted QR takes them in order and misses how tiny the
    trailing singular value really is — the standard counterexample to
    QRCP's rank-revealing guarantee.
    """
    if n < 1:
        raise ShapeError(f"n must be >= 1, got {n}")
    c, s = np.cos(theta), np.sin(theta)
    if not 0 < c < 1:
        raise ShapeError("theta must give 0 < cos(theta) < 1")
    k = np.eye(n) - s * np.triu(np.ones((n, n)), 1)
    scale = c ** np.arange(n)
    return scale[:, None] * k


def devil_stairs(m: int, n: int, steps: int = 5, drop: float = 100.0,
                 seed: RngLike = None) -> np.ndarray:
    """Staircase spectrum: ``steps`` plateaus, each ``drop``x below the
    previous, with Haar singular vectors."""
    if steps < 1 or drop <= 1:
        raise ShapeError("need steps >= 1 and drop > 1")
    r = min(m, n)
    plateau = -(-r // steps)
    sigma = np.concatenate([
        np.full(plateau, drop ** (-i)) for i in range(steps)])[:r]
    return spectrum_matrix(m, n, sigma, seed=seed)


def gap_spectrum_matrix(m: int, n: int, rank: int, gap: float = 1e6,
                        seed: RngLike = None) -> np.ndarray:
    """Flat spectrum with one sharp gap after ``rank`` values."""
    r = min(m, n)
    if not 0 < rank < r:
        raise ShapeError(f"need 0 < rank < min(m, n), got {rank}")
    sigma = np.ones(r)
    sigma[rank:] = 1.0 / gap
    return spectrum_matrix(m, n, sigma, seed=seed)


def noisy_lowrank(m: int, n: int, rank: int, snr: float = 100.0,
                  seed: RngLike = None) -> np.ndarray:
    """Exact rank-``rank`` signal (unit singular values) plus white
    Gaussian noise with spectral norm ``~1/snr``.

    The noise entries are scaled by ``1 / (2 sqrt(max(m, n)) snr)``,
    since an m x n Gaussian matrix has spectral norm
    ``~(sqrt(m) + sqrt(n)) sigma_entry``.
    """
    if not 0 < rank <= min(m, n):
        raise ShapeError(f"bad rank {rank} for ({m}, {n})")
    if snr <= 0:
        raise ShapeError("snr must be positive")
    rng = _as_generator(seed)
    signal = random_orthonormal(m, rank, rng) \
        @ random_orthonormal(n, rank, rng).T
    noise = rng.standard_normal((m, n))
    noise *= 1.0 / (2.0 * np.sqrt(max(m, n)) * snr)
    return signal + noise


def slow_polynomial_decay(m: int, n: int, alpha: float = 0.5,
                          seed: RngLike = None) -> np.ndarray:
    """``sigma_i = (i + 1)^{-alpha}`` with small ``alpha`` — the heavy
    tail that makes the randomized error bound's Frobenius term bite
    (the hapmap regime in synthetic form)."""
    if alpha <= 0:
        raise ShapeError("alpha must be positive")
    r = min(m, n)
    sigma = (np.arange(r) + 1.0) ** (-alpha)
    return spectrum_matrix(m, n, sigma, seed=seed)

"""Named registry of the paper's test matrices (Table 1).

Benches and tests request matrices by name (``"power"``, ``"exponent"``,
``"hapmap"``) at either paper scale or a reduced scale; the registry
also computes the Table 1 summary row (sigma_0, sigma_{k+1}, kappa) for
a generated instance.

Instances are memoized in a small per-process LRU keyed on
``(name, m, n, seed)`` — sweep grids hit the same few matrices dozens
of times and generation (a Haar-random orthogonal factor per side)
dominates their host wall-clock.  Only integer seeds are cached (a
Generator carries hidden state); cache hits return a fresh copy so
callers can mutate freely.  Tune with ``REPRO_MATRIX_CACHE`` (entry
count, 0 disables).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..backends import hostmath
from . import synthetic
from .hapmap_like import hapmap_like_matrix
from .synthetic import RngLike

__all__ = ["MatrixSpec", "TABLE1_SPECS", "get_matrix", "list_matrices",
           "table1_row", "matrix_cache_info", "clear_matrix_cache"]

#: Default LRU capacity (entries); override with REPRO_MATRIX_CACHE.
_CACHE_DEFAULT_ENTRIES = 8
#: Entries larger than this many bytes are never cached (a paper-scale
#: 500k x 500 matrix is 2 GB; caching it would evict everything else
#: for no win and pin the memory).
_CACHE_MAX_ENTRY_BYTES = 256 * 1024 * 1024

_CACHE: "OrderedDict[Tuple[str, int, int, int], np.ndarray]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0}


def _cache_capacity() -> int:
    raw = os.environ.get("REPRO_MATRIX_CACHE", "").strip()
    if not raw:
        return _CACHE_DEFAULT_ENTRIES
    try:
        cap = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_MATRIX_CACHE must be an integer, got {raw!r}") from None
    if cap < 0:
        raise ConfigurationError(
            f"REPRO_MATRIX_CACHE must be >= 0, got {cap}")
    return cap


def matrix_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the per-process matrix LRU."""
    return {"hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"], "entries": len(_CACHE)}


def clear_matrix_cache() -> None:
    _CACHE.clear()
    _CACHE_STATS["hits"] = _CACHE_STATS["misses"] = 0


@dataclass(frozen=True)
class MatrixSpec:
    """Description of one Table 1 test matrix.

    Attributes
    ----------
    name:
        Registry key.
    paper_shape:
        The (m, n) used in the paper.
    default_rank, default_oversampling:
        The (k, p) the paper pairs with this matrix.
    description:
        Human-readable definition of the spectrum / data source.
    """

    name: str
    paper_shape: Tuple[int, int]
    default_rank: int
    default_oversampling: int
    description: str
    factory: Callable[..., np.ndarray]


def _power_factory(m: int, n: int, seed: RngLike) -> np.ndarray:
    return synthetic.power_matrix(m, n, seed=seed)


def _exponent_factory(m: int, n: int, seed: RngLike) -> np.ndarray:
    return synthetic.exponent_matrix(m, n, seed=seed)


def _hapmap_factory(m: int, n: int, seed: RngLike) -> np.ndarray:
    return hapmap_like_matrix(n_snps=m, n_individuals=n, seed=seed)


TABLE1_SPECS: Dict[str, MatrixSpec] = {
    "power": MatrixSpec(
        name="power",
        paper_shape=(500_000, 500),
        default_rank=50,
        default_oversampling=10,
        description="sigma_i = (i+1)^-3, Haar-random singular vectors",
        factory=_power_factory,
    ),
    "exponent": MatrixSpec(
        name="exponent",
        paper_shape=(500_000, 500),
        default_rank=50,
        default_oversampling=10,
        description="sigma_i = 10^(-i/10), Haar-random singular vectors",
        factory=_exponent_factory,
    ),
    "hapmap": MatrixSpec(
        name="hapmap",
        paper_shape=(503_783, 506),
        default_rank=50,
        default_oversampling=10,
        description="Balding-Nichols synthetic stand-in for the "
                    "International HapMap genotype panel",
        factory=_hapmap_factory,
    ),
}


def list_matrices() -> Tuple[str, ...]:
    """Names of all registered test matrices."""
    return tuple(TABLE1_SPECS)


def get_matrix(name: str, m: Optional[int] = None, n: Optional[int] = None,
               seed: RngLike = 0) -> np.ndarray:
    """Instantiate a registered test matrix.

    Parameters
    ----------
    name:
        One of :func:`list_matrices`.
    m, n:
        Override the paper's shape (both default to the paper values —
        note the paper's ``m`` is 500 000; pass something smaller for
        interactive use).
    seed:
        PRNG seed; defaults to 0 for reproducible benches.  Integer
        seeds hit the LRU cache; Generator instances always regenerate.
    """
    try:
        spec = TABLE1_SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown matrix {name!r}; available: {list_matrices()}"
        ) from None
    pm, pn = spec.paper_shape
    mm = m if m is not None else pm
    nn = n if n is not None else pn
    capacity = _cache_capacity()
    if capacity == 0 or not isinstance(seed, (int, np.integer)):
        return spec.factory(mm, nn, seed)
    key = (name, int(mm), int(nn), int(seed))
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return cached.copy()
    _CACHE_STATS["misses"] += 1
    a = spec.factory(mm, nn, seed)
    if a.nbytes <= _CACHE_MAX_ENTRY_BYTES:
        _CACHE[key] = a
        while len(_CACHE) > capacity:
            _CACHE.popitem(last=False)
        return a.copy()
    return a


def table1_row(a: np.ndarray, k: int = 50) -> Dict[str, float]:
    """Compute the Table 1 summary statistics for a matrix instance.

    Returns a dict with ``sigma_0`` (largest singular value),
    ``sigma_k1`` (the (k+1)-th largest, the paper's sigma_{k+1}), and
    ``kappa`` = sigma_0 / sigma_{k+1}, the effective condition number
    the paper reports (the ratio across the truncation point).
    """
    s = hostmath.svdvals(a)
    if k + 1 >= s.size:
        raise ConfigurationError(
            f"k = {k} too large for matrix with min dim {s.size}")
    sigma0 = float(s[0])
    sigmak1 = float(s[k + 1])
    return {"sigma_0": sigma0, "sigma_k1": sigmak1,
            "kappa": sigma0 / sigmak1 if sigmak1 > 0 else np.inf}

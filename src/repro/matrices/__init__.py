"""Test-matrix generators reproducing Table 1 of the paper.

Two synthetic spectra (``power``: ``sigma_i = (i+1)^-3``; ``exponent``:
``sigma_i = 10^(-i/10)``) plus a HapMap-like population-genotype matrix
standing in for the International HapMap Project data the paper used.
"""

from .synthetic import (
    random_orthonormal,
    power_spectrum,
    exponent_spectrum,
    spectrum_matrix,
    power_matrix,
    exponent_matrix,
)
from .hapmap_like import hapmap_like_matrix, HapmapPanel
from .gallery import (
    kahan_matrix,
    devil_stairs,
    gap_spectrum_matrix,
    noisy_lowrank,
    slow_polynomial_decay,
)
from .registry import (
    MatrixSpec,
    TABLE1_SPECS,
    get_matrix,
    list_matrices,
    table1_row,
)

__all__ = [
    "random_orthonormal",
    "power_spectrum",
    "exponent_spectrum",
    "spectrum_matrix",
    "power_matrix",
    "exponent_matrix",
    "hapmap_like_matrix",
    "HapmapPanel",
    "kahan_matrix",
    "devil_stairs",
    "gap_spectrum_matrix",
    "noisy_lowrank",
    "slow_polynomial_decay",
    "MatrixSpec",
    "TABLE1_SPECS",
    "get_matrix",
    "list_matrices",
    "table1_row",
]

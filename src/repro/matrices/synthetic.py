"""Synthetic test matrices with prescribed singular-value spectra.

The paper's first two test matrices (Table 1) are built as
``A = X * Sigma * Y`` with randomly generated orthogonal ``X`` and ``Y``
and a diagonal ``Sigma`` holding either a power-law or an exponential
spectrum.  We reproduce that construction exactly, seeded.

The factors are generated with the Haar measure (QR of a Gaussian
matrix with the sign-fixed R diagonal), so the singular vectors are
uniformly distributed orthonormal frames.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ShapeError
from ..backends import hostmath

__all__ = [
    "random_orthonormal",
    "power_spectrum",
    "exponent_spectrum",
    "spectrum_matrix",
    "power_matrix",
    "exponent_matrix",
]

RngLike = Union[None, int, np.random.Generator]


def _as_generator(seed: RngLike) -> np.random.Generator:
    """Normalize ``None`` / int / Generator into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_orthonormal(m: int, n: int, seed: RngLike = None,
                       dtype=np.float64) -> np.ndarray:
    """Return an ``m x n`` matrix with orthonormal columns (``n <= m``).

    Drawn from the Haar distribution on the Stiefel manifold: QR of an
    i.i.d. standard Gaussian matrix, with the non-uniqueness removed by
    forcing the diagonal of ``R`` to be positive (Mezzadri's recipe).

    Parameters
    ----------
    m, n:
        Shape of the frame; ``n`` must not exceed ``m``.
    seed:
        ``None``, an integer seed, or a ``numpy.random.Generator``.
    dtype:
        Floating dtype of the result.
    """
    if n > m:
        raise ShapeError(f"need n <= m for an orthonormal frame, got "
                         f"({m}, {n})")
    rng = _as_generator(seed)
    g = rng.standard_normal((m, n)).astype(dtype, copy=False)
    q, r = hostmath.qr(g)
    # Fix the sign ambiguity so the distribution is exactly Haar.
    d = np.sign(np.diag(r))
    d[d == 0] = 1.0
    return q * d


def power_spectrum(count: int, exponent: float = 3.0,
                   dtype=np.float64) -> np.ndarray:
    """Power-law spectrum ``sigma_i = (i + 1)^-exponent``, i = 0..count-1.

    With the paper's ``exponent = 3`` and ``count = 500`` this gives
    ``sigma_0 = 1`` and ``sigma_51 ~ 8e-6`` as in Table 1.
    """
    if count < 1:
        raise ShapeError(f"count must be >= 1, got {count}")
    i = np.arange(count, dtype=dtype)
    return (i + 1.0) ** (-float(exponent))


def exponent_spectrum(count: int, decade: float = 10.0,
                      dtype=np.float64) -> np.ndarray:
    """Exponential spectrum ``sigma_i = 10^(-i/decade)``.

    With the paper's ``decade = 10`` this loses one order of magnitude
    every 10 singular values; ``sigma_51 ~ 1.3e-5`` matches Table 1.
    """
    if count < 1:
        raise ShapeError(f"count must be >= 1, got {count}")
    i = np.arange(count, dtype=dtype)
    return 10.0 ** (-i / float(decade))


def spectrum_matrix(m: int, n: int, spectrum: np.ndarray,
                    seed: RngLike = None,
                    dtype=np.float64,
                    return_factors: bool = False):
    """Build ``A = X @ diag(spectrum) @ Y^T`` with Haar-random factors.

    Parameters
    ----------
    m, n:
        Output shape; ``len(spectrum)`` must not exceed ``min(m, n)``.
    spectrum:
        Desired singular values (non-negative, any order; they become
        the exact singular values of ``A``).
    seed:
        PRNG seed shared by both factors (they are drawn sequentially
        from one generator, so they are independent).
    return_factors:
        When true, also return ``(X, Y)`` so tests can verify the
        construction.

    Returns
    -------
    ``A`` or ``(A, X, Y)`` depending on ``return_factors``.
    """
    spectrum = np.asarray(spectrum, dtype=dtype)
    if spectrum.ndim != 1:
        raise ShapeError("spectrum must be one-dimensional")
    r = spectrum.shape[0]
    if r > min(m, n):
        raise ShapeError(f"spectrum length {r} exceeds min(m, n) = "
                         f"{min(m, n)}")
    if np.any(spectrum < 0):
        raise ShapeError("singular values must be non-negative")
    rng = _as_generator(seed)
    x = random_orthonormal(m, r, rng, dtype=dtype)
    y = random_orthonormal(n, r, rng, dtype=dtype)
    a = (x * spectrum) @ y.T
    if return_factors:
        return a, x, y
    return a


def power_matrix(m: int = 500_000, n: int = 500, seed: RngLike = None,
                 exponent: float = 3.0, dtype=np.float64) -> np.ndarray:
    """The paper's ``power`` matrix: ``sigma_i = (i+1)^-3`` (Table 1).

    Defaults to the paper's full 500 000 x 500 size; pass smaller
    ``m``/``n`` for laptop-scale runs (the spectrum, and therefore the
    approximation-error behaviour, is unchanged).
    """
    return spectrum_matrix(m, n, power_spectrum(min(m, n), exponent, dtype),
                           seed=seed, dtype=dtype)


def exponent_matrix(m: int = 500_000, n: int = 500, seed: RngLike = None,
                    decade: float = 10.0, dtype=np.float64) -> np.ndarray:
    """The paper's ``exponent`` matrix: ``sigma_i = 10^(-i/10)`` (Table 1)."""
    return spectrum_matrix(m, n, exponent_spectrum(min(m, n), decade, dtype),
                           seed=seed, dtype=dtype)

"""Synthetic HapMap-like genotype matrix (population-structure SNP data).

The paper's third test matrix comes from the International HapMap
Project: rows are nucleotide bases (SNPs), columns are individuals from
four populations (CEU, GIH, JPT, YRI), and a low-rank approximation of
the matrix is used for population clustering.  The raw data is not
redistributable here, so this module generates a synthetic stand-in
with the same statistical structure using the **Balding-Nichols model**,
the standard population-genetics generative model for structured
genotypes (also used by the CUR/population-clustering literature the
paper cites [6, 14]).

Generative process
------------------
For each SNP ``s`` draw an ancestral minor-allele frequency
``p_s ~ Uniform(0.05, 0.5)``.  For each population ``j`` with drift
parameter ``F_j`` (Wright's fixation index, F_st), draw a
population-specific frequency::

    p_{s,j} ~ Beta(p_s (1 - F_j) / F_j,  (1 - p_s)(1 - F_j) / F_j)

Each individual ``i`` in population ``j`` then gets genotype
``A[s, i] ~ Binomial(2, p_{s,j})`` (minor-allele count in {0, 1, 2}).

Why this preserves the paper's behaviour
----------------------------------------
The resulting matrix is (population count)-rank structure plus heavy
binomial noise: a few large singular values carry the population
structure while the bulk spectrum decays very slowly (kappa ~ 2e1 at
the paper's scale, vs 1e5 for the synthetic matrices).  That slow decay
is exactly why the paper's Figure 6 reports large approximation errors
(0.6 - 1.0) for hapmap at k = 50 and why power iterations help it most.
The clustering use-case (recovering populations from the top singular
vectors) also carries over; see ``examples/hapmap_clustering.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ShapeError
from .synthetic import _as_generator, RngLike

__all__ = ["HapmapPanel", "hapmap_like_matrix", "DEFAULT_POPULATIONS"]

#: The four HapMap populations used by the paper, with typical F_st drift
#: values relative to the ancestral population (YRI close to ancestral,
#: out-of-Africa populations more drifted).
DEFAULT_POPULATIONS: Tuple[Tuple[str, float], ...] = (
    ("CEU", 0.12),   # Utah residents, N/W European ancestry
    ("GIH", 0.10),   # Gujarati Indians in Houston
    ("JPT", 0.14),   # Japanese in Tokyo
    ("YRI", 0.06),   # Yoruba in Ibadan
)


@dataclass(frozen=True)
class HapmapPanel:
    """A generated genotype panel.

    Attributes
    ----------
    genotypes:
        ``n_snps x n_individuals`` float array with entries in
        {0, 1, 2} (minor-allele counts), matching the paper's
        orientation (rows = nucleotide bases, columns = individuals).
    labels:
        Integer population label per individual (column).
    population_names:
        Name per population index.
    allele_frequencies:
        ``n_snps x n_populations`` population-specific frequencies used
        to draw the genotypes (useful for tests).
    """

    genotypes: np.ndarray
    labels: np.ndarray
    population_names: Tuple[str, ...]
    allele_frequencies: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.genotypes.shape


def _population_sizes(n_individuals: int, n_pops: int) -> np.ndarray:
    """Split individuals across populations as evenly as possible."""
    base = n_individuals // n_pops
    sizes = np.full(n_pops, base, dtype=int)
    sizes[: n_individuals - base * n_pops] += 1
    return sizes


def hapmap_like_matrix(
    n_snps: int = 503_783,
    n_individuals: int = 506,
    populations: Sequence[Tuple[str, float]] = DEFAULT_POPULATIONS,
    seed: RngLike = None,
    min_maf: float = 0.05,
    max_maf: float = 0.5,
    dtype=np.float64,
    return_panel: bool = False,
) -> Union[np.ndarray, HapmapPanel]:
    """Generate a HapMap-like SNP genotype matrix.

    Parameters
    ----------
    n_snps, n_individuals:
        Matrix dimensions; defaults are the paper's 503 783 x 506.
        Pass smaller values for laptop-scale experiments — the spectral
        *shape* (slow decay, small condition number) is preserved.
    populations:
        ``(name, F_st)`` pairs; individuals are split evenly.
    seed:
        PRNG seed (``None`` / int / Generator).
    min_maf, max_maf:
        Range of the ancestral minor-allele frequency.
    return_panel:
        When true return the full :class:`HapmapPanel` (genotypes plus
        labels and frequencies); otherwise just the genotype matrix.
    """
    if n_snps < 1 or n_individuals < len(populations):
        raise ShapeError(
            f"need n_snps >= 1 and n_individuals >= {len(populations)}, "
            f"got ({n_snps}, {n_individuals})")
    if not (0.0 < min_maf < max_maf <= 0.5):
        raise ShapeError("require 0 < min_maf < max_maf <= 0.5")
    for name, fst in populations:
        if not (0.0 < fst < 1.0):
            raise ShapeError(f"F_st for {name!r} must be in (0, 1), got {fst}")

    rng = _as_generator(seed)
    n_pops = len(populations)
    sizes = _population_sizes(n_individuals, n_pops)

    ancestral = rng.uniform(min_maf, max_maf, size=n_snps)

    freqs = np.empty((n_snps, n_pops), dtype=np.float64)
    for j, (_, fst) in enumerate(populations):
        scale = (1.0 - fst) / fst
        alpha = ancestral * scale
        beta = (1.0 - ancestral) * scale
        freqs[:, j] = rng.beta(alpha, beta)
    # Guard against numerically degenerate Beta draws.
    np.clip(freqs, 1e-6, 1.0 - 1e-6, out=freqs)

    genotypes = np.empty((n_snps, n_individuals), dtype=dtype)
    labels = np.empty(n_individuals, dtype=np.int64)
    col = 0
    for j, size in enumerate(sizes):
        block = rng.binomial(2, freqs[:, j][:, None],
                             size=(n_snps, size))
        genotypes[:, col:col + size] = block
        labels[col:col + size] = j
        col += size

    if return_panel:
        return HapmapPanel(
            genotypes=genotypes,
            labels=labels,
            population_names=tuple(name for name, _ in populations),
            allele_frequencies=freqs,
        )
    return genotypes

"""Kernel timing models for the simulated K40c.

Each method returns the modeled execution time in seconds of one kernel
invocation on one device.  Rates combine a roofline (compute peak +
shape-dependent effective bandwidth) with anchor curves calibrated
against the paper's measurements; the calibration story is in
``DESIGN.md`` section 5 and :mod:`repro.gpu.specs`.

Flop conventions (used consistently by the models and the benches):

- GEMM ``(m x k)(k x n)``: ``2 m n k``
- GEMV ``(m x n) v``:      ``2 m n``
- QR of ``m x n`` (m >= n): ``2 m n^2`` (the standard count used to
  express Figures 7 and 9 in Gflop/s)
- truncated QP3 to rank k:  ``4 m n k`` total, half BLAS-2
- FFT of length N:          ``5 N log2 N`` per transform, N padded to a
  power of two (Section 4's padding rule)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from .specs import GPUSpec, KEPLER_K40C

__all__ = ["KernelModel", "qr_flops", "gemm_flops", "qp3_flops"]


def gemm_flops(m: int, n: int, k: int) -> float:
    """Flops of an ``(m x k) @ (k x n)`` multiply."""
    return 2.0 * m * n * k


def qr_flops(long_dim: int, short_dim: int) -> float:
    """Standard QR flop count ``2 L s^2`` of an ``L x s`` panel."""
    return 2.0 * long_dim * short_dim * short_dim


def qp3_flops(m: int, n: int, k: int) -> float:
    """Flops of a truncated rank-``k`` QP3 of an ``m x n`` matrix."""
    return max(0.0, 4.0 * m * n * k - 2.0 * (m + n) * k * k
               + 4.0 * (k ** 3) / 3.0)


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


@dataclass
class KernelModel:
    """Seconds-per-call models for every kernel the algorithms use."""

    spec: GPUSpec = KEPLER_K40C

    # ------------------------------------------------------------------
    # Level-3 BLAS
    # ------------------------------------------------------------------
    def gemm_bandwidth_gbs(self, small: float, long: float) -> float:
        """Effective streaming bandwidth of a panel GEMM.

        ``small`` is the panel's short dimension (the sampled subspace
        size ``l``); ``long`` is the streamed dimension (the matrix
        height ``m``).  See :class:`repro.gpu.specs.GPUSpec`.
        """
        s = self.spec
        cap = s.gemm_bw_cap_gbs / (1.0 + long / s.gemm_bw_m_half)
        return cap * small / (small + s.gemm_bw_l_half)

    def gemm_gflops(self, m: int, n: int, k: int) -> float:
        """Achieved Gflop/s of an ``(m x k)(k x n)`` GEMM.

        The short output dimension limits register-tile reuse; the
        streamed (largest) dimension limits cache efficiency.
        """
        small = float(min(m, n, k))
        long = float(max(m, n, k))
        _positive("gemm dims", small)
        beff = self.gemm_bandwidth_gbs(small, long)
        # bytes/flops for a panel product with short side `small` is
        # ~ 4 / small in double precision (stream the long operand).
        inv = 1.0 / self.spec.dgemm_peak_gflops + 4.0 / (small * beff)
        return 1.0 / inv

    def gemm_seconds(self, m: int, n: int, k: int,
                     efficiency: float = 1.0) -> float:
        """Time of an ``(m x k)(k x n)`` GEMM.

        ``efficiency`` scales the achieved rate for transpose variants
        (see :attr:`GPUSpec.iter_gemm_efficiency`); the result is still
        capped at the dgemm peak.
        """
        rate = min(self.gemm_gflops(m, n, k) * efficiency,
                   self.spec.dgemm_peak_gflops)
        return (gemm_flops(m, n, k) / (rate * 1e9)
                + self.spec.kernel_launch_s)

    def syrk_seconds(self, rows: int, cols: int) -> float:
        """Gram-matrix product ``G = B B^T`` of a ``rows x cols`` block
        (``rows`` small).  Half the flops of the equivalent GEMM at the
        same achieved rate."""
        return (gemm_flops(rows, rows, cols) / 2.0
                / (self.gemm_gflops(rows, rows, cols) * 1e9)
                + self.spec.kernel_launch_s)

    def trsm_seconds(self, rows: int, cols: int) -> float:
        """Triangular solve with a ``rows x rows`` triangle applied to
        ``rows x cols``; GEMM-like rate at half efficiency (the
        triangle halves the tile occupancy)."""
        rate = 0.5 * self.gemm_gflops(rows, cols, rows)
        return (gemm_flops(rows, cols, rows) / 2.0 / (rate * 1e9)
                + self.spec.kernel_launch_s)

    def trmm_seconds(self, rows: int, cols: int) -> float:
        """Triangular matrix-matrix multiply, same model as TRSM."""
        return self.trsm_seconds(rows, cols)

    def potrf_seconds(self, n: int) -> float:
        """Cholesky of an ``n x n`` Gram matrix (small; latency-bound)."""
        flops = n ** 3 / 3.0
        return flops / (self.spec.potrf_gflops * 1e9) + 5 * self.spec.kernel_launch_s

    def svd_small_seconds(self, m: int, n: int) -> float:
        """Dense SVD of a small ``m x n`` factor (cuSOLVER gesvd).

        Used for the ``l x l`` triangular factor in the randomized-SVD
        post-processing: one-sided Jacobi/QR iteration costs ~``14
        long short^2`` flops and runs panel-bound, so we rate it on the
        width-calibrated BLAS-2 curve like QP3's panel phase.
        """
        small = float(min(m, n))
        long = float(max(m, n))
        _positive("svd dims", small)
        flops = 14.0 * long * small * small
        rate = self.spec.qp3_blas2_curve(small)
        return flops / (rate * 1e9) + 10 * self.spec.kernel_launch_s

    # ------------------------------------------------------------------
    # Level-1/2 BLAS
    # ------------------------------------------------------------------
    def row_norms_seconds(self, rows: int, cols: int) -> float:
        """Per-row 2-norms of a ``rows x cols`` block (memory-bound
        sweep: read once at device bandwidth)."""
        nbytes = 8.0 * rows * cols
        return nbytes / (self.spec.mem_bw_gbs * 1e9) + self.spec.kernel_launch_s

    def gemv_seconds(self, m: int, n: int) -> float:
        """Matrix-vector multiply (memory-bound; the Fig. 8 GEMV line)."""
        return (2.0 * m * n / (self.gemv_gflops(m, n) * 1e9)
                + self.spec.kernel_launch_s)

    def gemv_gflops(self, m: int, n: int) -> float:
        """GEMV rate: bandwidth-bound, capped by the spec's flat rate."""
        bw_bound = self.spec.mem_bw_gbs / 4.0  # 2 flops per 8 bytes
        return min(self.spec.gemv_gflops, bw_bound)

    def axpy_seconds(self, n: int) -> float:
        """Vector update (BLAS-1)."""
        return 2.0 * n / (self.spec.axpy_gflops * 1e9) + self.spec.kernel_launch_s

    # ------------------------------------------------------------------
    # Random numbers & FFT
    # ------------------------------------------------------------------
    def curand_seconds(self, count: int) -> float:
        """Generate ``count`` N(0, 1) doubles with cuRAND."""
        return count / self.spec.curand_gsamples + self.spec.kernel_launch_s

    @staticmethod
    def _pad_pow2(n: int) -> int:
        return 1 << max(1, (int(n) - 1).bit_length())

    def fft_sampling_seconds(self, m: int, n: int, axis: str = "row") -> float:
        """Full FFT sampling of an ``m x n`` matrix (Section 4).

        ``axis="row"``: one length-``m`` transform per column (the
        ``B = S Pi A`` row sampling);  ``axis="col"``: one length-``n``
        transform per row (column sampling, ``B = Omega A^T``).
        The transform length is padded to the next power of two.
        """
        if axis == "row":
            np2 = self._pad_pow2(m)
            flops = 5.0 * np2 * math.log2(np2) * n
            rate = self.spec.fft_row_gflops
        elif axis == "col":
            np2 = self._pad_pow2(n)
            flops = 5.0 * np2 * math.log2(np2) * m
            rate = self.spec.fft_col_gflops
        else:
            raise ConfigurationError(f"axis must be 'row' or 'col', got {axis!r}")
        return flops / (rate * 1e9) + self.spec.kernel_launch_s

    # ------------------------------------------------------------------
    # Composite factorization kernels (anchor-calibrated)
    # ------------------------------------------------------------------
    @staticmethod
    def _orient(m: int, n: int):
        """Return (long, short, tall_skinny?) for an ``m x n`` input."""
        return (m, n, True) if m >= n else (n, m, False)

    def cholqr_seconds(self, m: int, n: int, reorth: bool = False) -> float:
        """CholQR of an ``m x n`` block (either orientation).

        Calibrated to Figure 7 (tall-skinny) / Figure 9 (short-wide)
        effective rates on the ``2 L s^2`` flop count; a full
        reorthogonalization doubles the time (CholQR2).
        """
        long, short, ts = self._orient(m, n)
        curve = self.spec.cholqr_ts_curve if ts else self.spec.cholqr_sw_curve
        # Rescale the width-64 anchor rate for other panel widths using
        # the GEMM saturation factor (wider panels run closer to peak).
        width_factor = self._width_factor(short)
        rate = curve(long) * width_factor
        t = qr_flops(long, short) / (rate * 1e9) + 3 * self.spec.kernel_launch_s
        return 2.0 * t if reorth else t

    #: Half-saturation width of the CholQR rate: the SYRK/TRSM pair is
    #: pure BLAS-3, so its rate keeps climbing well past the width-64
    #: calibration anchors (Figures 7/9) — without this, Step 3 would
    #: dominate the large-l points of Figure 13, which the paper's
    #: near-linear measurements rule out.
    CHOLQR_WIDTH_HALF = 256.0

    def _width_factor(self, short: int) -> float:
        """Saturation of the panel-QR rate in the short dimension,
        normalized to 1 at the anchor width 64."""
        s = self.CHOLQR_WIDTH_HALF
        base = 64.0 / (64.0 + s)
        return (short / (short + s)) / base

    def hhqr_seconds(self, m: int, n: int) -> float:
        """Householder QR of an ``m x n`` block (Figure 7/9 anchors)."""
        long, short, ts = self._orient(m, n)
        curve = self.spec.hhqr_ts_curve if ts else self.spec.hhqr_sw_curve
        rate = curve(long)
        return (qr_flops(long, short) / (rate * 1e9)
                + short * 2 * self.spec.kernel_launch_s)

    def cgs_seconds(self, m: int, n: int) -> float:
        """Classical Gram-Schmidt (BLAS-2) of a tall-skinny block."""
        long, short, _ = self._orient(m, n)
        rate = self.spec.cgs_ts_curve(long)
        return (qr_flops(long, short) / (rate * 1e9)
                + short * 2 * self.spec.kernel_launch_s)

    def mgs_seconds(self, m: int, n: int) -> float:
        """Modified Gram-Schmidt (BLAS-1) of a tall-skinny block.

        The anchor rate already reflects the per-vector launch storm
        of the BLAS-1 formulation, so no extra latency term is added.
        """
        long, short, _ = self._orient(m, n)
        rate = self.spec.mgs_ts_curve(long)
        return qr_flops(long, short) / (rate * 1e9)

    def block_orth_seconds(self, prev: int, new: int, length: int,
                           reorth: bool = True) -> float:
        """Block Gram-Schmidt of ``new`` vectors of length ``length``
        against ``prev`` previous vectors: two GEMMs (``C = Q^T V``,
        ``V -= Q C``), doubled by reorthogonalization."""
        if prev == 0:
            return 0.0
        t = (self.gemm_seconds(prev, new, length)
             + self.gemm_seconds(length, new, prev))
        return 2.0 * t if reorth else t

    def qp3_seconds(self, m: int, n: int, k: Optional[int] = None,
                    block_size: int = 32) -> float:
        """Truncated blocked QP3 of an ``m x n`` matrix to rank ``k``.

        Three cost terms, per the paper's Section 2 discussion:

        - half the flops in BLAS-2 panel work at the width-calibrated
          ``qp3_blas2_curve`` rate (~31 Gflop/s for the wide problems
          of Figures 11-13, collapsing for narrow panels);
        - half the flops in BLAS-3 trailing updates at the panel-GEMM
          rate for the block size;
        - one CPU-GPU synchronization per pivot (the Figure 11
          intercept: ~0.18 ms x k).
        """
        if k is None:
            k = min(m, n)
        k = min(k, m, n)
        if k == 0:
            return 0.0
        flops = qp3_flops(m, n, k)
        blas2_rate = self.spec.qp3_blas2_curve(float(n))
        nb = max(1, min(block_size, k))
        blas3_rate = self.gemm_gflops(max(1, m - k // 2), max(1, n - k // 2), nb)
        t = (0.5 * flops / (blas2_rate * 1e9)
             + 0.5 * flops / (blas3_rate * 1e9)
             + k * self.spec.pivot_sync_s)
        return t

    def caqp3_seconds(self, m: int, n: int, k: Optional[int] = None,
                      block_size: int = 32,
                      sync_levels: int = 1) -> float:
        """Truncated communication-avoiding QP3 (CARRQR, ref [4]).

        Tournament pivoting roughly doubles the BLAS-2 flop volume
        (every trailing column is QRCP'ed locally once per panel plus
        the merge tree) but the local QRCPs stay resident in fast
        memory (modeled at 2x the global BLAS-2 rate) and the *global*
        synchronization count drops from ``k`` per-pivot syncs to
        ``(k / b) * sync_levels`` per-panel tree reductions.  On one
        GPU that trade is roughly a wash; its payoff appears when the
        per-sync cost grows (distributed memory) — exactly the paper's
        Section 11 argument, exercised by the communication-cost
        ablation bench.
        """
        if k is None:
            k = min(m, n)
        k = min(k, m, n)
        if k == 0:
            return 0.0
        b = max(1, min(block_size, k))
        panels = -(-k // b)
        # Tournament per panel: TSQR-reduce every m x 2b column block
        # to its 2b x 2b R factor (4 m b n BLAS-3 flops per panel),
        # then QRCP only the tiny R factors up the tree (latency).
        tournament_flops = 4.0 * m * b * n * panels
        tournament_rate = 0.5 * self.gemm_gflops(2 * b, 2 * b, m)
        import math as _math
        tree_depth = max(1, int(_math.ceil(_math.log2(max(2.0,
                                                          n / (2.0 * b))))))
        tree_latency = panels * tree_depth * 5 * self.spec.kernel_launch_s
        # Panel QR + compact-WY trailing updates: half the QP3 flops,
        # all BLAS-3 (no pivoted panel).
        blas3_rate = self.gemm_gflops(max(1, m - k // 2),
                                      max(1, n - k // 2), b)
        update = 0.5 * qp3_flops(m, n, k) / (blas3_rate * 1e9)
        syncs = panels * sync_levels * self.spec.pivot_sync_s
        return (tournament_flops / (tournament_rate * 1e9)
                + tree_latency + update + syncs)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def transfer_seconds(self, nbytes: int) -> float:
        """Host<->device (or peer) PCIe transfer."""
        return (nbytes / (self.spec.pcie_bw_gbs * 1e9)
                + self.spec.pcie_latency_s)

"""Distributed-memory cluster runtime (the Section 11 projection).

The paper closes: "Due to its communication efficiency, we expect the
performance benefits of random sampling to increase on a computer with
higher communication cost, like a distributed-memory computer."  This
module extends the single-node multi-GPU runtime to a cluster of such
nodes so that projection can be *run* rather than argued:

- ``A`` is 1D block-row distributed over all ``nodes x gpus_per_node``
  devices (the Figure 4 layout, one more tier);
- partial short-wide results reduce in two hops: PCIe within a node,
  then a binomial-tree allreduce over the interconnect;
- the small factorizations (QR of ``B``, QP3 of ``B``) stay
  node-local, exactly as the single-node runtime keeps them on the
  CPU/one device;
- the QP3 *baseline* on the same cluster pays one interconnect
  allreduce per pivot (the global column-norm argmax) — the
  communication pattern that motivates the whole paper.

The network model is a standard alpha-beta (latency + bandwidth) cost
with ``ceil(log2(nodes))`` stages per allreduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from .kernels import KernelModel, qp3_flops
from .multigpu import CPUSpec, MultiGPUExecutor
from .specs import GPUSpec, KEPLER_K40C

__all__ = ["NetworkSpec", "ClusterExecutor", "cluster_qp3_seconds"]


@dataclass(frozen=True)
class NetworkSpec:
    """Alpha-beta interconnect model.

    Defaults approximate FDR InfiniBand of the paper's era: ~5 GB/s
    effective point-to-point bandwidth, ~3 us MPI latency.  Pass larger
    ``latency_s`` (e.g. 50e-6 for 10GbE) to study the high-cost regime.
    """

    bandwidth_gbs: float = 5.0
    latency_s: float = 3e-6

    def ptp_seconds(self, nbytes: int) -> float:
        """One point-to-point message."""
        if nbytes < 0:
            raise ConfigurationError(f"negative message size: {nbytes}")
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)

    def allreduce_seconds(self, nbytes: int, nodes: int) -> float:
        """Binomial-tree allreduce across ``nodes`` ranks."""
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        if nodes == 1:
            return 0.0
        stages = math.ceil(math.log2(nodes))
        return 2 * stages * self.ptp_seconds(nbytes)


class ClusterExecutor(MultiGPUExecutor):
    """``nodes`` x ``gpus_per_node`` simulated devices.

    Math is identical to every other executor (same factors for the
    same seed); only the modeled clock reflects the two-tier reduction
    topology.
    """

    def __init__(self, nodes: int, gpus_per_node: int = 1,
                 spec: GPUSpec = KEPLER_K40C,
                 network: NetworkSpec = NetworkSpec(),
                 cpu: CPUSpec = CPUSpec(),
                 seed: Optional[int] = None):
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        super().__init__(ng=nodes * gpus_per_node, spec=spec, cpu=cpu,
                         seed=seed)
        self.nodes = nodes
        self.gpus_per_node = gpus_per_node
        self.network = network

    # -- two-tier reductions ---------------------------------------------
    def _reduce_b(self, l: int, n: int) -> None:
        """Intra-node PCIe gather, then inter-node allreduce."""
        chunks = len(self._chunk_events or ())
        self._chunk_events = None
        nbytes = 8 * l * n
        pcie = self.device.transfers.reduce_seconds(nbytes,
                                                    self.gpus_per_node)
        net = self.network.allreduce_seconds(nbytes, self.nodes)
        self._charge_comm(pcie, f"node reduce B {l}x{n}",
                          reads=[f"B_chunk[{j}]" for j in range(chunks)],
                          writes=["B_node"])
        if net > 0:
            self._charge_comm(net, f"allreduce B {l}x{n} x{self.nodes}",
                              reads=["B_node"], writes=["B_node"])
        if self.ng > 1:
            self._charge_all("comms",
                             self.cpu.gemm_seconds(
                                 (self.gpus_per_node - 1 + 1) * l * n),
                             label="cpu accumulate",
                             reads=["B_node"], writes=["B"])

    def _broadcast(self, l: int, n: int, label: str,
                   src: str = "B") -> None:
        nbytes = 8 * l * n
        net = 0.0
        if self.nodes > 1:
            stages = math.ceil(math.log2(self.nodes))
            net = stages * self.network.ptp_seconds(nbytes)
        pcie = self.device.transfers.broadcast_seconds(nbytes,
                                                       self.gpus_per_node)
        self._charge_comm(net + pcie, label, reads=[src],
                          writes=[f"{src}@g{d}"
                                  for d in range(self.ng)])

    def _t_orth(self, rows: int, cols: int, scheme: str, reorth: bool,
                phase: str) -> None:
        """As the single-node runtime, plus the interconnect hop for
        the small Gram/Cholesky factors of the distributed CholQR."""
        super()._t_orth(rows, cols, scheme, reorth, phase)
        if self._is_distributed_width(max(rows, cols)) or phase == "qr":
            small = min(rows, cols)
            passes = 2 if reorth else 1
            net = passes * (self.network.allreduce_seconds(
                8 * small * small, self.nodes))
            if net > 0:
                self._charge_comm(net, "cholqr gram allreduce",
                                  reads=["R_bar"], writes=["R_bar"])


def cluster_qp3_seconds(m: int, n: int, k: int, nodes: int,
                        gpus_per_node: int = 1,
                        spec: GPUSpec = KEPLER_K40C,
                        network: NetworkSpec = NetworkSpec(),
                        block_size: int = 32) -> float:
    """Modeled time of truncated QP3 with ``A`` block-row distributed
    over a cluster.

    Flops are perfectly partitioned (every rank updates its local
    rows), but **every pivot selection is a global argmax over the
    downdated column norms** — one length-``n`` allreduce per factored
    column, plus the per-pivot device synchronization.  This is the
    communication pattern Section 1 blames for QRCP's poor fit on
    communication-expensive machines.
    """
    if nodes < 1 or gpus_per_node < 1:
        raise ConfigurationError("nodes and gpus_per_node must be >= 1")
    km = KernelModel(spec)
    p = nodes * gpus_per_node
    local_m = -(-m // p)
    flops = qp3_flops(local_m, n, min(k, local_m, n))
    blas2 = spec.qp3_blas2_curve(float(n))
    blas3 = km.gemm_gflops(max(1, local_m), max(1, n - k // 2),
                           max(1, min(block_size, k)))
    compute = 0.5 * flops / (blas2 * 1e9) + 0.5 * flops / (blas3 * 1e9)
    sync = k * (spec.pivot_sync_s
                + network.allreduce_seconds(8 * n, nodes))
    return compute + sync

"""Simulated GPU substrate.

The paper's experiments ran on NVIDIA Tesla K40c ("Kepler") GPUs with
cuBLAS/cuRAND/cuFFT.  This package provides a *simulated* device that
executes every kernel numerically with NumPy while accruing a modeled
execution time from per-kernel rate models calibrated against the
measurements the paper itself reports (see ``DESIGN.md`` section 5).
A symbolic (shape-only) mode runs the same code paths without touching
data, so paper-scale performance sweeps are cheap.

Modules
-------
- :mod:`repro.gpu.specs` — hardware constants and calibration anchors.
- :mod:`repro.gpu.kernels` — kernel rate models (seconds per call).
- :mod:`repro.gpu.trace` — phase-tagged timelines.
- :mod:`repro.gpu.memory` — device memory accounting and transfers.
- :mod:`repro.gpu.device` — the simulated device + executors.
- :mod:`repro.gpu.streams` — stream/event scheduler (critical path).
- :mod:`repro.gpu.multigpu` — 1D block-row multi-GPU runtime (Fig. 4).
"""

from .specs import (GPUSpec, KEPLER_K40C, PASCAL_P100_PROJECTION,
                    AnchorCurve, scaled_spec)
from .kernels import KernelModel
from .trace import TimeLine, Phase, PHASES
from .memory import DeviceMemory, TransferModel
from .device import SymArray, SimulatedGPU, NumpyExecutor, GPUExecutor
from .streams import StreamEvent, StreamScheduler
from .multigpu import MultiGPUExecutor
from .cluster import ClusterExecutor, NetworkSpec, cluster_qp3_seconds

__all__ = [
    "GPUSpec",
    "KEPLER_K40C",
    "AnchorCurve",
    "KernelModel",
    "TimeLine",
    "Phase",
    "PHASES",
    "DeviceMemory",
    "TransferModel",
    "SymArray",
    "SimulatedGPU",
    "NumpyExecutor",
    "GPUExecutor",
    "StreamEvent",
    "StreamScheduler",
    "MultiGPUExecutor",
    "ClusterExecutor",
    "NetworkSpec",
    "cluster_qp3_seconds",
    "PASCAL_P100_PROJECTION",
    "scaled_spec",
]

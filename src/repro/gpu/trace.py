"""Phase-tagged timing traces.

Figures 11-15 and 17 break the random-sampling run time into the same
seven phases; :class:`TimeLine` accumulates modeled kernel times under
those tags so the benches can print the paper's stacked bars directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError

__all__ = ["Phase", "PHASES", "TimeLine"]

#: The paper's phase legend (Figures 11-15).
PHASES: Tuple[str, ...] = (
    "prng",        # generation of the sampling matrix Omega
    "sampling",    # the initial GEMM  B = Omega A
    "gemm_iter",   # GEMMs inside the power iterations
    "orth_iter",   # orthogonalization inside the power iterations
    "qrcp",        # QRCP of the sampled matrix B        (Step 2)
    "qr",          # QR of the selected columns A P_{1:k} (Step 3)
    "comms",       # inter-GPU / host-device communication
    "other",       # triangular solves/multiplies forming R, misc.
)


@dataclass
class Phase:
    """One accumulated phase: total seconds and number of kernel calls."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.calls += 1


class TimeLine:
    """Accumulates modeled kernel times per phase.

    Also keeps an ordered event log ``(phase, label, seconds)`` so a
    run can be inspected kernel by kernel.
    """

    def __init__(self) -> None:
        self._phases: Dict[str, Phase] = {p: Phase() for p in PHASES}
        self.events: List[Tuple[str, str, float]] = []

    def charge(self, phase: str, seconds: float, label: str = "") -> None:
        """Add ``seconds`` of modeled time to ``phase``."""
        if phase not in self._phases:
            raise ConfigurationError(
                f"unknown phase {phase!r}; expected one of {PHASES}")
        if seconds < 0:
            raise ConfigurationError(f"negative time charged: {seconds}")
        self._phases[phase].add(seconds)
        self.events.append((phase, label, seconds))

    def seconds(self, phase: str) -> float:
        """Accumulated seconds in one phase."""
        if phase not in self._phases:
            raise ConfigurationError(
                f"unknown phase {phase!r}; expected one of {PHASES}")
        return self._phases[phase].seconds

    def calls(self, phase: str) -> int:
        """Number of kernel calls charged to one phase."""
        return self._phases[phase].calls

    @property
    def total(self) -> float:
        """Total modeled seconds across all phases."""
        return sum(p.seconds for p in self._phases.values())

    def breakdown(self) -> Dict[str, float]:
        """Phase -> seconds map (in the paper's legend order)."""
        return {name: self._phases[name].seconds for name in PHASES}

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{"seconds": ..., "calls": ...}`` for phases that
        saw at least one kernel (legend order)."""
        return {name: {"seconds": self._phases[name].seconds,
                       "calls": self._phases[name].calls}
                for name in PHASES if self._phases[name].calls > 0}

    def fractions(self) -> Dict[str, float]:
        """Phase -> fraction of total (0 when the total is zero)."""
        tot = self.total
        if tot <= 0:
            return {name: 0.0 for name in PHASES}
        return {name: self._phases[name].seconds / tot for name in PHASES}

    def merge_max(self, others: "List[TimeLine]") -> "TimeLine":
        """Combine per-device timelines assuming perfect overlap
        *within* each phase across devices (the multi-GPU runtime runs
        device kernels concurrently): each phase takes the maximum over
        devices."""
        out = TimeLine()
        for name in PHASES:
            secs = max([self.seconds(name)] + [o.seconds(name) for o in others])
            if secs > 0:
                out.charge(name, secs, label="merged")
        return out

    def __iadd__(self, other: "TimeLine") -> "TimeLine":
        for name in PHASES:
            s = other.seconds(name)
            if s > 0:
                self._phases[name].seconds += s
                self._phases[name].calls += other.calls(name)
        self.events.extend(other.events)
        return self

    def to_chrome_trace(self, process_name: str = "simulated-gpu",
                        pid: int = 0) -> List[Dict]:
        """Convert the event log into Chrome trace-event format.

        Load the JSON-dumped result in ``chrome://tracing`` (or
        Perfetto) to inspect a modeled run kernel by kernel: one
        complete ('X') event per kernel, laid out sequentially on a
        thread per phase.  Timestamps are microseconds of modeled time.
        """
        out: List[Dict] = []
        out.append({"ph": "M", "pid": pid, "name": "process_name",
                    "args": {"name": process_name}})
        tids = {name: i for i, name in enumerate(PHASES)}
        for name, tid in tids.items():
            out.append({"ph": "M", "pid": pid, "tid": tid,
                        "name": "thread_name", "args": {"name": name}})
        clock = 0.0
        for phase, label, seconds in self.events:
            out.append({
                "ph": "X",
                "pid": pid,
                "tid": tids[phase],
                "name": label or phase,
                "cat": phase,
                "ts": clock * 1e6,
                "dur": seconds * 1e6,
            })
            clock += seconds
        return out

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in self.breakdown().items()
                          if v > 0)
        return f"TimeLine({parts}, total={self.total:.4f}s)"

"""Device memory accounting and the PCIe transfer model.

The simulated device tracks allocations so experiments fail the same
way real ones would when a matrix does not fit in the K40c's 12 GB
(e.g. the paper's 500 000 x 500 numerics matrix occupies 2 GB; a
150 000 x 2 500 sweep point occupies 3 GB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import OutOfDeviceMemoryError, ConfigurationError

__all__ = ["DeviceMemory", "TransferModel"]


class DeviceMemory:
    """Byte-counting allocator for one simulated device."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        self.used = 0
        self.high_water = 0
        self._allocations: Dict[int, int] = {}
        self._next_id = 1

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes``; returns an allocation handle.

        Raises :class:`repro.errors.OutOfDeviceMemoryError` when the
        request exceeds the remaining capacity.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigurationError(f"negative allocation: {nbytes}")
        if self.used + nbytes > self.capacity:
            raise OutOfDeviceMemoryError(nbytes, self.capacity - self.used,
                                         self.capacity)
        handle = self._next_id
        self._next_id += 1
        self._allocations[handle] = nbytes
        self.used += nbytes
        self.high_water = max(self.high_water, self.used)
        return handle

    def free(self, handle: int) -> None:
        """Release an allocation handle (idempotent errors are raised)."""
        try:
            nbytes = self._allocations.pop(handle)
        except KeyError:
            raise ConfigurationError(f"unknown allocation handle {handle}")
        self.used -= nbytes

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def reset(self) -> None:
        """Drop all allocations and the high-water mark (fresh run)."""
        self._allocations.clear()
        self.used = 0
        self.high_water = 0


@dataclass(frozen=True)
class TransferModel:
    """Seconds for host<->device and device<->device copies.

    The paper's multi-GPU runtime moves the short-wide sampled blocks
    through the host (Figure 4): partial results are accumulated on the
    CPU and factors broadcast back, so every hop is a PCIe transfer.
    """

    bandwidth_gbs: float = 6.0
    latency_s: float = 15e-6

    def seconds(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size: {nbytes}")
        return nbytes / (self.bandwidth_gbs * 1e9) + self.latency_s

    def reduce_seconds(self, nbytes_each: int, ng: int) -> float:
        """Gather ``ng`` partial blocks to the host (serialized over the
        shared PCIe root complex, as on the paper's single node)."""
        return ng * self.seconds(nbytes_each)

    def broadcast_seconds(self, nbytes: int, ng: int) -> float:
        """Send one block from host to every device."""
        return ng * self.seconds(nbytes)

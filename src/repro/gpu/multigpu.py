"""Multi-GPU runtime: 1D block-row distribution (Section 4, Figure 4).

The matrix ``A`` is split in block rows across ``ng`` devices (each
owns ``c ~ m / ng`` rows); ``Omega`` and ``C`` are split in the same 1D
block-*column* format as ``A^T``.  The dataflow follows the paper:

- ``B = Omega A`` / ``B = C A``: every GPU multiplies its local blocks,
  the CPU accumulates the ``ng`` partial ``l x n`` results.
- QR of the small ``B`` runs on the **CPU** and the orthogonal factor
  is broadcast to every GPU.
- ``C = B A^T``: local GEMMs; ``C`` stays distributed.
- CholQR of the distributed ``C``: local Gram products ``G_i = C_i
  C_i^T``, CPU reduction ``G = sum G_i``, CPU Cholesky, broadcast of
  ``R_bar``, local triangular solves (Figure 4).
- Steps 2 and 3 (QP3 of ``B``; the tall-skinny QR of ``A P_{1:k}``)
  run on device 0 / via multi-GPU CholQR respectively.

Math is executed once on the host arrays (results are identical to the
single-device path by construction); the *timing* runs through the
:class:`repro.gpu.streams.StreamScheduler`: every operation is placed
on per-device streams (``compute``, ``d2h``/``h2d`` sharing the host's
``pcie`` lane, CPU work on the host ``cpu`` stream) and the modeled
run time is the critical path through that DAG.  With ``overlap=True``
(the default, matching the paper's pipelined runtime) the partial-sum
reduction of ``B`` is chunked and each chunk's gather overlaps the
next chunk's local GEMM, and the tall-skinny CholQR double-buffers its
Gram transfers behind the second SYRK buffer; ``overlap=False``
serializes every submission, restoring the plain serial-sum model.
Phase *sums* are identical either way — only the elapsed critical path
differs — reproducing the 1.6 % / 4.3 % communication fractions and
the superlinear GEMM scaling of Figure 15 (the local panels get
shorter, so the per-device GEMM rate rises).

All charging goes through the stream API; ``device.charge`` must not
be called directly here (analyzer rule RS108), and every submission
declares the logical buffers it touches via ``reads=``/``writes=``
(analyzer rule RS111) so the happens-before race sanitizer
(:mod:`repro.analysis.races`) can verify the event DAG orders every
conflicting access.  Setting ``REPRO_RACE_CHECK=1`` attaches the
sanitizer in raising mode; it is observation-only, so modeled totals
are identical with it on or off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.annotations import residency, shaped
from ..errors import ConfigurationError, ShapeError
from .device import (ArrayLike, GPUExecutor, SimulatedGPU, SymArray,
                     is_symbolic, shape_of)
from .specs import GPUSpec, KEPLER_K40C
from .streams import HOST, StreamEvent, StreamScheduler

__all__ = ["CPUSpec", "MultiGPUExecutor"]


@dataclass(frozen=True)
class CPUSpec:
    """Host model: the paper's two 8-core SandyBridge Xeons with MKL."""

    gemm_gflops: float = 200.0
    small_panel_gflops: float = 25.0
    potrf_gflops: float = 15.0

    def gemm_seconds(self, flops: float) -> float:
        return flops / (self.gemm_gflops * 1e9)

    def panel_seconds(self, flops: float) -> float:
        return flops / (self.small_panel_gflops * 1e9)

    def potrf_seconds(self, n: int) -> float:
        return (n ** 3 / 3.0) / (self.potrf_gflops * 1e9)


class MultiGPUExecutor(GPUExecutor):
    """Executor modeling ``ng`` simulated GPUs on one node.

    Per-parallel-operation time is charged once with the *local* block
    shapes (the devices are symmetric, so the max over devices equals
    the device-0 time); communication goes to the ``comms`` phase.
    ``overlap`` selects the pipelined stream schedule (on, the paper's
    runtime) or the serial sum (off, the ablation baseline);
    ``pipeline_chunks`` is the gather pipeline depth and
    ``cholqr_buffers`` the SYRK double-buffering depth of the
    distributed CholQR — the two schedule knobs the autotuner in
    :mod:`repro.tune` searches over.  ``plan`` accepts a
    :class:`repro.tune.TunePlan` (or a plan-artifact path, or a bare
    knob mapping) whose knobs override the constructor defaults; knob
    changes move work between streams but never change phase sums or
    the host math.
    """

    #: Schedule knobs a tuning plan may set on this executor.
    TUNABLE_KNOBS = ("pipeline_chunks", "cholqr_buffers")

    def __init__(self, ng: int, spec: GPUSpec = KEPLER_K40C,
                 cpu: CPUSpec = CPUSpec(),
                 seed: Optional[int] = None,
                 overlap: bool = True,
                 pipeline_chunks: int = 4,
                 cholqr_buffers: int = 2,
                 backend=None,
                 plan=None):
        if ng < 1:
            raise ConfigurationError(f"ng must be >= 1, got {ng}")
        if pipeline_chunks < 1:
            raise ConfigurationError(
                f"pipeline_chunks must be >= 1, got {pipeline_chunks}")
        if cholqr_buffers < 1:
            raise ConfigurationError(
                f"cholqr_buffers must be >= 1, got {cholqr_buffers}")
        super().__init__(spec=spec, seed=seed, backend=backend)
        self.ng = ng
        self.cpu = cpu
        self.overlap = bool(overlap)
        self.pipeline_chunks = pipeline_chunks
        self.cholqr_buffers = cholqr_buffers
        self.devices: List[SimulatedGPU] = [
            SimulatedGPU(spec, device_id=i) for i in range(ng)]
        # Device 0 doubles as the master clock target via `self.device`.
        self.device = self.devices[0]
        self.kernels = self.device.kernels
        # All charges go through the scheduler onto device 0's master
        # timeline; `seconds` reads the scheduler's critical path.
        self.streams = StreamScheduler(ng=ng, overlap=self.overlap,
                                       timeline=self.device.timeline)
        self.streams.memory_probe = self._memory_high_water
        if os.environ.get("REPRO_RACE_CHECK", "") not in ("", "0", "false"):
            from ..analysis.races import RaceChecker
            self.streams.attach_race_checker(RaceChecker(raise_on_race=True))
        self._dist_cols: Optional[int] = None  # = m once bound
        #: Per-chunk completion events of the last pipelined local GEMM
        #: (consumed by `_reduce_b` to overlap the gather).
        self._chunk_events: Optional[List[StreamEvent]] = None
        if plan is not None:
            self.apply_plan(plan)

    def apply_plan(self, plan) -> None:
        """Apply a tuning plan's schedule knobs to this executor.

        ``plan`` is a :class:`repro.tune.TunePlan`, a plan-artifact
        path, or a bare ``{knob: value}`` mapping.  Only knobs in
        :data:`TUNABLE_KNOBS` are accepted, with the same validation as
        the constructor.  Apply before submitting work: knobs shape the
        stream schedule of subsequent submissions only.
        """
        from ..tune.plan import coerce_plan_knobs
        knobs = coerce_plan_knobs(plan, allowed=self.TUNABLE_KNOBS)
        for name, value in knobs.items():
            if value < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {value}")
            setattr(self, name, int(value))

    def _memory_high_water(self, device_id: int) -> int:
        return self.devices[device_id].memory.high_water

    # ------------------------------------------------------------------
    # distribution helpers
    # ------------------------------------------------------------------
    def bind(self, a: ArrayLike) -> None:
        """Register the input matrix: establishes the distributed
        dimension (its row count ``m``) and accounts device memory."""
        m, n = shape_of(a)
        self._dist_cols = m
        for d, dev in enumerate(self.devices):
            dev.memory.reset()
            dev.memory.allocate(8 * self.local_rows_of(d, m) * n)

    def attach_recorder(self, recorder) -> None:
        """Attach one span recorder across every simulated device (the
        kernel spans carry each device's id and stream)."""
        for dev in self.devices:
            dev.attach_recorder(recorder)
        self.streams.attach_recorder(recorder)

    def reset_clock(self) -> None:
        for dev in self.devices:
            dev.reset()
        self.streams.reset(timeline=self.device.timeline)

    def local_rows(self, m: int) -> int:
        """Rows of the largest local block ``A_(i)``."""
        return -(-m // self.ng)  # ceil division

    def local_rows_of(self, device_id: int, m: int) -> int:
        """Rows actually owned by ``device_id``: the last device of a
        ragged split gets the (smaller) remainder block."""
        c = self.local_rows(m)
        return min(c, max(0, m - device_id * c))

    def _is_distributed_width(self, cols: int) -> bool:
        """True when a short-wide block's width is the distributed
        dimension ``m`` (i.e. the block is ``C``, stored block-column
        across devices), as opposed to the replicated ``B`` (width n)."""
        return self._dist_cols is not None and cols == self._dist_cols

    # ------------------------------------------------------------------
    # stream-API charging helpers (RS108: no direct device.charge here)
    # ------------------------------------------------------------------
    def _all_compute(self) -> List[Tuple[int, str]]:
        return [(d, "compute") for d in range(self.ng)]

    def _charge_all(self, phase: str, seconds: float, label: str,
                    flops: float = 0.0, bytes_moved: float = 0.0,
                    reads: Sequence[str] = (),
                    writes: Sequence[str] = ()) -> None:
        """Charge symmetric parallel work (counted once: max = local),
        joined after everything in flight."""
        self.streams.submit_group(phase, seconds,
                                  placements=self._all_compute(),
                                  after_all=True, label=label,
                                  flops=flops, bytes_moved=bytes_moved,
                                  reads=reads, writes=writes)

    def _charge_comm(self, seconds: float, label: str,
                     bytes_moved: float = 0.0,
                     reads: Sequence[str] = (),
                     writes: Sequence[str] = ()) -> None:
        """One serialized transfer through the shared PCIe lane."""
        self.streams.submit("comms", seconds, device=0, stream="d2h",
                            resources=[(HOST, "pcie")], after_all=True,
                            label=label, bytes_moved=bytes_moved,
                            reads=reads, writes=writes)

    def _chunks(self) -> int:
        return self.pipeline_chunks if self.overlap else 1

    def _local_gemm(self, phase: str, seconds: float, label: str,
                    flops: float, bytes_moved: float,
                    reads: Sequence[str] = ()) -> None:
        """Pipelined symmetric local GEMM: split into chunks so the
        per-chunk gather of a following reduction can overlap the next
        chunk's compute.  Chunk completion events are parked in
        ``_chunk_events`` for :meth:`_reduce_b`; chunk ``j`` writes the
        logical buffer ``B_chunk[j]`` that the matching gather leg
        reads, which is exactly the edge the race sanitizer verifies.
        """
        chunks = self._chunks()
        self._chunk_events = []
        for j in range(chunks):
            ev = self.streams.submit_group(
                phase, seconds / chunks,
                placements=self._all_compute(),
                after_all=(j == 0),
                label=(label if chunks == 1
                       else f"{label} c{j + 1}/{chunks}"),
                flops=flops / chunks, bytes_moved=bytes_moved / chunks,
                reads=reads, writes=[f"B_chunk[{j}]"])
            self._chunk_events.append(ev)

    # ------------------------------------------------------------------
    # overridden operations (timing only; math identical to base class)
    # ------------------------------------------------------------------
    @residency(returns="device")
    def prng_gaussian(self, rows: int, cols: int,
                      symbolic: bool = False) -> ArrayLike:
        # Omega is generated distributed (rows x c per device).
        c = self.local_rows(cols) if self._dist_cols == cols else cols
        self._charge_all("prng", self.kernels.curand_seconds(rows * c),
                         label=f"curand {rows}x{c} (local)",
                         flops=float(rows * c), bytes_moved=8.0 * rows * c,
                         writes=["Omega"])
        if symbolic:
            return SymArray((rows, cols))
        return self.backend.standard_normal(self.rng, (rows, cols))

    @residency(returns="host")
    @shaped(params={"omega": ("l", "m"), "a": ("m", "n")}, returns=("l", "n"))
    def sample_gemm(self, omega: ArrayLike, a: ArrayLike) -> ArrayLike:
        """``B_(i) = Omega_(i) A_(i)`` locally, then CPU accumulation;
        the chunked gather overlaps the next chunk's GEMM.

        The accumulated ``B`` is host-resident (the reduction in
        :meth:`_reduce_b` lands on the CPU), so the declared residency
        is ``host`` and the product is downloaded through
        :meth:`~repro.gpu.device.NumpyExecutor.to_host` — dropping that
        download is an RS115 violation the analyzer catches.
        """
        from .device import _mm, _words_bytes
        from .kernels import gemm_flops
        l, m = shape_of(omega)
        n = shape_of(a)[1]
        c = self.local_rows(m)
        flops = gemm_flops(l, n, c)
        self._local_gemm("sampling", self.kernels.gemm_seconds(l, n, c),
                         label=f"gemm {l}x{n}x{c} (local)", flops=flops,
                         bytes_moved=_words_bytes(flops, l * c, c * n,
                                                  l * n),
                         reads=["Omega", "A"])
        self._reduce_b(l, n)
        b = _mm(omega, a, self.backend)
        return self.to_host(b)

    def _reduce_b(self, l: int, n: int) -> None:
        """Gather ng partial l x n blocks to the CPU and sum them.

        Each device's gather of chunk ``j`` depends only on its chunk-
        ``j`` GEMM (the events parked by :meth:`_local_gemm`), so with
        ``overlap=on`` the transfers drain behind the remaining compute;
        the shared ``pcie`` resource serializes concurrent devices,
        keeping the total transfer time equal to
        :meth:`repro.gpu.memory.TransferModel.reduce_seconds`.
        """
        chunk_events = self._chunk_events or [self.streams.barrier()]
        self._chunk_events = None
        chunks = len(chunk_events)
        total = self.device.transfers.reduce_seconds(8 * l * n, self.ng)
        per_leg = total / (self.ng * chunks)
        for j, ev in enumerate(chunk_events):
            for d in range(self.ng):
                self.streams.submit(
                    "comms", per_leg, device=d, stream="d2h",
                    resources=[(HOST, "pcie")], deps=[ev],
                    label=f"reduce B {l}x{n} x{self.ng}",
                    bytes_moved=8.0 * l * n / chunks,
                    reads=[f"B_chunk[{j}]"],
                    writes=[f"B_host[{j},g{d}]"])
        # CPU accumulation: (ng - 1) adds of l*n.
        if self.ng > 1:
            self.streams.submit(
                "comms", self.cpu.gemm_seconds((self.ng - 1) * l * n),
                device=HOST, stream="cpu", after_all=True,
                label="cpu accumulate",
                flops=float((self.ng - 1) * l * n),
                reads=[f"B_host[{j},g{d}]"
                       for j in range(chunks) for d in range(self.ng)],
                writes=["B"])

    def _broadcast(self, l: int, n: int, label: str,
                   src: str = "B") -> None:
        """Host-to-every-device broadcast of the replicated ``src``
        buffer; each leg writes the device-local replica ``src@g{d}``."""
        total = self.device.transfers.broadcast_seconds(8 * l * n, self.ng)
        for d in range(self.ng):
            self.streams.submit("comms", total / self.ng, device=d,
                                stream="h2d", resources=[(HOST, "pcie")],
                                after_all=(d == 0), label=label,
                                bytes_moved=8.0 * l * n,
                                reads=[src], writes=[f"{src}@g{d}"])

    @residency(returns="device")
    @shaped(params={"b": ("l", "n"), "a": ("m", "n")}, returns=("l", "m"))
    def iter_gemm_at(self, b: ArrayLike, a: ArrayLike) -> ArrayLike:
        """``C_(i) = B A_(i)^T`` locally; C stays distributed."""
        from .device import _mm, _words_bytes
        from .kernels import gemm_flops
        l, n = shape_of(b)
        m = shape_of(a)[0]
        c = self.local_rows(m)
        eff = self.device.spec.iter_gemm_efficiency
        flops = gemm_flops(l, c, n)
        self._charge_all("gemm_iter",
                         self.kernels.gemm_seconds(l, c, n, efficiency=eff),
                         label=f"gemm {l}x{c}x{n} (local)", flops=flops,
                         bytes_moved=_words_bytes(flops, l * n, c * n,
                                                  l * c),
                         reads=[f"B@g{d}" for d in range(self.ng)] + ["A"],
                         writes=["C"])
        return _mm(b, a.T, self.backend)

    @residency(returns="host")
    @shaped(params={"c_mat": ("l", "m"), "a": ("m", "n")}, returns=("l", "n"))
    def iter_gemm_a(self, c_mat: ArrayLike, a: ArrayLike) -> ArrayLike:
        """``B_(i) = C_(i) A_(i)`` locally, then CPU accumulation.

        Like :meth:`sample_gemm`, the reduced ``B`` is host-resident
        and must come back through ``to_host`` (RS115-checked).
        """
        from .device import _mm, _words_bytes
        from .kernels import gemm_flops
        l, m = shape_of(c_mat)
        n = shape_of(a)[1]
        c = self.local_rows(m)
        eff = self.device.spec.iter_gemm_efficiency
        flops = gemm_flops(l, n, c)
        self._local_gemm("gemm_iter",
                         self.kernels.gemm_seconds(l, n, c, efficiency=eff),
                         label=f"gemm {l}x{n}x{c} (local)", flops=flops,
                         bytes_moved=_words_bytes(flops, l * c, c * n,
                                                  l * n),
                         reads=["C", "A"])
        self._reduce_b(l, n)
        b = _mm(c_mat, a, self.backend)
        return self.to_host(b)

    def _t_orth(self, rows: int, cols: int, scheme: str, reorth: bool,
                phase: str) -> None:
        """Orthogonalization timing: CPU for the replicated ``B``,
        multi-GPU CholQR (Figure 4) for the distributed ``C`` and for
        the tall-skinny Step-3 QR (double-buffered: the first SYRK
        buffer's partial Gram ships while the second buffer computes)."""
        from .device import _words_bytes
        from .kernels import qr_flops
        passes = 2 if reorth else 1
        if self._is_distributed_width(max(rows, cols)) or phase == "qr":
            self._distributed_cholqr(rows, cols, passes, phase)
            return
        # Replicated short-wide B: factor on the CPU, broadcast Q.
        small = min(rows, cols)
        long = max(rows, cols)
        flops = 2.0 * long * small * small * passes * 2
        self.streams.submit(phase, self.cpu.panel_seconds(flops),
                            device=HOST, stream="cpu", after_all=True,
                            label=f"cpu-{scheme} {rows}x{cols}",
                            flops=flops,
                            bytes_moved=8.0 * rows * cols * passes,
                            reads=["B"], writes=["B"])
        self._broadcast(rows, cols, "broadcast Q_B", src="B")

    def _distributed_cholqr(self, rows: int, cols: int, passes: int,
                            phase: str) -> None:
        """Distributed CholQR: local SYRK over c columns/rows, reduce
        the small Gram, CPU Cholesky, broadcast R_bar, local TRSM.

        The SYRK runs in ``cholqr_buffers`` buffers per pass (default
        2, the paper's double-buffering); each buffer's partial Gram
        goes down the ``d2h`` stream as soon as it finishes, so all but
        the last transfer hide behind later buffers' compute.  The
        buffer count reshapes the schedule only — per-phase totals are
        independent of it.
        """
        from .device import _words_bytes
        from .kernels import qr_flops
        nb = self.cholqr_buffers
        small = min(rows, cols)
        long_local = self.local_rows(max(rows, cols))
        syrk = self.kernels.syrk_seconds(small, long_local)
        trsm = self.kernels.trsm_seconds(small, long_local)
        cpu = self.cpu.potrf_seconds(small)
        reduce_t = self.device.transfers.reduce_seconds(
            8 * small * small, self.ng)
        bcast_t = self.device.transfers.broadcast_seconds(
            8 * small * small, self.ng)
        flops = passes * qr_flops(long_local, small)
        bytes_moved = _words_bytes(flops, passes * long_local * small)
        # Per accounted compute submission (nb SYRK buffers + 1 TRSM
        # per pass): the totals are preserved exactly.
        flops_each = flops / (passes * (nb + 1))
        bytes_each = bytes_moved / (passes * (nb + 1))
        label = f"mgpu-cholqr {rows}x{cols}"
        # Logical buffer names for the sanitizer: the factored panel
        # ("C" in the iteration, "Q_panel" in Step 3's tall-skinny QR),
        # the partial-Gram SYRK buffers, the host-side Gram legs,
        # and the replicated Cholesky factor R_bar.
        panel = "Q_panel" if phase == "qr" else "C"
        for _ in range(passes):
            buffers = []
            for b in range(nb):
                buffers.append(self.streams.submit_group(
                    phase, syrk / nb, placements=self._all_compute(),
                    after_all=(b == 0),
                    label=f"{label} syrk b{b + 1}/{nb}",
                    flops=flops_each, bytes_moved=bytes_each,
                    reads=[panel], writes=[f"G_part[{b}]"]))
            for b, ev in enumerate(buffers):
                for d in range(self.ng):
                    self.streams.submit(
                        "comms", reduce_t / (nb * self.ng), device=d,
                        stream="d2h", resources=[(HOST, "pcie")],
                        deps=[ev], label="cholqr gram/factor",
                        bytes_moved=8.0 * small * small,
                        reads=[f"G_part[{b}]"],
                        writes=[f"G[{b},g{d}]"])
            potrf = self.streams.submit(
                phase, cpu, device=HOST, stream="cpu", after_all=True,
                label=f"cpu-potrf {small}",
                reads=[f"G[{b},g{d}]" for b in range(nb)
                       for d in range(self.ng)],
                writes=["R_bar"])
            for d in range(self.ng):
                self.streams.submit(
                    "comms", bcast_t / self.ng, device=d, stream="h2d",
                    resources=[(HOST, "pcie")], deps=[potrf],
                    label="cholqr gram/factor",
                    bytes_moved=8.0 * small * small,
                    reads=["R_bar"], writes=[f"R_bar@g{d}"])
            self.streams.submit_group(
                phase, trsm, placements=self._all_compute(),
                after_all=True, label=f"{label} trsm",
                flops=flops_each, bytes_moved=bytes_each,
                reads=[panel] + [f"R_bar@g{d}" for d in range(self.ng)],
                writes=[panel])

    def _t_qrcp(self, m: int, n: int, k: int) -> None:
        from .kernels import qp3_flops
        # Truncated QP3 of the small sampled matrix on device 0; B must
        # first be sent down to the device.
        h2d = self.streams.submit(
            "comms", self.device.transfers.seconds(8 * m * n),
            device=0, stream="h2d", resources=[(HOST, "pcie")],
            after_all=True, label="h2d B for QP3",
            bytes_moved=8.0 * m * n,
            reads=["B"], writes=["B@g0"])
        flops = qp3_flops(m, n, k)
        self.streams.submit("qrcp", self.kernels.qp3_seconds(m, n, k),
                            device=0, stream="compute", deps=[h2d],
                            label=f"qp3 {m}x{n} k={k}", flops=flops,
                            bytes_moved=8.0 * (flops / 2.0 + m * n),
                            reads=["B@g0"], writes=["B_qrcp"])

    def _t_copy(self, nbytes: int, phase: str) -> None:
        # Column gather happens locally on each device (rows split).
        local = nbytes // self.ng
        secs = (2 * local / (self.device.spec.mem_bw_gbs * 1e9)
                + self.device.spec.kernel_launch_s)
        self._charge_all(phase, secs, label=f"copy {local}B (local)",
                         bytes_moved=2.0 * local,
                         reads=["A"], writes=["Q_panel"])

    def _t_block_orth(self, prev: int, new: int, length: int,
                      reorth: bool, phase: str) -> None:
        from .device import _words_bytes
        if self._is_distributed_width(length):
            c = self.local_rows(length)
            secs = self.kernels.block_orth_seconds(prev, new, c, reorth)
            flops = 4.0 * prev * new * c * (2 if reorth else 1)
            ev = self.streams.submit_group(
                phase, secs, placements=self._all_compute(),
                after_all=True, label=f"borth {prev}+{new} (local)",
                flops=flops,
                bytes_moved=_words_bytes(flops, (prev + new) * c),
                reads=["Q_panel"], writes=["Q_panel"])
            # The small coefficient blocks travel through the host.
            comm = self.device.transfers.reduce_seconds(
                8 * prev * new, self.ng) * (2 if reorth else 1)
            for d in range(self.ng):
                self.streams.submit(
                    "comms", comm / self.ng, device=d, stream="d2h",
                    resources=[(HOST, "pcie")], deps=[ev],
                    label="borth coeffs",
                    bytes_moved=8.0 * prev * new * (2 if reorth else 1),
                    reads=["Q_panel"], writes=[f"borth_coeffs@g{d}"])
        else:
            # Replicated B: block-orth on the CPU alongside its QR.
            flops = 4.0 * prev * new * length * (2 if reorth else 1)
            self.streams.submit(phase, self.cpu.gemm_seconds(flops),
                                device=HOST, stream="cpu", after_all=True,
                                label=f"cpu-borth {prev}+{new}x{length}",
                                flops=flops,
                                bytes_moved=8.0 * (prev + new) * length,
                                reads=["B"], writes=["B"])

    # -- inherited single-device hooks rerouted through the scheduler ----
    # (these ops have no distributed decomposition; they run on device 0
    # after a global join, so the critical path still covers them; their
    # shared "dev0_panel" buffer is ordered by the after_all joins)
    def _t_gemm(self, m: int, n: int, k: int, phase: str) -> None:
        from .device import _words_bytes
        from .kernels import gemm_flops
        secs = self.kernels.gemm_seconds(
            m, n, k, efficiency=self._gemm_efficiency(phase))
        flops = gemm_flops(m, n, k)
        self.streams.submit(phase, secs, device=0, stream="compute",
                            after_all=True, label=f"gemm {m}x{n}x{k}",
                            flops=flops,
                            bytes_moved=_words_bytes(flops, m * k, k * n,
                                                     m * n),
                            reads=["dev0_panel"], writes=["dev0_panel"])

    def _t_prng(self, count: int) -> None:
        self.streams.submit("prng", self.kernels.curand_seconds(count),
                            device=0, stream="compute", after_all=True,
                            label=f"curand {count}", flops=float(count),
                            bytes_moved=8.0 * count,
                            writes=["dev0_panel"])

    def _t_fft(self, m: int, n: int, axis: str) -> None:
        from .device import _words_bytes
        padded = self.kernels._pad_pow2(m if axis == "row" else n)
        flops = 5.0 * padded * np.log2(max(2, padded)) \
            * (n if axis == "row" else m)
        self.streams.submit("sampling",
                            self.kernels.fft_sampling_seconds(m, n, axis),
                            device=0, stream="compute", after_all=True,
                            label=f"fft {m}x{n} {axis}", flops=flops,
                            bytes_moved=_words_bytes(flops, m * n),
                            reads=["dev0_panel"], writes=["dev0_panel"])

    def _t_trsolve(self, rows: int, cols: int, phase: str) -> None:
        from .device import _words_bytes
        from .kernels import gemm_flops
        flops = gemm_flops(rows, cols, rows) / 2.0
        self.streams.submit(phase, self.kernels.trsm_seconds(rows, cols),
                            device=0, stream="compute", after_all=True,
                            label=f"trsm {rows}x{cols}", flops=flops,
                            bytes_moved=_words_bytes(flops, rows * cols),
                            reads=["dev0_panel"], writes=["dev0_panel"])

    def _t_svd(self, m: int, n: int, phase: str) -> None:
        from .device import _words_bytes
        small = min(m, n)
        flops = 14.0 * m * n * small
        self.streams.submit(phase, self.kernels.svd_small_seconds(m, n),
                            device=0, stream="compute", after_all=True,
                            label=f"gesvd {m}x{n}", flops=flops,
                            bytes_moved=_words_bytes(flops, m * n),
                            reads=["dev0_panel"], writes=["dev0_panel"])

    def _t_rownorms(self, rows: int, cols: int, phase: str) -> None:
        flops = 2.0 * rows * cols
        self.streams.submit(phase,
                            self.kernels.row_norms_seconds(rows, cols),
                            device=0, stream="compute", after_all=True,
                            label=f"rownorms {rows}x{cols}", flops=flops,
                            bytes_moved=8.0 * rows * cols,
                            reads=["dev0_panel"], writes=["dev0_panel"])

    @property
    def seconds(self) -> float:
        """Modeled elapsed seconds: the critical path through the
        stream DAG (equals the serial phase sum when ``overlap=off``)."""
        return self.streams.elapsed

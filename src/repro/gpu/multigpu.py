"""Multi-GPU runtime: 1D block-row distribution (Section 4, Figure 4).

The matrix ``A`` is split in block rows across ``ng`` devices (each
owns ``c ~ m / ng`` rows); ``Omega`` and ``C`` are split in the same 1D
block-*column* format as ``A^T``.  The dataflow follows the paper:

- ``B = Omega A`` / ``B = C A``: every GPU multiplies its local blocks,
  the CPU accumulates the ``ng`` partial ``l x n`` results.
- QR of the small ``B`` runs on the **CPU** and the orthogonal factor
  is broadcast to every GPU.
- ``C = B A^T``: local GEMMs; ``C`` stays distributed.
- CholQR of the distributed ``C``: local Gram products ``G_i = C_i
  C_i^T``, CPU reduction ``G = sum G_i``, CPU Cholesky, broadcast of
  ``R_bar``, local triangular solves (Figure 4).
- Steps 2 and 3 (QP3 of ``B``; the tall-skinny QR of ``A P_{1:k}``)
  run on device 0 / via multi-GPU CholQR respectively.

Math is executed once on the host arrays (results are identical to the
single-device path by construction); the *timing* is modeled per-device
with the local shapes, plus explicit PCIe reduction/broadcast charges —
reproducing the 1.6 % / 4.3 % communication fractions and the
superlinear GEMM scaling of Figure 15 (the local panels get shorter, so
the per-device GEMM rate rises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError, ShapeError
from .device import (ArrayLike, GPUExecutor, SimulatedGPU, SymArray,
                     is_symbolic, shape_of)
from .specs import GPUSpec, KEPLER_K40C

__all__ = ["CPUSpec", "MultiGPUExecutor"]


@dataclass(frozen=True)
class CPUSpec:
    """Host model: the paper's two 8-core SandyBridge Xeons with MKL."""

    gemm_gflops: float = 200.0
    small_panel_gflops: float = 25.0
    potrf_gflops: float = 15.0

    def gemm_seconds(self, flops: float) -> float:
        return flops / (self.gemm_gflops * 1e9)

    def panel_seconds(self, flops: float) -> float:
        return flops / (self.small_panel_gflops * 1e9)

    def potrf_seconds(self, n: int) -> float:
        return (n ** 3 / 3.0) / (self.potrf_gflops * 1e9)


class MultiGPUExecutor(GPUExecutor):
    """Executor modeling ``ng`` simulated GPUs on one node.

    Per-parallel-operation time is charged once with the *local* block
    shapes (the devices are symmetric, so the max over devices equals
    the device-0 time); communication goes to the ``comms`` phase.
    """

    def __init__(self, ng: int, spec: GPUSpec = KEPLER_K40C,
                 cpu: CPUSpec = CPUSpec(),
                 seed: Optional[int] = None):
        if ng < 1:
            raise ConfigurationError(f"ng must be >= 1, got {ng}")
        super().__init__(spec=spec, seed=seed)
        self.ng = ng
        self.cpu = cpu
        self.devices: List[SimulatedGPU] = [
            SimulatedGPU(spec, device_id=i) for i in range(ng)]
        # Device 0 doubles as the master clock target via `self.device`.
        self.device = self.devices[0]
        self.kernels = self.device.kernels
        self._dist_cols: Optional[int] = None  # = m once bound

    # ------------------------------------------------------------------
    # distribution helpers
    # ------------------------------------------------------------------
    def bind(self, a: ArrayLike) -> None:
        """Register the input matrix: establishes the distributed
        dimension (its row count ``m``) and accounts device memory."""
        m, n = shape_of(a)
        self._dist_cols = m
        local_rows = self.local_rows(m)
        for dev in self.devices:
            dev.memory.reset()
            dev.memory.allocate(8 * local_rows * n)

    def attach_recorder(self, recorder) -> None:
        """Attach one span recorder across every simulated device (the
        kernel spans carry each device's id)."""
        for dev in self.devices:
            dev.attach_recorder(recorder)

    def local_rows(self, m: int) -> int:
        """Rows of the largest local block ``A_(i)``."""
        return -(-m // self.ng)  # ceil division

    def _is_distributed_width(self, cols: int) -> bool:
        """True when a short-wide block's width is the distributed
        dimension ``m`` (i.e. the block is ``C``, stored block-column
        across devices), as opposed to the replicated ``B`` (width n)."""
        return self._dist_cols is not None and cols == self._dist_cols

    def _charge_all(self, phase: str, seconds: float, label: str,
                    flops: float = 0.0, bytes_moved: float = 0.0) -> None:
        """Charge symmetric parallel work (counted once: max = local)."""
        self.device.charge(phase, seconds, label, flops=flops,
                           bytes_moved=bytes_moved)

    def _charge_comm(self, seconds: float, label: str,
                     bytes_moved: float = 0.0) -> None:
        self.device.charge("comms", seconds, label,
                           bytes_moved=bytes_moved)

    # ------------------------------------------------------------------
    # overridden operations (timing only; math identical to base class)
    # ------------------------------------------------------------------
    def prng_gaussian(self, rows: int, cols: int,
                      symbolic: bool = False) -> ArrayLike:
        # Omega is generated distributed (rows x c per device).
        c = self.local_rows(cols) if self._dist_cols == cols else cols
        self.device.charge("prng", self.kernels.curand_seconds(rows * c),
                           label=f"curand {rows}x{c} (local)",
                           flops=float(rows * c), bytes_moved=8.0 * rows * c)
        if symbolic:
            return SymArray((rows, cols))
        return self.rng.standard_normal((rows, cols))

    def sample_gemm(self, omega: ArrayLike, a: ArrayLike) -> ArrayLike:
        """``B_(i) = Omega_(i) A_(i)`` locally, then CPU accumulation."""
        from .device import _mm, _words_bytes
        from .kernels import gemm_flops
        l, m = shape_of(omega)
        n = shape_of(a)[1]
        c = self.local_rows(m)
        flops = gemm_flops(l, n, c)
        self._charge_all("sampling", self.kernels.gemm_seconds(l, n, c),
                         label=f"gemm {l}x{n}x{c} (local)", flops=flops,
                         bytes_moved=_words_bytes(flops, l * c, c * n,
                                                  l * n))
        self._reduce_b(l, n)
        return _mm(omega, a)

    def _reduce_b(self, l: int, n: int) -> None:
        """Gather ng partial l x n blocks to the CPU and sum them."""
        t = self.device.transfers.reduce_seconds(8 * l * n, self.ng)
        self._charge_comm(t, f"reduce B {l}x{n} x{self.ng}",
                          bytes_moved=8.0 * l * n * self.ng)
        # CPU accumulation: (ng - 1) adds of l*n.
        if self.ng > 1:
            self._charge_all("comms",
                             self.cpu.gemm_seconds((self.ng - 1) * l * n),
                             label="cpu accumulate",
                             flops=float((self.ng - 1) * l * n))

    def _broadcast(self, l: int, n: int, label: str) -> None:
        t = self.device.transfers.broadcast_seconds(8 * l * n, self.ng)
        self._charge_comm(t, label, bytes_moved=8.0 * l * n * self.ng)

    def iter_gemm_at(self, b: ArrayLike, a: ArrayLike) -> ArrayLike:
        """``C_(i) = B A_(i)^T`` locally; C stays distributed."""
        from .device import _mm, _words_bytes
        from .kernels import gemm_flops
        l, n = shape_of(b)
        m = shape_of(a)[0]
        c = self.local_rows(m)
        eff = self.device.spec.iter_gemm_efficiency
        flops = gemm_flops(l, c, n)
        self._charge_all("gemm_iter",
                         self.kernels.gemm_seconds(l, c, n, efficiency=eff),
                         label=f"gemm {l}x{c}x{n} (local)", flops=flops,
                         bytes_moved=_words_bytes(flops, l * n, c * n,
                                                  l * c))
        return _mm(b, a.T)

    def iter_gemm_a(self, c_mat: ArrayLike, a: ArrayLike) -> ArrayLike:
        """``B_(i) = C_(i) A_(i)`` locally, then CPU accumulation."""
        from .device import _mm, _words_bytes
        from .kernels import gemm_flops
        l, m = shape_of(c_mat)
        n = shape_of(a)[1]
        c = self.local_rows(m)
        eff = self.device.spec.iter_gemm_efficiency
        flops = gemm_flops(l, n, c)
        self._charge_all("gemm_iter",
                         self.kernels.gemm_seconds(l, n, c, efficiency=eff),
                         label=f"gemm {l}x{n}x{c} (local)", flops=flops,
                         bytes_moved=_words_bytes(flops, l * c, c * n,
                                                  l * n))
        self._reduce_b(l, n)
        return _mm(c_mat, a)

    def _t_orth(self, rows: int, cols: int, scheme: str, reorth: bool,
                phase: str) -> None:
        """Orthogonalization timing: CPU for the replicated ``B``,
        multi-GPU CholQR (Figure 4) for the distributed ``C`` and for
        the tall-skinny Step-3 QR."""
        from .device import _words_bytes
        from .kernels import qr_flops
        passes = 2 if reorth else 1
        if self._is_distributed_width(max(rows, cols)) or phase == "qr":
            # Distributed CholQR: local SYRK over c columns/rows, reduce
            # the small Gram, CPU Cholesky, broadcast, local TRSM.
            small = min(rows, cols)
            long_local = self.local_rows(max(rows, cols))
            per_pass = (self.kernels.syrk_seconds(small, long_local)
                        + self.kernels.trsm_seconds(small, long_local))
            cpu = self.cpu.potrf_seconds(small)
            comm = (self.device.transfers.reduce_seconds(
                        8 * small * small, self.ng)
                    + self.device.transfers.broadcast_seconds(
                        8 * small * small, self.ng))
            flops = passes * qr_flops(long_local, small)
            self._charge_all(phase, passes * (per_pass + cpu),
                             label=f"mgpu-cholqr {rows}x{cols}",
                             flops=flops,
                             bytes_moved=_words_bytes(
                                 flops, passes * long_local * small))
            self._charge_comm(passes * comm, "cholqr gram/factor",
                              bytes_moved=passes * 16.0 * small * small
                              * self.ng)
        else:
            # Replicated short-wide B: factor on the CPU, broadcast Q.
            small = min(rows, cols)
            long = max(rows, cols)
            flops = 2.0 * long * small * small * passes * 2
            self._charge_all(phase, self.cpu.panel_seconds(flops),
                             label=f"cpu-{scheme} {rows}x{cols}",
                             flops=flops,
                             bytes_moved=8.0 * rows * cols * passes)
            self._broadcast(rows, cols, "broadcast Q_B")

    def _t_qrcp(self, m: int, n: int, k: int) -> None:
        from .kernels import qp3_flops
        # Truncated QP3 of the small sampled matrix on device 0; B must
        # first be sent down to the device.
        self._charge_comm(self.device.transfers.seconds(8 * m * n),
                          "h2d B for QP3", bytes_moved=8.0 * m * n)
        flops = qp3_flops(m, n, k)
        self.device.charge("qrcp", self.kernels.qp3_seconds(m, n, k),
                           label=f"qp3 {m}x{n} k={k}", flops=flops,
                           bytes_moved=8.0 * (flops / 2.0 + m * n))

    def _t_copy(self, nbytes: int, phase: str) -> None:
        # Column gather happens locally on each device (rows split).
        local = nbytes // self.ng
        secs = (2 * local / (self.device.spec.mem_bw_gbs * 1e9)
                + self.device.spec.kernel_launch_s)
        self.device.charge(phase, secs, label=f"copy {local}B (local)",
                           bytes_moved=2.0 * local)

    def _t_block_orth(self, prev: int, new: int, length: int,
                      reorth: bool, phase: str) -> None:
        from .device import _words_bytes
        if self._is_distributed_width(length):
            c = self.local_rows(length)
            secs = self.kernels.block_orth_seconds(prev, new, c, reorth)
            flops = 4.0 * prev * new * c * (2 if reorth else 1)
            # The small coefficient blocks travel through the host.
            comm = self.device.transfers.reduce_seconds(
                8 * prev * new, self.ng) * (2 if reorth else 1)
            self._charge_all(phase, secs, f"borth {prev}+{new} (local)",
                             flops=flops,
                             bytes_moved=_words_bytes(
                                 flops, (prev + new) * c))
            self._charge_comm(comm, "borth coeffs",
                              bytes_moved=8.0 * prev * new * self.ng
                              * (2 if reorth else 1))
        else:
            # Replicated B: block-orth on the CPU alongside its QR.
            flops = 4.0 * prev * new * length * (2 if reorth else 1)
            self._charge_all(phase, self.cpu.gemm_seconds(flops),
                             label=f"cpu-borth {prev}+{new}x{length}",
                             flops=flops,
                             bytes_moved=8.0 * (prev + new) * length)

    @property
    def seconds(self) -> float:
        return self.device.elapsed

"""The simulated GPU device and the executor layer.

Algorithms in :mod:`repro.core` are written once against the
:class:`NumpyExecutor` operation set.  Executors differ only in what
they *charge* for each operation:

- :class:`NumpyExecutor` — backend math, zero modeled time.  Used
  for numerics (Figure 6/16) and tests.
- :class:`GPUExecutor` — same math, but every operation also charges
  the :class:`SimulatedGPU`'s kernel model, tagged with the paper's
  phase legend.  Supports **symbolic** arrays (:class:`SymArray`) that
  carry only shape/dtype, so paper-scale performance sweeps never
  allocate the matrices.
- :class:`repro.gpu.multigpu.MultiGPUExecutor` — models the 1D
  block-row multi-GPU runtime of Figure 4.

Since the backend split, no executor calls dense linear algebra
directly: every factorization/FFT/norm goes through the executor's
:class:`repro.backends.base.ComputeBackend` handle (``self.backend``),
so ``NumpyExecutor(backend="torch")`` runs the identical pipeline on
real hardware.  The default is the bit-reproducible ``simulated``
backend; see ``docs/backends.md``.
"""

from __future__ import annotations

from math import sqrt
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.annotations import residency, shaped
from ..backends import resolve_backend
from ..config import ORTH_SCHEMES
from ..errors import (ConfigurationError, ShapeError,
                      SymbolicExecutionError)
from ..perfmodel.costs import DEFAULT_FAST_MEMORY
from ..qr import cholqr, gram_schmidt, householder
from ..qr.qrcp import qp3_blocked
from ..qr.tsqr import tsqr as tsqr_factorize
from ..qr.utils import solve_upper_triangular
from .kernels import KernelModel, gemm_flops, qp3_flops, qr_flops
from .memory import DeviceMemory, TransferModel
from .specs import GPUSpec, KEPLER_K40C
from .trace import PHASES, TimeLine

__all__ = ["SymArray", "shape_of", "is_symbolic", "SimulatedGPU",
           "NumpyExecutor", "GPUExecutor"]

ArrayLike = Union[np.ndarray, "SymArray"]


class SymArray:
    """A shape-only stand-in for a device array.

    Supports just enough structure (shape, dtype, transpose, column
    take, vstack) for the algorithms to run their *control flow* at
    paper scale without allocating data.  Any operation that would need
    actual values raises :class:`repro.errors.SymbolicExecutionError`.
    """

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: Tuple[int, ...], dtype=np.float64):
        if any(int(s) < 0 for s in shape):
            raise ShapeError(f"negative dimension in {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)

    @property
    def T(self) -> "SymArray":
        return SymArray(self.shape[::-1], self.dtype)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def __getitem__(self, key) -> "SymArray":
        """2-D slicing with plain slices (steps of 1) or index arrays."""
        if not isinstance(key, tuple):
            key = (key, slice(None))
        if len(key) != 2 or len(self.shape) != 2:
            raise SymbolicExecutionError(
                "SymArray only supports 2-D (rows, cols) slicing")
        dims = []
        for axis, k in enumerate(key):
            n = self.shape[axis]
            if isinstance(k, slice):
                start, stop, step = k.indices(n)
                if step != 1:
                    raise SymbolicExecutionError(
                        "SymArray slicing requires unit steps")
                dims.append(max(0, stop - start))
            elif isinstance(k, (list, np.ndarray)):
                dims.append(len(k))
            else:
                raise SymbolicExecutionError(
                    f"unsupported SymArray index {k!r}")
        return SymArray(tuple(dims), self.dtype)

    def __repr__(self) -> str:
        return f"SymArray(shape={self.shape}, dtype={self.dtype})"


def is_symbolic(*arrays: ArrayLike) -> bool:
    """True when any argument is a :class:`SymArray`."""
    return any(isinstance(a, SymArray) for a in arrays)


def shape_of(a: ArrayLike) -> Tuple[int, ...]:
    """Shape of a real or symbolic array."""
    return tuple(a.shape)


@residency(returns="device")
def _mm(a: ArrayLike, b: ArrayLike, backend=None) -> ArrayLike:
    """Matrix product, symbolic-aware; real data runs on ``backend``
    (a :class:`repro.backends.base.ComputeBackend`) when one is given,
    else on the host BLAS directly."""
    if shape_of(a)[1] != shape_of(b)[0]:
        raise ShapeError(f"matmul mismatch: {shape_of(a)} @ {shape_of(b)}")
    if is_symbolic(a, b):
        return SymArray((shape_of(a)[0], shape_of(b)[1]))
    if backend is not None:
        return backend.gemm(a, b)
    return a @ b


def _take_columns(a: ArrayLike, idx: Union[np.ndarray, Sequence[int]]
                  ) -> ArrayLike:
    if is_symbolic(a):
        return SymArray((shape_of(a)[0], len(idx)))
    return a[:, np.asarray(idx)]


def _vstack(parts: Sequence[ArrayLike]) -> ArrayLike:
    cols = {shape_of(p)[1] for p in parts}
    if len(cols) != 1:
        raise ShapeError(f"vstack column mismatch: {cols}")
    rows = sum(shape_of(p)[0] for p in parts)
    if is_symbolic(*parts):
        return SymArray((rows, cols.pop()))
    return np.vstack(parts)


def _words_bytes(flops: float, *operand_elems: int) -> float:
    """Bytes moved per the blocked-kernel word model of
    :mod:`repro.perfmodel.costs`: ``flops / sqrt(M)`` slow-memory words
    plus the operands themselves, in 8-byte elements."""
    return 8.0 * (flops / sqrt(DEFAULT_FAST_MEMORY) + sum(operand_elems))


class SimulatedGPU:
    """One simulated device: kernel model + timeline + memory.

    A :class:`repro.obs.spans.SpanRecorder` attached via
    :meth:`attach_recorder` receives every :meth:`charge` as a kernel
    span carrying the FLOP/bytes estimates and the memory high-water
    mark sampled at charge time.
    """

    def __init__(self, spec: GPUSpec = KEPLER_K40C, device_id: int = 0):
        spec.validate()
        self.spec = spec
        self.device_id = device_id
        self.kernels = KernelModel(spec)
        self.timeline = TimeLine()
        self.memory = DeviceMemory(spec.memory_bytes)
        self.transfers = TransferModel(spec.pcie_bw_gbs, spec.pcie_latency_s)
        self.recorder = None  # Optional[repro.obs.spans.SpanRecorder]

    @property
    def elapsed(self) -> float:
        """Total modeled seconds on this device."""
        return self.timeline.total

    def attach_recorder(self, recorder) -> None:
        """Mirror every subsequent charge into ``recorder`` (pass
        ``None`` to detach)."""
        self.recorder = recorder

    def charge(self, phase: str, seconds: float, label: str = "",
               flops: float = 0.0, bytes_moved: float = 0.0,
               labels: Sequence[str] = ()) -> None:
        # Validate eagerly at the device layer: span attribution and
        # the timeline must never disagree on where time landed.
        if phase not in PHASES:
            raise ConfigurationError(
                f"unknown phase {phase!r} charged to device "
                f"{self.device_id}; expected one of {PHASES}")
        self.timeline.charge(phase, seconds, label)
        if self.recorder is not None:
            self.recorder.record_kernel(
                phase=phase, label=label or phase, seconds=seconds,
                flops=flops, bytes_moved=bytes_moved,
                device_id=self.device_id,
                memory_high_water=self.memory.high_water,
                labels=labels)

    def reset(self) -> None:
        """Fresh timeline and memory for a new run."""
        self.timeline = TimeLine()
        self.memory.reset()


class NumpyExecutor:
    """Pure-NumPy execution of the algorithm operation set.

    All ``_t_*`` timing hooks are no-ops; subclasses charge devices.
    The RNG lives on the executor so runs are reproducible end to end.

    ``backend`` selects the math engine — ``None`` (session default),
    a registry name like ``"numpy"``/``"torch"``, or a live
    :class:`repro.backends.base.ComputeBackend`.  The RNG is built by
    the backend but is numpy PCG64 on every engine, so one seed gives
    the same sampling matrix everywhere.
    """

    #: Executors that cannot run symbolic arrays set this False.
    supports_symbolic = False

    def __init__(self, seed: Optional[int] = None, backend=None):
        self.backend = resolve_backend(backend)
        self.rng = self.backend.make_rng(seed)

    # -- introspection ---------------------------------------------------
    @property
    def seconds(self) -> float:
        """Modeled elapsed seconds (0 for the pure-NumPy executor)."""
        return 0.0

    @property
    def timeline(self) -> TimeLine:
        return TimeLine()

    def reset_clock(self) -> None:
        """Forget accumulated modeled time (no-op here)."""

    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`repro.obs.spans.SpanRecorder` (no-op here:
        the pure-NumPy executor charges nothing)."""

    def bind(self, a: ArrayLike) -> None:
        """Register the input matrix before a run (used by distributed
        executors to establish the partitioned dimension; no-op here)."""

    # -- transfers --------------------------------------------------------
    @residency(returns="device")
    def to_device(self, a: ArrayLike) -> ArrayLike:
        """Upload ``a`` to modeled device memory.

        Observation-only: the backend hook records the h2d transfer in
        :class:`repro.backends.base.BackendStats` (host backends return
        the array unchanged, so modeled figures are bit-identical).
        Symbolic arrays pass through untouched.
        """
        if is_symbolic(a):
            return a
        return self.backend.to_device(a)

    @residency(returns="host")
    def to_host(self, a: ArrayLike) -> ArrayLike:
        """Download a device-resident value back to host-canonical
        form, recording the d2h transfer in ``BackendStats``.

        This is the sanctioned crossing the RS115 residency rule looks
        for: any definitely-device value must pass through here before
        host-only math (``hostmath.*``, comparisons, ``float()``).
        Symbolic arrays pass through untouched.
        """
        if is_symbolic(a):
            return a
        return self.backend.to_host(a)

    # -- timing hooks (overridden by device executors) --------------------
    def _t_gemm(self, m: int, n: int, k: int, phase: str) -> None: ...
    def _t_prng(self, count: int) -> None: ...
    def _t_fft(self, m: int, n: int, axis: str) -> None: ...
    def _t_orth(self, rows: int, cols: int, scheme: str, reorth: bool,
                phase: str) -> None: ...
    def _t_block_orth(self, prev: int, new: int, length: int,
                      reorth: bool, phase: str) -> None: ...
    def _t_qrcp(self, m: int, n: int, k: int) -> None: ...
    def _t_trsolve(self, rows: int, cols: int, phase: str) -> None: ...
    def _t_copy(self, nbytes: int, phase: str) -> None: ...
    def _t_svd(self, m: int, n: int, phase: str) -> None: ...
    def _t_rownorms(self, rows: int, cols: int, phase: str) -> None: ...

    # -- operations -------------------------------------------------------
    @residency(returns="device")
    @shaped(params={"rows": "l", "cols": "m"}, returns=("l", "m"))
    def prng_gaussian(self, rows: int, cols: int,
                      symbolic: bool = False) -> ArrayLike:
        """Generate the ``rows x cols`` Gaussian sampling matrix Omega
        (cuRAND in the paper)."""
        self._t_prng(rows * cols)
        if symbolic:
            if not self.supports_symbolic:
                raise SymbolicExecutionError(
                    "this executor does not support symbolic arrays")
            return SymArray((rows, cols))
        return self.backend.standard_normal(self.rng, (rows, cols))

    @residency(returns="device")
    @shaped(params={"omega": ("l", "m"), "a": ("m", "n")},
            returns=("l", "n"))
    def sample_gemm(self, omega: ArrayLike, a: ArrayLike) -> ArrayLike:
        """Step 1 pruned Gaussian sampling ``B = Omega A``."""
        l, m = shape_of(omega)
        n = shape_of(a)[1]
        self._t_gemm(l, n, m, phase="sampling")
        return _mm(omega, a, self.backend)

    @residency(returns="device")
    @shaped(params={"a": ("m", "n")})
    def sample_gemm_stacked(self, omegas: Sequence[ArrayLike],
                            a: ArrayLike) -> list:
        """Coalesced Step-1 sketch of a request batch:
        ``B_i = Omega_i A`` for every rider, charged as ONE stacked
        ``(sum l_i) x n`` GEMM.

        On the modeled device the row blocks of
        ``[Omega_1; ...; Omega_b] A`` share a single kernel launch,
        and a GPU tile's k-loop ordering does not depend on the launch
        grid's M dimension — each block of the stacked product is
        bitwise the block's own product.  The host reference must
        compute the blocks separately to honour that: host BLAS kernel
        *dispatch* does depend on M, so a literal stacked host GEMM
        drifts in the last bits relative to a solo run.  This is the
        primitive behind :func:`repro.serve.batcher.run_jobs`'s
        bit-parity guarantee.
        """
        if len(omegas) == 0:
            raise ShapeError("sample_gemm_stacked needs >= 1 Omega")
        total_l = sum(shape_of(o)[0] for o in omegas)
        m, n = shape_of(a)
        self._t_gemm(total_l, n, m, phase="sampling")
        return [_mm(omega, a, self.backend) for omega in omegas]

    @residency(returns="device")
    def fft_sample(self, a: ArrayLike, l: int, axis: str = "row",
                   ) -> ArrayLike:
        """Full-FFT sampling: FFT-transform A (padded to a power of
        two) and keep ``l`` randomly selected rows (Section 4).

        A real-to-complex transform's redundant half is discarded; the
        selected rows are returned as the real/imaginary interleaving
        so downstream stays in real arithmetic (the standard SRFT
        construction).
        """
        m, n = shape_of(a)
        sampled_dim = m if axis == "row" else n
        out_cols = n if axis == "row" else m
        if l > sampled_dim:
            raise ShapeError(f"cannot select {l} rows from {sampled_dim}")
        self._t_fft(m, n, axis)
        if is_symbolic(a):
            return SymArray((l, out_cols))
        if axis not in ("row", "col"):
            raise ConfigurationError(
                f"axis must be 'row' or 'col', got {axis!r}")
        # Real SRFT: Omega = sqrt(d/l) S F D with D a random sign
        # diagonal, F the (padded) DFT along the sampled dimension and
        # S a random row selection.  axis="col" samples the columns of
        # A, i.e. applies the operator to A^T (Figure 8b).
        target = a if axis == "row" else a.T
        d = target.shape[0]
        mp = 1 << max(1, (int(d) - 1).bit_length())
        signs = self.rng.choice([-1.0, 1.0], size=d)
        spectrum = self.backend.fft(target * signs[:, None], n=mp, axis=0)
        spectrum /= np.sqrt(mp)
        rows = self.rng.choice(mp, size=l, replace=False)
        picked = spectrum[rows, :]
        real_or_imag = self.rng.random(l) < 0.5
        parts = np.where(real_or_imag[:, None], picked.real, picked.imag)
        return np.ascontiguousarray(parts) * np.sqrt(2.0 * d / l)

    @residency(returns="device")
    @shaped(params={"b": ("l", "n"), "a": ("m", "n")}, returns=("l", "m"))
    def iter_gemm_at(self, b: ArrayLike, a: ArrayLike) -> ArrayLike:
        """Power-iteration product ``C = B A^T``  (line 7 of Fig. 2a)."""
        l, n = shape_of(b)
        m = shape_of(a)[0]
        self._t_gemm(l, m, n, phase="gemm_iter")
        return _mm(b, a.T, self.backend)

    @residency(returns="device")
    @shaped(params={"c": ("l", "m"), "a": ("m", "n")}, returns=("l", "n"))
    def iter_gemm_a(self, c: ArrayLike, a: ArrayLike) -> ArrayLike:
        """Power-iteration product ``B = C A``  (line 12 of Fig. 2a)."""
        l, m = shape_of(c)
        n = shape_of(a)[1]
        self._t_gemm(l, n, m, phase="gemm_iter")
        return _mm(c, a, self.backend)

    @residency(returns="device")
    @shaped(params={"b": ("l", "n")}, returns=("l", "n"))
    def orth_rows(self, b: ArrayLike, scheme: str = "cholqr2",
                  phase: str = "orth_iter") -> ArrayLike:
        """Orthonormalize the rows of a short-wide block; returns Q.

        ``scheme`` selects the kernel (see
        :data:`repro.config.ORTH_SCHEMES`); math runs through the
        corresponding :mod:`repro.qr` implementation.
        """
        if scheme not in ORTH_SCHEMES:
            raise ConfigurationError(
                f"unknown orth scheme {scheme!r}; expected {ORTH_SCHEMES}")
        l, n = shape_of(b)
        if l > n:
            raise ShapeError(f"orth_rows expects a short-wide block, "
                             f"got {l} x {n}")
        reorth = scheme in ("cholqr2",)
        self._t_orth(l, n, scheme, reorth, phase)
        if is_symbolic(b):
            return SymArray((l, n))
        if scheme in ("cholqr", "cholqr2"):
            # Householder fallback: a rank-deficient block (subspace
            # exhaustion in the adaptive scheme) breaks the shifted
            # retry but HHQR still returns an exactly orthonormal Q.
            q, _ = (cholqr.cholqr2_rows(b, fallback="householder",
                                        backend=self.backend) if reorth
                    else cholqr.cholqr_rows(b, fallback="householder",
                                            backend=self.backend))
            return q
        if scheme == "mixed_cholqr":
            q, _ = cholqr.mixed_precision_cholqr_rows(
                b, backend=self.backend)
            return q
        if scheme == "householder":
            f = householder.householder_qr(b.T)
            return f.q().T
        if scheme == "cgs":
            q, _ = gram_schmidt.cgs(b.T)
            return q.T
        if scheme == "mgs":
            q, _ = gram_schmidt.mgs(b.T)
            return q.T
        if scheme == "tsqr":
            q, _ = tsqr_factorize(b.T)
            return q.T
        raise ConfigurationError(f"unhandled scheme {scheme!r}")

    @residency(returns="device")
    @shaped(params={"v": ("l", "n")}, returns=("l", "n"))
    def block_orth_rows(self, q_prev: Optional[ArrayLike], v: ArrayLike,
                        reorth: bool = True,
                        phase: str = "orth_iter") -> ArrayLike:
        """``BOrth``: orthogonalize the rows of ``v`` against the
        orthonormal rows of ``q_prev``; returns the updated block."""
        if q_prev is None or shape_of(q_prev)[0] == 0:
            if is_symbolic(v):
                return SymArray(shape_of(v))
            return np.array(v, copy=True)
        lp = shape_of(q_prev)[0]
        lv, n = shape_of(v)
        self._t_block_orth(lp, lv, n, reorth, phase)
        if is_symbolic(q_prev, v):
            return SymArray((lv, n))
        w, _ = gram_schmidt.block_orth_rows(q_prev, v, reorthogonalize=reorth)
        return w

    @shaped(params={"b": ("l", "n"), "k": "k"})
    def qrcp_sampled(self, b: ArrayLike, k: int) -> Tuple[ArrayLike,
                                                          ArrayLike,
                                                          np.ndarray]:
        """Step 2: truncated QP3 of the sampled matrix ``B``.

        Returns ``(Q_hat, R_hat, perm)``.  Symbolic inputs get an
        identity permutation placeholder (the timing model is
        data-independent).
        """
        l, n = shape_of(b)
        k = min(k, l, n)
        self._t_qrcp(l, n, k)
        if is_symbolic(b):
            return SymArray((l, k)), SymArray((k, n)), np.arange(n)
        res = qp3_blocked(np.asarray(b), k=k)
        return res.q, res.r, res.perm

    @residency(returns="device")
    @shaped(params={"a": ("m", "n")})
    def take_columns(self, a: ArrayLike, idx: Union[np.ndarray,
                                                    Sequence[int]]
                     ) -> ArrayLike:
        """Gather the pivot columns ``A P_{1:k}`` (device-side copy)."""
        m = shape_of(a)[0]
        self._t_copy(8 * m * len(idx), phase="other")
        return _take_columns(a, idx)

    @shaped(params={"ap": ("m", "k")})
    def qr_selected(self, ap: ArrayLike, scheme: str = "cholqr2"
                    ) -> Tuple[ArrayLike, ArrayLike]:
        """Step 3: tall-skinny QR of the selected columns ``A P_{1:k}``.

        Returns ``(Q, R_bar)``; CholQR on the GPU in the paper.
        """
        m, k = shape_of(ap)
        if m < k:
            raise ShapeError(f"qr_selected expects tall-skinny, got {m}x{k}")
        reorth = scheme in ("cholqr2",)
        self._t_orth(m, k, scheme, reorth, phase="qr")
        if is_symbolic(ap):
            return SymArray((m, k)), SymArray((k, k))
        if scheme in ("cholqr", "cholqr2"):
            return (cholqr.cholqr2_columns(np.asarray(ap),
                                           backend=self.backend) if reorth
                    else cholqr.cholqr_columns(np.asarray(ap),
                                               fallback="shift",
                                               backend=self.backend))
        if scheme == "householder":
            f = householder.householder_qr(np.asarray(ap))
            return f.q(), f.r()
        if scheme == "tsqr":
            return tsqr_factorize(np.asarray(ap))
        raise ConfigurationError(
            f"qr_selected supports cholqr/cholqr2/householder/tsqr, "
            f"got {scheme!r}")

    @shaped(params={"r11": ("k", "k"), "r12": ("k", "t")},
            returns=("k", "t"))
    def solve_upper(self, r11: ArrayLike, r12: ArrayLike,
                    phase: str = "other") -> ArrayLike:
        """``T = R11^{-1} R12`` (line 9 of Fig. 2b), triangular solve."""
        k = shape_of(r11)[0]
        ncols = shape_of(r12)[1]
        self._t_trsolve(k, ncols, phase)
        if is_symbolic(r11, r12):
            return SymArray((k, ncols))
        return solve_upper_triangular(np.asarray(r11), np.asarray(r12),
                                      backend=self.backend)

    @shaped(params={"rbar": ("k", "k"), "t": ("k", "t")})
    def assemble_r(self, rbar: ArrayLike, t: ArrayLike,
                   phase: str = "other") -> ArrayLike:
        """``R = R_bar [I  T]`` (line 10 of Fig. 2b): a triangular
        multiply producing the ``k x n`` factor in pivoted order."""
        k = shape_of(rbar)[0]
        nt = shape_of(t)[1]
        self._t_trsolve(k, k + nt, phase)  # TRMM, same cost class
        if is_symbolic(rbar, t):
            return SymArray((k, k + nt))
        rbar = np.asarray(rbar)
        return np.hstack([rbar, self.backend.gemm(rbar, np.asarray(t))])

    @residency(returns="host")
    @shaped(params={"b_new": ("l", "n"), "q_prev": ("p", "n")})
    def estimate_error(self, b_new: ArrayLike, q_prev: ArrayLike,
                       phase: str = "other") -> float:
        """Adaptive-scheme error estimate (line 15 of Fig. 3):
        ``eps_tilde = ||B_new - B_new Q_prev^T Q_prev||``.

        Symbolic inputs cannot produce a value and raise
        :class:`repro.errors.SymbolicExecutionError`.
        """
        li, n = shape_of(b_new)
        lp = shape_of(q_prev)[0]
        # Two GEMMs + a norm.
        self._t_gemm(li, lp, n, phase=phase)
        self._t_gemm(li, n, lp, phase=phase)
        if is_symbolic(b_new, q_prev):
            raise SymbolicExecutionError(
                "error estimates require real data; run the adaptive "
                "scheme with a concrete matrix")
        proj = self.backend.gemm(b_new, q_prev.T)
        resid = b_new - self.backend.gemm(proj, q_prev)
        return self.backend.norm(resid, ord=2)

    @residency(returns="device")
    def vstack(self, parts: Sequence[ArrayLike]) -> ArrayLike:
        """Stack sampled blocks (subspace growth in the adaptive loop)."""
        return _vstack(parts)

    @residency(returns="device")
    @shaped(params={"x": ("m", "k"), "y": ("k", "n")}, returns=("m", "n"))
    def gemm(self, x: ArrayLike, y: ArrayLike,
             phase: str = "other") -> ArrayLike:
        """General timed product ``X Y`` for post-processing steps that
        have no dedicated kernel (e.g. the randomized-SVD Stage-B
        factor assembly)."""
        m, k = shape_of(x)
        n = shape_of(y)[1]
        self._t_gemm(m, n, k, phase=phase)
        return _mm(x, y, self.backend)

    @residency(returns="host")
    def svd_small(self, r: ArrayLike, phase: str = "other"
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense SVD of a small factor (the ``l x l`` tail of the
        randomized SVD).  Value-dependent, so symbolic inputs raise
        :class:`repro.errors.SymbolicExecutionError`."""
        m, n = shape_of(r)
        self._t_svd(m, n, phase)
        if is_symbolic(r):
            raise SymbolicExecutionError(
                "the small SVD is value-dependent; run with a concrete "
                "matrix")
        return self.backend.svd(np.asarray(r), full_matrices=False)

    @residency(returns="host")
    def row_norms(self, x: ArrayLike,
                  phase: str = "orth_iter") -> np.ndarray:
        """Per-row 2-norms (the adaptive scheme's DGKS degeneracy
        guard).  Value-dependent, so symbolic inputs raise
        :class:`repro.errors.SymbolicExecutionError`."""
        rows, cols = shape_of(x)
        self._t_rownorms(rows, cols, phase)
        if is_symbolic(x):
            raise SymbolicExecutionError(
                "row norms are value-dependent; run with a concrete "
                "matrix")
        return self.backend.row_norms(np.asarray(x))


class GPUExecutor(NumpyExecutor):
    """Single simulated GPU: NumPy math + modeled kernel time."""

    supports_symbolic = True

    def __init__(self, spec: GPUSpec = KEPLER_K40C,
                 seed: Optional[int] = None,
                 device: Optional[SimulatedGPU] = None,
                 backend=None):
        super().__init__(seed=seed, backend=backend)
        self.device = device if device is not None else SimulatedGPU(spec)
        self.kernels = self.device.kernels

    @property
    def seconds(self) -> float:
        return self.device.elapsed

    @property
    def timeline(self) -> TimeLine:
        return self.device.timeline

    def reset_clock(self) -> None:
        self.device.reset()

    def attach_recorder(self, recorder) -> None:
        self.device.attach_recorder(recorder)

    def bind(self, a: ArrayLike) -> None:
        """Account the input matrix in device memory (the paper's
        matrices are device-resident).  A matrix exceeding the K40c's
        12 GB raises :class:`repro.errors.OutOfDeviceMemoryError` —
        the same wall a real run would hit."""
        self.device.memory.reset()
        m, n = shape_of(a)
        self.device.memory.allocate(8 * m * n)

    # -- timing hooks -----------------------------------------------------
    def _gemm_efficiency(self, phase: str) -> float:
        """Iteration GEMMs (TN/NT shapes) run at the calibrated bonus."""
        return (self.device.spec.iter_gemm_efficiency
                if phase == "gemm_iter" else 1.0)

    def _t_gemm(self, m: int, n: int, k: int, phase: str) -> None:
        secs = self.kernels.gemm_seconds(
            m, n, k, efficiency=self._gemm_efficiency(phase))
        flops = gemm_flops(m, n, k)
        self.device.charge(phase, secs, label=f"gemm {m}x{n}x{k}",
                           flops=flops,
                           bytes_moved=_words_bytes(flops, m * k, k * n,
                                                    m * n))

    def _t_prng(self, count: int) -> None:
        self.device.charge("prng", self.kernels.curand_seconds(count),
                           label=f"curand {count}", flops=float(count),
                           bytes_moved=8.0 * count)

    def _t_fft(self, m: int, n: int, axis: str) -> None:
        padded = self.kernels._pad_pow2(m if axis == "row" else n)
        flops = 5.0 * padded * np.log2(max(2, padded)) \
            * (n if axis == "row" else m)
        self.device.charge("sampling",
                           self.kernels.fft_sampling_seconds(m, n, axis),
                           label=f"fft {m}x{n} {axis}", flops=flops,
                           bytes_moved=_words_bytes(flops, m * n))

    def _t_orth(self, rows: int, cols: int, scheme: str, reorth: bool,
                phase: str) -> None:
        k = self.kernels
        if scheme in ("cholqr", "cholqr2", "mixed_cholqr"):
            if scheme == "mixed_cholqr":
                # Always two passes (fast Gram + corrective double
                # pass); the fast precision halves the first pass.
                secs = k.cholqr_seconds(rows, cols, reorth=True) * 0.75
            else:
                secs = k.cholqr_seconds(rows, cols, reorth=reorth)
        elif scheme == "householder":
            secs = k.hhqr_seconds(rows, cols)
        elif scheme == "cgs":
            secs = k.cgs_seconds(rows, cols)
        elif scheme == "mgs":
            secs = k.mgs_seconds(rows, cols)
        elif scheme == "tsqr":
            # TSQR streams like CholQR but re-factors R blocks up the
            # tree: model as CholQR plus a log-depth latency term.
            long = max(rows, cols)
            short = min(rows, cols)
            depth = max(1, int(np.log2(max(2, long // max(1, 4 * short)))))
            secs = (k.cholqr_seconds(rows, cols, reorth=False) * 1.5
                    + depth * 4 * self.device.spec.kernel_launch_s)
        else:
            raise ConfigurationError(f"no timing model for {scheme!r}")
        passes = 2 if reorth else 1
        flops = qr_flops(max(rows, cols), min(rows, cols)) * passes
        self.device.charge(phase, secs, label=f"{scheme} {rows}x{cols}",
                           flops=flops,
                           bytes_moved=_words_bytes(flops,
                                                    passes * rows * cols))

    def _t_block_orth(self, prev: int, new: int, length: int,
                      reorth: bool, phase: str) -> None:
        secs = self.kernels.block_orth_seconds(prev, new, length, reorth)
        flops = 4.0 * prev * new * length * (2 if reorth else 1)
        self.device.charge(phase, secs,
                           label=f"borth {prev}+{new}x{length}",
                           flops=flops,
                           bytes_moved=_words_bytes(flops,
                                                    (prev + new) * length))

    def _t_qrcp(self, m: int, n: int, k: int) -> None:
        flops = qp3_flops(m, n, k)
        self.device.charge("qrcp", self.kernels.qp3_seconds(m, n, k),
                           label=f"qp3 {m}x{n} k={k}", flops=flops,
                           # QP3 is BLAS-2 bound: every update sweeps
                           # the trailing matrix through slow memory.
                           bytes_moved=8.0 * (flops / 2.0 + m * n))

    def _t_trsolve(self, rows: int, cols: int, phase: str) -> None:
        flops = gemm_flops(rows, cols, rows) / 2.0
        self.device.charge(phase, self.kernels.trsm_seconds(rows, cols),
                           label=f"trsm {rows}x{cols}", flops=flops,
                           bytes_moved=_words_bytes(flops, rows * cols))

    def _t_copy(self, nbytes: int, phase: str) -> None:
        # Device-local gather at memory bandwidth (read + write).
        secs = (2 * nbytes / (self.device.spec.mem_bw_gbs * 1e9)
                + self.device.spec.kernel_launch_s)
        self.device.charge(phase, secs, label=f"copy {nbytes}B",
                           bytes_moved=2.0 * nbytes)

    def _t_svd(self, m: int, n: int, phase: str) -> None:
        small = min(m, n)
        flops = 14.0 * m * n * small  # dense one-sided Jacobi/gesvd class
        self.device.charge(phase, self.kernels.svd_small_seconds(m, n),
                           label=f"gesvd {m}x{n}", flops=flops,
                           bytes_moved=_words_bytes(flops, m * n))

    def _t_rownorms(self, rows: int, cols: int, phase: str) -> None:
        flops = 2.0 * rows * cols
        self.device.charge(phase,
                           self.kernels.row_norms_seconds(rows, cols),
                           label=f"rownorms {rows}x{cols}", flops=flops,
                           bytes_moved=8.0 * rows * cols)

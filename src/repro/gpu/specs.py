"""Hardware constants and calibration anchors for the simulated K40c.

Every number here is either an NVIDIA datasheet value or taken from a
measurement the paper reports; the fitted parameters are documented
next to the figure they were fitted against (see DESIGN.md section 5
for the derivation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["AnchorCurve", "GPUSpec", "KEPLER_K40C"]


class AnchorCurve:
    """Piecewise log-log linear interpolation through anchor points.

    Kernel rates that cannot be derived from a roofline (pivoted /
    latency-bound factorizations) are calibrated through anchors taken
    from the paper's own figures.  Interpolation is linear in
    (log x, log y); outside the anchor range the curve extrapolates
    flat (clamps to the end values), which keeps the models sane for
    out-of-range shapes.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 1:
            raise ConfigurationError("AnchorCurve needs at least one point")
        pts = sorted(points)
        for x, y in pts:
            if x <= 0 or y <= 0:
                raise ConfigurationError(
                    f"anchors must be positive, got ({x}, {y})")
        for (x0, _), (x1, _) in zip(pts, pts[1:]):
            if x0 == x1:
                raise ConfigurationError(f"duplicate anchor x = {x0}")
        self._xs = [math.log(x) for x, _ in pts]
        self._ys = [math.log(y) for _, y in pts]
        self.points = tuple(pts)

    def __call__(self, x: float) -> float:
        if x <= 0:
            raise ConfigurationError(f"AnchorCurve input must be > 0, got {x}")
        lx = math.log(x)
        xs, ys = self._xs, self._ys
        if lx <= xs[0]:
            return math.exp(ys[0])
        if lx >= xs[-1]:
            return math.exp(ys[-1])
        # Binary search for the segment.
        lo, hi = 0, len(xs) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if xs[mid] <= lx:
                lo = mid
            else:
                hi = mid
        t = (lx - xs[lo]) / (xs[hi] - xs[lo])
        return math.exp(ys[lo] + t * (ys[hi] - ys[lo]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnchorCurve({list(self.points)!r})"


def _curve(points: Sequence[Tuple[float, float]]) -> AnchorCurve:
    return AnchorCurve(points)


@dataclass(frozen=True)
class GPUSpec:
    """Performance description of one simulated GPU.

    Datasheet values
    ----------------
    fp64_peak_gflops / mem_bw_gbs:
        The paper's quoted peaks: 1430 Gflop/s double precision and
        288 GB/s memory bandwidth (Section 8, Figure 8).
    memory_bytes:
        Device memory capacity (12 GB for the K40c).

    Fitted roofline parameters (GEMM)
    ---------------------------------
    The panel-GEMM rate for ``B(l x n) = Omega(l x m) A(m x n)`` is
    modeled as ``1 / (1/P + 4 / (l_eff * B_eff))`` Gflop/s where
    ``B_eff = bw_cap / (1 + m / gemm_bw_m_half) * l / (l + gemm_bw_l_half)``.
    The three parameters below were fitted jointly against Figure 18
    (ell_inc -> Gflop/s at m = 50 000) and the Figure 15 discussion
    (440/630/760 Gflop/s at m = 150k/75k/50k); the resulting curve
    matches all eight anchors within ~10 %.

    Latency constants
    -----------------
    kernel_launch_s:
        Per-kernel-launch overhead.
    pivot_sync_s:
        CPU<->GPU synchronization per QP3 pivot selection — fitted from
        the Figure 11 QP3 intercept (~9.8 ms for k = 54 columns).
    pcie_bw_gbs / pcie_latency_s:
        Effective host-device transfer rate; reproduces the 1.6 %/4.3 %
        communication fractions of Figure 15.

    Calibrated kernel curves
    ------------------------
    The factorization-kernel effective rates (Gflop/s on the standard
    ``2 m n^2`` QR flop count) are anchor curves in the long dimension,
    fitted against Figures 7 (tall-skinny, n = 64) and 9 (short-wide,
    m = 64): CholQR ~30.5x HHQR tall-skinny (<= 33.2x), ~72.9x
    short-wide (<= 106.4x), HHQR ~5x QP3, CGS between CholQR and HHQR,
    MGS below HHQR.
    """

    name: str = "Tesla K40c (simulated)"
    fp64_peak_gflops: float = 1430.0
    dgemm_peak_gflops: float = 1310.0
    mem_bw_gbs: float = 288.0
    memory_bytes: int = 12 * 1024 ** 3

    # Panel-GEMM roofline fit (DESIGN.md section 5).
    gemm_bw_cap_gbs: float = 266.7
    gemm_bw_m_half: float = 30_000.0
    gemm_bw_l_half: float = 4.0
    # The power-iteration products C = B A^T and B = C A are TN/NT
    # GEMMs whose long dimension is the reduction (or write-once
    # output) axis; on the K40c these run measurably faster than the
    # row-panel NN product.  Calibrated against the Figure 11 phase
    # split (GEMM(iter) = 47.3 % vs sampling = 28.3 % of the total,
    # i.e. each iteration GEMM ~0.84x the sampling GEMM's time) and
    # the Figure 14 crossover (sampling beats QP3 up to q = 12).
    iter_gemm_efficiency: float = 1.58

    # Latencies.
    kernel_launch_s: float = 10e-6
    pivot_sync_s: float = 180e-6
    pcie_bw_gbs: float = 6.0
    pcie_latency_s: float = 15e-6

    # Memory-bound BLAS-1/2 effective rates.
    gemv_gflops: float = 40.0
    axpy_gflops: float = 18.0

    # cuRAND Gaussian generation throughput (samples/s); reproduces the
    # 0.9 % PRNG share of the Figure 11 breakdown.
    curand_gsamples: float = 5.0e9

    # cuFFT effective rates on power-of-two padded 5 N log2 N flops.
    # Calibrated so the pruned-Gaussian/full-FFT crossovers land at
    # l ~ 192 (row sampling) and l ~ 128 (column sampling) as in
    # Figure 8; see EXPERIMENTS.md for the flop-convention caveat.
    fft_row_gflops: float = 280.0
    fft_col_gflops: float = 430.0

    # Effective rate of the small Cholesky (POTRF) on an l x l block.
    potrf_gflops: float = 20.0

    # --- anchor curves (x = long dimension in elements) ----------------
    # Tall-skinny (panel width 64), Figure 7.
    cholqr_ts_curve: AnchorCurve = field(default_factory=lambda: _curve(
        [(2_500, 38.0), (10_000, 75.0), (25_000, 95.0), (50_000, 115.0)]))
    hhqr_ts_curve: AnchorCurve = field(default_factory=lambda: _curve(
        [(2_500, 1.2), (10_000, 2.5), (25_000, 3.2), (50_000, 3.6)]))
    cgs_ts_curve: AnchorCurve = field(default_factory=lambda: _curve(
        [(2_500, 4.0), (10_000, 7.5), (25_000, 10.0), (50_000, 12.0)]))
    mgs_ts_curve: AnchorCurve = field(default_factory=lambda: _curve(
        [(2_500, 1.0), (10_000, 1.4), (25_000, 1.7), (50_000, 1.85)]))
    # Short-wide (64 rows), Figure 9.
    cholqr_sw_curve: AnchorCurve = field(default_factory=lambda: _curve(
        [(2_500, 50.0), (10_000, 110.0), (25_000, 135.0), (50_000, 150.0)]))
    hhqr_sw_curve: AnchorCurve = field(default_factory=lambda: _curve(
        [(2_500, 1.38), (10_000, 1.40), (25_000, 1.41), (50_000, 1.41)]))

    # BLAS-2 rate of the blocked QP3 panel as a function of the trailing
    # width n; fitted from the Figure 11/12 QP3 slopes (~31 Gflop/s for
    # n >= 2 500) and the Figure 7 tall-skinny anchor at n = 64.
    qp3_blas2_curve: AnchorCurve = field(default_factory=lambda: _curve(
        [(64, 0.45), (500, 24.0), (2_500, 31.0), (5_000, 32.0),
         (50_000, 34.0)]))

    def validate(self) -> None:
        """Sanity-check the physically meaningful orderings."""
        if not (0 < self.dgemm_peak_gflops <= self.fp64_peak_gflops):
            raise ConfigurationError(
                "dgemm peak must be positive and <= fp64 peak")
        if self.gemm_bw_cap_gbs > self.mem_bw_gbs:
            raise ConfigurationError(
                "effective GEMM bandwidth cap exceeds the memory peak")
        if self.pcie_bw_gbs >= self.mem_bw_gbs:
            raise ConfigurationError("PCIe cannot outrun device memory")


#: The paper's GPU.
KEPLER_K40C = GPUSpec()
KEPLER_K40C.validate()


def scaled_spec(name: str, compute_scale: float = 1.0,
                bandwidth_scale: float = 1.0,
                latency_scale: float = 1.0,
                base: GPUSpec = KEPLER_K40C) -> GPUSpec:
    """Derive a hypothetical device by scaling the calibrated K40c.

    Section 8's point of the performance model is "to evaluate the
    performance of random sampling on a target computer before
    implementing the algorithm"; this helper produces such targets.
    Compute-bound constants scale with ``compute_scale``,
    bandwidth-bound ones with ``bandwidth_scale``, and every latency
    with ``latency_scale`` — the anchor curves are rescaled by the
    geometric mean of the two throughput factors (panel kernels are
    part compute-, part bandwidth-limited).
    """
    import dataclasses

    if min(compute_scale, bandwidth_scale, latency_scale) <= 0:
        raise ConfigurationError("scales must be positive")
    mixed = math.sqrt(compute_scale * bandwidth_scale)

    def scale_curve(curve: AnchorCurve, s: float) -> AnchorCurve:
        return AnchorCurve([(x, y * s) for x, y in curve.points])

    spec = dataclasses.replace(
        base,
        name=name,
        fp64_peak_gflops=base.fp64_peak_gflops * compute_scale,
        dgemm_peak_gflops=base.dgemm_peak_gflops * compute_scale,
        mem_bw_gbs=base.mem_bw_gbs * bandwidth_scale,
        gemm_bw_cap_gbs=base.gemm_bw_cap_gbs * bandwidth_scale,
        kernel_launch_s=base.kernel_launch_s * latency_scale,
        pivot_sync_s=base.pivot_sync_s * latency_scale,
        pcie_bw_gbs=base.pcie_bw_gbs * bandwidth_scale,
        pcie_latency_s=base.pcie_latency_s * latency_scale,
        gemv_gflops=base.gemv_gflops * bandwidth_scale,
        axpy_gflops=base.axpy_gflops * bandwidth_scale,
        curand_gsamples=base.curand_gsamples * compute_scale,
        fft_row_gflops=base.fft_row_gflops * mixed,
        fft_col_gflops=base.fft_col_gflops * mixed,
        potrf_gflops=base.potrf_gflops * compute_scale,
        cholqr_ts_curve=scale_curve(base.cholqr_ts_curve, mixed),
        hhqr_ts_curve=scale_curve(base.hhqr_ts_curve, bandwidth_scale),
        cgs_ts_curve=scale_curve(base.cgs_ts_curve, bandwidth_scale),
        mgs_ts_curve=scale_curve(base.mgs_ts_curve, bandwidth_scale),
        cholqr_sw_curve=scale_curve(base.cholqr_sw_curve, mixed),
        hhqr_sw_curve=scale_curve(base.hhqr_sw_curve, bandwidth_scale),
        qp3_blas2_curve=scale_curve(base.qp3_blas2_curve,
                                    bandwidth_scale),
    )
    spec.validate()
    return spec


#: A Pascal-generation projection (P100-class datasheet ratios over the
#: K40c: ~3.3x FP64 compute, ~2.5x HBM2 bandwidth, somewhat lower
#: launch latencies).  Used by the cross-hardware projection bench to
#: check that the paper's conclusions are not K40c artifacts.
PASCAL_P100_PROJECTION = scaled_spec(
    "Tesla P100 (projected)", compute_scale=3.3, bandwidth_scale=2.5,
    latency_scale=0.7)

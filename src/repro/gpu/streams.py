"""Event/stream scheduler for the simulated multi-GPU runtime.

Real multi-GPU pipelines issue work on per-device CUDA streams and
order it with events: the local GEMM of the next chunk runs on the
``compute`` stream while the previous chunk's partial result is being
gathered over PCIe, so wall-clock is the **critical path** through the
resulting DAG rather than the sum of kernel times.  This module models
exactly that for the simulated devices of
:class:`repro.gpu.multigpu.MultiGPUExecutor`:

- every device ``0..ng-1`` owns the named streams
  :data:`DEVICE_STREAMS` (``compute``, ``comms``, ``h2d``, ``d2h``);
- the host (:data:`HOST`, device id ``-1``) owns ``cpu`` (the
  accumulation/panel work) and ``pcie`` — the shared root complex that
  serializes every transfer, reproducing the paper's PCIe reduction
  cost model (:meth:`repro.gpu.memory.TransferModel.reduce_seconds`);
- a submission starts at the max of its stream-ready times, its
  explicit dependency events, and — with ``overlap=False`` — the
  global frontier, which degenerates the schedule to the old serial
  sum.

Accounting is unchanged from the serial model: each submission charges
its modeled seconds to the master :class:`repro.gpu.trace.TimeLine`
exactly once, so the per-phase breakdown is identical under
``overlap=on`` and ``overlap=off``; only :attr:`StreamScheduler.elapsed`
(the DAG's critical path) differs.  Symmetric per-device work can be
mirrored onto the other devices' streams as *unaccounted* spans so the
Chrome-trace export shows every device's occupancy without double
counting.

The scheduler operates purely on the *modeled* clock: placements are
derived from shapes and the kernel rate models, never from which
:mod:`repro.backends` compute engine executes the arithmetic, so
schedules (and fig15 totals) are identical under every ``--backend``.
Missing ``deps=`` edges are caught two ways: statically by lints
RS109-RS112 and dynamically by the happens-before race sanitizer
(:mod:`repro.analysis.races`); see ``docs/performance.md`` for the
scheduling model and ``docs/static_analysis.md`` for the checkers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .trace import PHASES, TimeLine

__all__ = ["HOST", "DEVICE_STREAMS", "HOST_STREAMS", "StreamEvent",
           "StreamScheduler"]

#: Device id of the host-side resources (CPU work, shared PCIe).
HOST = -1

#: Streams owned by every simulated device.
DEVICE_STREAMS = ("compute", "comms", "h2d", "d2h")

#: Streams owned by the host: CPU math and the shared PCIe root
#: complex (transfers name it as an extra resource, so concurrent
#: copies from different devices serialize, as on the paper's node).
HOST_STREAMS = ("cpu", "pcie")

ResourceKey = Tuple[int, str]


class StreamEvent:
    """Completion marker of one submission, in modeled seconds.

    When a race checker is attached, the event also carries the vector
    clock of the submission that produced it, so passing it via
    ``deps=`` establishes a happens-before edge the sanitizer sees.
    """

    __slots__ = ("time", "label", "clock")

    def __init__(self, time: float, label: str = "", clock=None):
        self.time = float(time)
        self.label = label
        self.clock = clock  # Optional[Dict[ResourceKey, int]]

    def __repr__(self) -> str:
        return f"StreamEvent(t={self.time:.6g}, {self.label!r})"


class StreamScheduler:
    """Critical-path clock over per-device streams and explicit events.

    ``overlap=False`` serializes every submission after the current
    frontier, making :attr:`elapsed` equal the plain sum of charged
    seconds — the pre-stream serial model, bit for bit.
    """

    def __init__(self, ng: int, overlap: bool = True,
                 timeline: Optional[TimeLine] = None):
        if ng < 1:
            raise ConfigurationError(f"ng must be >= 1, got {ng}")
        self.ng = ng
        self.overlap = bool(overlap)
        #: Master timeline: every accounted submission charges here
        #: once, so phase sums match the serial model exactly.
        self.timeline = timeline if timeline is not None else TimeLine()
        self.recorder = None  # Optional[repro.obs.spans.SpanRecorder]
        #: Optional ``device_id -> memory high-water`` probe used to
        #: decorate recorded spans (set by the executor).
        self.memory_probe: Optional[Callable[[int], int]] = None
        self._ready: Dict[ResourceKey, float] = {}
        self._busy: Dict[ResourceKey, float] = {}
        self._frontier = 0.0
        self._submissions = 0
        #: Optional repro.analysis.races.RaceChecker observing every
        #: submission's declared ``reads=``/``writes=`` buffer accesses.
        self.race_checker = None

    # -- wiring ------------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        """Mirror every subsequent submission into ``recorder`` (pass
        ``None`` to detach)."""
        self.recorder = recorder

    def attach_race_checker(self, checker) -> None:
        """Feed every subsequent submission through a happens-before
        race ``checker`` (:class:`repro.analysis.races.RaceChecker`;
        pass ``None`` to detach).  Observation-only: start times,
        charged seconds, and :attr:`elapsed` are unaffected."""
        self.race_checker = checker

    def _key(self, device: int, stream: str) -> ResourceKey:
        if device != HOST and not 0 <= device < self.ng:
            raise ConfigurationError(
                f"unknown device {device!r}; expected {HOST} (host) or "
                f"0..{self.ng - 1}")
        streams = HOST_STREAMS if device == HOST else DEVICE_STREAMS
        if stream not in streams:
            raise ConfigurationError(
                f"unknown stream {stream!r} for device {device}; "
                f"expected one of {streams}")
        return (device, stream)

    # -- submission --------------------------------------------------------
    def submit(self, phase: str, seconds: float, *, device: int = 0,
               stream: str = "compute",
               deps: Sequence[StreamEvent] = (),
               resources: Sequence[ResourceKey] = (),
               after_all: bool = False, account: bool = True,
               label: str = "", flops: float = 0.0,
               bytes_moved: float = 0.0,
               reads: Sequence[str] = (),
               writes: Sequence[str] = ()) -> StreamEvent:
        """Place one piece of work on ``(device, stream)``.

        ``resources`` lists extra ``(device, stream)`` pairs the work
        occupies (a PCIe copy holds both the device's copy engine and
        the shared host ``pcie`` lane).  ``deps`` are events that must
        complete first; ``after_all=True`` additionally waits for
        everything in flight (a value-dependent join).  ``account=False``
        records the span for the trace without charging the timeline —
        the mirror half of symmetric multi-device work.

        ``reads=``/``writes=`` name the logical buffers the work
        touches (e.g. ``"B_chunk[0]"``, ``"R_bar"``) for the attached
        race checker; they have no effect on scheduling.
        """
        keys = [self._key(device, stream)]
        keys += [self._key(d, s) for d, s in resources]
        start = self._start_time(keys, deps, after_all)
        clock = self._race_check(phase, label, keys, deps, after_all,
                                 reads, writes)
        return self._place(phase, seconds, keys, start,
                           record_on=[(device, stream, account)],
                           label=label, flops=flops,
                           bytes_moved=bytes_moved, account=account,
                           clock=clock)

    def submit_group(self, phase: str, seconds: float, *,
                     placements: Sequence[ResourceKey],
                     deps: Sequence[StreamEvent] = (),
                     after_all: bool = False, label: str = "",
                     flops: float = 0.0,
                     bytes_moved: float = 0.0,
                     reads: Sequence[str] = (),
                     writes: Sequence[str] = ()) -> StreamEvent:
        """Symmetric work starting together on several streams.

        The devices run in lockstep (same local shapes), so the work is
        charged **once** — first placement accounted, the rest recorded
        as unaccounted mirror spans for the per-device trace.  With
        ``overlap=False`` the mirrors are dropped *after* validation:
        every placement still goes through :meth:`_key`, so a typo'd
        stream name fails identically in serialized and overlapped
        mode.
        """
        if not placements:
            raise ConfigurationError("submit_group needs placements")
        keys = [self._key(d, s) for d, s in placements]
        if not self.overlap:
            keys = keys[:1]
        start = self._start_time(keys, deps, after_all)
        clock = self._race_check(phase, label, keys, deps, after_all,
                                 reads, writes)
        record_on = [(d, s, i == 0)
                     for i, (d, s) in enumerate(placements[:len(keys)])]
        return self._place(phase, seconds, keys, start,
                           record_on=record_on, label=label, flops=flops,
                           bytes_moved=bytes_moved, account=True,
                           clock=clock)

    def barrier(self) -> StreamEvent:
        """Event completing when everything submitted so far has."""
        clock = (self.race_checker.global_clock()
                 if self.race_checker is not None else None)
        return StreamEvent(self._frontier, "barrier", clock=clock)

    def _race_check(self, phase: str, label: str,
                    keys: List[ResourceKey],
                    deps: Sequence[StreamEvent], after_all: bool,
                    reads: Sequence[str],
                    writes: Sequence[str]) -> Optional[Dict]:
        """Feed one submission to the attached race checker (if any)
        and return its vector clock for the completion event.

        ``overlap=False`` serializes every submission after the global
        frontier, so the checker sees it as ``after_all=True`` — a
        serialized schedule can never race.  Newly detected races are
        mirrored into the attached span recorder so they land in the
        run artifact next to the spans they involve.
        """
        checker = self.race_checker
        if checker is None:
            return None
        dep_clocks = [ev.clock for ev in deps
                      if isinstance(ev, StreamEvent)
                      and ev.clock is not None]
        before = len(checker.races)
        try:
            clock = checker.on_submit(
                label=label, phase=phase, lanes=keys,
                dep_clocks=dep_clocks,
                after_all=after_all or not self.overlap,
                reads=reads, writes=writes)
        finally:
            if self.recorder is not None:
                for race in checker.races[before:]:
                    self.recorder.record_race(race.to_dict())
        return clock

    def _start_time(self, keys: List[ResourceKey],
                    deps: Sequence[StreamEvent],
                    after_all: bool) -> float:
        start = 0.0
        for k in keys:
            start = max(start, self._ready.get(k, 0.0))
        for ev in deps:
            if not isinstance(ev, StreamEvent):
                raise ConfigurationError(
                    f"deps must be StreamEvents, got {type(ev).__name__}")
            start = max(start, ev.time)
        if after_all or not self.overlap:
            start = max(start, self._frontier)
        return start

    def _place(self, phase: str, seconds: float, keys: List[ResourceKey],
               start: float, record_on: List[Tuple[int, str, bool]],
               label: str, flops: float, bytes_moved: float,
               account: bool, clock: Optional[Dict] = None) -> StreamEvent:
        if phase not in PHASES:
            raise ConfigurationError(
                f"unknown phase {phase!r} submitted to the stream "
                f"scheduler; expected one of {PHASES}")
        if seconds < 0:
            raise ConfigurationError(f"negative submission: {seconds}")
        end = start + seconds
        for k in keys:
            self._ready[k] = end
            self._busy[k] = self._busy.get(k, 0.0) + seconds
        self._frontier = max(self._frontier, end)
        self._submissions += 1
        if account:
            self.timeline.charge(phase, seconds, label)
        if self.recorder is not None:
            for device, stream, accounted in record_on:
                hw = (self.memory_probe(device)
                      if self.memory_probe is not None and device >= 0
                      else 0)
                self.recorder.record_kernel(
                    phase=phase, label=label or phase, seconds=seconds,
                    flops=flops, bytes_moved=bytes_moved,
                    device_id=device, memory_high_water=hw,
                    stream=stream, start=start, accounted=accounted)
        return StreamEvent(end, label, clock=clock)

    # -- introspection -----------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Critical-path end time: the max end over every submission."""
        return self._frontier

    @property
    def submissions(self) -> int:
        return self._submissions

    def busy_seconds(self, device: int, stream: str) -> float:
        """Total seconds occupying one stream (its utilization)."""
        return self._busy.get(self._key(device, stream), 0.0)

    # -- replay / resume ---------------------------------------------------
    @staticmethod
    def _parse_key(key) -> Tuple[int, str]:
        """Accept both snapshot key forms: the legacy in-memory
        ``(device, stream)`` tuple and the JSON-portable ``"device:stream"``
        string that :meth:`state` now emits."""
        if isinstance(key, str):
            device, sep, stream = key.partition(":")
            if not sep:
                raise ConfigurationError(f"bad resource key {key!r}")
            return int(device), stream
        device, stream = key
        return int(device), stream

    def state(self) -> Dict:
        """Snapshot of the schedule clock (resume/replay).

        Resource keys are stringified as ``"device:stream"`` so the
        snapshot survives ``json.dumps``/``json.loads`` unchanged —
        replay state can be persisted to disk between processes.
        """
        return {"ready": {f"{d}:{s}": t
                          for (d, s), t in self._ready.items()},
                "busy": {f"{d}:{s}": t
                         for (d, s), t in self._busy.items()},
                "frontier": self._frontier,
                "submissions": self._submissions}

    def restore(self, state: Dict) -> None:
        """Resume from a :meth:`state` snapshot: subsequent submissions
        schedule exactly as if the run had never been interrupted.
        Accepts both the JSON string-keyed form and the legacy
        tuple-keyed form."""
        try:
            self._ready = {self._key(*self._parse_key(k)): float(t)
                           for k, t in state["ready"].items()}
            self._busy = {self._key(*self._parse_key(k)): float(t)
                          for k, t in state["busy"].items()}
            self._frontier = float(state["frontier"])
            self._submissions = int(state["submissions"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed scheduler state: {exc}") from None

    def reset(self, timeline: Optional[TimeLine] = None) -> None:
        """Fresh clock (and optionally a fresh master timeline)."""
        self._ready.clear()
        self._busy.clear()
        self._frontier = 0.0
        self._submissions = 0
        if timeline is not None:
            self.timeline = timeline

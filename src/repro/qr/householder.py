"""Blocked Householder QR (HHQR) from scratch.

This is the unconditionally stable orthogonalization scheme of the
paper (Golub & Van Loan [8]).  The implementation follows LAPACK's
``geqrf`` structure: reflectors are accumulated panel-by-panel in the
compact-WY representation ``Q = I - V T V^T`` (``larft``/``larfb``), so
the trailing update is BLAS-3 while the panel factorization is BLAS-2 —
exactly the operation mix whose cost the paper measures in Figures 7
and 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from .utils import as_2d_float

__all__ = ["householder_vector", "HouseholderFactors", "householder_qr",
           "apply_q"]


def householder_vector(x: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, tau, beta)`` with ``v[0] = 1`` such that
    ``(I - tau v v^T) x = beta e_1`` and ``|beta| = ||x||_2``.
    The sign of ``beta`` is chosen opposite to ``x[0]`` to avoid
    cancellation (LAPACK ``larfg`` convention).

    For a zero (or length-1 already-reduced) input, ``tau = 0`` and the
    reflector is the identity.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ShapeError("householder_vector needs a non-empty 1-D input")
    v = x.copy()
    sigma = float(np.dot(x[1:], x[1:]))
    v[0] = 1.0
    if sigma == 0.0:
        # Already reduced; identity reflector keeps beta = x[0].
        return v, 0.0, float(x[0])
    alpha = float(x[0])
    norm = np.sqrt(alpha * alpha + sigma)
    beta = -norm if alpha >= 0 else norm
    v0 = alpha - beta
    v[1:] = x[1:] / v0
    tau = (beta - alpha) / beta
    return v, float(tau), float(beta)


@dataclass
class HouseholderFactors:
    """Compact-WY representation of the orthogonal factor of a QR.

    Attributes
    ----------
    vt_store:
        ``m x k`` array whose strictly-lower part holds the reflector
        vectors (unit diagonal implied) and whose upper part holds
        ``R`` (like LAPACK's ``geqrf`` output).
    taus:
        The ``k`` reflector scalings.
    """

    vt_store: np.ndarray
    taus: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.vt_store.shape

    def r(self) -> np.ndarray:
        """The ``k x n`` upper-triangular factor."""
        k = self.taus.shape[0]
        return np.triu(self.vt_store[:k, :])

    def q(self, columns: Optional[int] = None) -> np.ndarray:
        """Materialize the first ``columns`` columns of ``Q``.

        ``columns`` defaults to the number of reflectors ``k`` (the
        "economy" Q).
        """
        m, _ = self.vt_store.shape
        k = self.taus.shape[0]
        ncols = k if columns is None else columns
        if ncols > m:
            raise ShapeError(f"cannot request {ncols} columns of an "
                             f"{m}-row Q")
        q = np.zeros((m, ncols))
        np.fill_diagonal(q, 1.0)
        return apply_q(self, q)


def _larft(v: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Form the upper-triangular block factor ``T`` with
    ``I - V T V^T = H_0 H_1 ... H_{k-1}`` (forward, columnwise).

    ``v`` is ``m x k`` with unit diagonal and reflectors below it.
    """
    k = taus.shape[0]
    t = np.zeros((k, k))
    vtv = v.T @ v  # k x k; only the strict upper part is used below
    for j in range(k):
        t[j, j] = taus[j]
        if j > 0:
            # T[:j, j] = -tau_j * T[:j, :j] @ (V[:, :j]^T v_j)
            t[:j, j] = -taus[j] * (t[:j, :j] @ vtv[:j, j])
    return t


def _expand_v(store: np.ndarray, k: int) -> np.ndarray:
    """Extract the unit-lower-trapezoidal reflector block from a geqrf
    style store."""
    v = np.tril(store[:, :k], -1)
    np.fill_diagonal(v, 1.0)
    return v


def householder_qr(a: np.ndarray, block_size: int = 64,
                   overwrite: bool = False) -> HouseholderFactors:
    """Blocked Householder QR of an ``m x n`` matrix (``m >= n`` or not).

    Factors min(m, n) columns.  The panel is factored column-by-column
    with BLAS-2 reflector applications; each trailing submatrix update
    uses the compact-WY BLAS-3 form ``(I - V T V^T)^T C``.

    Parameters
    ----------
    a:
        Input matrix.
    block_size:
        Panel width; 64 matches the GPU implementations the paper uses.
    overwrite:
        Reuse ``a``'s buffer when it is float64 and owned.

    Returns
    -------
    :class:`HouseholderFactors` holding the packed reflectors and ``R``.
    """
    a = as_2d_float(a, "a")
    work = a if (overwrite and a.dtype == np.float64
                 and a.flags.writeable) else a.astype(np.float64, copy=True)
    m, n = work.shape
    kmax = min(m, n)
    taus = np.zeros(kmax)

    for j0 in range(0, kmax, block_size):
        j1 = min(j0 + block_size, kmax)
        bw = j1 - j0
        # --- Panel factorization (BLAS-2) -------------------------------
        for j in range(j0, j1):
            v, tau, beta = householder_vector(work[j:, j])
            taus[j] = tau
            work[j, j] = beta
            work[j + 1:, j] = v[1:]
            if tau != 0.0 and j + 1 < j1:
                # Apply H_j to the rest of the panel.
                panel = work[j:, j + 1:j1]
                w = tau * (v @ panel)
                panel -= np.outer(v, w)
        # --- Trailing update (BLAS-3, compact WY) -----------------------
        if j1 < n:
            vblk = _expand_v(work[j0:, j0:j1], bw)
            tblk = _larft(vblk, taus[j0:j1])
            c = work[j0:, j1:]
            # C <- (I - V T V^T)^T C = C - V T^T (V^T C)
            w = vblk.T @ c
            w = tblk.T @ w
            c -= vblk @ w
    return HouseholderFactors(vt_store=work, taus=taus)


def apply_q(factors: HouseholderFactors, c: np.ndarray,
            transpose: bool = False) -> np.ndarray:
    """Apply ``Q`` (or ``Q^T``) from :func:`householder_qr` to ``c``.

    Uses the reflectors directly (LAPACK ``ormqr`` semantics), never
    materializing ``Q``; cost ``O(m n_c k)``.
    """
    c = as_2d_float(c, "c")
    store, taus = factors.vt_store, factors.taus
    m = store.shape[0]
    k = taus.shape[0]
    if c.shape[0] != m:
        raise ShapeError(f"c has {c.shape[0]} rows, Q acts on {m}")
    out = c.astype(np.float64, copy=True)
    # Q = H_0 H_1 ... H_{k-1}; Q^T applies them in forward order.
    order = range(k) if transpose else range(k - 1, -1, -1)
    for j in order:
        tau = taus[j]
        if tau == 0.0:
            continue
        v = np.empty(m - j)
        v[0] = 1.0
        v[1:] = store[j + 1:, j]
        block = out[j:, :]
        w = tau * (v @ block)
        block -= np.outer(v, w)
    return out

"""Gram-Schmidt orthogonalization: CGS, MGS, and the block variant.

The paper compares these against CholQR and HHQR (Figures 7 and 9) and
uses the **block orthogonalization** ``BOrth`` (classical block
Gram-Schmidt) inside the power iteration to orthogonalize new sampled
vectors against the previously accepted basis (Figure 2a, lines 4 and
9; reference [8]).

Operation mix (why their GPU performance differs, Section 3/8):

- CGS orthogonalizes each column against *all* previous columns at
  once — its bulk is BLAS-2 matrix-vector products.
- MGS orthogonalizes against previous columns *one at a time* — BLAS-1
  dot/axpy.
- BOrth applied to a block of vectors is two GEMMs — BLAS-3.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..backends import hostmath
from .utils import as_2d_float

__all__ = ["cgs", "mgs", "block_orth_columns", "block_orth_rows",
           "block_orth_rows_mixed"]


def cgs(a: np.ndarray, reorthogonalize: bool = False
        ) -> Tuple[np.ndarray, np.ndarray]:
    """Classical Gram-Schmidt QR of a tall-skinny matrix ``A = QR``.

    Each column is projected against all previously computed columns in
    one matrix-vector product (the BLAS-2 formulation the paper times).

    Parameters
    ----------
    a:
        ``m x n`` with ``m >= n`` and numerically full column rank.
    reorthogonalize:
        Apply the projection twice per column ("CGS2", the
        twice-is-enough rule) for orthogonality that matches HHQR.

    Returns
    -------
    (Q, R) with column-orthonormal ``Q``.
    """
    a = as_2d_float(a, "a")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"cgs needs m >= n, got {a.shape}")
    q = np.zeros((m, n))
    r = np.zeros((n, n))
    eps = np.finfo(np.float64).eps
    for j in range(n):
        v = a[:, j].copy()
        orig = float(hostmath.norm(v))
        if j > 0:
            qj = q[:, :j]
            c = qj.T @ v
            v -= qj @ c
            r[:j, j] = c
            if reorthogonalize:
                c2 = qj.T @ v
                v -= qj @ c2
                r[:j, j] += c2
        nrm = float(hostmath.norm(v))
        if nrm <= 100.0 * eps * orig or orig == 0.0:
            raise ShapeError(f"column {j} is numerically dependent; "
                             "CGS cannot proceed")
        r[j, j] = nrm
        q[:, j] = v / nrm
    return q, r


def mgs(a: np.ndarray, reorthogonalize: bool = False
        ) -> Tuple[np.ndarray, np.ndarray]:
    """Modified Gram-Schmidt QR of a tall-skinny matrix ``A = QR``.

    The row-oriented ("right-looking") formulation: as soon as a column
    is normalized, its component is removed from every remaining
    column.  Numerically superior to CGS (loss of orthogonality is
    ``O(eps kappa)`` instead of ``O(eps kappa^2)``) but built from
    BLAS-1 operations — the slowest curve in the paper's Figure 7.
    """
    a = as_2d_float(a, "a")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"mgs needs m >= n, got {a.shape}")
    q = a.astype(np.float64, copy=True)
    r = np.zeros((n, n))
    eps = np.finfo(np.float64).eps
    if not reorthogonalize:
        for j in range(n):
            orig = float(hostmath.norm(q[:, j]))
            for i in range(j):
                rij = float(q[:, i] @ q[:, j])
                q[:, j] -= rij * q[:, i]
                r[i, j] += rij
            nrm = float(hostmath.norm(q[:, j]))
            if nrm <= 100.0 * eps * orig or orig == 0.0:
                raise ShapeError(f"column {j} is numerically dependent; "
                                 "MGS cannot proceed")
            r[j, j] = nrm
            q[:, j] /= nrm
        return q, r
    # MGS2: run plain MGS twice and combine the triangular factors.
    q1, r1 = mgs(a, reorthogonalize=False)
    q2, r2 = mgs(q1, reorthogonalize=False)
    return q2, r2 @ r1


def block_orth_columns(q_prev: Optional[np.ndarray], v: np.ndarray,
                       reorthogonalize: bool = True
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Block-orthogonalize the columns of ``V`` against ``Q_prev``
    (``BOrth`` of Figure 2a, column form).

    Computes ``V <- V - Q_prev (Q_prev^T V)`` with an optional second
    pass.  The ``m x j`` matrix ``Q_prev`` must have orthonormal
    columns; pass ``None`` (or an empty matrix) when there is no
    previous basis, in which case ``V`` is returned unchanged.

    Returns
    -------
    (V_orth, C):
        The orthogonalized block and the accumulated coefficient matrix
        ``C = Q_prev^T V`` (sum of both passes), so that
        ``V = Q_prev C + V_orth``.
    """
    v = as_2d_float(v, "v")
    if q_prev is None or q_prev.size == 0:
        return v.copy(), np.zeros((0, v.shape[1]))
    q_prev = as_2d_float(q_prev, "q_prev")
    if q_prev.shape[0] != v.shape[0]:
        raise ShapeError(
            f"row mismatch: q_prev {q_prev.shape} vs v {v.shape}")
    c = q_prev.T @ v
    w = v - q_prev @ c
    if reorthogonalize:
        c2 = q_prev.T @ w
        w -= q_prev @ c2
        c += c2
    return w, c


def block_orth_rows(q_prev: Optional[np.ndarray], v: np.ndarray,
                    reorthogonalize: bool = True
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Row version of ``BOrth`` for the short-wide sampled matrices.

    Orthogonalizes the **rows** of ``V`` (``lv x n``) against the
    orthonormal rows of ``Q_prev`` (``lp x n``):
    ``V <- V - (V Q_prev^T) Q_prev``.

    Returns ``(V_orth, C)`` with ``C = V Q_prev^T`` so that
    ``V = C Q_prev + V_orth``.
    """
    v = as_2d_float(v, "v")
    if q_prev is None or q_prev.size == 0:
        return v.copy(), np.zeros((v.shape[0], 0))
    q_prev = as_2d_float(q_prev, "q_prev")
    if q_prev.shape[1] != v.shape[1]:
        raise ShapeError(
            f"column mismatch: q_prev {q_prev.shape} vs v {v.shape}")
    c = v @ q_prev.T
    w = v - c @ q_prev
    if reorthogonalize:
        c2 = w @ q_prev.T
        w -= c2 @ q_prev
        c += c2
    return w, c


def block_orth_rows_mixed(q_prev: Optional[np.ndarray], v: np.ndarray,
                          fast_dtype=np.float32
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Mixed-precision ``BOrth`` (Yamazaki et al., the paper's
    reference [21] / Section 11's "mixed-precision block Gram Schmidt").

    The first (bulk) projection's coefficient GEMM runs in the fast
    precision — on the GPU that halves its cost — and a full
    double-precision corrective pass restores the orthogonality to
    working accuracy (the "twice is enough" structure absorbs the
    fast-precision error exactly like it absorbs round-off).

    Same contract as :func:`block_orth_rows`: returns ``(V_orth, C)``
    with ``V = C Q_prev + V_orth`` and ``V_orth Q_prev^T ~ 0`` at
    float64 level (for inputs with moderate coefficient growth).
    """
    v = as_2d_float(v, "v")
    if q_prev is None or q_prev.size == 0:
        return v.copy(), np.zeros((v.shape[0], 0))
    q_prev = as_2d_float(q_prev, "q_prev")
    if q_prev.shape[1] != v.shape[1]:
        raise ShapeError(
            f"column mismatch: q_prev {q_prev.shape} vs v {v.shape}")
    # Fast-precision bulk projection...
    c = (v.astype(fast_dtype) @ q_prev.astype(fast_dtype).T
         ).astype(np.float64)
    w = v - c @ q_prev
    # ... and a double-precision corrective pass.
    c2 = w @ q_prev.T
    w -= c2 @ q_prev
    return w, c + c2

"""Communication-avoiding QP3 (CARRQR) with tournament pivoting.

The paper's Figure 5 includes the cost row for the
communication-avoiding rank-revealing QR of Demmel, Grigori, Gu &
Xiang (its reference [4]) and the conclusion plans a comparison against
it.  This module implements the truncated variant:

Per panel of width ``b``:

1. **Tournament pivoting** selects the panel's ``b`` pivot columns
   with a reduction tree instead of ``b`` global synchronizations:
   column blocks of width ``2b`` each nominate ``b`` candidates via a
   *local* QRCP; winners are merged pairwise and re-selected up a
   binary tree.  Only ``O(log(n/b))`` tree levels of small QRCPs touch
   more than one block — the communication-avoiding trick.
2. The winning columns are swapped to the front and the panel is
   factored with plain (unpivoted) Householder QR; the trailing matrix
   gets one compact-WY BLAS-3 update.

The pivot sequence is generally *different* from QP3's, but the
rank-revealing quality is provably within a polynomial factor and in
practice nearly identical (asserted in the tests/benches).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import QRCPConfig
from ..errors import ShapeError
from .householder import _expand_v, _larft, householder_vector
from .qrcp import QRCPResult, _materialize_q, qrcp_column
from .utils import as_2d_float

__all__ = ["tournament_pivots", "caqp3"]


def _local_candidates(block: np.ndarray, b: int) -> np.ndarray:
    """Indices (within ``block``) of the first ``b`` QRCP pivots."""
    b = min(b, block.shape[1], block.shape[0])
    res = qrcp_column(block, k=b)
    return res.perm[:b]


def tournament_pivots(a: np.ndarray, b: int) -> np.ndarray:
    """Select ``b`` pivot columns of ``a`` by tournament (one
    reduction tree of local QRCPs).

    Returns the winning column indices of ``a``, ordered by the final
    round's QRCP pivot order (most important first).
    """
    a = as_2d_float(a, "a")
    m, n = a.shape
    b = min(b, n, m)
    if b <= 0:
        raise ShapeError("tournament needs b >= 1")
    # Leaves: blocks of width 2b nominate b candidates each.
    width = max(2 * b, 1)
    groups: List[np.ndarray] = []
    for j0 in range(0, n, width):
        cols = np.arange(j0, min(j0 + width, n))
        local = _local_candidates(a[:, cols], b)
        groups.append(cols[local])
    # Reduction tree: merge pairs, re-select b.
    while len(groups) > 1:
        merged: List[np.ndarray] = []
        for i in range(0, len(groups) - 1, 2):
            cols = np.concatenate([groups[i], groups[i + 1]])
            local = _local_candidates(a[:, cols], b)
            merged.append(cols[local])
        if len(groups) % 2 == 1:
            merged.append(groups[-1])
        groups = merged
    winners = groups[0]
    if winners.shape[0] > b:
        local = _local_candidates(a[:, winners], b)
        winners = winners[local]
    return winners


def caqp3(a: np.ndarray, k: Optional[int] = None,
          config: Optional[QRCPConfig] = None) -> QRCPResult:
    """Truncated communication-avoiding QRCP.

    Same contract as :func:`repro.qr.qrcp.qp3_blocked` (``A P ~= Q R``
    with ``k`` factored columns); the pivots come from per-panel
    tournaments instead of per-column global norm searches.
    """
    cfg = config or QRCPConfig()
    a = as_2d_float(a, "a")
    m, n = a.shape
    kmax = min(m, n)
    if k is None:
        k = cfg.truncate if cfg.truncate is not None else kmax
    k = min(k, kmax)

    work = a.astype(np.float64, copy=True)
    perm = np.arange(n)
    taus = np.zeros(k)

    j0 = 0
    while j0 < k:
        bw = min(cfg.block_size, k - j0)
        # --- tournament on the trailing matrix -------------------------
        winners = tournament_pivots(work[j0:, j0:], bw)
        # Bring the winners (in tournament order) to the front.  Each
        # swap can displace a later winner, so track their current
        # locations as we go.
        locations = [int(w) + j0 for w in winners]
        for t_idx in range(bw):
            t = j0 + t_idx
            src = locations[t_idx]
            if src != t:
                work[:, [t, src]] = work[:, [src, t]]
                perm[[t, src]] = perm[[src, t]]
                for u in range(t_idx + 1, bw):
                    if locations[u] == t:
                        locations[u] = src
        # --- unpivoted panel factorization ------------------------------
        for j in range(j0, j0 + bw):
            v, tau, beta = householder_vector(work[j:, j])
            taus[j] = tau
            work[j, j] = beta
            work[j + 1:, j] = v[1:]
            if tau != 0.0 and j + 1 < j0 + bw:
                panel = work[j:, j + 1: j0 + bw]
                w = tau * (v @ panel)
                panel -= np.outer(v, w)
        # --- BLAS-3 trailing update -------------------------------------
        j1 = j0 + bw
        if j1 < n:
            vblk = _expand_v(work[j0:, j0:j1], bw)
            tblk = _larft(vblk, taus[j0:j1])
            c = work[j0:, j1:]
            wy = vblk.T @ c
            wy = tblk.T @ wy
            c -= vblk @ wy
        j0 = j1

    q = _materialize_q(work, taus, m, k)
    r = np.triu(work[:k, :])
    return QRCPResult(q=q, r=r, perm=perm, k=k)

"""TSQR — communication-avoiding tall-skinny QR (extension).

The paper's conclusion lists Communication-Avoiding QR (Demmel,
Grigori, Hoemmen & Langou [5]) as the orthogonalization scheme being
studied to replace CholQR for ill-conditioned inputs.  TSQR factors a
tall-skinny ``m x n`` matrix on a binary reduction tree: each leaf
factors its row block locally, pairs of ``R`` factors are stacked and
re-factored up the tree, and the tree of small Q factors is unrolled to
form the global ``Q``.  Unlike CholQR it is unconditionally stable
(it is a reorganized Householder QR); unlike HHQR its critical path
holds ``log2(P)`` small factorizations instead of ``n`` global
synchronizations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from .householder import householder_qr
from .utils import as_2d_float

__all__ = ["tsqr"]


def _local_qr(block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Economy QR of one block via our Householder kernel."""
    f = householder_qr(block)
    kk = min(block.shape)
    return f.q(), f.r()[:kk, :]


def _split_rows(m: int, parts: int) -> List[slice]:
    """Split ``m`` rows into ``parts`` nearly equal contiguous slices."""
    bounds = np.linspace(0, m, parts + 1).astype(int)
    return [slice(int(bounds[i]), int(bounds[i + 1]))
            for i in range(parts) if bounds[i + 1] > bounds[i]]


def tsqr(a: np.ndarray, leaf_count: Optional[int] = None
         ) -> Tuple[np.ndarray, np.ndarray]:
    """Communication-avoiding QR of a tall-skinny matrix ``A = QR``.

    Parameters
    ----------
    a:
        ``m x n`` with ``m >= n``.
    leaf_count:
        Number of leaf row-blocks (the virtual processor count).
        Defaults to ``max(1, m // (4 n))`` rounded down to a power of
        two so the reduction tree is complete.  Each leaf must have at
        least ``n`` rows.

    Returns
    -------
    (Q, R):
        ``Q`` is ``m x n`` with orthonormal columns and ``R`` is
        ``n x n`` upper triangular.
    """
    a = as_2d_float(a, "a")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"tsqr needs m >= n, got {a.shape}")
    if leaf_count is None:
        leaf_count = max(1, m // max(1, 4 * n))
        # Round down to a power of two for a complete tree.
        leaf_count = 1 << max(0, leaf_count.bit_length() - 1)
    leaf_count = max(1, min(leaf_count, m // max(1, n)))
    if leaf_count <= 1:
        return _local_qr(a)

    slices = _split_rows(m, leaf_count)
    # --- leaf factorizations -------------------------------------------
    qs: List[np.ndarray] = []
    rs: List[np.ndarray] = []
    for sl in slices:
        q, r = _local_qr(a[sl, :])
        qs.append(q)
        rs.append(r)

    # --- reduction tree: pairwise stack-and-refactor --------------------
    # levels[d] holds, for every node at depth d, the small Q factor
    # (2n x n, or n x n for an odd carry) used when unrolling.
    tree_qs: List[List[Optional[np.ndarray]]] = []
    current = rs
    while len(current) > 1:
        next_rs: List[np.ndarray] = []
        level: List[Optional[np.ndarray]] = []
        for i in range(0, len(current) - 1, 2):
            stacked = np.vstack([current[i], current[i + 1]])
            q, r = _local_qr(stacked)
            level.append(q)
            next_rs.append(r)
        if len(current) % 2 == 1:
            level.append(None)  # odd node carried up unchanged
            next_rs.append(current[-1])
        tree_qs.append(level)
        current = next_rs
    r_final = current[0]

    # --- unroll the tree: propagate the top Q back to the leaves --------
    # At the top the implicit Q factor is the identity (n x n).
    factors: List[np.ndarray] = [np.eye(n)]
    for level in reversed(tree_qs):
        new_factors: List[np.ndarray] = []
        fi = 0
        for node_q in level:
            top = factors[fi]
            fi += 1
            if node_q is None:
                new_factors.append(top)
                continue
            prod = node_q @ top  # (rows_of_node x n)
            half = node_q.shape[0] // 2
            new_factors.append(prod[:half, :])
            new_factors.append(prod[half:, :])
        factors = new_factors

    q_full = np.empty((m, n))
    for sl, qleaf, fac in zip(slices, qs, factors):
        q_full[sl, :] = qleaf @ fac
    return q_full, r_final

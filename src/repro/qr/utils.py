"""Shared helpers for the QR kernels: triangular solves, orthogonality
checks, and small shape utilities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backends import hostmath, resolve_backend
from ..backends.base import ComputeBackend
from ..errors import ShapeError

__all__ = [
    "orthogonality_defect",
    "is_orthonormal_columns",
    "is_orthonormal_rows",
    "triu_from",
    "solve_upper_triangular",
    "solve_lower_triangular",
    "as_2d_float",
    "ensure_all_finite",
]


def ensure_all_finite(a, name: str = "a") -> None:
    """Raise :class:`repro.errors.ShapeError` if ``a`` contains NaN or
    infinity.

    NaNs poison GEMMs silently and infinities break the Cholesky-based
    kernels with obscure errors, so the public entry points check up
    front (disable via their ``check_finite=False`` for hot paths, as
    in SciPy).  Symbolic arrays are skipped (no data to check).
    """
    if not isinstance(a, np.ndarray):
        return
    if not np.all(np.isfinite(a)):
        raise ShapeError(f"{name} contains NaN or infinite entries")


def as_2d_float(a: np.ndarray, name: str = "a") -> np.ndarray:
    """Validate that ``a`` is a 2-D real floating array; upcast ints."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={a.ndim}")
    if not np.issubdtype(a.dtype, np.floating):
        a = a.astype(np.float64)
    return a


def orthogonality_defect(q: np.ndarray, rows: bool = False) -> float:
    """``||I - Q^T Q||_F`` (or ``||I - Q Q^T||_F`` when ``rows``).

    Zero for an exactly orthonormal frame; the paper's CholQR with one
    reorthogonalization keeps this at the 1e-14 level for its matrices.
    """
    q = as_2d_float(q, "q")
    g = q @ q.T if rows else q.T @ q
    k = g.shape[0]
    return float(hostmath.norm(g - np.eye(k), ord="fro"))


def is_orthonormal_columns(q: np.ndarray, tol: float = 1e-10) -> bool:
    """True when the columns of ``q`` are orthonormal to tolerance ``tol``."""
    return orthogonality_defect(q, rows=False) <= tol * max(1, q.shape[1])


def is_orthonormal_rows(q: np.ndarray, tol: float = 1e-10) -> bool:
    """True when the rows of ``q`` are orthonormal to tolerance ``tol``."""
    return orthogonality_defect(q, rows=True) <= tol * max(1, q.shape[0])


def triu_from(a: np.ndarray, k: int = 0) -> np.ndarray:
    """Copy of the upper-triangular part of ``a`` (from diagonal ``k``)."""
    return np.triu(as_2d_float(a), k=k)


def solve_upper_triangular(r: np.ndarray, b: np.ndarray,
                           trans: bool = False,
                           backend: Optional[ComputeBackend] = None
                           ) -> np.ndarray:
    """Solve ``R x = b`` (or ``R^T x = b``) for upper-triangular ``R``.

    The TRSM runs on ``backend`` (the session default when ``None``);
    raises :class:`repro.errors.ShapeError` on non-square ``R``.
    """
    r = as_2d_float(r, "r")
    if r.shape[0] != r.shape[1]:
        raise ShapeError(f"R must be square, got {r.shape}")
    return resolve_backend(backend).solve_triangular(
        r, b, lower=False, trans="T" if trans else "N")


def solve_lower_triangular(l: np.ndarray, b: np.ndarray,
                           trans: bool = False,
                           backend: Optional[ComputeBackend] = None
                           ) -> np.ndarray:
    """Solve ``L x = b`` (or ``L^T x = b``) for lower-triangular ``L``."""
    l = as_2d_float(l, "l")
    if l.shape[0] != l.shape[1]:
        raise ShapeError(f"L must be square, got {l.shape}")
    return resolve_backend(backend).solve_triangular(
        l, b, lower=True, trans="T" if trans else "N")

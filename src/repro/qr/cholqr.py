"""Cholesky QR (CholQR) — the paper's workhorse orthogonalization.

CholQR computes the QR factorization of a tall-skinny matrix ``B`` in
three BLAS-3 steps (Section 4):

(i)   form the Gram matrix ``G = B^T B`` (SYRK),
(ii)  Cholesky-factor ``G = R^T R`` (POTRF),
(iii) triangular-solve ``Q = B R^{-1}`` (TRSM).

The paper uses the adaptation to the *LQ* factorization of the
short-wide sampled matrices ``B`` (``l x n``) and ``C`` (``l x m``):
``G = B B^T``, ``R^T R = G``, ``Q = R^{-T} B`` so the **rows** of ``Q``
are orthonormal and ``B = R^T Q``.

Because ``kappa(G) = kappa(B)^2``, plain CholQR loses orthogonality for
ill-conditioned inputs; the paper stabilizes it with one full
reorthogonalization (CholQR2: :func:`cholqr2_rows`), which is what the
experiments in Sections 6-10 use.  We additionally provide:

- a shifted retry (add ``s*I`` to the Gram matrix when POTRF breaks
  down, then reorthogonalize), used as a last-resort fallback;
- a Householder fallback for a genuinely rank-deficient block;
- a mixed-precision variant (Gram matrix accumulated in extended
  precision is not available in NumPy, so we expose the paper's other
  direction — ref [23] — of a *lower*-precision Gram with a corrective
  reorthogonalization) for the performance/stability trade-off study.
"""

from __future__ import annotations

from typing import Literal, Optional, Tuple

import numpy as np

from ..analysis.annotations import shaped
from ..backends import resolve_backend
from ..backends.base import ComputeBackend
from ..errors import CholeskyBreakdownError, ShapeError
from .utils import as_2d_float

__all__ = [
    "cholqr_columns",
    "cholqr_rows",
    "cholqr2_columns",
    "cholqr2_rows",
    "mixed_precision_cholqr_rows",
]

Fallback = Literal["raise", "shift", "householder"]

BackendSpec = Optional[ComputeBackend]


def _shifted_chol_upper(g: np.ndarray,
                        backend: ComputeBackend) -> np.ndarray:
    """Cholesky with an escalating diagonal shift.

    The shift follows Fukaya et al.'s shifted-CholQR recipe: start at
    ``11 (m eps) ||G||_2``-scale and grow by 10x until POTRF succeeds.
    The resulting Q is only approximately orthogonal and *must* be
    reorthogonalized by the caller.
    """
    norm = backend.norm(g, ord=2)
    if norm == 0.0:
        raise CholeskyBreakdownError("Gram matrix is zero")
    eps = np.finfo(g.dtype).eps
    shift = 11.0 * g.shape[0] * eps * norm
    eye = np.eye(g.shape[0], dtype=g.dtype)
    for _ in range(30):
        try:
            return backend.cholesky(g + shift * eye)
        except CholeskyBreakdownError:
            shift *= 10.0
    raise CholeskyBreakdownError(
        "shifted Cholesky failed even with a large shift")


@shaped(params={"b": ("m", "k")})
def cholqr_columns(b: np.ndarray, fallback: Fallback = "raise",
                   backend: BackendSpec = None
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """CholQR of a tall-skinny matrix: ``B = Q R`` with orthonormal
    columns of ``Q``.

    Parameters
    ----------
    b:
        ``m x k`` input with ``m >= k``.
    fallback:
        What to do if the Gram matrix is not numerically SPD:
        ``"raise"`` (default, raises
        :class:`repro.errors.CholeskyBreakdownError`), ``"shift"``
        (shifted Cholesky followed by one reorthogonalization), or
        ``"householder"`` (defer to the unconditionally stable HHQR).
    backend:
        A :class:`repro.backends.base.ComputeBackend` (or ``None`` for
        the session default) that runs the SYRK/POTRF/TRSM kernels.

    Returns
    -------
    (Q, R):
        ``Q`` is ``m x k`` column-orthonormal, ``R`` is ``k x k`` upper
        triangular with ``B = Q R``.
    """
    b = as_2d_float(b, "b")
    bk = resolve_backend(backend)
    m, k = b.shape
    if m < k:
        raise ShapeError(f"cholqr_columns needs m >= k, got {b.shape}; "
                         "use cholqr_rows for short-wide inputs")
    g = bk.gemm(b.T, b)
    try:
        r = bk.cholesky(g)
    except CholeskyBreakdownError:
        if fallback == "raise":
            raise
        if fallback == "householder":
            from .householder import householder_qr
            f = householder_qr(b)
            return f.q(), f.r()
        r1 = _shifted_chol_upper(g, bk)
        q1 = bk.solve_triangular(r1, b.T, lower=False, trans="T").T
        # The cleanup pass can itself break down for severely deficient
        # input; terminate in the unconditionally stable HHQR.
        q2, r2 = cholqr_columns(q1, fallback="householder", backend=bk)
        return q2, bk.gemm(r2, r1)
    q = bk.solve_triangular(r, b.T, lower=False, trans="T").T
    return q, r


@shaped(params={"b": ("l", "n")})
def cholqr_rows(b: np.ndarray, fallback: Fallback = "raise",
                backend: BackendSpec = None
                ) -> Tuple[np.ndarray, np.ndarray]:
    """CholQR adapted to short-wide matrices (the paper's footnote 3).

    Factors ``B = R^T Q`` where ``B`` is ``l x n`` with ``l <= n``,
    ``Q`` is ``l x n`` with orthonormal **rows**, and ``R`` is ``l x l``
    upper triangular.

    Steps (Figure 4): ``G = B B^T`` (block dot-products), ``R^T R = G``
    (Cholesky), ``Q = R^{-T} B`` (triangular solve).
    """
    b = as_2d_float(b, "b")
    bk = resolve_backend(backend)
    l, n = b.shape
    if l > n:
        raise ShapeError(f"cholqr_rows needs l <= n, got {b.shape}; "
                         "use cholqr_columns for tall-skinny inputs")
    g = bk.gemm(b, b.T)
    try:
        r = bk.cholesky(g)
    except CholeskyBreakdownError:
        if fallback == "raise":
            raise
        if fallback == "householder":
            from .householder import householder_qr
            # b^T = Q_c R_c  =>  b = R_c^T Q_c^T: the LQ convention's R
            # is R_c itself (upper triangular), Q the transposed Q_c.
            f = householder_qr(b.T)
            return f.q().T, f.r()[:, :l].copy()
        r1 = _shifted_chol_upper(g, bk)
        q1 = bk.solve_triangular(r1, b, lower=False, trans="T")
        q2, r2 = cholqr_rows(q1, fallback="householder", backend=bk)
        # B = r1^T q1 and q1 = r2^T q2  =>  B = (r2 r1)^T q2.
        return q2, bk.gemm(r2, r1)
    q = bk.solve_triangular(r, b, lower=False, trans="T")
    return q, r


def cholqr2_columns(b: np.ndarray, fallback: Fallback = "shift",
                    backend: BackendSpec = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """CholQR with one full reorthogonalization (tall-skinny columns).

    This is the stabilization the paper applies throughout its
    experiments ("we orthogonalized both sampled matrices using CholQR
    with one full reorthogonalization", Section 6).  Orthogonality of
    the result is ``O(eps)`` whenever ``kappa(B) <~ eps^{-1/2}``.
    """
    bk = resolve_backend(backend)
    q1, r1 = cholqr_columns(b, fallback=fallback, backend=bk)
    q2, r2 = cholqr_columns(q1, fallback=fallback, backend=bk)
    return q2, bk.gemm(r2, r1)


@shaped(params={"b": ("l", "n")})
def cholqr2_rows(b: np.ndarray, fallback: Fallback = "shift",
                 backend: BackendSpec = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """CholQR2 for short-wide rows: ``B = R^T Q``, two CholQR passes."""
    bk = resolve_backend(backend)
    q1, r1 = cholqr_rows(b, fallback=fallback, backend=bk)
    q2, r2 = cholqr_rows(q1, fallback=fallback, backend=bk)
    # B = r1^T q1, q1 = r2^T q2  =>  B = (r2 r1)^T q2.
    return q2, bk.gemm(r2, r1)


def mixed_precision_cholqr_rows(b: np.ndarray,
                                gram_dtype=np.float32,
                                backend: BackendSpec = None
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Mixed-precision CholQR (short-wide rows), after Yamazaki et al.
    [23].

    The Gram matrix and its Cholesky factor are computed in a lower
    working precision (``gram_dtype``, default float32 — standing in
    for the paper's fast-precision path on the GPU), the triangular
    solve is applied in float64, and one full float64 CholQR pass
    restores orthogonality.  The final ``R`` combines both passes, so
    ``B ~= R^T Q`` holds to float64 accuracy while most Gram flops ran
    in the fast precision.
    """
    b = as_2d_float(b, "b")
    bk = resolve_backend(backend)
    l, n = b.shape
    if l > n:
        raise ShapeError(f"mixed_precision_cholqr_rows needs l <= n, "
                         f"got {b.shape}")
    # The fast-precision Gram stays a host product on purpose: the
    # backend contract is float64 and must not silently upcast it.
    g32 = (b.astype(gram_dtype) @ b.astype(gram_dtype).T)
    g = g32.astype(np.float64)
    # Low precision makes breakdown more likely; always be ready to shift.
    try:
        r1 = bk.cholesky(g)
    except CholeskyBreakdownError:
        r1 = _shifted_chol_upper(g, bk)
    q1 = bk.solve_triangular(r1, b, lower=False, trans="T")
    q2, r2 = cholqr_rows(q1, fallback="shift", backend=bk)
    return q2, bk.gemm(r2, r1)

"""QR with column pivoting: the deterministic baseline (Section 2).

Two implementations are provided, mirroring the paper's discussion:

- :func:`qrcp_column` — the column-based algorithm (Businger-Golub
  [3]): at each step pick the remaining column with the largest norm,
  reduce it with a Householder reflector, and update every remaining
  column with BLAS-2 operations.
- :func:`qp3_blocked` — the blocked BLAS-3 algorithm of
  Quintana-Orti, Sun & Bischof [17] as implemented in LAPACK's
  ``dgeqp3``/``dlaqps``: the panel is factored with pivoting while the
  trailing submatrix is updated *lazily* through an auxiliary matrix
  ``F`` (only the pivot row is kept current, so norms can be
  downdated), then the trailing submatrix gets one BLAS-3 update
  ``A <- A - V F^T`` per panel.  When round-off makes a downdated norm
  untrustworthy the panel is cut short and the affected norms are
  recomputed — the safeguard whose cost the paper highlights
  (Section 2).

Both support **truncation** after ``k`` columns — the paper's truncated
QP3 that extracts a rank-``k`` approximation directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import QRCPConfig
from ..backends import hostmath
from ..errors import ShapeError
from .householder import householder_vector
from .utils import as_2d_float

__all__ = ["QRCPResult", "qrcp_column", "qp3_blocked", "qrcp"]


@dataclass
class QRCPResult:
    """Result of a (possibly truncated) QRCP factorization ``A P = Q R``.

    Attributes
    ----------
    q:
        ``m x k`` matrix with orthonormal columns.
    r:
        ``k x n`` upper-trapezoidal factor (in the *permuted* column
        order).
    perm:
        Length-``n`` permutation such that ``A[:, perm] ~= Q R``.
    k:
        Number of factored columns (the truncation rank).
    norm_recomputations:
        How many times trailing column norms had to be recomputed from
        scratch (the QP3 safeguard; 0 for well-behaved inputs).
    """

    q: np.ndarray
    r: np.ndarray
    perm: np.ndarray
    k: int
    norm_recomputations: int = 0

    def residual(self, a: np.ndarray, relative: bool = True) -> float:
        """``||A P - Q R|| / ||A||`` (spectral norm), the paper's Fig. 6
        error measure."""
        ap = a[:, self.perm]
        err = hostmath.norm2(ap - self.q @ self.r)
        if relative:
            na = hostmath.norm2(a)
            return err / na if na > 0 else err
        return err

    def approximation(self) -> np.ndarray:
        """Reconstruct the rank-``k`` approximation of ``A`` (original
        column order)."""
        out = np.empty_like(self.q @ self.r)
        out[:, self.perm] = self.q @ self.r
        return out


def _materialize_q(store: np.ndarray, taus: np.ndarray, m: int, k: int
                   ) -> np.ndarray:
    """Form the economy ``m x k`` Q from packed reflectors (``dorgqr``)."""
    q = np.zeros((m, k))
    np.fill_diagonal(q, 1.0)
    for j in range(k - 1, -1, -1):
        tau = taus[j]
        if tau == 0.0:
            continue
        v = np.empty(m - j)
        v[0] = 1.0
        v[1:] = store[j + 1:, j]
        block = q[j:, :]
        w = tau * (v @ block)
        block -= np.outer(v, w)
    return q


def qrcp_column(a: np.ndarray, k: Optional[int] = None) -> QRCPResult:
    """Column-based QRCP (BLAS-2 reference implementation).

    At step ``j`` the remaining column with the largest 2-norm is
    swapped into position ``j`` and annihilated below the diagonal.
    Norms are fully recomputed every step, so this variant is slow but
    maximally robust; it is the oracle the blocked algorithm is tested
    against.
    """
    a = as_2d_float(a, "a")
    m, n = a.shape
    kmax = min(m, n)
    k = kmax if k is None else min(k, kmax)
    work = a.astype(np.float64, copy=True)
    perm = np.arange(n)
    taus = np.zeros(k)

    for j in range(k):
        norms = hostmath.column_norms(work[j:, j:])
        pj = j + int(np.argmax(norms))
        if pj != j:
            work[:, [j, pj]] = work[:, [pj, j]]
            perm[[j, pj]] = perm[[pj, j]]
        v, tau, beta = householder_vector(work[j:, j])
        taus[j] = tau
        work[j, j] = beta
        work[j + 1:, j] = v[1:]
        if tau != 0.0 and j + 1 < n:
            trail = work[j:, j + 1:]
            w = tau * (v @ trail)
            trail -= np.outer(v, w)

    q = _materialize_q(work, taus, m, k)
    r = np.triu(work[:k, :])
    return QRCPResult(q=q, r=r, perm=perm, k=k)


def qp3_blocked(a: np.ndarray, k: Optional[int] = None,
                config: Optional[QRCPConfig] = None,
                tolerance: Optional[float] = None) -> QRCPResult:
    """Blocked QP3 with column-norm downdating (``dgeqp3`` structure).

    See the module docstring for the algorithm.  Returns the same
    factorization contract as :func:`qrcp_column`; the two agree on the
    pivot sequence whenever no norm ties are broken differently by
    round-off.

    ``tolerance`` switches to the **fixed-accuracy** problem (the
    deterministic counterpart of the paper's adaptive-``l`` scheme):
    factorization stops at the first panel boundary where the largest
    remaining column norm drops to ``tolerance * max_initial_norm`` —
    that norm bounds the rank-revealed residual.  The effective rank is
    the returned ``QRCPResult.k``.
    """
    cfg = config or QRCPConfig()
    a = as_2d_float(a, "a")
    m, n = a.shape
    kmax = min(m, n)
    if k is None:
        k = cfg.truncate if cfg.truncate is not None else kmax
    k = min(k, kmax)
    if tolerance is not None and tolerance <= 0:
        raise ShapeError(f"tolerance must be positive, got {tolerance}")

    work = a.astype(np.float64, copy=True)
    perm = np.arange(n)
    taus = np.zeros(k)
    tol3z = np.sqrt(np.finfo(np.float64).eps)

    # Downdated (vn1) and reference (vn2) column norms, LAPACK naming.
    vn1 = hostmath.column_norms(work)
    vn2 = vn1.copy()
    recomputations = 0
    stop_norm = (tolerance * float(vn1.max()) if tolerance is not None
                 else None)

    j0 = 0
    while j0 < k:
        if stop_norm is not None and j0 < n \
                and float(vn1[j0:].max(initial=0.0)) <= stop_norm:
            k = j0
            break
        nb = min(cfg.block_size, k - j0)
        # F accumulates the lazy trailing update: row i of F corresponds
        # to global column j0 + i, and after the panel the trailing
        # submatrix is updated as A <- A - V F^T.
        f = np.zeros((n - j0, nb))
        kb = 0
        cancelled = False
        for kk in range(nb):
            j = j0 + kk  # global pivot column == pivot row
            # --- pivot selection from downdated norms ------------------
            pj = j + int(np.argmax(vn1[j:]))
            if pj != j:
                work[:, [j, pj]] = work[:, [pj, j]]
                perm[[j, pj]] = perm[[pj, j]]
                vn1[[j, pj]] = vn1[[pj, j]]
                vn2[[j, pj]] = vn2[[pj, j]]
                f[[j - j0, pj - j0], :] = f[[pj - j0, j - j0], :]
            # --- apply pending panel reflectors to column j ------------
            # Rows j: of panel columns j0..j-1 are strictly below their
            # diagonals, so `work` holds pure reflector entries there.
            if kk > 0:
                work[j:, j] -= work[j:, j0:j] @ f[j - j0, :kk]
            # --- generate reflector ------------------------------------
            v, tau, beta = householder_vector(work[j:, j])
            taus[j] = tau
            work[j, j] = beta
            work[j + 1:, j] = v[1:]
            kb = kk + 1
            # --- accumulate F column kk --------------------------------
            if j + 1 < n:
                f[(j + 1 - j0):, kk] = tau * (work[j:, j + 1:].T @ v)
            f[: (j + 1 - j0), kk] = 0.0
            if kk > 0:
                vtv = work[j:, j0:j].T @ v
                f[:, kk] -= tau * (f[:, :kk] @ vtv)
            # --- bring the pivot row current, downdate norms -----------
            if j + 1 < n:
                vrow = np.empty(kk + 1)
                vrow[:kk] = work[j, j0:j]
                vrow[kk] = 1.0
                work[j, j + 1:] -= vrow @ f[(j + 1 - j0):, : kk + 1].T
                idx = np.arange(j + 1, n)
                nz = vn1[idx] > 0.0
                temp = np.zeros(idx.size)
                ratio = np.zeros(idx.size)
                ratio[nz] = np.abs(work[j, idx[nz]]) / vn1[idx[nz]]
                temp[nz] = np.maximum(0.0,
                                      (1.0 + ratio[nz]) * (1.0 - ratio[nz]))
                with np.errstate(divide="ignore", invalid="ignore"):
                    ref = np.where(vn2[idx] > 0.0, vn1[idx] / vn2[idx], 0.0)
                temp2 = temp * ref * ref
                bad = (temp2 <= tol3z) & nz
                vn1[idx] = vn1[idx] * np.sqrt(temp)
                if np.any(bad):
                    cancelled = True
                    break
        # --- BLAS-3 trailing update below the factored panel rows ------
        jlast = j0 + kb
        if kb > 0 and jlast < n and jlast < m:
            # Rows j0..jlast-1 of the trailing columns are already
            # current (pivot-row updates); rows jlast: get the block
            # update.  V rows jlast: of panel columns are strictly below
            # the diagonal, stored directly in `work`.
            work[jlast:, jlast:] -= (work[jlast:, j0:jlast]
                                     @ f[(jlast - j0):, :kb].T)
        if cancelled and jlast < n:
            if jlast < m:
                vn1[jlast:] = hostmath.column_norms(work[jlast:, jlast:])
            else:
                vn1[jlast:] = 0.0
            vn2[jlast:] = vn1[jlast:]
            recomputations += 1
        j0 = jlast

    taus = taus[:k]
    q = _materialize_q(work, taus, m, k)
    r = np.triu(work[:k, :])
    return QRCPResult(q=q, r=r, perm=perm, k=k,
                      norm_recomputations=recomputations)


def qrcp(a: np.ndarray, k: Optional[int] = None,
         method: str = "blocked",
         config: Optional[QRCPConfig] = None) -> QRCPResult:
    """Dispatch to :func:`qp3_blocked` (default) or :func:`qrcp_column`.

    ``method`` is ``"blocked"`` or ``"column"``.
    """
    if method == "blocked":
        return qp3_blocked(a, k=k, config=config)
    if method == "column":
        return qrcp_column(a, k=k)
    raise ShapeError(f"unknown qrcp method {method!r}")

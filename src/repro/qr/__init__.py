"""Orthogonalization and rank-revealing factorization kernels.

Everything the paper's Section 2-4 relies on, implemented from scratch
on NumPy:

- :mod:`repro.qr.householder` — blocked Householder QR (HHQR) with the
  compact-WY representation.
- :mod:`repro.qr.cholqr` — Cholesky QR for tall-skinny columns and
  short-wide rows (the paper's main orthogonalization kernel), with
  full reorthogonalization (CholQR2), a shifted retry, and a
  mixed-precision variant.
- :mod:`repro.qr.gram_schmidt` — classical / modified Gram-Schmidt and
  the block orthogonalization ``BOrth`` used by the power iteration.
- :mod:`repro.qr.qrcp` — QR with column pivoting: the BLAS-2 column
  algorithm and the blocked QP3 with column-norm downdating.
- :mod:`repro.qr.tsqr` — communication-avoiding TSQR (extension).
"""

from .utils import (
    orthogonality_defect,
    is_orthonormal_columns,
    is_orthonormal_rows,
    triu_from,
    solve_upper_triangular,
    solve_lower_triangular,
)
from .householder import (
    householder_vector,
    householder_qr,
    apply_q,
    HouseholderFactors,
)
from .cholqr import (
    cholqr_columns,
    cholqr_rows,
    cholqr2_columns,
    cholqr2_rows,
    mixed_precision_cholqr_rows,
)
from .gram_schmidt import cgs, mgs, block_orth_columns, block_orth_rows
from .qrcp import qrcp_column, qp3_blocked, qrcp, QRCPResult
from .caqp3 import caqp3, tournament_pivots
from .tsqr import tsqr

__all__ = [
    "orthogonality_defect",
    "is_orthonormal_columns",
    "is_orthonormal_rows",
    "triu_from",
    "solve_upper_triangular",
    "solve_lower_triangular",
    "householder_vector",
    "householder_qr",
    "apply_q",
    "HouseholderFactors",
    "cholqr_columns",
    "cholqr_rows",
    "cholqr2_columns",
    "cholqr2_rows",
    "mixed_precision_cholqr_rows",
    "cgs",
    "mgs",
    "block_orth_columns",
    "block_orth_rows",
    "qrcp_column",
    "qp3_blocked",
    "qrcp",
    "QRCPResult",
    "caqp3",
    "tournament_pivots",
    "tsqr",
]

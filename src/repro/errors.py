"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to discriminate failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "NotOrthogonalError",
    "CholeskyBreakdownError",
    "ConvergenceError",
    "DeviceError",
    "OutOfDeviceMemoryError",
    "SymbolicExecutionError",
    "ConfigurationError",
    "StaticAnalysisError",
    "RaceError",
    "ServeError",
    "AdmissionError",
    "QueueFullError",
    "ServiceClosedError",
    "InvalidRequestError",
    "DeadlineExceededError",
    "RequestCancelledError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible or unsupported shape."""


class NotOrthogonalError(ReproError, ArithmeticError):
    """A factor expected to be orthonormal failed an orthogonality check."""


class CholeskyBreakdownError(ReproError, ArithmeticError):
    """Cholesky factorization of a Gram matrix failed.

    Raised by :func:`repro.qr.cholqr.cholqr` when the Gram matrix is not
    numerically positive definite.  Callers that want robustness should
    use ``cholqr(..., fallback="householder")`` or the shifted retry.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative scheme failed to reach its tolerance within budget.

    Carries the history of error estimates so the caller can inspect how
    far the scheme got before giving up.
    """

    def __init__(self, message: str, history=None):
        super().__init__(message)
        self.history = list(history) if history is not None else []


class DeviceError(ReproError, RuntimeError):
    """Generic failure inside the simulated GPU runtime."""


class OutOfDeviceMemoryError(DeviceError):
    """A simulated device allocation exceeded the configured memory size."""

    def __init__(self, requested: int, available: int, capacity: int):
        super().__init__(
            f"simulated device OOM: requested {requested} B, "
            f"available {available} B of {capacity} B"
        )
        self.requested = requested
        self.available = available
        self.capacity = capacity


class SymbolicExecutionError(DeviceError):
    """A value-producing operation was attempted on a shape-only array.

    Symbolic (dry-run) device arrays carry shapes and dtypes but no
    data; any kernel that must inspect actual values (e.g. a pivot
    search driven by data) raises this when executed symbolically.
    """


class RaceError(DeviceError):
    """The happens-before sanitizer found a data race in a stream schedule.

    Two submissions on different ``(device, stream)`` lanes access the
    same logical buffer, at least one of them writing, and no event
    edge (``deps=``/``after_all``/``barrier()``) orders them.  Carries
    the detected :class:`repro.analysis.races.Race` records so callers
    can render the full report.
    """

    def __init__(self, message: str, races=None):
        super().__init__(message)
        self.races = list(races) if races is not None else []


class ConfigurationError(ReproError, ValueError):
    """A configuration dataclass was constructed with invalid values."""


#: The closed set of admission/lifecycle rejection reasons the serving
#: layer reports (``repro.serve``); every :class:`ServeError` subclass
#: maps onto exactly one of these so service counters, result
#: artifacts, and tests share a single taxonomy.
REJECTION_REASONS = ("queue_full", "closed", "invalid", "deadline",
                     "cancelled")


class ServeError(ReproError, RuntimeError):
    """Base class for failures raised by the :mod:`repro.serve` layer.

    Every subclass carries a ``reason`` drawn from
    :data:`REJECTION_REASONS` plus the ``request_id`` it applies to
    (``None`` for service-wide conditions), so rejections stay
    machine-classifiable all the way into load-test reports.
    """

    reason = "invalid"

    def __init__(self, message: str, request_id=None):
        super().__init__(message)
        self.request_id = request_id


class AdmissionError(ServeError):
    """A request was rejected *at submission time* by the admission
    controller — it never entered the queue."""


class QueueFullError(AdmissionError):
    """Load shedding: the bounded request queue is at capacity."""

    reason = "queue_full"

    def __init__(self, depth: int, capacity: int, request_id=None):
        super().__init__(
            f"serve queue full: depth {depth} at capacity {capacity}",
            request_id=request_id)
        self.depth = depth
        self.capacity = capacity


class ServiceClosedError(AdmissionError):
    """The service is draining or stopped and accepts no new work."""

    reason = "closed"


class InvalidRequestError(AdmissionError, ValueError):
    """The request failed structural validation at admission."""

    reason = "invalid"


class DeadlineExceededError(ServeError):
    """A request's deadline expired while queued, inside the batch
    window, or before its batch was dispatched."""

    reason = "deadline"

    def __init__(self, message: str, request_id=None, waited_s=None):
        super().__init__(message, request_id=request_id)
        self.waited_s = waited_s


class RequestCancelledError(ServeError):
    """The client cancelled the request before a result was produced."""

    reason = "cancelled"


class StaticAnalysisError(ReproError, RuntimeError):
    """The :mod:`repro.analysis` checker could not complete a run.

    Raised for usage/configuration problems — unparseable source, an
    unknown rule id, a malformed baseline file — never for findings
    (findings are data, reported via
    :class:`repro.analysis.AnalysisFinding` and the exit-code
    contract: 0 clean, 1 findings, 2 this error).
    """

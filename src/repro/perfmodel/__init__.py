"""Analytic performance model of Section 5 (Figure 5) and the derived
Gflop/s estimates of Figure 10.
"""

from .costs import (
    CostModel,
    gaussian_sampling_cost,
    fft_sampling_cost,
    power_iteration_mult_cost,
    power_iteration_orth_cost,
    qrcp_sampled_cost,
    qr_selected_cost,
    random_sampling_total_cost,
    qp3_cost,
    caqp3_cost,
    multi_gpu_scaling,
)
from .estimate import (
    estimate_random_sampling_gflops,
    estimate_qp3_gflops,
    estimate_speedup,
    estimated_gflops_sweep,
)

__all__ = [
    "CostModel",
    "gaussian_sampling_cost",
    "fft_sampling_cost",
    "power_iteration_mult_cost",
    "power_iteration_orth_cost",
    "qrcp_sampled_cost",
    "qr_selected_cost",
    "random_sampling_total_cost",
    "qp3_cost",
    "caqp3_cost",
    "multi_gpu_scaling",
    "estimate_random_sampling_gflops",
    "estimate_qp3_gflops",
    "estimate_speedup",
    "estimated_gflops_sweep",
]

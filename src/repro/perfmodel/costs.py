"""Computation and communication costs of Figure 5.

Every entry of the paper's cost table is reproduced as a function
returning a :class:`CostModel` pair ``(flops, words)``, where ``words``
counts data moved between the two levels of the local memory hierarchy
with fast-memory size ``M`` (the red-blue pebble-game model [11]).

The leading-order expressions (Figure 5, for one GPU):

===================  ======================  ==========================
step                 #flops                  #words
===================  ======================  ==========================
Sampling (Gaussian)  O(l m n)                O(l m n / sqrt(M))
Sampling (FFT)       O(m n log m)            O(m n log m / log M)
Iter. (mult.)        O(l m n q)              O(l m n q / sqrt(M))
Iter. (orth.)        O(l (m + n)^2 q)*       O(same / sqrt(M))
QRCP (sampled)       O(l^2 n)                O(l^2 n)
QR (selected)        O(k^2 m)                O(k^2 m / sqrt(M))
Total                O(l m n (1 + 2 q))      O(l m n (1+2q) / sqrt(M))
QP3                  O(m n k)                O(m n k)
CAQP3                O(m n (m + n))          O(m n^2 / sqrt(M))
===================  ======================  ==========================

(*) The paper prints the orthogonalization row as ``O((m+n)^2 q)``; the
exact count for CholQR of an ``l x n`` and an ``l x m`` block per
iteration is ``O(l^2 (m + n) q)`` — we expose exact constants, so the
table's order relations (everything dominated by the GEMM term) are
preserved either way.

These closed forms are load-bearing: analyzer rule RS124
(:mod:`repro.analysis.shapes`) statically interprets each executor's
charge hooks over the Figure 2b op sequence and fails CI if the
per-phase totals drift more than 5% from these functions at reference
dimensions, and ``repro-bench analyze --audit-costs`` adds a third
column from an instrumented run (see ``docs/static_analysis.md``).
A deliberate model change must therefore update executor and closed
form together — which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2, sqrt

from ..errors import ConfigurationError

__all__ = [
    "CostModel",
    "gaussian_sampling_cost",
    "fft_sampling_cost",
    "power_iteration_mult_cost",
    "power_iteration_orth_cost",
    "qrcp_sampled_cost",
    "qr_selected_cost",
    "random_sampling_total_cost",
    "qp3_cost",
    "caqp3_cost",
    "multi_gpu_scaling",
]

#: Default fast-memory size used for word counts: the K40c's 1.5 MB L2
#: in float64 elements.
DEFAULT_FAST_MEMORY = 1_572_864 // 8


@dataclass(frozen=True)
class CostModel:
    """A (flops, words) pair; supports addition and scaling."""

    flops: float
    words: float

    def __add__(self, other: "CostModel") -> "CostModel":
        return CostModel(self.flops + other.flops, self.words + other.words)

    def __mul__(self, scalar: float) -> "CostModel":
        return CostModel(self.flops * scalar, self.words * scalar)

    __rmul__ = __mul__

    def intensity(self) -> float:
        """Arithmetic intensity flops/word (infinite for zero words)."""
        return self.flops / self.words if self.words > 0 else float("inf")


def _check(m: int, n: int, **extra: int) -> None:
    if m < 1 or n < 1:
        raise ConfigurationError(f"need m, n >= 1, got ({m}, {n})")
    for name, val in extra.items():
        if val < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {val}")


def gaussian_sampling_cost(m: int, n: int, l: int,
                           fast_memory: int = DEFAULT_FAST_MEMORY
                           ) -> CostModel:
    """Pruned Gaussian sampling ``B = Omega A``: one ``l x m`` by
    ``m x n`` GEMM.

    flops = ``2 l m n``; words = ``2 l m n / sqrt(M)`` + the operands
    themselves (communication-optimal blocked GEMM [11]).
    """
    _check(m, n, l=l)
    flops = 2.0 * l * m * n
    words = flops / sqrt(fast_memory) + m * n + l * m + l * n
    return CostModel(flops, words)


def fft_sampling_cost(m: int, n: int, l: int, pruned: bool = False,
                      fast_memory: int = DEFAULT_FAST_MEMORY) -> CostModel:
    """FFT sampling.

    Full FFT: ``O(m n log2 m)`` flops (5 m log2 m per column is the
    standard real-FFT count), words ``O(m n log m / log M)``.  Pruned
    FFT computes only ``l`` output rows: ``O(m n log2 l)`` flops.
    """
    _check(m, n, l=l)
    mp = 1 << max(1, (m - 1).bit_length())  # power-of-two padding
    logterm = log2(max(2, l)) if pruned else log2(mp)
    flops = 5.0 * mp * logterm * n
    words = flops / log2(fast_memory) + m * n + l * n
    return CostModel(flops, words)


def power_iteration_mult_cost(m: int, n: int, l: int, q: int,
                              fast_memory: int = DEFAULT_FAST_MEMORY
                              ) -> CostModel:
    """The two GEMMs per power iteration: ``C = B A^T`` (l x n by n x m)
    and ``B = C A`` (l x m by m x n) — ``4 l m n`` flops per iteration.
    """
    _check(m, n, l=l, q=q)
    flops = 4.0 * l * m * n * q
    words = flops / sqrt(fast_memory) + (2 * m * n + l * m + l * n) * q
    return CostModel(flops, words)


def power_iteration_orth_cost(m: int, n: int, l: int, q: int,
                              reorth: bool = True,
                              fast_memory: int = DEFAULT_FAST_MEMORY
                              ) -> CostModel:
    """CholQR of the ``l x n`` and ``l x m`` blocks each iteration.

    One CholQR of an ``l x N`` short-wide block costs ``2 l^2 N``
    (Gram + triangular solve) plus ``O(l^3)`` for the Cholesky; the
    paper's full reorthogonalization doubles it.
    """
    _check(m, n, l=l, q=q)
    passes = 2 if reorth else 1
    per_iter = passes * (2.0 * l * l * (m + n) + 2.0 * (l ** 3) / 3.0)
    flops = per_iter * q
    words = flops / sqrt(fast_memory) + (l * (m + n)) * q * passes
    return CostModel(flops, words)


def qrcp_sampled_cost(n: int, l: int, k: int,
                      fast_memory: int = DEFAULT_FAST_MEMORY) -> CostModel:
    """Truncated QP3 of the sampled ``l x n`` matrix (Step 2).

    ``4 l n k`` leading-order flops; communication is NOT reduced by
    blocking (pivoting forces ``O(l n)``-word traffic per panel), hence
    the paper's ``O(n^2)``-class words entry (``l ~ k`` small).
    """
    _check(max(1, l), n, k=k)
    flops = 4.0 * l * n * k - 2.0 * (l + n) * k * k + 4.0 * (k ** 3) / 3.0
    # Same O(#cols * matrix) streaming as the big QP3, on the small B.
    words = 0.5 * l * n * k + l * n
    return CostModel(flops, words)


def qr_selected_cost(m: int, k: int,
                     fast_memory: int = DEFAULT_FAST_MEMORY) -> CostModel:
    """CholQR of the selected tall-skinny ``m x k`` block (Step 3)."""
    _check(m, max(1, k))
    flops = 2.0 * m * k * k + 2.0 * (k ** 3) / 3.0
    words = flops / sqrt(fast_memory) + 2.0 * m * k
    return CostModel(flops, words)


def random_sampling_total_cost(m: int, n: int, l: int, k: int, q: int,
                               sampler: str = "gaussian",
                               reorth: bool = True,
                               fast_memory: int = DEFAULT_FAST_MEMORY
                               ) -> CostModel:
    """Total cost of the fixed-rank algorithm (Figure 2b).

    Leading order ``O(l m n (1 + 2 q))`` flops and
    ``O(l m n (1 + 2 q) / sqrt(M))`` words, as in Figure 5's Total row.
    """
    if sampler == "gaussian":
        sample = gaussian_sampling_cost(m, n, l, fast_memory)
    elif sampler == "fft":
        sample = fft_sampling_cost(m, n, l, fast_memory=fast_memory)
    else:
        raise ConfigurationError(f"unknown sampler {sampler!r}")
    return (sample
            + power_iteration_mult_cost(m, n, l, q, fast_memory)
            + power_iteration_orth_cost(m, n, l, q, reorth, fast_memory)
            + qrcp_sampled_cost(n, l, k, fast_memory)
            + qr_selected_cost(m, k, fast_memory))


def qp3_cost(m: int, n: int, k: int,
             fast_memory: int = DEFAULT_FAST_MEMORY) -> CostModel:
    """Truncated QP3 of the full ``m x n`` matrix.

    ``4 m n k`` leading-order flops (half BLAS-2, half BLAS-3, cf.
    Section 2); words ``O(m n k)``-class because every panel step
    streams the trailing matrix for the norm updates / pivot search.
    """
    _check(m, n, k=k)
    flops = 4.0 * m * n * k - 2.0 * (m + n) * k * k + 4.0 * (k ** 3) / 3.0
    # Figure 5's O(m n k) words: the BLAS-2 half of the work re-streams
    # the trailing matrix once per factored column (intensity O(1)).
    words = 0.5 * m * n * k + m * n
    return CostModel(flops, words)


def caqp3_cost(m: int, n: int,
               fast_memory: int = DEFAULT_FAST_MEMORY) -> CostModel:
    """Communication-avoiding QP3 [4] (full factorization): the paper's
    Figure 5 row ``O(m n (m + n))`` flops, ``O(m n^2 / sqrt(M))`` words.
    """
    _check(m, n)
    flops = float(m) * n * (m + n)
    words = float(m) * n * n / sqrt(fast_memory)
    return CostModel(flops, words)


def multi_gpu_scaling(cost: CostModel, ng: int) -> CostModel:
    """Distribute a cost over ``ng`` GPUs (Section 5's extension):
    ``#flops = O(.../ng)`` and ``#words = O(.../(ng sqrt(M)))`` — the
    GEMM bottleneck is perfectly row-partitioned."""
    if ng < 1:
        raise ConfigurationError(f"ng must be >= 1, got {ng}")
    return CostModel(cost.flops / ng, cost.words / ng)

"""Estimated Gflop/s of random sampling vs truncated QP3 (Figure 10).

Section 8 closes by estimating end-to-end performance from the kernel
measurements alone — "this allows us to evaluate the performance of
random sampling on a target computer before implementing the
algorithm".  We do exactly that: combine the kernel rate models with
the Figure 5 flop counts.

The paper's convention: the *effective* Gflop/s of an algorithm is its
useful flop count divided by its modeled run time, where QP3's useful
flops are ``2 m n k`` (so its curve saturates just under 29 Gflop/s)
and random sampling's are its own total ``~2 l m n (1 + 2q)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from ..gpu.kernels import KernelModel
from ..gpu.specs import GPUSpec, KEPLER_K40C

__all__ = [
    "estimate_random_sampling_seconds",
    "estimate_random_sampling_gflops",
    "estimate_qp3_seconds",
    "estimate_qp3_gflops",
    "estimate_speedup",
    "estimated_gflops_sweep",
]


def _model(spec: GPUSpec) -> KernelModel:
    return KernelModel(spec)


def estimate_random_sampling_seconds(m: int, n: int, l: int, k: int,
                                     q: int,
                                     spec: GPUSpec = KEPLER_K40C) -> float:
    """Modeled end-to-end seconds of the fixed-rank algorithm."""
    if not (0 < k <= l <= m):
        raise ConfigurationError(f"need 0 < k <= l <= m, got k={k}, "
                                 f"l={l}, m={m}")
    km = _model(spec)
    t = km.curand_seconds(l * m)                    # PRNG
    t += km.gemm_seconds(l, n, m)                   # B = Omega A
    for _ in range(q):                              # power iterations
        t += km.cholqr_seconds(l, n, reorth=True)   # orth B
        t += km.gemm_seconds(l, m, n)               # C = B A^T
        t += km.cholqr_seconds(l, m, reorth=True)   # orth C
        t += km.gemm_seconds(l, n, m)               # B = C A
    t += km.qp3_seconds(l, n, k)                    # Step 2
    t += km.cholqr_seconds(m, k, reorth=True)       # Step 3
    t += km.trsm_seconds(k, max(1, n - k))          # T = R^-1 R_rest
    t += km.trmm_seconds(k, n)                      # R = R_bar [I T]
    return t


def estimate_random_sampling_gflops(m: int, n: int, l: int, k: int, q: int,
                                    spec: GPUSpec = KEPLER_K40C) -> float:
    """Effective Gflop/s of random sampling (its flops / its time)."""
    flops = 2.0 * l * m * n * (1 + 2 * q)
    return flops / (estimate_random_sampling_seconds(m, n, l, k, q, spec)
                    * 1e9)


def estimate_qp3_seconds(m: int, n: int, k: int,
                         spec: GPUSpec = KEPLER_K40C) -> float:
    """Modeled seconds of the truncated QP3 baseline."""
    return _model(spec).qp3_seconds(m, n, k)


def estimate_qp3_gflops(m: int, n: int, k: int,
                        spec: GPUSpec = KEPLER_K40C) -> float:
    """Effective Gflop/s of QP3 on its ``2 m n k`` useful flops."""
    flops = 2.0 * m * n * k
    return flops / (estimate_qp3_seconds(m, n, k, spec) * 1e9)


def estimate_speedup(m: int, n: int, l: int, k: int, q: int,
                     spec: GPUSpec = KEPLER_K40C) -> float:
    """Predicted run-time speedup of random sampling over QP3.

    Section 8 derives this as (Gflop/s ratio) / (flop ratio); dividing
    the modeled times directly is equivalent.
    """
    return (estimate_qp3_seconds(m, n, k, spec)
            / estimate_random_sampling_seconds(m, n, l, k, q, spec))


def estimated_gflops_sweep(ms: Sequence[int], n: int = 2500, l: int = 64,
                           k: int = 54, qs: Sequence[int] = (0, 1),
                           spec: GPUSpec = KEPLER_K40C
                           ) -> Dict[str, List[float]]:
    """The Figure 10 series: estimated Gflop/s over a row-count sweep.

    Returns ``{"m": [...], "qp3": [...], "rs_q{q}": [...]}``.
    """
    out: Dict[str, List[float]] = {"m": [float(v) for v in ms]}
    out["qp3"] = [estimate_qp3_gflops(m, n, k, spec) for m in ms]
    for q in qs:
        out[f"rs_q{q}"] = [
            estimate_random_sampling_gflops(m, n, l, k, q, spec) for m in ms]
    return out

"""Declared tuning search spaces.

A :class:`ParamSpace` is the contract between the search engine and an
executor: each :class:`Param` names one schedule knob, enumerates its
legal choices, and pins the default the untuned runtime uses.  The
engine (:mod:`repro.tune.engine`) only ever proposes knob assignments
drawn from a declared space, so every candidate plan is constructible
and the default plan is always a member — which is what makes the
"tuned is never worse than default" invariant provable by construction.

The shipped :data:`MULTIGPU_SPACE` covers the two stream-schedule knobs
of :class:`repro.gpu.multigpu.MultiGPUExecutor`: the gather pipeline
depth (``pipeline_chunks``) and the distributed-CholQR SYRK buffer
count (``cholqr_buffers``).  Both reshape the event DAG without moving
any work between phases, so the modeled phase sums are invariant under
every point of the space and only the critical path changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from ..errors import ConfigurationError

__all__ = ["Param", "ParamSpace", "MULTIGPU_SPACE"]


@dataclass(frozen=True)
class Param:
    """One tunable knob: a name, its legal choices, and the default."""

    name: str
    choices: Tuple[int, ...]
    default: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("param name must be non-empty")
        if len(self.choices) < 2:
            raise ConfigurationError(
                f"param {self.name!r} needs at least 2 choices, got "
                f"{self.choices!r}")
        if list(self.choices) != sorted(set(self.choices)):
            raise ConfigurationError(
                f"param {self.name!r} choices must be strictly "
                f"increasing, got {self.choices!r}")
        if self.default not in self.choices:
            raise ConfigurationError(
                f"param {self.name!r} default {self.default} is not one "
                f"of its choices {self.choices!r}")

    def index_of(self, value: int) -> int:
        try:
            return self.choices.index(value)
        except ValueError:
            raise ConfigurationError(
                f"{value} is not a legal choice for {self.name!r}; "
                f"choices: {self.choices!r}") from None

    def neighbors(self, value: int) -> Tuple[int, ...]:
        """The choices adjacent to ``value`` in the ordered choice list."""
        i = self.index_of(value)
        out = []
        if i > 0:
            out.append(self.choices[i - 1])
        if i + 1 < len(self.choices):
            out.append(self.choices[i + 1])
        return tuple(out)


@dataclass(frozen=True)
class ParamSpace:
    """An ordered collection of :class:`Param` (the search space)."""

    params: Tuple[Param, ...]

    def __post_init__(self) -> None:
        if not self.params:
            raise ConfigurationError("a ParamSpace needs at least 1 param")
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate param names in space: {names}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def __getitem__(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise ConfigurationError(
            f"no param {name!r} in space; have {self.names}")

    def defaults(self) -> Dict[str, int]:
        """The untuned knob assignment (the search's starting point)."""
        return {p.name: p.default for p in self.params}

    def validate(self, knobs: Mapping[str, int]) -> None:
        """Check a knob assignment covers exactly this space's params
        with legal choices."""
        extra = set(knobs) - set(self.names)
        missing = set(self.names) - set(knobs)
        if extra or missing:
            raise ConfigurationError(
                f"knob assignment does not match the space: extra="
                f"{sorted(extra)}, missing={sorted(missing)}")
        for p in self.params:
            p.index_of(knobs[p.name])

    def neighborhood(self, knobs: Mapping[str, int]
                     ) -> Iterator[Dict[str, int]]:
        """Every assignment within one choice-index step of ``knobs``
        in each dimension (the refinement neighborhood), excluding
        ``knobs`` itself.  Deterministic enumeration order."""
        self.validate(knobs)
        options = [(p.name, (knobs[p.name],) + p.neighbors(knobs[p.name]))
                   for p in self.params]

        def expand(i: int, current: Dict[str, int]
                   ) -> Iterator[Dict[str, int]]:
            if i == len(options):
                if current != dict(knobs):
                    yield dict(current)
                return
            name, values = options[i]
            for v in values:
                current[name] = v
                yield from expand(i + 1, current)

        yield from expand(0, {})


#: Schedule knobs of :class:`repro.gpu.multigpu.MultiGPUExecutor`.
MULTIGPU_SPACE = ParamSpace((
    Param("pipeline_chunks", (1, 2, 4, 8, 16, 32), 4),
    Param("cholqr_buffers", (1, 2, 3, 4, 6, 8), 2),
))

"""The seeded critical-path search engine.

The tuner never measures wall clock: every candidate knob assignment is
evaluated by running the *real algorithm control flow* symbolically on
a fresh :class:`repro.gpu.multigpu.MultiGPUExecutor` and reading the
modeled critical path off ``StreamScheduler.elapsed``.  Because the
schedule knobs only reshape the event DAG (phase sums are invariant —
see :mod:`repro.tune.space`), a lower modeled elapsed means strictly
better compute/communication overlap, not different work.

Search is coordinate descent from the space's defaults — per round,
sweep each parameter (in a seed-shuffled order) over its full choice
list, accepting strict improvements — followed by a neighborhood
refinement pass over the ±1-index hypercube around the incumbent.
Evaluations are memoized, the whole run is deterministic in ``seed``,
and the full trace lands in the plan artifact, so re-running the
search reproduces the plan byte for byte.

Before a plan may enter the cache it must pass the happens-before race
sanitizer at its tuned settings: the winner is re-evaluated with a
raising :class:`repro.analysis.races.RaceChecker` attached, exactly as
``REPRO_RACE_CHECK=1`` would attach it in production.  A knob setting
that breaks the event ordering is therefore unshippable by
construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SamplingConfig
from ..errors import ConfigurationError
from ..gpu.device import SymArray
from ..gpu.multigpu import CPUSpec, MultiGPUExecutor
from ..gpu.specs import GPUSpec, KEPLER_K40C
from .cache import lookup_plan, model_fingerprint, store_plan
from .plan import PlanKey, TunePlan
from .space import MULTIGPU_SPACE, ParamSpace

__all__ = ["evaluate_candidate", "tune", "get_plan"]


def _make_executor(key: PlanKey, knobs: Dict[str, int], spec: GPUSpec,
                   cpu: CPUSpec, race_check: bool) -> MultiGPUExecutor:
    ex = MultiGPUExecutor(ng=key.ng, spec=spec, cpu=cpu, seed=0,
                          overlap=key.overlap, backend=key.backend,
                          plan=dict(knobs))
    if race_check:
        from ..analysis.races import RaceChecker
        ex.streams.attach_race_checker(RaceChecker(raise_on_race=True))
    return ex


def evaluate_candidate(key: PlanKey, knobs: Dict[str, int],
                       p: int = 10, q: int = 1,
                       spec: GPUSpec = KEPLER_K40C,
                       cpu: Optional[CPUSpec] = None,
                       race_check: bool = False
                       ) -> Tuple[float, Dict[str, float]]:
    """Modeled ``(elapsed, phase breakdown)`` of one knob assignment.

    Runs the fixed-rank algorithm symbolically on a fresh multi-GPU
    executor configured with ``knobs``.  With ``race_check=True`` a
    raising race sanitizer watches the run (this is the cache-admission
    gate; it raises :class:`repro.errors.RaceError` on any unordered
    conflicting access).
    """
    if key.ng < 2:
        raise ConfigurationError(
            f"tuning needs a multi-GPU stream schedule (ng >= 2), got "
            f"ng={key.ng}")
    ex = _make_executor(key, knobs, spec, cpu or CPUSpec(), race_check)
    cfg = SamplingConfig(rank=key.k, oversampling=p, power_iterations=q,
                         seed=0, backend=ex.backend.name)
    from ..core.random_sampling import random_sampling
    res = random_sampling(SymArray((key.m, key.n)), cfg, executor=ex)
    return res.seconds, {ph: s for ph, s in res.breakdown.items() if s > 0.0}


def tune(key: PlanKey, space: ParamSpace = MULTIGPU_SPACE, seed: int = 0,
         p: int = 10, q: int = 1,
         spec: GPUSpec = KEPLER_K40C,
         cpu: Optional[CPUSpec] = None,
         use_cache: bool = True,
         cache_dir: Optional[str] = None) -> TunePlan:
    """Search ``space`` for the best schedule on ``key``; return the
    accepted plan.

    The returned plan satisfies ``tuned_elapsed <= baseline_elapsed``
    by construction (the default assignment is evaluation #0 and is
    only ever displaced by a strictly better candidate), has passed the
    race sanitizer at its tuned knobs, and — with ``use_cache`` — has
    been admitted to the plan cache (memory LRU + disk).
    """
    cpu = cpu or CPUSpec()
    fingerprint = model_fingerprint(spec, cpu, key.backend)
    rng = np.random.default_rng(seed)
    memo: Dict[Tuple[Tuple[str, int], ...], float] = {}
    trace: List[Dict] = []

    def measure(knobs: Dict[str, int], stage: str) -> float:
        sig = tuple(sorted(knobs.items()))
        if sig in memo:
            return memo[sig]
        elapsed, _ = evaluate_candidate(key, knobs, p=p, q=q, spec=spec,
                                        cpu=cpu)
        memo[sig] = elapsed
        trace.append({"step": len(trace), "stage": stage,
                      "knobs": dict(knobs), "elapsed": elapsed,
                      "accepted": False})
        return elapsed

    def accept() -> None:
        trace[-1]["accepted"] = True

    best = space.defaults()
    baseline = best_elapsed = measure(best, "baseline")
    trace[-1]["accepted"] = True  # the incumbent until beaten

    # Coordinate descent: sweep one param at a time over its full
    # choice list; repeat (with a reshuffled param order) until a whole
    # round passes without improvement.
    improved = True
    while improved:
        improved = False
        order = list(space.names)
        rng.shuffle(order)
        for name in order:
            for choice in space[name].choices:
                if choice == best[name]:
                    continue
                candidate = dict(best, **{name: choice})
                elapsed = measure(candidate, "descent")
                if elapsed < best_elapsed:
                    best, best_elapsed = candidate, elapsed
                    accept()
                    improved = True

    # Neighborhood refinement: the ±1-index hypercube around the
    # incumbent catches diagonal moves coordinate descent cannot see.
    for candidate in space.neighborhood(best):
        elapsed = measure(candidate, "refine")
        if elapsed < best_elapsed:
            best, best_elapsed = dict(candidate), elapsed
            accept()

    # Cache-admission gate: the winner must run race-free with the
    # sanitizer in raising mode (RaceError propagates to the caller).
    evaluate_candidate(key, best, p=p, q=q, spec=spec, cpu=cpu,
                       race_check=True)

    plan = TunePlan(key=key, knobs=dict(best), seed=seed,
                    baseline_elapsed=baseline, tuned_elapsed=best_elapsed,
                    model_fingerprint=fingerprint, trace=trace,
                    race_checked=True,
                    context={"p": p, "q": q, "spec": spec.name,
                             "space": list(space.names)})
    if use_cache:
        store_plan(plan, directory=cache_dir)
    return plan


def get_plan(key: PlanKey, space: ParamSpace = MULTIGPU_SPACE,
             seed: int = 0, p: int = 10, q: int = 1,
             spec: GPUSpec = KEPLER_K40C,
             cpu: Optional[CPUSpec] = None,
             cache_dir: Optional[str] = None) -> TunePlan:
    """Cached-plan lookup with search on miss (the ``auto_tune=`` path).

    Serves a cached plan when one exists for ``key`` under the current
    kernel-model fingerprint; otherwise runs :func:`tune` and admits
    the result.  Either way the returned plan is race-checked and never
    slower than the default schedule on the modeled clock.
    """
    cpu = cpu or CPUSpec()
    fingerprint = model_fingerprint(spec, cpu, key.backend)
    cached = lookup_plan(key, fingerprint, directory=cache_dir)
    if cached is not None:
        return cached
    return tune(key, space=space, seed=seed, p=p, q=q, spec=spec, cpu=cpu,
                cache_dir=cache_dir)

"""``repro-bench tune`` — search, inspect, and apply tuning plans.

Subcommands::

    repro-bench tune search --figure fig15 --ng 3 --out fig15.plan.json
    repro-bench tune search --figure fig15 --ng 2 --ng 3 \\
        --bench BENCH_tune_smoke.json --summary summary.md --gate
    repro-bench tune show fig15.plan.json
    repro-bench tune show --figure fig15 --ng 3        # cache lookup
    repro-bench tune apply fig15.plan.json --figure fig15
    repro-bench tune clear-cache --disk

``search`` runs the seeded critical-path search for each requested GPU
count and (optionally) exports a schema-v2 ``BENCH_tune_*.json``
before/after artifact: one point per ``(ng, variant)`` with the modeled
phase breakdown and the critical-path elapsed as ``total_seconds`` —
the values ``repro-bench obs diff`` hard-gates against the committed
baseline.  ``--gate`` additionally exits 1 unless every tuned plan
strictly beats the default schedule.  Exit codes follow the repo
convention: 0 ok, 1 gate failure, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..errors import ReproError
from .cache import clear_plan_cache, lookup_plan, model_fingerprint, \
    plan_cache_info
from .engine import evaluate_candidate, tune
from .plan import PlanKey, TunePlan, load_plan_file
from .space import MULTIGPU_SPACE

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_GATE = 1
EXIT_ERROR = 2


def _add_key_args(cmd, with_figure_default: bool = True) -> None:
    cmd.add_argument("--figure", default="fig15" if with_figure_default
                     else None,
                     help="figure whose representative config supplies "
                          "m/n/k defaults (default: fig15)")
    cmd.add_argument("--m", type=int, default=None,
                     help="matrix rows (overrides the figure config)")
    cmd.add_argument("--n", type=int, default=None,
                     help="matrix cols (overrides the figure config)")
    cmd.add_argument("--k", type=int, default=None,
                     help="target rank (overrides the figure config)")
    cmd.add_argument("--ng", type=int, action="append", default=None,
                     help="GPU count; repeat for several (default: the "
                          "figure's, e.g. 3 for fig15)")
    cmd.add_argument("--overlap", choices=("on", "off"), default="on",
                     help="stream schedule to tune under (default on)")
    cmd.add_argument("--backend", default="simulated",
                     help="compute backend name in the plan key "
                          "(default simulated)")
    cmd.add_argument("--cache-dir", default=None,
                     help="plan-cache directory (default "
                          ".repro-tune-cache/)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench tune",
        description="Critical-path autotuner: search the schedule-knob "
                    "space against the modeled clock and manage the "
                    "plan cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser(
        "search", help="run the seeded search and emit plan artifacts")
    _add_key_args(search)
    search.add_argument("--seed", type=int, default=0,
                        help="search seed (default 0; same seed, same "
                             "plan, byte for byte)")
    search.add_argument("--p", type=int, default=10,
                        help="oversampling (default 10)")
    search.add_argument("--q", type=int, default=1,
                        help="power iterations (default 1)")
    search.add_argument("--out", metavar="PATH", default=None,
                        help="write the plan artifact JSON to PATH (with "
                             "several --ng, PATH gets an .ng<N> suffix)")
    search.add_argument("--bench", metavar="PATH", default=None,
                        help="write a schema-v2 BENCH artifact with "
                             "default/tuned points per ng to PATH")
    search.add_argument("--summary", metavar="PATH", default=None,
                        help="append a markdown summary table to PATH "
                             "(for $GITHUB_STEP_SUMMARY)")
    search.add_argument("--gate", action="store_true",
                        help="exit 1 unless every tuned plan strictly "
                             "beats the default modeled elapsed")
    search.add_argument("--no-cache", action="store_true",
                        help="skip plan-cache admission")
    search.add_argument("--json", action="store_true",
                        help="print the plan artifacts as JSON")

    show = sub.add_parser(
        "show", help="print a plan artifact (from a file or the cache)")
    show.add_argument("plan", nargs="?", default=None,
                      help="plan artifact path; omit to look up the "
                           "cache by key instead")
    _add_key_args(show, with_figure_default=False)
    show.add_argument("--json", action="store_true",
                      help="print raw JSON instead of a table")

    apply_cmd = sub.add_parser(
        "apply", help="run a figure config under a plan and report "
                      "default vs tuned modeled elapsed")
    apply_cmd.add_argument("plan", help="plan artifact path")
    _add_key_args(apply_cmd)
    apply_cmd.add_argument("--p", type=int, default=10,
                           help="oversampling (default 10)")
    apply_cmd.add_argument("--q", type=int, default=1,
                           help="power iterations (default 1)")

    clear = sub.add_parser("clear-cache",
                           help="drop the in-memory plan LRU")
    clear.add_argument("--disk", action="store_true",
                       help="also delete persisted plans on disk")
    clear.add_argument("--cache-dir", default=None,
                       help="plan-cache directory (default "
                            ".repro-tune-cache/)")
    return parser


def _resolve_keys(args) -> List[PlanKey]:
    """Build one PlanKey per requested ng from figure defaults plus
    explicit overrides."""
    from ..bench.harness import OBS_RUN_CONFIGS
    from ..errors import ConfigurationError

    base: Dict[str, int] = {}
    if args.figure:
        try:
            base = dict(OBS_RUN_CONFIGS[args.figure])
        except KeyError:
            raise ConfigurationError(
                f"unknown figure {args.figure!r}; available: "
                f"{sorted(OBS_RUN_CONFIGS)}") from None
    for name in ("m", "n", "k"):
        value = getattr(args, name)
        if value is not None:
            base[name] = value
    missing = [x for x in ("m", "n", "k") if x not in base]
    if missing:
        raise ConfigurationError(
            f"plan key needs {missing}; pass --figure or --m/--n/--k")
    ngs = args.ng if args.ng else [base.get("ng", 2)]
    return [PlanKey(m=base["m"], n=base["n"], k=base["k"], ng=ng,
                    backend=args.backend,
                    overlap=(args.overlap != "off"))
            for ng in ngs]


def _plan_row(plan: TunePlan) -> str:
    knobs = ",".join(f"{k}={v}" for k, v in sorted(plan.knobs.items()))
    return (f"| {plan.key.ng} | {plan.baseline_elapsed:.6f} | "
            f"{plan.tuned_elapsed:.6f} | {100 * plan.improvement:.2f}% | "
            f"{knobs} | {plan.evaluations} |")


def _print_plan(plan: TunePlan) -> None:
    print(f"plan {plan.key.canonical()}")
    print(f"  schema:      {plan.schema}")
    print(f"  seed:        {plan.seed}")
    print("  knobs:       " + ", ".join(
        f"{k}={v}" for k, v in sorted(plan.knobs.items())))
    print(f"  baseline:    {plan.baseline_elapsed:.6f} modeled s")
    print(f"  tuned:       {plan.tuned_elapsed:.6f} modeled s")
    print(f"  improvement: {100 * plan.improvement:.2f}%")
    print(f"  evaluations: {plan.evaluations}")
    print("  race gate:   "
          + ("passed" if plan.race_checked else "NOT CHECKED"))
    print(f"  fingerprint: {plan.model_fingerprint[:16]}...")


def _bench_doc(plans: List[TunePlan], args) -> Dict:
    """Before/after BENCH document: one point per (ng, variant), with
    the modeled critical-path elapsed as the hard-gated total."""
    from ..obs.artifact import build_artifact, figure_record, point

    points = []
    for plan in plans:
        key = plan.key
        defaults = MULTIGPU_SPACE.defaults()
        variants = (("default", defaults), ("tuned", plan.knobs))
        for variant, knobs in variants:
            elapsed, breakdown = evaluate_candidate(
                key, dict(knobs), p=args.p, q=args.q)
            params = {"m": key.m, "n": key.n, "k": key.k,
                      "l": key.k + args.p, "q": args.q, "ng": key.ng,
                      "overlap": "on" if key.overlap else "off",
                      "variant": variant}
            points.append(point(
                params, phases=breakdown, total_seconds=elapsed,
                metrics={f"knob_{k}": v for k, v in sorted(knobs.items())}))
    from ..matrices.registry import matrix_cache_info
    metrics = {
        "improvement_pct": {str(p.key.ng): 100 * p.improvement
                            for p in plans},
        "evaluations": {str(p.key.ng): p.evaluations for p in plans},
        "plan_cache": plan_cache_info(),
        "matrix_cache": matrix_cache_info(),
    }
    record = figure_record(
        "tune", points=points, metrics=metrics,
        meta={"seed": args.seed, "space": list(MULTIGPU_SPACE.names),
              "race_gate": all(p.race_checked for p in plans)})
    return build_artifact([record], label="tune", backend=args.backend)


def _cmd_search(args) -> int:
    from ..obs.artifact import write_artifact

    keys = _resolve_keys(args)
    plans = []
    for key in keys:
        plan = tune(key, seed=args.seed, p=args.p, q=args.q,
                    use_cache=not args.no_cache, cache_dir=args.cache_dir)
        plans.append(plan)
        knobs = ", ".join(f"{k}={v}"
                          for k, v in sorted(plan.knobs.items()))
        print(f"[tuned {key.canonical()}: {plan.baseline_elapsed:.6f} -> "
              f"{plan.tuned_elapsed:.6f} modeled s "
              f"({100 * plan.improvement:.2f}% better, "
              f"{plan.evaluations} evaluations, race gate passed) "
              f"{knobs}]")
    if args.out:
        for plan in plans:
            path = args.out if len(plans) == 1 \
                else f"{args.out}.ng{plan.key.ng}"
            plan.write(path)
            print(f"[wrote {path}]")
    if args.json:
        for plan in plans:
            print(plan.to_json(), end="")
    if args.bench:
        doc = _bench_doc(plans, args)
        write_artifact(args.bench, doc)
        npts = len(doc["figures"]["tune"]["points"])
        print(f"[wrote {args.bench}: {npts} points, "
              f"backend={doc['backend']}]")
    if args.summary:
        lines = ["## repro-bench tune", "",
                 "| ng | default (modeled s) | tuned (modeled s) | "
                 "improvement | knobs | evaluations |",
                 "|---|---|---|---|---|---|"]
        lines += [_plan_row(p) for p in plans]
        lines.append("")
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        print(f"[appended summary to {args.summary}]")
    if args.gate:
        losers = [p for p in plans if p.improvement <= 0.0]
        if losers:
            for p in losers:
                print(f"tune gate: no improvement on "
                      f"{p.key.canonical()}", file=sys.stderr)
            return EXIT_GATE
        print(f"[gate ok: tuned beats default on all "
              f"{len(plans)} key(s)]")
    return EXIT_OK


def _cmd_show(args) -> int:
    if args.plan is not None:
        plan = load_plan_file(args.plan)
    else:
        if not (args.figure or (args.m and args.n and args.k)):
            print("tune show: pass a plan path or a key "
                  "(--figure/--m/--n/--k plus --ng)", file=sys.stderr)
            return EXIT_ERROR
        keys = _resolve_keys(args)
        if len(keys) != 1:
            print("tune show: exactly one --ng for a cache lookup",
                  file=sys.stderr)
            return EXIT_ERROR
        from ..gpu.multigpu import CPUSpec
        from ..gpu.specs import KEPLER_K40C
        fingerprint = model_fingerprint(KEPLER_K40C, CPUSpec(),
                                        keys[0].backend)
        plan = lookup_plan(keys[0], fingerprint, directory=args.cache_dir)
        if plan is None:
            print(f"tune show: no cached plan for "
                  f"{keys[0].canonical()}", file=sys.stderr)
            return EXIT_GATE
    if args.json:
        print(plan.to_json(), end="")
    else:
        _print_plan(plan)
    return EXIT_OK


def _cmd_apply(args) -> int:
    plan = load_plan_file(args.plan)
    keys = _resolve_keys(args)
    status = EXIT_OK
    for key in keys:
        default_elapsed, _ = evaluate_candidate(
            key, MULTIGPU_SPACE.defaults(), p=args.p, q=args.q)
        tuned_elapsed, _ = evaluate_candidate(
            key, dict(plan.knobs), p=args.p, q=args.q, race_check=True)
        better = 1.0 - tuned_elapsed / default_elapsed
        tag = "ok" if tuned_elapsed <= default_elapsed else "REGRESSION"
        print(f"[{tag}] {key.canonical()}: default "
              f"{default_elapsed:.6f} s, plan {tuned_elapsed:.6f} s "
              f"({100 * better:+.2f}%)")
        if tuned_elapsed > default_elapsed:
            status = EXIT_GATE
    return status


def _cmd_clear(args) -> int:
    removed = clear_plan_cache(disk=args.disk, directory=args.cache_dir)
    if args.disk:
        print(f"[cleared plan cache; removed {removed} disk entr"
              f"{'y' if removed == 1 else 'ies'}]")
    else:
        print("[cleared in-memory plan cache]")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    try:
        if args.command == "search":
            return _cmd_search(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "apply":
            return _cmd_apply(args)
        return _cmd_clear(args)
    except ReproError as exc:
        print(f"repro-bench tune: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())

"""The plan cache: per-process LRU plus on-disk persistence.

Mirrors the matrix-gallery LRU of :mod:`repro.matrices.registry`: a
module-level :class:`~collections.OrderedDict` keyed by the plan key's
canonical string, hit/miss counters surfaced through
:func:`plan_cache_info`, and an entry capacity taken from the
``REPRO_TUNE_CACHE`` environment variable (``0`` disables caching
entirely, including the disk tier).

The disk tier lives in ``.repro-tune-cache/`` next to the analyzer's
``.repro-analysis-cache/``: one JSON plan artifact per key, written
atomically (tempfile + ``os.replace``), so searches survive process
restarts.  An entry — memory or disk — is only served when its
recorded :func:`model_fingerprint` matches the caller's: change the
:class:`repro.gpu.specs.GPUSpec` kernel model, the CPU model, or the
backend and every plan tuned under the old model is invalidated (and
evicted from memory) rather than silently replayed.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from .plan import PlanKey, TunePlan, load_plan_file

__all__ = ["DEFAULT_CACHE_DIR", "model_fingerprint", "plan_cache_info",
           "clear_plan_cache", "store_plan", "lookup_plan"]

#: Conventional on-disk location, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".repro-tune-cache"

#: Default LRU capacity (entries); override with REPRO_TUNE_CACHE.
_CACHE_DEFAULT_ENTRIES = 16

_CACHE: "OrderedDict[str, TunePlan]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0}


def _cache_capacity() -> int:
    raw = os.environ.get("REPRO_TUNE_CACHE", "").strip()
    if not raw:
        return _CACHE_DEFAULT_ENTRIES
    try:
        cap = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_TUNE_CACHE must be an integer, got {raw!r}") from None
    if cap < 0:
        raise ConfigurationError(
            f"REPRO_TUNE_CACHE must be >= 0, got {cap}")
    return cap


def plan_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the per-process plan LRU (the same
    shape as :func:`repro.matrices.registry.matrix_cache_info`)."""
    return {"hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"], "entries": len(_CACHE)}


def clear_plan_cache(disk: bool = False,
                     directory: Optional[str] = None) -> int:
    """Drop the in-memory LRU (and, with ``disk=True``, every persisted
    plan under ``directory``).  Returns the number of disk entries
    removed."""
    _CACHE.clear()
    _CACHE_STATS["hits"] = _CACHE_STATS["misses"] = 0
    removed = 0
    if disk:
        root = Path(directory or DEFAULT_CACHE_DIR)
        if root.is_dir():
            for entry in root.glob("*.plan.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    continue
    return removed


def model_fingerprint(spec, cpu=None, backend: Optional[str] = None) -> str:
    """Hash of the kernel/cost model a plan's numbers depend on.

    Dataclass reprs enumerate every field deterministically, so any
    change to the GPU spec (peak rates, transfer model anchors), the
    CPU model, or the backend name yields a different fingerprint —
    exactly the events that must invalidate cached plans.
    """
    h = hashlib.sha256()
    h.update(repr(spec).encode("utf-8"))
    h.update(b"\0")
    h.update(repr(cpu).encode("utf-8"))
    h.update(b"\0")
    h.update((backend or "simulated").encode("utf-8"))
    return h.hexdigest()


def _entry_path(directory: Path, key: PlanKey) -> Path:
    name = hashlib.sha1(key.canonical().encode("utf-8")).hexdigest()
    return directory / f"{name}.plan.json"


def store_plan(plan: TunePlan, directory: Optional[str] = None) -> bool:
    """Admit an accepted plan: into the LRU and onto disk.

    Returns False (and stores nothing) when caching is disabled
    (``REPRO_TUNE_CACHE=0``).  The disk write is atomic; a failed write
    never corrupts an existing entry.
    """
    capacity = _cache_capacity()
    if capacity == 0:
        return False
    canon = plan.key.canonical()
    _CACHE[canon] = plan
    _CACHE.move_to_end(canon)
    while len(_CACHE) > capacity:
        _CACHE.popitem(last=False)
    root = Path(directory or DEFAULT_CACHE_DIR)
    try:
        root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(root), suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json())
        os.replace(tmp, _entry_path(root, plan.key))
    except OSError:
        return True  # memory tier still holds the plan
    return True


def lookup_plan(key: PlanKey, fingerprint: str,
                directory: Optional[str] = None
                ) -> Optional[TunePlan]:
    """Serve a cached plan for ``key``, or None.

    Memory first, then disk (a disk hit repopulates the LRU).  A plan
    whose recorded fingerprint differs from ``fingerprint`` is stale:
    it is evicted from memory, never served, and left for the next
    :func:`store_plan` to overwrite on disk.
    """
    if _cache_capacity() == 0:
        return None
    canon = key.canonical()
    cached = _CACHE.get(canon)
    if cached is not None:
        if cached.model_fingerprint == fingerprint:
            _CACHE.move_to_end(canon)
            _CACHE_STATS["hits"] += 1
            return cached
        del _CACHE[canon]  # stale under the current kernel model
    plan, path = _load_disk(key, directory)
    if plan is not None and plan.model_fingerprint == fingerprint \
            and plan.key == key:
        _CACHE_STATS["hits"] += 1
        _CACHE[canon] = plan
        _CACHE.move_to_end(canon)
        return plan
    if plan is not None and plan.model_fingerprint != fingerprint \
            and path is not None:
        try:
            path.unlink()  # stale on disk too: evict
        except OSError:
            pass
    _CACHE_STATS["misses"] += 1
    return None


def _load_disk(key: PlanKey, directory: Optional[str]
               ) -> Tuple[Optional[TunePlan], Optional[Path]]:
    path = _entry_path(Path(directory or DEFAULT_CACHE_DIR), key)
    if not path.is_file():
        return None, None
    try:
        return load_plan_file(str(path)), path
    except ConfigurationError:
        return None, path
